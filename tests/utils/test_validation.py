"""Tests for argument-validation helpers."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_positive_int,
    check_probability,
)


class TestNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative("x", 0) == 0.0

    def test_accepts_positive(self):
        assert check_non_negative("x", 3.5) == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError, match="x must be >= 0"):
            check_non_negative("x", -1)

    def test_rejects_nan(self):
        with pytest.raises(ConfigurationError, match="finite"):
            check_non_negative("x", float("nan"))

    def test_rejects_infinity(self):
        with pytest.raises(ConfigurationError, match="finite"):
            check_non_negative("x", float("inf"))

    def test_rejects_string(self):
        with pytest.raises(ConfigurationError, match="real number"):
            check_non_negative("x", "5")  # type: ignore[arg-type]

    def test_rejects_bool(self):
        with pytest.raises(ConfigurationError):
            check_non_negative("x", True)  # type: ignore[arg-type]


class TestPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 0.1) == 0.1

    def test_rejects_zero(self):
        with pytest.raises(ConfigurationError, match="> 0"):
            check_positive("x", 0)


class TestPositiveInt:
    def test_accepts_one(self):
        assert check_positive_int("x", 1) == 1

    def test_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            check_positive_int("x", 0)

    def test_rejects_float(self):
        with pytest.raises(ConfigurationError, match="integer"):
            check_positive_int("x", 2.0)  # type: ignore[arg-type]

    def test_rejects_bool(self):
        with pytest.raises(ConfigurationError):
            check_positive_int("x", True)  # type: ignore[arg-type]


class TestProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, value):
        assert check_probability("p", value) == value

    @pytest.mark.parametrize("value", [-0.01, 1.01, 5])
    def test_rejects_outside(self, value):
        with pytest.raises(ConfigurationError):
            check_probability("p", value)


class TestFraction:
    def test_accepts_half_open(self):
        assert check_fraction("f", 1.0) == 1.0
        assert check_fraction("f", 0.001) == 0.001

    def test_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            check_fraction("f", 0.0)


class TestPathologicalFloats:
    """NaN, infinities, and negative zero across every validator."""

    @pytest.mark.parametrize(
        "checker", [check_non_negative, check_positive, check_probability,
                    check_fraction]
    )
    @pytest.mark.parametrize(
        "value", [float("nan"), float("inf"), float("-inf")]
    )
    def test_non_finite_rejected_everywhere(self, checker, value):
        with pytest.raises(ConfigurationError, match="finite"):
            checker("x", value)

    def test_negative_zero_is_zero_for_non_negative(self):
        # IEEE -0.0 compares equal to 0.0; it must not be rejected as
        # "negative" by a >= 0 check.
        assert check_non_negative("x", -0.0) == 0.0

    def test_negative_zero_is_zero_for_probability(self):
        assert check_probability("p", -0.0) == 0.0

    def test_negative_zero_rejected_as_positive(self):
        with pytest.raises(ConfigurationError, match="> 0"):
            check_positive("x", -0.0)

    def test_negative_zero_rejected_as_fraction(self):
        with pytest.raises(ConfigurationError):
            check_fraction("f", -0.0)

    def test_error_message_names_parameter_and_value(self):
        with pytest.raises(ConfigurationError, match=r"n_t must be >= 0, got -3"):
            check_non_negative("n_t", -3)

    def test_nan_message_shows_value(self):
        with pytest.raises(ConfigurationError, match="nan"):
            check_probability("p", float("nan"))

    def test_tiny_denormal_accepted(self):
        denormal = 5e-324  # smallest positive subnormal double
        assert check_positive("x", denormal) == denormal
        assert check_fraction("f", denormal) == denormal
