"""Tests for ASCII table and plot rendering."""

from __future__ import annotations

import pytest

from repro.utils.ascii_plot import ascii_plot
from repro.utils.tables import format_table


class TestFormatTable:
    def test_basic_rendering(self):
        text = format_table(["a", "b"], [[1, 2.5], [3, 4.125]])
        lines = text.splitlines()
        assert lines[0].startswith("| a")
        assert "2.5000" in text
        assert "4.1250" in text

    def test_title(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_column_alignment(self):
        text = format_table(["name", "v"], [["long-name-here", 1], ["s", 2]])
        lines = text.splitlines()
        assert len(lines[0]) == len(lines[2]) == len(lines[3])

    def test_custom_float_format(self):
        text = format_table(["v"], [[0.123456]], float_format=".2f")
        assert "0.12" in text
        assert "0.1235" not in text

    def test_bool_cells_render_as_bool(self):
        assert "True" in format_table(["ok"], [[True]])

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        text = format_table(["a"], [])
        assert "| a" in text


class TestAsciiPlot:
    def test_contains_series_markers_and_legend(self):
        text = ascii_plot([0, 1, 2], {"up": [0, 1, 2], "down": [2, 1, 0]})
        assert "o = up" in text
        assert "x = down" in text

    def test_title_and_labels(self):
        text = ascii_plot(
            [0, 1], {"s": [0, 1]}, title="T", xlabel="L", ylabel="P_S"
        )
        assert text.startswith("T")
        assert "P_S" in text
        assert " L: 0 .. 1" in text

    def test_explicit_y_bounds(self):
        text = ascii_plot([0, 1], {"s": [0.2, 0.4]}, y_min=0.0, y_max=1.0)
        assert "top=1.000" in text
        assert "bottom=0.000" in text

    def test_rejects_empty_x(self):
        with pytest.raises(ValueError):
            ascii_plot([], {"s": []})

    def test_rejects_empty_series(self):
        with pytest.raises(ValueError):
            ascii_plot([1], {})

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError, match="points"):
            ascii_plot([1, 2], {"s": [1]})

    def test_flat_series_does_not_crash(self):
        text = ascii_plot([0, 1, 2], {"flat": [0.5, 0.5, 0.5]})
        assert "flat" in text

    def test_nan_points_render_as_gaps(self):
        text = ascii_plot(
            [0, 1, 2], {"s": [0.2, float("nan"), 0.8]}, y_min=0.0, y_max=1.0
        )
        assert "s" in text
        # Exactly two plotted markers survive in the grid (the legend's
        # own 'o' sits below the axis line).
        grid = text.split("+---", 1)[0].split("|", 1)[1]
        assert grid.count("o") == 2

    def test_all_nan_rejected(self):
        with pytest.raises(ValueError, match="NaN"):
            ascii_plot([0, 1], {"s": [float("nan"), float("nan")]})
