"""Tests for deterministic RNG management."""

from __future__ import annotations

import numpy as np

from repro.utils.seeding import SeedSequenceFactory, make_rng


class TestMakeRng:
    def test_same_seed_same_stream(self):
        a = make_rng(42).random(5)
        b = make_rng(42).random(5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = make_rng(1).random(5)
        b = make_rng(2).random(5)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        rng = np.random.default_rng(7)
        assert make_rng(rng) is rng

    def test_none_seed_works(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestSeedSequenceFactory:
    def test_reproducible_fanout(self):
        a = [g.random() for g in SeedSequenceFactory(99).generators(4)]
        b = [g.random() for g in SeedSequenceFactory(99).generators(4)]
        assert a == b

    def test_children_are_independent_streams(self):
        factory = SeedSequenceFactory(5)
        first = factory.generator().random(3)
        second = factory.generator().random(3)
        assert not np.array_equal(first, second)

    def test_stream_counter(self):
        factory = SeedSequenceFactory(0)
        assert factory.streams_spawned == 0
        factory.generator()
        factory.generator()
        assert factory.streams_spawned == 2

    def test_root_entropy_recorded(self):
        assert SeedSequenceFactory(1234).root_entropy == 1234

    def test_generators_yields_requested_count(self):
        assert len(list(SeedSequenceFactory(1).generators(7))) == 7
