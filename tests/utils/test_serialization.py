"""Tests for JSON result serialization."""

from __future__ import annotations

import json

import pytest

from repro.errors import ExperimentError
from repro.experiments.result import Claim, FigureResult
from repro.simulation.results import PsEstimate
from repro.utils.serialization import (
    figure_result_from_dict,
    figure_result_to_dict,
    load_results,
    ps_estimate_from_dict,
    ps_estimate_to_dict,
    save_results,
)


@pytest.fixture
def result():
    return FigureResult(
        figure_id="figX",
        title="Sample",
        x_label="L",
        x_values=[1, 2, 3],
        series={"a": [0.1, 0.2, 0.3]},
        claims=[Claim("c1", True), Claim("c2", False)],
        notes="note",
    )


class TestFigureResultRoundTrip:
    def test_round_trip_preserves_everything(self, result):
        rebuilt = figure_result_from_dict(figure_result_to_dict(result))
        assert rebuilt.figure_id == result.figure_id
        assert rebuilt.title == result.title
        assert list(rebuilt.x_values) == list(result.x_values)
        assert rebuilt.series == result.series
        assert rebuilt.claims == result.claims
        assert rebuilt.notes == result.notes

    def test_dict_is_json_safe(self, result):
        json.dumps(figure_result_to_dict(result))

    def test_wrong_schema_rejected(self):
        with pytest.raises(ExperimentError, match="schema"):
            figure_result_from_dict({"schema": "something.else"})


class TestPsEstimateRoundTrip:
    def test_round_trip(self):
        estimate = PsEstimate(
            mean=0.4, variance=0.02, trials=50, mean_bad_per_layer={1: 3.5, 2: 1.0}
        )
        rebuilt = ps_estimate_from_dict(ps_estimate_to_dict(estimate))
        assert rebuilt == estimate

    def test_layer_keys_restored_as_ints(self):
        estimate = PsEstimate(mean=0.4, variance=0.0, trials=5,
                              mean_bad_per_layer={3: 1.0})
        rebuilt = ps_estimate_from_dict(ps_estimate_to_dict(estimate))
        assert list(rebuilt.mean_bad_per_layer) == [3]

    def test_wrong_schema_rejected(self):
        with pytest.raises(ExperimentError):
            ps_estimate_from_dict({"schema": "nope"})


class TestFiles:
    def test_save_and_load(self, tmp_path, result):
        path = tmp_path / "results.json"
        save_results([result, result], path)
        loaded = load_results(path)
        assert len(loaded) == 2
        assert loaded[0].figure_id == "figX"

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ExperimentError, match="cannot load"):
            load_results(tmp_path / "absent.json")

    def test_load_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json at all")
        with pytest.raises(ExperimentError):
            load_results(path)

    def test_load_non_list(self, tmp_path):
        path = tmp_path / "obj.json"
        path.write_text("{}")
        with pytest.raises(ExperimentError, match="result list"):
            load_results(path)
