"""Tests for the defense planner."""

from __future__ import annotations

import pytest

from repro.core import SOSArchitecture, SuccessiveAttack, evaluate
from repro.core.budget import BreakInCampaign, CongestionCostModel
from repro.errors import ConfigurationError
from repro.planner import DefensePlan, plan_defense, required_detection
from repro.repair.analysis import analyze_successive_with_repair


def arch():
    return SOSArchitecture(layers=4, mapping="one-to-two")


class TestRequiredDetection:
    def test_zero_when_already_met(self):
        assert required_detection(arch(), SuccessiveAttack(), target_p_s=0.3) == 0.0

    def test_binary_search_hits_target(self):
        attack = SuccessiveAttack()
        rho = required_detection(arch(), attack, target_p_s=0.8)
        assert 0.0 < rho < 1.0
        achieved = analyze_successive_with_repair(
            arch(), attack, rho, final_scan=False
        ).p_s
        assert achieved >= 0.8
        # Tightness: a slightly weaker defender misses the target.
        weaker = analyze_successive_with_repair(
            arch(), attack, rho - 0.02, final_scan=False
        ).p_s
        assert weaker < 0.8

    def test_none_when_unachievable(self):
        # At the attack's peak the freshly-landed congestion wave bounds
        # what any defender can hold: perfect per-round detection still
        # leaves ~N_C random floods standing, so high targets are
        # deterministically unachievable.
        attack = SuccessiveAttack()
        ceiling = analyze_successive_with_repair(
            arch(), attack, 1.0, final_scan=False
        ).p_s
        assert ceiling < 0.9
        assert required_detection(arch(), attack, target_p_s=0.9) is None

    def test_post_attack_recovery_mode(self):
        # With the final scan included, perfect detection recovers fully.
        attack = SuccessiveAttack()
        rho = required_detection(
            arch(), attack, target_p_s=0.99, final_scan=True
        )
        assert rho is not None

    def test_monotone_in_target(self):
        attack = SuccessiveAttack()
        rho_low = required_detection(arch(), attack, target_p_s=0.65)
        rho_high = required_detection(arch(), attack, target_p_s=0.82)
        assert rho_low <= rho_high

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            required_detection(arch(), SuccessiveAttack(), target_p_s=1.5)
        with pytest.raises(ConfigurationError):
            required_detection(arch(), SuccessiveAttack(), 0.9, tolerance=0.5)


class TestPlanDefense:
    def test_paper_scale_plan(self):
        plan = plan_defense(attacker_bandwidth=380_000.0, target_p_s=0.8)
        assert isinstance(plan, DefensePlan)
        assert plan.attack.congestion_budget == 2000
        assert plan.attack.break_in_budget == 200
        assert plan.architecture.mapping_policy.label == "one-to-2"
        assert plan.needs_repair
        assert 0.0 < plan.required_detection < 1.0

    def test_overambitious_target_is_called_out(self):
        plan = plan_defense(attacker_bandwidth=380_000.0, target_p_s=0.97)
        assert not plan.achievable
        assert "UNACHIEVABLE" in plan.summary()

    def test_plan_consistency_with_direct_evaluation(self):
        plan = plan_defense(attacker_bandwidth=380_000.0)
        direct = evaluate(plan.architecture, plan.attack).p_s
        assert plan.unrepaired_p_s == pytest.approx(direct)

    def test_weak_attacker_needs_no_repair(self):
        plan = plan_defense(
            attacker_bandwidth=20_000.0,
            campaign=BreakInCampaign(attempts_per_hour=1, duration_hours=10),
            target_p_s=0.9,
        )
        assert plan.required_detection == 0.0
        assert not plan.needs_repair
        assert "met without repair" in plan.summary()

    def test_summary_mentions_key_numbers(self):
        plan = plan_defense(attacker_bandwidth=380_000.0, target_p_s=0.8)
        text = plan.summary()
        assert "N_C=2000" in text
        assert "recommended design" in text
        assert "detection >=" in text

    def test_stronger_attacker_demands_more_detection_same_design(self):
        # Across plans the recommended design adapts, so detection
        # requirements are not comparable; on a FIXED design they are.
        weak_attack = SuccessiveAttack(congestion_budget=2000)
        strong_attack = SuccessiveAttack(congestion_budget=5000)
        rho_weak = required_detection(arch(), weak_attack, target_p_s=0.7)
        rho_strong = required_detection(arch(), strong_attack, target_p_s=0.7)
        assert rho_strong is None or rho_weak is None or rho_strong >= rho_weak

    def test_design_adapts_to_stronger_attacker(self):
        weak = plan_defense(attacker_bandwidth=380_000.0, target_p_s=0.8)
        strong = plan_defense(attacker_bandwidth=1_000_000.0, target_p_s=0.8)
        assert strong.attack.congestion_budget > weak.attack.congestion_budget
        # The planner may switch designs; both plans must self-consistently
        # reach their targets when the required detection is applied.
        for plan in (weak, strong):
            if plan.achievable and plan.required_detection > 0:
                achieved = analyze_successive_with_repair(
                    plan.architecture, plan.attack, plan.required_detection,
                    final_scan=False,
                ).p_s
                assert achieved >= plan.target_p_s - 1e-6

    def test_custom_cost_model_changes_budgets(self):
        beefy = CongestionCostModel(node_capacity=1000.0)
        plan = plan_defense(attacker_bandwidth=380_000.0, cost_model=beefy)
        assert plan.attack.congestion_budget < 2000
