"""Deadline arithmetic: remaining budgets, expiry, clamping."""

from __future__ import annotations

import pytest

from repro.errors import ServiceError
from repro.service.deadline import DEFAULT_GRACE, NO_DEADLINE, Deadline


class FakeClock:
    def __init__(self, now: float = 100.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestDeadline:
    def test_after_counts_down_and_expires(self):
        clock = FakeClock()
        deadline = Deadline.after(2.0, clock=clock)
        assert deadline.remaining() == pytest.approx(2.0)
        assert not deadline.expired
        clock.advance(1.5)
        assert deadline.remaining() == pytest.approx(0.5)
        clock.advance(1.0)
        assert deadline.expired
        assert deadline.remaining() == pytest.approx(-0.5)

    def test_from_timeout_ms(self):
        clock = FakeClock()
        deadline = Deadline.from_timeout_ms(1500.0, clock=clock)
        assert deadline.remaining() == pytest.approx(1.5)

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(ServiceError):
            Deadline.after(0.0)
        with pytest.raises(ServiceError):
            Deadline.from_timeout_ms(-10.0)

    def test_unbounded_never_expires(self):
        assert NO_DEADLINE.remaining() is None
        assert not NO_DEADLINE.expired
        assert NO_DEADLINE.unbounded
        assert Deadline.after(None).remaining() is None
        assert not Deadline.after(1.0).unbounded

    def test_clamp_caps_a_wait_to_the_budget(self):
        clock = FakeClock()
        deadline = Deadline.after(1.0, clock=clock)
        assert deadline.clamp(10.0) == pytest.approx(1.0)
        assert deadline.clamp(0.25) == pytest.approx(0.25)
        clock.advance(2.0)
        assert deadline.clamp(0.25) == 0.0
        assert NO_DEADLINE.clamp(7.0) == pytest.approx(7.0)

    def test_grace_constant_is_positive(self):
        assert DEFAULT_GRACE > 0
