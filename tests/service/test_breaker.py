"""Circuit breaker: trip conditions, recovery path, monotone transitions."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.resilience.breaker import (
    CLOSED,
    HALF_OPEN,
    LEGAL_TRANSITIONS,
    OPEN,
    BreakerConfig,
    CircuitBreaker,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_breaker(clock, **overrides):
    config = dict(
        window=8,
        failure_threshold=0.5,
        min_volume=4,
        reset_timeout=5.0,
        half_open_max_calls=2,
        half_open_successes=2,
    )
    config.update(overrides)
    return CircuitBreaker(BreakerConfig(**config), clock=clock)


class TestTripAndRecovery:
    def test_stays_closed_below_min_volume(self):
        clock = FakeClock()
        breaker = make_breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == CLOSED

    def test_trips_at_threshold_with_volume(self):
        clock = FakeClock()
        breaker = make_breaker(clock)
        for _ in range(2):
            breaker.record_success()
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.open_count == 1
        assert not breaker.allow()

    def test_open_waits_out_reset_timeout(self):
        clock = FakeClock()
        breaker = make_breaker(clock)
        for _ in range(4):
            breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(4.9)
        assert not breaker.allow()
        assert breaker.seconds_until_half_open() == pytest.approx(0.1)
        clock.advance(0.2)
        assert breaker.allow()
        assert breaker.state == HALF_OPEN

    def test_half_open_success_streak_closes(self):
        clock = FakeClock()
        breaker = make_breaker(clock)
        for _ in range(4):
            breaker.record_failure()
        clock.advance(6.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == HALF_OPEN
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        # Window cleared on close: old failures no longer count.
        assert breaker.failure_rate() == 0.0

    def test_half_open_failure_reopens_and_restarts_timer(self):
        clock = FakeClock()
        breaker = make_breaker(clock)
        for _ in range(4):
            breaker.record_failure()
        clock.advance(6.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.open_count == 2
        assert breaker.seconds_until_half_open() == pytest.approx(5.0)

    def test_half_open_meters_probe_slots(self):
        clock = FakeClock()
        breaker = make_breaker(clock, half_open_max_calls=1)
        for _ in range(4):
            breaker.record_failure()
        clock.advance(6.0)
        assert breaker.allow()
        assert not breaker.allow()  # slot taken

    def test_discard_releases_a_probe_slot(self):
        """A shed request must not wedge the breaker half-open forever."""
        clock = FakeClock()
        breaker = make_breaker(clock, half_open_max_calls=1)
        for _ in range(4):
            breaker.record_failure()
        clock.advance(6.0)
        assert breaker.allow()
        breaker.record_discard()  # the allowed call was shed, not executed
        assert breaker.allow()    # slot is free again
        assert breaker.state == HALF_OPEN

    def test_late_failure_while_open_is_ignored(self):
        clock = FakeClock()
        breaker = make_breaker(clock)
        for _ in range(4):
            breaker.record_failure()
        transitions_before = len(breaker.transitions)
        breaker.record_failure()  # in-flight call admitted pre-trip
        assert breaker.state == OPEN
        assert len(breaker.transitions) == transitions_before

    def test_illegal_transition_rejected(self):
        clock = FakeClock()
        breaker = make_breaker(clock)
        with pytest.raises(ConfigurationError):
            breaker._transition(HALF_OPEN)  # closed -> half_open is illegal

    def test_snapshot_shape(self):
        clock = FakeClock()
        breaker = make_breaker(clock)
        snap = breaker.snapshot()
        assert snap["state"] == CLOSED
        assert set(snap) == {
            "state",
            "failure_rate",
            "window_size",
            "open_count",
            "seconds_until_half_open",
            "transitions",
        }


# Scripted-event property: whatever the interleaving of outcomes, probe
# grants and clock advances, every recorded transition is a legal edge —
# the breaker can only move closed->open->half_open->{closed,open}.
_EVENTS = st.lists(
    st.sampled_from(["success", "failure", "allow", "discard", "tick"]),
    min_size=1,
    max_size=200,
)


class TestTransitionMonotonicity:
    @given(events=_EVENTS)
    def test_all_transitions_are_legal_edges(self, events):
        clock = FakeClock()
        breaker = make_breaker(clock, reset_timeout=2.0)
        for event in events:
            if event == "success":
                breaker.record_success()
            elif event == "failure":
                breaker.record_failure()
            elif event == "allow":
                breaker.allow()
            elif event == "discard":
                breaker.record_discard()
            else:
                clock.advance(1.0)
        for _time, from_state, to_state in breaker.transitions:
            assert (from_state, to_state) in LEGAL_TRANSITIONS

    @given(events=_EVENTS)
    def test_recovery_always_passes_through_half_open(self, events):
        """closed is only ever re-entered from half_open, never from open."""
        clock = FakeClock()
        breaker = make_breaker(clock, reset_timeout=2.0)
        for event in events:
            if event == "success":
                breaker.record_success()
            elif event == "failure":
                breaker.record_failure()
            elif event == "allow":
                breaker.allow()
            elif event == "discard":
                breaker.record_discard()
            else:
                clock.advance(1.0)
        for _time, from_state, to_state in breaker.transitions:
            if to_state == CLOSED:
                assert from_state == HALF_OPEN

    @given(events=_EVENTS)
    def test_transition_times_are_monotone(self, events):
        clock = FakeClock()
        breaker = make_breaker(clock, reset_timeout=2.0)
        for event in events:
            if event == "failure":
                breaker.record_failure()
            elif event == "allow":
                breaker.allow()
            elif event == "success":
                breaker.record_success()
            else:
                clock.advance(0.5)
        times = [entry[0] for entry in breaker.transitions]
        assert times == sorted(times)
