"""End-to-end HTTP service tests over a real ephemeral TCP port."""

from __future__ import annotations

import asyncio

from repro.resilience.breaker import BreakerConfig
from repro.service import (
    HttpServer,
    ServiceConfig,
    SOSEvaluationService,
    http_request,
)

ARCH = {
    "layers": 3,
    "mapping": "one-to-two",
    "total_overlay_nodes": 300,
    "sos_nodes": 30,
}
ATTACK = {"kind": "one-burst", "break_in_budget": 20, "congestion_budget": 50}
EVAL_BODY = {"architecture": ARCH, "attack": ATTACK}


def _config(tmp_path, **overrides):
    defaults = dict(workers=1, spool_dir=str(tmp_path), seed=3)
    defaults.update(overrides)
    return ServiceConfig(**defaults)


async def _request(server, method, path, body=None, headers=None):
    return await http_request(
        "127.0.0.1", server.port, method, path, body=body, headers=headers,
        timeout=60.0,
    )


class TestBasicEndpoints:
    def test_health_eval_cache_and_errors_on_one_server(self, tmp_path):
        async def scenario():
            server = HttpServer(SOSEvaluationService(_config(tmp_path)))
            async with server:
                status, _h, body = await _request(server, "GET", "/healthz")
                assert (status, body) == (200, {"status": "ok"})

                status, _h, body = await _request(server, "GET", "/readyz")
                assert status == 200
                assert body["ready"] is True

                status, _h, first = await _request(
                    server, "POST", "/eval", body=EVAL_BODY
                )
                assert status == 200
                assert 0.0 <= first["p_s"] <= 1.0
                assert "cached" not in first

                status, _h, second = await _request(
                    server, "POST", "/eval", body=EVAL_BODY
                )
                assert status == 200
                assert second["cached"] is True
                assert second["p_s"] == first["p_s"]

                status, _h, body = await _request(
                    server, "POST", "/eval",
                    body={"architecture": {"bogus": 1}, "attack": ATTACK},
                )
                assert status == 400
                assert "unknown architecture" in body["error"]

                status, _h, body = await _request(server, "GET", "/nope")
                assert status == 404

                status, _h, body = await _request(server, "GET", "/metrics")
                assert status == 200
                assert body["pool"]["live_workers"] == 1
                assert body["queue"]["capacity"] == 64
                assert body["store"]["fresh_hits"] == 1

        asyncio.run(scenario())

    def test_sweep_endpoint(self, tmp_path):
        async def scenario():
            server = HttpServer(SOSEvaluationService(_config(tmp_path)))
            async with server:
                status, _h, body = await _request(
                    server, "POST", "/sweep",
                    body={
                        "layers": [2, 3],
                        "mappings": ["one-to-two"],
                        "total_overlay_nodes": 200,
                        "sos_nodes": 20,
                        "scenarios": {"burst": ATTACK},
                        "top": 3,
                    },
                )
                assert status == 200
                assert body["designs_evaluated"] >= 2
                assert body["scores"]

        asyncio.run(scenario())


class TestBackpressure:
    def test_flood_gets_429_with_retry_after_and_nothing_hangs(self, tmp_path):
        """Tiny queue + slow worker + burst: every request resolves, the
        overflow as 429 with a Retry-After header."""

        async def scenario():
            config = _config(tmp_path, queue_capacity=2)
            service = SOSEvaluationService(config)
            server = HttpServer(service)
            async with server:
                service.set_chaos(latency_ms=300.0)
                bodies = [
                    {
                        "architecture": {**ARCH, "sos_nodes": 10 + i},
                        "attack": ATTACK,
                        "deadline_ms": 30_000,
                    }
                    for i in range(8)
                ]
                results = await asyncio.gather(
                    *(
                        _request(server, "POST", "/eval", body=body)
                        for body in bodies
                    )
                )
                statuses = sorted(status for status, _h, _b in results)
                assert set(statuses) <= {200, 429}
                assert statuses.count(429) >= 1
                assert statuses.count(200) >= 1
                for status, headers, body in results:
                    if status == 429:
                        assert "retry-after" in headers
                        assert float(headers["retry-after"]) >= 1.0
                        assert body["error"] == "overloaded"

        asyncio.run(scenario())


class TestDeadlines:
    def test_deadline_overrun_is_504_not_a_hang(self, tmp_path):
        async def scenario():
            config = _config(tmp_path, deadline_grace=0.3)
            service = SOSEvaluationService(config)
            server = HttpServer(service)
            async with server:
                service.set_chaos(latency_ms=30_000.0)
                status, _h, body = await asyncio.wait_for(
                    _request(
                        server, "POST", "/eval",
                        body={**EVAL_BODY, "deadline_ms": 300},
                    ),
                    timeout=20.0,
                )
                assert status == 504
                assert "error" in body
                # The pool must have recovered a worker for later traffic.
                service.set_chaos()
                for _ in range(50):
                    ready, _h, _b = await _request(server, "GET", "/readyz")
                    if ready == 200:
                        break
                    await asyncio.sleep(0.2)
                assert ready == 200

        asyncio.run(scenario())

    def test_deadline_header_overrides_body(self, tmp_path):
        async def scenario():
            service = SOSEvaluationService(_config(tmp_path))
            server = HttpServer(service)
            async with server:
                service.set_chaos(latency_ms=2_000.0)
                status, _h, _b = await _request(
                    server, "POST", "/eval",
                    body={**EVAL_BODY, "deadline_ms": 60_000},
                    headers={"x-deadline-ms": "200"},
                )
                assert status == 504

        asyncio.run(scenario())


class TestDegradation:
    def test_breaker_opens_and_serves_stale_answers(self, tmp_path):
        async def scenario():
            config = _config(
                tmp_path,
                breaker=BreakerConfig(
                    window=8, failure_threshold=0.5, min_volume=2,
                    reset_timeout=60.0,
                ),
            )
            service = SOSEvaluationService(config)
            server = HttpServer(service)
            async with server:
                # Warm the cache with a healthy answer.
                status, _h, healthy = await _request(
                    server, "POST", "/eval", body=EVAL_BODY
                )
                assert status == 200
                # Make the entry stale so it stops short-circuiting the
                # breaker path, then break the backend.
                service.store.ttl = 0.0
                service.set_chaos(fail="backend down")
                for _ in range(4):
                    status, _h, body = await _request(
                        server, "POST", "/eval", body=EVAL_BODY
                    )
                    # Errors serve the stale cached answer, degraded.
                    assert status == 200
                    assert body.get("degraded") is True
                    assert body["p_s"] == healthy["p_s"]
                assert service.breaker.state == "open"
                # Open breaker + no cache entry -> honest 503.
                status, headers, body = await _request(
                    server, "POST", "/eval",
                    body={
                        "architecture": {**ARCH, "sos_nodes": 99},
                        "attack": ATTACK,
                    },
                )
                assert status == 503
                assert "retry-after" in headers
                # readyz reports not-ready while open (probe still fails).
                status, _h, ready = await _request(server, "GET", "/readyz")
                assert status == 503
                assert ready["ready"] is False

        asyncio.run(scenario())


class TestCampaignsOverHttp:
    def test_submit_poll_complete_and_idempotent_resubmit(self, tmp_path):
        async def scenario():
            server = HttpServer(SOSEvaluationService(_config(tmp_path)))
            async with server:
                campaign = {
                    "architecture": ARCH,
                    "attack": ATTACK,
                    "trials": 8,
                    "clients_per_trial": 4,
                    "seed": 5,
                }
                status, _h, submitted = await _request(
                    server, "POST", "/campaign", body=campaign
                )
                assert status == 202
                campaign_id = submitted["campaign_id"]

                # Same payload resubmitted: same campaign, no duplicate.
                status, _h, again = await _request(
                    server, "POST", "/campaign", body=campaign
                )
                assert status == 200
                assert again["campaign_id"] == campaign_id

                final = None
                for _ in range(300):
                    status, _h, view = await _request(
                        server, "GET", f"/campaign/{campaign_id}"
                    )
                    if view["status"] in ("completed", "failed", "timeout"):
                        final = view
                        break
                    await asyncio.sleep(0.1)
                assert final is not None
                assert final["status"] == "completed"
                assert final["result"]["trials"] == 8

                status, _h, _b = await _request(
                    server, "GET", "/campaign/not-a-campaign"
                )
                assert status == 404

        asyncio.run(scenario())

    def test_campaign_without_seed_is_400(self, tmp_path):
        async def scenario():
            server = HttpServer(SOSEvaluationService(_config(tmp_path)))
            async with server:
                status, _h, body = await _request(
                    server, "POST", "/campaign",
                    body={"architecture": ARCH, "attack": ATTACK,
                          "trials": 4},
                )
                assert status == 400
                assert "seed" in body["error"]

        asyncio.run(scenario())


class TestHttpLayer:
    def test_malformed_json_is_400(self, tmp_path):
        async def scenario():
            server = HttpServer(SOSEvaluationService(_config(tmp_path)))
            async with server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                raw = b"not json"
                writer.write(
                    b"POST /eval HTTP/1.1\r\n"
                    b"Host: x\r\nConnection: close\r\n"
                    + f"Content-Length: {len(raw)}\r\n\r\n".encode()
                    + raw
                )
                await writer.drain()
                status_line = await reader.readline()
                assert b"400" in status_line
                writer.close()
                await writer.wait_closed()

        asyncio.run(scenario())

    def test_keep_alive_serves_sequential_requests(self, tmp_path):
        async def scenario():
            server = HttpServer(SOSEvaluationService(_config(tmp_path)))
            async with server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                request = (
                    b"GET /healthz HTTP/1.1\r\nHost: x\r\n"
                    b"Content-Length: 0\r\n\r\n"
                )
                for _ in range(3):
                    writer.write(request)
                    await writer.drain()
                    status_line = await reader.readline()
                    assert b"200" in status_line
                    length = 0
                    while True:
                        line = await reader.readline()
                        if line in (b"\r\n", b"\n"):
                            break
                        if line.lower().startswith(b"content-length"):
                            length = int(line.split(b":")[1])
                    await reader.readexactly(length)
                writer.close()
                await writer.wait_closed()

        asyncio.run(scenario())
