"""Load shapes, arrival schedules, and SLO report arithmetic."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.service.loadgen import (
    LoadPhase,
    RequestRecord,
    arrival_schedule,
    hold,
    ramp,
    slo_report,
    spike,
)
from repro.service.metrics import percentile


class TestPhases:
    def test_shape_helpers(self):
        assert ramp(2.0, to_rps=10.0).start_rps == 0.0
        assert hold(3.0, rps=5.0).start_rps == hold(3.0, rps=5.0).end_rps
        assert spike(1.0, rps=50.0).name == "spike"

    def test_rate_interpolates_linearly(self):
        phase = LoadPhase("ramp", 10.0, 0.0, 10.0)
        assert phase.rate_at(0.0) == pytest.approx(0.0)
        assert phase.rate_at(5.0) == pytest.approx(5.0)
        assert phase.rate_at(10.0) == pytest.approx(10.0)
        assert phase.rate_at(25.0) == pytest.approx(10.0)  # clamped

    def test_invalid_phase_rejected(self):
        with pytest.raises(ConfigurationError):
            LoadPhase("bad", 0.0, 1.0, 1.0)
        with pytest.raises(ConfigurationError):
            LoadPhase("bad", 1.0, -1.0, 1.0)


class TestArrivalSchedule:
    def test_hold_emits_rate_times_duration(self):
        offsets = arrival_schedule([hold(4.0, rps=10.0)])
        assert len(offsets) == pytest.approx(40, abs=1)
        assert offsets == sorted(offsets)
        assert all(0.0 <= value <= 4.0 for value in offsets)

    def test_ramp_back_loads_the_interval(self):
        offsets = arrival_schedule([ramp(4.0, to_rps=10.0)])
        # Triangle: total = 0.5 * 10 * 4 = 20 requests, denser at the end.
        assert len(offsets) == pytest.approx(20, abs=1)
        first_half = sum(1 for value in offsets if value < 2.0)
        second_half = len(offsets) - first_half
        assert second_half > first_half

    def test_deterministic(self):
        phases = [ramp(1.0, to_rps=8.0), hold(2.0, rps=8.0), spike(0.5, 30.0)]
        assert arrival_schedule(phases) == arrival_schedule(phases)

    def test_phases_concatenate(self):
        offsets = arrival_schedule([hold(1.0, rps=5.0), hold(1.0, rps=5.0)])
        assert len(offsets) == pytest.approx(10, abs=1)
        assert max(offsets) > 1.0


class TestSLOReport:
    def _records(self):
        return [
            RequestRecord(offset=0.0, status=200, latency=0.010),
            RequestRecord(offset=0.1, status=200, latency=0.020),
            RequestRecord(offset=0.2, status=429, latency=0.001),
            RequestRecord(offset=0.3, status=504, latency=0.500),
            RequestRecord(offset=0.4, status=0, latency=1.0, error="timeout"),
        ]

    def test_rates_and_histogram(self):
        report = slo_report(self._records(), [hold(5.0, rps=1.0)])
        assert report["requests"]["total"] == 5
        assert report["requests"]["succeeded"] == 2
        assert report["requests"]["by_status"]["429"] == 1
        assert report["requests"]["by_status"]["transport_error"] == 1
        slo = report["slo"]
        assert slo["shed_rate"] == pytest.approx(1 / 5)
        # 504 + transport error are errors; 429 is not.
        assert slo["error_rate"] == pytest.approx(2 / 5)
        assert slo["throughput_rps"] == pytest.approx(2 / 5.0)
        assert slo["offered_rps"] == pytest.approx(1.0)

    def test_latency_quantiles_in_ms(self):
        report = slo_report(self._records(), [hold(5.0, rps=1.0)])
        slo = report["slo"]
        assert slo["p50_ms"] == pytest.approx(20.0)
        assert slo["max_ms"] == pytest.approx(1000.0)
        assert slo["p99_ms"] == pytest.approx(1000.0)

    def test_empty_run_is_all_zeros(self):
        report = slo_report([], [hold(1.0, rps=0.0)])
        assert report["slo"]["throughput_rps"] == 0.0
        assert report["slo"]["error_rate"] == 0.0
        assert report["slo"]["p50_ms"] == 0.0

    def test_extra_fields_merge(self):
        report = slo_report([], [hold(1.0, rps=0.0)], extra={"benchmark": "x"})
        assert report["benchmark"] == "x"
        assert report["source"] == "slo-loadgen"


class TestPercentile:
    def test_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]
        assert percentile(values, 50.0) == 5.0
        assert percentile(values, 95.0) == 10.0
        assert percentile(values, 10.0) == 1.0
        assert percentile([], 50.0) == 0.0
        assert percentile([7.0], 99.0) == 7.0
