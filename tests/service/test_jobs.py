"""Job payload validation, canonical keys, and worker-side execution."""

from __future__ import annotations

import pytest

from repro.core.attack_models import OneBurstAttack, SuccessiveAttack
from repro.core.model import evaluate
from repro.errors import ReproError, ServiceError
from repro.service.jobs import (
    build_architecture,
    build_attack,
    canonical_key,
    execute_job,
    validate_payload,
)

ARCH = {
    "layers": 3,
    "mapping": "one-to-two",
    "total_overlay_nodes": 300,
    "sos_nodes": 30,
}
ATTACK = {"kind": "one-burst", "break_in_budget": 20, "congestion_budget": 50}


class TestBuilders:
    def test_architecture_roundtrip(self):
        arch = build_architecture(ARCH)
        assert arch.layers == 3
        assert arch.mapping == "one-to-two"

    def test_unknown_architecture_field_rejected(self):
        with pytest.raises(ServiceError, match="unknown architecture"):
            build_architecture({**ARCH, "bogus": 1})

    def test_attack_kinds(self):
        assert isinstance(build_attack(ATTACK), OneBurstAttack)
        assert isinstance(build_attack({**ATTACK, "kind": "one_burst"}),
                          OneBurstAttack)
        successive = build_attack(
            {**ATTACK, "kind": "successive", "rounds": 4}
        )
        assert isinstance(successive, SuccessiveAttack)

    def test_unknown_attack_kind_and_fields_rejected(self):
        with pytest.raises(ServiceError, match="unknown attack kind"):
            build_attack({"kind": "zero-day"})
        with pytest.raises(ServiceError, match="unknown one-burst fields"):
            build_attack({**ATTACK, "rounds": 3})


class TestValidation:
    def test_valid_eval_passes(self):
        validate_payload("eval", {"architecture": ARCH, "attack": ATTACK})

    def test_campaign_requires_explicit_seed(self):
        with pytest.raises(ServiceError, match="seed"):
            validate_payload(
                "campaign",
                {"architecture": ARCH, "attack": ATTACK, "trials": 4},
            )

    def test_sweep_requires_scenarios(self):
        with pytest.raises(ServiceError, match="scenarios"):
            validate_payload("sweep", {"layers": [1, 2]})

    def test_unknown_kind_rejected(self):
        with pytest.raises(ServiceError, match="unknown job kind"):
            validate_payload("mine-bitcoin", {})

    def test_validation_errors_are_repro_errors(self):
        """The 400 path catches ReproError; every rejection must be one."""
        with pytest.raises(ReproError):
            validate_payload("eval", {"architecture": {"layers": -3},
                                      "attack": ATTACK})


class TestCanonicalKey:
    def test_execution_knobs_do_not_change_the_key(self):
        base = {"architecture": ARCH, "attack": ATTACK}
        with_knobs = {
            **base,
            "deadline_ms": 250.0,
            "priority": "interactive",
            "checkpoint_every": 2,
        }
        assert canonical_key("eval", base) == canonical_key("eval", with_knobs)

    def test_kind_and_payload_change_the_key(self):
        base = {"architecture": ARCH, "attack": ATTACK}
        other = {"architecture": {**ARCH, "sos_nodes": 40}, "attack": ATTACK}
        assert canonical_key("eval", base) != canonical_key("eval", other)
        assert canonical_key("eval", base) != canonical_key("sweep", base)


class TestExecution:
    def test_eval_matches_direct_evaluation(self):
        result = execute_job(
            "eval", {"architecture": ARCH, "attack": ATTACK}
        )
        direct = evaluate(build_architecture(ARCH), build_attack(ATTACK))
        assert result["p_s"] == direct.p_s
        assert result["broken_in_total"] == direct.broken_in_total

    def test_ping(self):
        assert execute_job("ping", {}) == {"pong": True}

    def test_sweep_returns_ranked_scores(self):
        result = execute_job(
            "sweep",
            {
                "layers": [2, 3],
                "mappings": ["one-to-two"],
                "total_overlay_nodes": 200,
                "sos_nodes": 20,
                "scenarios": {"burst": ATTACK},
                "top": 2,
            },
        )
        assert result["designs_evaluated"] >= 2
        assert len(result["scores"]) == 2
        aggregates = [score["aggregate"] for score in result["scores"]]
        assert aggregates == sorted(aggregates, reverse=True)

    def test_chaos_fail_hook_raises(self):
        with pytest.raises(ServiceError, match="chaos-injected"):
            execute_job("ping", {"chaos_fail": "drill"})

    def test_campaign_without_abort_matches_reference(self, tmp_path):
        payload = {
            "architecture": ARCH,
            "attack": ATTACK,
            "trials": 6,
            "clients_per_trial": 4,
            "seed": 5,
        }
        first = execute_job(
            "campaign", payload,
            checkpoint_path=str(tmp_path / "a.json"),
        )
        second = execute_job(
            "campaign", payload,
            checkpoint_path=str(tmp_path / "b.json"),
        )
        assert first == second
        assert first["trials"] == 6
