"""Scenario-backed campaign jobs: validation, execution, cancellation."""

from __future__ import annotations

import pytest

from repro.errors import ServiceError
from repro.scenarios.runner import run_scenario
from repro.service.jobs import canonical_key, execute_job, validate_payload

PAYLOAD = {
    "scenario": "stealth-lowrate",
    "mode": "none",
    "phases": 1,
}


class TestValidation:
    def test_valid_scenario_campaign_passes(self):
        validate_payload("campaign", dict(PAYLOAD))
        validate_payload(
            "campaign",
            {
                "scenario": "flash-crowd",
                "mode": "detected",
                "phases": 2,
                "engine": "event",
                "tier": "numpy",
                "seed": 7,
            },
        )

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ServiceError, match="scenario"):
            validate_payload("campaign", {**PAYLOAD, "scenario": "nope"})

    @pytest.mark.parametrize(
        "overrides, match",
        [
            ({"mode": "bogus"}, "mode"),
            ({"phases": 0}, "phases"),
            ({"phases": 99}, "phases"),
            ({"phases": True}, "phases"),
            ({"engine": "warp"}, "engine"),
            ({"tier": "gpu"}, "tier"),
            ({"seed": -1}, "seed"),
            ({"seed": True}, "seed"),
            ({"unknown_knob": 1}, "unknown"),
        ],
    )
    def test_bad_knobs_rejected(self, overrides, match):
        with pytest.raises(ServiceError, match=match):
            validate_payload("campaign", {**PAYLOAD, **overrides})

    def test_scenario_branch_skips_classic_requirements(self):
        # No architecture/attack/trials/seed required when a scenario
        # names the whole campaign.
        validate_payload("campaign", dict(PAYLOAD))


class TestCanonicalKey:
    def test_execution_knobs_do_not_change_the_key(self):
        with_knobs = {**PAYLOAD, "deadline_ms": 250.0, "priority": "batch"}
        assert canonical_key("campaign", dict(PAYLOAD)) == canonical_key(
            "campaign", with_knobs
        )

    def test_scenario_and_knobs_change_the_key(self):
        assert canonical_key("campaign", dict(PAYLOAD)) != canonical_key(
            "campaign", {**PAYLOAD, "scenario": "flash-crowd"}
        )
        assert canonical_key("campaign", dict(PAYLOAD)) != canonical_key(
            "campaign", {**PAYLOAD, "phases": 2}
        )


class TestExecution:
    def test_matches_direct_run_scenario(self):
        result = execute_job("campaign", dict(PAYLOAD))
        direct = run_scenario("stealth-lowrate", mode="none", phases=1)
        assert result == direct.to_dict()
        assert result["scenario"] == "stealth-lowrate"

    def test_defaults_to_detected_mode_three_phases(self):
        result = execute_job("campaign", {"scenario": "stealth-lowrate"})
        assert result["mode"] == "detected"
        assert result["phases"] == 3

    def test_abort_check_cancels_between_phases(self):
        calls = []

        def abort() -> bool:
            calls.append(True)
            return len(calls) >= 2

        from repro.errors import CampaignInterrupted

        with pytest.raises(CampaignInterrupted, match="cancelled"):
            execute_job(
                "campaign",
                {**PAYLOAD, "phases": 3},
                abort_check=abort,
            )
        assert len(calls) == 2
