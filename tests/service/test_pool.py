"""Worker pool: crash respawn, checkpoint-resume bit-identity, deadlines.

These tests spawn real worker processes (the ``spawn`` context the
service uses in production), so they are the slowest in the service
suite — each scenario boots its own pool.
"""

from __future__ import annotations

import asyncio
import os
import signal
import time

import pytest

from repro.service.admission import AdmissionQueue
from repro.service.deadline import NO_DEADLINE, Deadline
from repro.service.jobs import execute_job
from repro.service.pool import JobResult, PoolConfig, WorkerPool

ARCH = {
    "layers": 2,
    "mapping": "one-to-two",
    "total_overlay_nodes": 200,
    "sos_nodes": 20,
}
ATTACK = {"kind": "one-burst", "break_in_budget": 15, "congestion_budget": 40}

#: Sized so the campaign runs for >1s in a worker: the SIGKILL in the
#: crash-recovery test must land *mid*-campaign, not after it finished.
CAMPAIGN = {
    "architecture": ARCH,
    "attack": ATTACK,
    "trials": 400,
    "clients_per_trial": 8,
    "seed": 13,
    "checkpoint_every": 8,
}


async def _with_pool(workers, scenario, **config_overrides):
    queue = AdmissionQueue(capacity=16, workers=workers)
    pool = WorkerPool(
        PoolConfig(workers=workers, **config_overrides)
    )
    await pool.start(queue)
    try:
        return await scenario(queue, pool)
    finally:
        await pool.stop()


class TestHappyPath:
    def test_ping_round_trip(self, tmp_path):
        async def scenario(queue, pool):
            request = queue.try_submit(
                {"kind": "ping"}, "probe", Deadline.after(10.0)
            )
            result = await asyncio.wait_for(request.future, timeout=30.0)
            assert isinstance(result, JobResult)
            assert result.ok
            assert result.result == {"pong": True}
            assert result.restarts == 0

        asyncio.run(
            _with_pool(1, scenario, spool_dir=str(tmp_path))
        )

    def test_run_direct_bypasses_the_queue(self, tmp_path):
        async def scenario(queue, pool):
            result = await pool.run_direct("ping", {}, Deadline.after(5.0))
            assert result.ok

        asyncio.run(_with_pool(1, scenario, spool_dir=str(tmp_path)))


class TestCrashRecovery:
    def test_killed_worker_is_respawned_and_campaign_resumes_bit_identical(
        self, tmp_path
    ):
        """SIGKILL the only worker mid-campaign: the supervisor respawns
        it, the job re-dispatches, the campaign resumes from its spool
        checkpoint, and the aggregates equal an undisturbed run."""
        baseline = execute_job(
            "campaign", CAMPAIGN,
            checkpoint_path=str(tmp_path / "baseline.json"),
        )

        async def scenario(queue, pool):
            payload = {
                **CAMPAIGN,
                "kind": "campaign",
                "checkpoint_path": str(tmp_path / "chaos.json"),
            }
            request = queue.try_submit(payload, "batch", NO_DEADLINE)
            # Let the campaign get some trials into the checkpoint, then
            # kill the worker under it.
            await asyncio.sleep(0.5)
            pids = pool.worker_pids
            assert pids, "worker should be alive and running the campaign"
            for pid in pids:
                os.kill(pid, signal.SIGKILL)
            result = await asyncio.wait_for(request.future, timeout=120.0)
            assert result.ok, result.error
            assert result.restarts >= 1
            assert result.result == baseline

        asyncio.run(_with_pool(1, scenario, spool_dir=str(tmp_path)))

    def test_idle_dead_worker_is_respawned_by_supervisor(self, tmp_path):
        async def scenario(queue, pool):
            pids = pool.worker_pids
            assert len(pids) == 1
            os.kill(pids[0], signal.SIGKILL)
            for _ in range(100):
                if pool.live_workers == 1 and pool.worker_pids != pids:
                    break
                await asyncio.sleep(0.1)
            assert pool.live_workers == 1
            assert pool.worker_pids != pids
            # And the respawned worker serves jobs.
            request = queue.try_submit(
                {"kind": "ping"}, "probe", Deadline.after(10.0)
            )
            result = await asyncio.wait_for(request.future, timeout=30.0)
            assert result.ok

        asyncio.run(
            _with_pool(1, scenario, spool_dir=str(tmp_path),
                       supervisor_interval=0.1)
        )


class TestDeadlines:
    def test_wedged_worker_is_killed_at_deadline_plus_grace(self, tmp_path):
        """A job sleeping through cooperative cancellation is terminated
        by the parent and reported as a timeout — requests cannot hang."""

        async def scenario(queue, pool):
            started = time.monotonic()
            request = queue.try_submit(
                {"kind": "ping", "chaos_sleep_ms": 30_000},
                "probe",
                Deadline.after(0.4),
            )
            result = await asyncio.wait_for(request.future, timeout=30.0)
            elapsed = time.monotonic() - started
            assert result.status == "timeout"
            # deadline (0.4) + grace (0.3) + scheduling slack
            assert elapsed < 5.0

        asyncio.run(
            _with_pool(1, scenario, spool_dir=str(tmp_path),
                       deadline_grace=0.3)
        )

    def test_cooperative_cancel_between_trials(self, tmp_path):
        """A campaign overrunning its deadline aborts between trials via
        abort_check (no kill needed) and reports a timeout."""

        async def scenario(queue, pool):
            payload = {
                **CAMPAIGN,
                "trials": 2000,
                "kind": "campaign",
                "checkpoint_path": str(tmp_path / "doomed.json"),
            }
            request = queue.try_submit(payload, "batch", Deadline.after(1.0))
            result = await asyncio.wait_for(request.future, timeout=60.0)
            assert result.status == "timeout"

        asyncio.run(_with_pool(1, scenario, spool_dir=str(tmp_path)))


class TestErrorContainment:
    def test_job_error_does_not_kill_the_worker(self, tmp_path):
        async def scenario(queue, pool):
            bad = queue.try_submit(
                {"kind": "ping", "chaos_fail": "drill"},
                "probe",
                Deadline.after(10.0),
            )
            result = await asyncio.wait_for(bad.future, timeout=30.0)
            assert result.status == "error"
            assert "chaos-injected" in (result.error or "")
            assert pool.live_workers == 1
            good = queue.try_submit(
                {"kind": "ping"}, "probe", Deadline.after(10.0)
            )
            follow_up = await asyncio.wait_for(good.future, timeout=30.0)
            assert follow_up.ok

        asyncio.run(_with_pool(1, scenario, spool_dir=str(tmp_path)))
