"""Overload properties of the admission queue.

The three contracts the ISSUE pins as property tests:

* a full queue **never blocks the event loop** — submission is a
  synchronous admit-or-shed decision, measured here with a heartbeat
  task whose gaps must stay tiny while thousands of requests hammer a
  full queue;
* a shed request **always receives an answer** (``Shed`` → 429) —
  its future is already resolved when ``try_submit`` returns, so no
  client can hang on backpressure;
* priority classes preempt: interactive work evicts queued batch work
  instead of being shed.
"""

from __future__ import annotations

import asyncio
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ServiceError
from repro.service.admission import (
    PRIORITIES,
    AdmissionQueue,
    QueueTimeout,
    Shed,
)
from repro.service.deadline import NO_DEADLINE, Deadline


def run(coro):
    return asyncio.run(coro)


class TestShedNeverHangs:
    def test_shed_future_is_resolved_before_try_submit_returns(self):
        async def scenario():
            queue = AdmissionQueue(capacity=1)
            queue.try_submit({"n": 0}, "batch", NO_DEADLINE)
            shed = queue.try_submit({"n": 1}, "batch", NO_DEADLINE)
            assert shed.future.done()
            outcome = shed.future.result()
            assert isinstance(outcome, Shed)
            assert outcome.reason == "queue_full"
            assert outcome.retry_after >= 1.0

        run(scenario())

    def test_expired_deadline_is_answered_instantly(self):
        async def scenario():
            queue = AdmissionQueue(capacity=4)
            clock_skewed = Deadline.after(0.001)
            await asyncio.sleep(0.01)
            request = queue.try_submit({}, "interactive", clock_skewed)
            assert request.future.done()
            assert isinstance(request.future.result(), QueueTimeout)
            assert queue.depth == 0

        run(scenario())

    @given(
        capacity=st.integers(min_value=1, max_value=8),
        submissions=st.lists(
            st.sampled_from(PRIORITIES), min_size=1, max_size=64
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_every_submission_gets_admitted_or_answered(
        self, capacity, submissions
    ):
        """Invariant: after any submission burst, every future is either
        queued (pending, will reach a worker) or already resolved."""

        async def scenario():
            queue = AdmissionQueue(capacity=capacity)
            requests = [
                queue.try_submit({"i": i}, priority, NO_DEADLINE)
                for i, priority in enumerate(submissions)
            ]
            unresolved = [r for r in requests if not r.future.done()]
            assert len(unresolved) == queue.depth
            assert queue.depth <= capacity
            for request in requests:
                if request.future.done():
                    assert isinstance(request.future.result(), Shed)

        run(scenario())


class TestEventLoopNeverBlocks:
    def test_flooding_a_full_queue_keeps_heartbeat_gaps_small(self):
        """Submit 5000 requests into a full queue while a heartbeat task
        samples loop latency; the largest gap must stay far below any
        human-visible stall."""

        async def scenario():
            queue = AdmissionQueue(capacity=4)
            for i in range(4):
                queue.try_submit({"fill": i}, "batch", NO_DEADLINE)

            gaps = []
            stop = asyncio.Event()

            async def heartbeat():
                last = time.monotonic()
                while not stop.is_set():
                    await asyncio.sleep(0.001)
                    now = time.monotonic()
                    gaps.append(now - last)
                    last = now

            beat = asyncio.ensure_future(heartbeat())
            await asyncio.sleep(0.01)  # let the heartbeat settle
            for i in range(5000):
                request = queue.try_submit({"n": i}, "batch", NO_DEADLINE)
                assert request.future.done()
                if i % 500 == 0:
                    await asyncio.sleep(0)  # yield like the HTTP layer does
            stop.set()
            await beat
            assert max(gaps) < 0.25
            assert queue.shed_total == 5000

        run(scenario())


class TestPriorityEviction:
    def test_interactive_evicts_newest_batch(self):
        async def scenario():
            queue = AdmissionQueue(capacity=2)
            old_batch = queue.try_submit({"n": "old"}, "batch", NO_DEADLINE)
            new_batch = queue.try_submit({"n": "new"}, "batch", NO_DEADLINE)
            interactive = queue.try_submit({}, "interactive", NO_DEADLINE)
            assert not interactive.future.done()      # admitted
            assert not old_batch.future.done()        # kept its place
            assert new_batch.future.done()            # evicted
            outcome = new_batch.future.result()
            assert isinstance(outcome, Shed)
            assert outcome.reason == "evicted_by_higher_priority"
            assert queue.evicted_total == 1

        run(scenario())

    def test_batch_cannot_evict_interactive(self):
        async def scenario():
            queue = AdmissionQueue(capacity=1)
            queue.try_submit({}, "interactive", NO_DEADLINE)
            batch = queue.try_submit({}, "batch", NO_DEADLINE)
            assert batch.future.done()
            assert batch.future.result().reason == "queue_full"

        run(scenario())

    def test_probe_outranks_everything(self):
        async def scenario():
            queue = AdmissionQueue(capacity=1)
            interactive = queue.try_submit({}, "interactive", NO_DEADLINE)
            probe = queue.try_submit({}, "probe", NO_DEADLINE)
            assert not probe.future.done()
            assert interactive.future.done()

        run(scenario())

    def test_unknown_priority_rejected(self):
        async def scenario():
            queue = AdmissionQueue(capacity=1)
            with pytest.raises(ServiceError):
                queue.try_submit({}, "vip", NO_DEADLINE)

        run(scenario())


class TestConsumerSide:
    def test_get_serves_highest_priority_first(self):
        async def scenario():
            queue = AdmissionQueue(capacity=8)
            queue.try_submit({"n": "b"}, "batch", NO_DEADLINE)
            queue.try_submit({"n": "i"}, "interactive", NO_DEADLINE)
            queue.try_submit({"n": "p"}, "probe", NO_DEADLINE)
            order = [
                (await queue.get()).payload["n"],
                (await queue.get()).payload["n"],
                (await queue.get()).payload["n"],
            ]
            assert order == ["p", "i", "b"]

        run(scenario())

    def test_expired_entries_are_answered_at_dequeue(self):
        async def scenario():
            queue = AdmissionQueue(capacity=8)
            doomed = queue.try_submit({}, "batch", Deadline.after(0.01))
            live = queue.try_submit({}, "batch", NO_DEADLINE)
            await asyncio.sleep(0.05)
            served = await queue.get()
            assert served is live
            assert doomed.future.done()
            outcome = doomed.future.result()
            assert isinstance(outcome, QueueTimeout)
            assert outcome.waited >= 0.0
            assert queue.expired_in_queue_total == 1

        run(scenario())

    def test_get_wakes_on_late_submission(self):
        async def scenario():
            queue = AdmissionQueue(capacity=2)
            getter = asyncio.ensure_future(queue.get())
            await asyncio.sleep(0.01)
            assert not getter.done()
            queue.try_submit({"n": 1}, "batch", NO_DEADLINE)
            served = await asyncio.wait_for(getter, timeout=1.0)
            assert served.payload == {"n": 1}

        run(scenario())

    def test_drain_answers_everything(self):
        async def scenario():
            queue = AdmissionQueue(capacity=4)
            requests = [
                queue.try_submit({"n": i}, "batch", NO_DEADLINE)
                for i in range(3)
            ]
            assert queue.drain() == 3
            for request in requests:
                assert isinstance(request.future.result(), Shed)
                assert request.future.result().reason == "shutting_down"

        run(scenario())


class TestRetryAfterHint:
    def test_hint_scales_with_backlog_and_is_clamped(self):
        async def scenario():
            queue = AdmissionQueue(capacity=1000, workers=2)
            queue.observe_service_time(1.0)
            sparse = queue.retry_after_hint()
            for i in range(100):
                queue.try_submit({"n": i}, "batch", NO_DEADLINE)
            busy = queue.retry_after_hint()
            assert busy > sparse
            assert 1.0 <= busy <= 60.0

        run(scenario())
