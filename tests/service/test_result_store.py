"""Stale-while-revalidate result store: freshness, LRU, stats."""

from __future__ import annotations

import pytest

from repro.core.result_store import FRESH, STALE, ResultStore


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


class TestFreshness:
    def test_miss_then_fresh_hit(self, clock):
        store = ResultStore(max_entries=4, ttl=10.0, clock=clock)
        assert store.lookup("k") is None
        store.put("k", {"p_s": 0.9})
        value, state = store.lookup("k")
        assert value == {"p_s": 0.9}
        assert state == FRESH

    def test_entry_goes_stale_after_ttl_but_stays_served(self, clock):
        store = ResultStore(max_entries=4, ttl=10.0, clock=clock)
        store.put("k", 1)
        clock.advance(10.5)
        value, state = store.lookup("k")
        assert value == 1
        assert state == STALE
        assert store.age("k") == pytest.approx(10.5)

    def test_put_refreshes_a_stale_entry(self, clock):
        store = ResultStore(max_entries=4, ttl=10.0, clock=clock)
        store.put("k", 1)
        clock.advance(20.0)
        assert store.lookup("k")[1] == STALE
        store.put("k", 2)
        value, state = store.lookup("k")
        assert (value, state) == (2, FRESH)


class TestLRU:
    def test_capacity_evicts_least_recently_used(self, clock):
        store = ResultStore(max_entries=2, ttl=10.0, clock=clock)
        store.put("a", 1)
        store.put("b", 2)
        store.lookup("a")  # a is now most-recent
        store.put("c", 3)
        assert "b" not in store
        assert "a" in store and "c" in store
        assert store.stats().evictions == 1

    def test_len_and_clear(self, clock):
        store = ResultStore(max_entries=8, ttl=10.0, clock=clock)
        store.put("a", 1)
        store.put("b", 2)
        assert len(store) == 2
        store.invalidate("a")
        assert "a" not in store
        store.clear()
        assert len(store) == 0


class TestStats:
    def test_hit_rate_accounts_fresh_and_stale(self, clock):
        store = ResultStore(max_entries=4, ttl=10.0, clock=clock)
        store.put("k", 1)
        store.lookup("k")          # fresh hit
        clock.advance(11.0)
        store.lookup("k")          # stale hit
        store.lookup("missing")    # miss
        stats = store.stats()
        assert stats.fresh_hits == 1
        assert stats.stale_hits == 1
        assert stats.misses == 1
        assert stats.hit_rate == pytest.approx(2 / 3)
