"""Packaging sanity: metadata, version consistency, entry points."""

from __future__ import annotations

import pathlib
import re
import subprocess
import sys
import tarfile

import pytest

import repro


REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def read_pyproject() -> str:
    return (REPO_ROOT / "pyproject.toml").read_text()


class TestVersion:
    def test_package_exposes_version(self):
        assert re.fullmatch(r"\d+\.\d+\.\d+", repro.__version__)

    def test_pyproject_matches_package(self):
        match = re.search(r'^version = "([^"]+)"', read_pyproject(), re.M)
        assert match
        assert match.group(1) == repro.__version__


class TestEntryPoints:
    def test_console_scripts_declared(self):
        text = read_pyproject()
        assert 'repro-experiments = "repro.experiments.runner:main"' in text
        assert 'repro-design = "repro.cli:main"' in text

    def test_entry_point_targets_importable(self):
        from repro.cli import main as design_main
        from repro.experiments.runner import main as experiments_main

        assert callable(design_main)
        assert callable(experiments_main)


class TestRepositoryLayout:
    def test_required_documents_exist(self):
        for name in (
            "README.md",
            "DESIGN.md",
            "EXPERIMENTS.md",
            "LICENSE",
            "CITATION.cff",
            "docs/MODEL.md",
            "docs/API.md",
            "docs/TUTORIAL.md",
        ):
            assert (REPO_ROOT / name).exists(), name

    def test_dependencies_are_the_offline_set(self):
        text = read_pyproject()
        for dep in ("numpy", "scipy", "networkx"):
            assert dep in text
        # Nothing outside the preinstalled set may sneak in.
        match = re.search(r"dependencies = \[(.*?)\]", text, re.S)
        deps = set(re.findall(r'"(\w+)"', match.group(1)))
        assert deps <= {"numpy", "scipy", "networkx"}

    def test_every_package_has_init(self):
        src = REPO_ROOT / "src" / "repro"
        for directory in src.rglob("*"):
            if directory.is_dir() and list(directory.glob("*.py")):
                assert (directory / "__init__.py").exists(), directory


class TestTypingMarker:
    """PEP 561: the package advertises inline types via py.typed."""

    def test_py_typed_exists(self):
        assert (REPO_ROOT / "src" / "repro" / "py.typed").exists()

    def test_py_typed_declared_as_package_data(self):
        text = read_pyproject()
        assert "[tool.setuptools.package-data]" in text
        assert re.search(r'repro = \[[^\]]*"py\.typed"', text)

    @pytest.mark.slow
    def test_sdist_carries_py_typed(self, tmp_path):
        """Build a real sdist and assert the marker ships in it."""
        result = subprocess.run(
            [
                sys.executable,
                "setup.py",
                "-q",
                "sdist",
                "--dist-dir",
                str(tmp_path),
            ],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stderr
        archives = list(tmp_path.glob("repro-*.tar.gz"))
        assert len(archives) == 1, archives
        with tarfile.open(archives[0]) as archive:
            names = archive.getnames()
        assert any(name.endswith("src/repro/py.typed") for name in names)
