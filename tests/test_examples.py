"""Smoke tests: every example script runs cleanly end to end.

Examples are part of the public deliverable; these tests keep them from
rotting. Each runs as a subprocess with the repo's interpreter and must
exit 0 within the timeout.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_is_populated():
    assert len(EXAMPLES) >= 9


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "example produced no output"
