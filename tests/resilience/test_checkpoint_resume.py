"""Crash-tolerant Monte Carlo: trial isolation, checkpoint, resume."""

from __future__ import annotations

import json

import pytest

from repro.attacks.attacker import IntelligentAttacker
from repro.core import OneBurstAttack, SOSArchitecture
from repro.errors import SimulationError
from repro.resilience.checkpoint import CampaignCheckpoint, fingerprint
from repro.simulation.monte_carlo import MonteCarloConfig, MonteCarloEstimator

ARCH = SOSArchitecture(
    layers=2,
    mapping="one-to-two",
    total_overlay_nodes=300,
    sos_nodes=30,
    filters=3,
)
ATTACK = OneBurstAttack(break_in_budget=20, congestion_budget=60)


class FlakyAttacker:
    """Delegates to the real attacker, raising on chosen executions."""

    def __init__(self, fail_on=(), exception=RuntimeError("injected fault")):
        self._inner = IntelligentAttacker()
        self._fail_on = set(fail_on)
        self._exception = exception
        self.calls = 0

    def execute(self, deployment, attack, rng=None):
        call = self.calls
        self.calls += 1
        if call in self._fail_on:
            raise self._exception
        return self._inner.execute(deployment, attack, rng=rng)


def estimator(**overrides):
    config = MonteCarloConfig(
        trials=overrides.pop("trials", 8),
        clients_per_trial=3,
        seed=overrides.pop("seed", 5),
        **overrides,
    )
    return MonteCarloEstimator(config)


class TestErrorIsolation:
    def test_failing_trial_is_recorded_not_fatal(self):
        est = estimator()
        est._attacker = FlakyAttacker(fail_on={3})
        result = est.estimate(ARCH, ATTACK)
        assert result.failed_trials == 1
        assert result.trials == 7
        assert result.coverage == pytest.approx(7 / 8)
        assert est.last_failures == [(3, "RuntimeError: injected fault")]

    def test_isolation_can_be_disabled(self):
        est = estimator(error_isolation=False)
        est._attacker = FlakyAttacker(fail_on={3})
        with pytest.raises(RuntimeError, match="injected fault"):
            est.estimate(ARCH, ATTACK)

    def test_all_trials_failing_raises(self):
        est = estimator(trials=3)
        est._attacker = FlakyAttacker(fail_on={0, 1, 2})
        with pytest.raises(SimulationError, match="all 3 trials failed"):
            est.estimate(ARCH, ATTACK)

    def test_later_trials_unaffected_by_earlier_failure(self):
        """Per-trial RNG streams: a failure never skews surviving trials."""
        clean = estimator().estimate(ARCH, ATTACK)
        est = estimator()
        est._attacker = FlakyAttacker(fail_on={0})
        partial = est.estimate(ARCH, ATTACK)
        # The 7 surviving trials are the same 7 the clean run produced.
        assert partial.trials == clean.trials - 1


class TestCheckpointResume:
    def test_resume_after_failure_is_bit_identical(self, tmp_path):
        """Interrupted + resumed == uninterrupted, exactly."""
        path = str(tmp_path / "campaign.json")
        uninterrupted = estimator().estimate(ARCH, ATTACK)

        # Run 1: trial 3 dies mid-campaign; the campaign completes anyway
        # and reports the failure.
        first = estimator(checkpoint_path=path)
        first._attacker = FlakyAttacker(fail_on={3})
        partial = first.estimate(ARCH, ATTACK)
        assert partial.failed_trials == 1

        # Run 2: resume. Completed trials load from the checkpoint; the
        # failed trial is retried on its original RNG stream.
        resumed = estimator(checkpoint_path=path).estimate(ARCH, ATTACK)
        assert resumed.failed_trials == 0
        assert resumed.mean == uninterrupted.mean
        assert resumed.variance == uninterrupted.variance
        assert resumed.trials == uninterrupted.trials
        assert resumed.mean_bad_per_layer == uninterrupted.mean_bad_per_layer

    def test_resume_after_interrupt_is_bit_identical(self, tmp_path):
        """A hard interrupt (not caught by isolation) also resumes cleanly."""
        path = str(tmp_path / "campaign.json")
        uninterrupted = estimator().estimate(ARCH, ATTACK)

        interrupted = estimator(checkpoint_path=path)
        interrupted._attacker = FlakyAttacker(
            fail_on={5}, exception=KeyboardInterrupt()
        )
        with pytest.raises(KeyboardInterrupt):
            interrupted.estimate(ARCH, ATTACK)

        resumed = estimator(checkpoint_path=path).estimate(ARCH, ATTACK)
        assert resumed.mean == uninterrupted.mean
        assert resumed.variance == uninterrupted.variance
        assert resumed.mean_bad_per_layer == uninterrupted.mean_bad_per_layer

    def test_completed_trials_are_not_rerun(self, tmp_path):
        path = str(tmp_path / "campaign.json")
        estimator(checkpoint_path=path).estimate(ARCH, ATTACK)
        resumed = estimator(checkpoint_path=path)
        resumed._attacker = FlakyAttacker(fail_on=set(range(100)))
        # Every trial is checkpointed, so the flaky attacker never runs.
        result = resumed.estimate(ARCH, ATTACK)
        assert resumed._attacker.calls == 0
        assert result.failed_trials == 0

    def test_mismatched_configuration_is_rejected(self, tmp_path):
        path = str(tmp_path / "campaign.json")
        estimator(checkpoint_path=path).estimate(ARCH, ATTACK)
        with pytest.raises(SimulationError, match="different experiment"):
            estimator(checkpoint_path=path, seed=6).estimate(ARCH, ATTACK)

    def test_checkpoint_file_is_valid_json(self, tmp_path):
        path = tmp_path / "campaign.json"
        est = estimator(checkpoint_path=str(path))
        est._attacker = FlakyAttacker(fail_on={2})
        est.estimate(ARCH, ATTACK)
        state = json.loads(path.read_text())
        assert state["trials"]["2"] == {"error": "RuntimeError: injected fault"}
        assert "p" in state["trials"]["0"]


class TestCheckpointUnit:
    def test_failed_trials_view(self, tmp_path):
        checkpoint = CampaignCheckpoint(str(tmp_path / "c.json"), "abc")
        checkpoint.record_success(0, 0.5, {1: 2})
        checkpoint.record_failure(1, "boom")
        assert checkpoint.completed(0) == {"p": 0.5, "bad": {"1": 2}}
        assert checkpoint.completed(1) is None
        assert checkpoint.failed_trials == {1: "boom"}

    def test_save_load_roundtrip(self, tmp_path):
        path = str(tmp_path / "c.json")
        checkpoint = CampaignCheckpoint(path, "abc")
        checkpoint.record_success(0, 0.25, {1: 1, 2: 0})
        checkpoint.save()
        loaded = CampaignCheckpoint.load_or_create(path, "abc")
        assert loaded.completed(0) == {"p": 0.25, "bad": {"1": 1, "2": 0}}

    def test_fingerprint_is_order_insensitive(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})
        assert fingerprint({"a": 1}) != fingerprint({"a": 2})
