"""Tests for the fault plan, injector, and round-churn adapter."""

from __future__ import annotations

import math

import pytest

from repro.core import SOSArchitecture
from repro.errors import SimulationError
from repro.overlay.node import NodeHealth
from repro.resilience.faults import (
    ZERO_CHURN,
    FaultInjector,
    FaultPlan,
    PartitionEvent,
    RoundChurn,
    compose_round_hooks,
)
from repro.simulation.engine import EventScheduler
from repro.sos.deployment import SOSDeployment


def deployment(seed=3):
    arch = SOSArchitecture(
        layers=3,
        mapping="one-to-two",
        total_overlay_nodes=300,
        sos_nodes=30,
        filters=3,
    )
    return SOSDeployment.deploy(arch, rng=seed)


class TestFaultPlan:
    def test_zero_churn_is_noop(self):
        assert ZERO_CHURN.is_noop

    def test_partitions_make_plan_live(self):
        plan = FaultPlan(
            partitions=(PartitionEvent(time=1.0, layer=1, fraction=0.5, duration=2.0),)
        )
        assert not plan.is_noop

    def test_validation(self):
        with pytest.raises(SimulationError):
            FaultPlan(crash_rate=-1.0)
        with pytest.raises(SimulationError):
            FaultPlan(mean_downtime=0.0)
        with pytest.raises(SimulationError):
            PartitionEvent(time=-1.0, layer=1, fraction=0.5, duration=1.0)
        with pytest.raises(SimulationError):
            PartitionEvent(time=0.0, layer=1, fraction=0.5, duration=0.0)


class TestNodeCrashSemantics:
    def test_crash_only_hits_good_nodes(self):
        dep = deployment()
        node = dep.resolve(dep.sos_member_ids()[0])
        node.compromise()
        assert node.crash() is False
        assert node.health is NodeHealth.COMPROMISED

    def test_restore_never_undoes_attack_damage(self):
        dep = deployment()
        node = dep.resolve(dep.sos_member_ids()[0])
        node.congest()
        assert node.restore() is False
        assert node.health is NodeHealth.CONGESTED

    def test_crash_then_restore_roundtrip(self):
        dep = deployment()
        node = dep.resolve(dep.sos_member_ids()[0])
        assert node.crash() is True
        assert node.is_crashed and node.is_bad and not node.is_good
        assert node.restore() is True
        assert node.is_good


class TestFaultInjector:
    def test_noop_plan_schedules_nothing(self):
        scheduler = EventScheduler()
        injector = FaultInjector(ZERO_CHURN, deployment(), scheduler, rng=1)
        assert injector.install(horizon=100.0) == 0
        assert scheduler.pending == 0

    def test_churn_crashes_and_recovers(self):
        dep = deployment()
        scheduler = EventScheduler()
        injector = FaultInjector(
            FaultPlan(crash_rate=0.5, mean_downtime=5.0), dep, scheduler, rng=7
        )
        assert injector.install(horizon=100.0) > 0
        scheduler.run()
        assert injector.crashes_injected > 0
        assert injector.recoveries > 0

    def test_permanent_crashes_never_recover(self):
        dep = deployment()
        scheduler = EventScheduler()
        injector = FaultInjector(
            FaultPlan(crash_rate=0.5, mean_downtime=math.inf),
            dep,
            scheduler,
            rng=7,
        )
        injector.install(horizon=50.0)
        scheduler.run()
        assert injector.crashes_injected > 0
        assert injector.recoveries == 0
        assert sum(dep.crashed_counts().values()) == injector.crashes_injected

    def test_partition_crashes_layer_then_heals(self):
        dep = deployment()
        scheduler = EventScheduler()
        plan = FaultPlan(
            partitions=(
                PartitionEvent(time=1.0, layer=2, fraction=1.0, duration=3.0),
            )
        )
        injector = FaultInjector(plan, dep, scheduler, rng=7)
        injector.install(horizon=10.0)
        scheduler.run(until=2.0)
        layer_size = len(dep.layer_members(2))
        assert dep.crashed_counts()[2] == layer_size
        scheduler.run()
        assert dep.crashed_counts()[2] == 0
        assert injector.recoveries == layer_size

    def test_recover_before_crash_race_is_cancelled(self):
        """A stale recover must not resurrect a later crash early."""
        dep = deployment()
        scheduler = EventScheduler()
        injector = FaultInjector(
            FaultPlan(crash_rate=0.1, mean_downtime=5.0), dep, scheduler, rng=7
        )
        node_id = dep.sos_member_ids()[0]
        node = dep.resolve(node_id)

        scheduler.schedule_at(1.0, lambda: injector._crash(node_id))
        scheduler.run(until=1.0)
        stale_recover = injector._pending_recover[node_id]
        assert not stale_recover.cancelled

        # The defender repairs the node between the crash and its
        # scheduled benign recovery, then the node crashes again.
        node.recover()
        scheduler.schedule_at(1.5, lambda: injector._crash(node_id))
        scheduler.run(until=1.5)
        assert stale_recover.cancelled
        fresh_recover = injector._pending_recover[node_id]
        assert fresh_recover is not stale_recover

        scheduler.run()
        assert node.is_good
        # Only the fresh recovery fired; the cancelled one was skipped.
        assert injector.recoveries == 1

    def test_deterministic_under_seed(self):
        reports = []
        for _ in range(2):
            dep = deployment(seed=5)
            scheduler = EventScheduler()
            injector = FaultInjector(
                FaultPlan(crash_rate=0.3, mean_downtime=4.0),
                dep,
                scheduler,
                rng=11,
            )
            injector.install(horizon=60.0)
            scheduler.run()
            reports.append(
                (injector.crashes_injected, injector.recoveries, dep.crashed_counts())
            )
        assert reports[0] == reports[1]


class TestRoundChurn:
    def test_crashes_members_per_round(self):
        dep = deployment()
        churn = RoundChurn(crash_probability=1.0, rng=3)
        churn(dep, None, 1)
        assert churn.crashes_injected == len(dep.sos_member_ids())

    def test_recovery_probability(self):
        dep = deployment()
        churn = RoundChurn(crash_probability=1.0, recover_probability=1.0, rng=3)
        churn(dep, None, 1)  # everyone crashes
        churn(dep, None, 2)  # everyone recovers
        assert churn.recoveries == len(dep.sos_member_ids())
        assert sum(dep.crashed_counts().values()) == 0


class TestComposeRoundHooks:
    def test_none_hooks_collapse_to_none(self):
        assert compose_round_hooks(None, None) is None

    def test_single_hook_passes_through(self):
        hook = lambda *a: None  # noqa: E731
        assert compose_round_hooks(None, hook) is hook

    def test_chained_hooks_run_in_order(self):
        calls = []
        first = lambda d, k, r: calls.append(("first", r))  # noqa: E731
        second = lambda d, k, r: calls.append(("second", r))  # noqa: E731
        chained = compose_round_hooks(first, second)
        chained("dep", "knowledge", 4)
        assert calls == [("first", 4), ("second", 4)]
