"""Corrupt-checkpoint recovery: quarantine and restart, never crash.

A process killed mid-write (before the atomic rename), a disk-full
partial write, or a stale pre-versioning format must not brick the
campaign: ``CampaignCheckpoint.load_or_create`` quarantines the bad file
to ``<path>.corrupt``, warns about degraded coverage, and starts fresh.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core import OneBurstAttack, SOSArchitecture
from repro.errors import SimulationError
from repro.resilience.checkpoint import CampaignCheckpoint, fingerprint
from repro.simulation.monte_carlo import MonteCarloConfig, MonteCarloEstimator

FP = fingerprint({"experiment": "corruption-suite"})


def _expect_fresh_with_quarantine(path):
    with pytest.warns(RuntimeWarning, match="quarantined"):
        checkpoint = CampaignCheckpoint.load_or_create(str(path), FP)
    assert checkpoint.trials == {}
    assert not path.exists()
    assert (path.parent / f"{path.name}.corrupt").exists()
    return checkpoint


class TestCorruptCheckpointRecovery:
    def test_truncated_json_starts_fresh(self, tmp_path):
        path = tmp_path / "campaign.json"
        good = CampaignCheckpoint(str(path), FP)
        good.record_success(0, 0.5, {1: 2})
        good.save()
        # Simulate a partial write: keep only the first half of the bytes.
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        _expect_fresh_with_quarantine(path)

    def test_non_json_garbage_starts_fresh(self, tmp_path):
        path = tmp_path / "campaign.json"
        path.write_bytes(b"\x00\xffnot json at all")
        _expect_fresh_with_quarantine(path)

    def test_json_missing_trials_key_starts_fresh(self, tmp_path):
        path = tmp_path / "campaign.json"
        path.write_text(json.dumps({"fingerprint": FP}), encoding="utf-8")
        _expect_fresh_with_quarantine(path)

    def test_json_with_wrong_shape_starts_fresh(self, tmp_path):
        path = tmp_path / "campaign.json"
        path.write_text(
            json.dumps({"fingerprint": FP, "trials": ["not", "a", "dict"]}),
            encoding="utf-8",
        )
        _expect_fresh_with_quarantine(path)

    def test_non_integer_trial_keys_start_fresh(self, tmp_path):
        path = tmp_path / "campaign.json"
        path.write_text(
            json.dumps({"fingerprint": FP, "trials": {"seven": {"p": 1.0}}}),
            encoding="utf-8",
        )
        _expect_fresh_with_quarantine(path)

    def test_quarantined_file_preserves_bytes_for_forensics(self, tmp_path):
        path = tmp_path / "campaign.json"
        payload = b"{truncated"
        path.write_bytes(payload)
        _expect_fresh_with_quarantine(path)
        assert (tmp_path / "campaign.json.corrupt").read_bytes() == payload

    def test_fingerprint_mismatch_still_raises(self, tmp_path):
        """Only *unparseable* files are quarantined; a valid checkpoint for
        a different experiment is a caller error and must stay loud."""
        path = tmp_path / "campaign.json"
        other = CampaignCheckpoint(str(path), fingerprint({"other": 1}))
        other.record_success(0, 1.0, {})
        other.save()
        with pytest.raises(SimulationError, match="different experiment"):
            CampaignCheckpoint.load_or_create(str(path), FP)
        assert path.exists()  # untouched, not quarantined

    def test_save_after_recovery_overwrites_cleanly(self, tmp_path):
        path = tmp_path / "campaign.json"
        path.write_bytes(b"garbage")
        checkpoint = _expect_fresh_with_quarantine(path)
        checkpoint.record_success(2, 0.25, {1: 1})
        checkpoint.save()
        reloaded = CampaignCheckpoint.load_or_create(str(path), FP)
        assert reloaded.completed(2) == {"p": 0.25, "bad": {"1": 1}}


class TestEstimatorSurvivesCorruption:
    def test_estimate_with_corrupt_checkpoint_matches_clean_run(self, tmp_path):
        """End to end: a corrupt checkpoint degrades to a fresh campaign
        whose aggregates are bit-identical to a never-checkpointed run."""
        arch = SOSArchitecture(
            layers=2,
            mapping="one-to-two",
            total_overlay_nodes=300,
            sos_nodes=30,
            filters=3,
        )
        attack = OneBurstAttack(break_in_budget=20, congestion_budget=60)
        baseline = MonteCarloEstimator(
            MonteCarloConfig(trials=6, clients_per_trial=3, seed=11)
        ).estimate(arch, attack)

        path = tmp_path / "campaign.json"
        path.write_bytes(b'{"fingerprint": "...')  # killed mid-write
        config = MonteCarloConfig(
            trials=6, clients_per_trial=3, seed=11, checkpoint_path=str(path)
        )
        with pytest.warns(RuntimeWarning, match="quarantined"):
            recovered = MonteCarloEstimator(config).estimate(arch, attack)
        assert recovered.mean == baseline.mean
        assert recovered.mean_bad_per_layer == baseline.mean_bad_per_layer
        assert os.path.exists(f"{path}.corrupt")
