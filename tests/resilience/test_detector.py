"""Tests for the heartbeat failure detector and its defender hookup."""

from __future__ import annotations

import pytest

from repro.attacks.knowledge import AttackerKnowledge
from repro.core import SOSArchitecture
from repro.errors import ConfigurationError, SimulationError
from repro.repair.defender import RepairingDefender
from repro.repair.policy import RepairPolicy
from repro.resilience.detector import DetectorConfig, FailureDetector
from repro.sos.deployment import SOSDeployment


def deployment(seed=3):
    arch = SOSArchitecture(
        layers=2,
        mapping="one-to-two",
        total_overlay_nodes=200,
        sos_nodes=20,
        filters=2,
    )
    return SOSDeployment.deploy(arch, rng=seed)


class TestDetectorConfig:
    def test_validation(self):
        with pytest.raises(SimulationError):
            DetectorConfig(timeout=-1.0)
        with pytest.raises(ConfigurationError):
            DetectorConfig(false_positive_rate=1.5)


class TestDetectionTimeout:
    def test_instantaneous_detection_flags_all_bad(self):
        dep = deployment()
        bad = dep.sos_member_ids()[:4]
        for node_id in bad:
            dep.resolve(node_id).congest()
        detector = FailureDetector(DetectorConfig(timeout=0.0), rng=1)
        assert set(detector.scan(dep, now=0.0)) == set(bad)

    def test_timeout_delays_detection(self):
        dep = deployment()
        victim = dep.sos_member_ids()[0]
        dep.resolve(victim).congest()
        detector = FailureDetector(DetectorConfig(timeout=5.0), rng=1)
        assert detector.scan(dep, now=0.0) == []  # first seen now
        assert detector.scan(dep, now=4.9) == []  # not bad long enough
        assert detector.scan(dep, now=5.0) == [victim]

    def test_recovered_node_resets_suspicion(self):
        dep = deployment()
        victim = dep.sos_member_ids()[0]
        node = dep.resolve(victim)
        node.congest()
        detector = FailureDetector(DetectorConfig(timeout=5.0), rng=1)
        detector.scan(dep, now=0.0)
        node.recover()
        detector.scan(dep, now=3.0)  # healthy again: suspicion cleared
        node.congest()
        detector.scan(dep, now=4.0)  # the clock restarts here
        assert detector.scan(dep, now=8.0) == []
        assert detector.scan(dep, now=9.0) == [victim]

    def test_detection_order_matches_layer_membership(self):
        dep = deployment()
        bad = sorted(dep.sos_member_ids(), reverse=True)[:5]
        for node_id in bad:
            dep.resolve(node_id).congest()
        detector = FailureDetector(DetectorConfig(), rng=1)
        detected = detector.scan(dep, now=0.0)
        expected = [
            node_id
            for layer in range(1, dep.architecture.layers + 2)
            for node_id in dep.layer_members(layer)
            if node_id in set(bad)
        ]
        assert detected == expected


class TestFalsePositives:
    def test_false_positives_flag_healthy_nodes(self):
        dep = deployment()
        detector = FailureDetector(
            DetectorConfig(false_positive_rate=1.0), rng=1
        )
        detected = detector.scan(dep, now=0.0)
        members = sum(
            len(dep.layer_members(layer))
            for layer in range(1, dep.architecture.layers + 2)
        )
        assert len(detected) == members
        assert detector.false_alarms == members

    def test_zero_rate_never_false_alarms(self):
        dep = deployment()
        detector = FailureDetector(DetectorConfig(), rng=1)
        for now in range(5):
            detector.scan(dep, now=float(now))
        assert detector.false_alarms == 0


class TestDefenderIntegration:
    def test_repair_waits_for_detection_timeout(self):
        dep = deployment()
        victim = dep.sos_member_ids()[0]
        dep.resolve(victim).congest()
        detector = FailureDetector(DetectorConfig(timeout=10.0), rng=1)
        defender = RepairingDefender(
            RepairPolicy(detection_probability=1.0),
            rng=2,
            detector=detector,
        )
        knowledge = AttackerKnowledge()
        assert defender.scan_and_repair(dep, knowledge, now=0.0) == 0
        assert defender.scan_and_repair(dep, knowledge, now=5.0) == 0
        assert defender.scan_and_repair(dep, knowledge, now=10.0) == 1
        assert dep.resolve(victim).is_good

    def test_repair_clears_detector_memory(self):
        dep = deployment()
        victim = dep.sos_member_ids()[0]
        node = dep.resolve(victim)
        node.congest()
        detector = FailureDetector(DetectorConfig(timeout=2.0), rng=1)
        defender = RepairingDefender(
            RepairPolicy(detection_probability=1.0), rng=2, detector=detector
        )
        knowledge = AttackerKnowledge()
        defender.scan_and_repair(dep, knowledge, now=0.0)
        assert defender.scan_and_repair(dep, knowledge, now=2.0) == 1
        # A fresh failure must re-earn the timeout, not inherit suspicion.
        node.congest()
        assert defender.scan_and_repair(dep, knowledge, now=3.0) == 0
        assert defender.scan_and_repair(dep, knowledge, now=5.0) == 1

    def test_capacity_limits_detector_driven_repairs(self):
        dep = deployment()
        for node_id in dep.sos_member_ids()[:6]:
            dep.resolve(node_id).congest()
        defender = RepairingDefender(
            RepairPolicy(detection_probability=1.0, capacity_per_round=2),
            rng=2,
            detector=FailureDetector(DetectorConfig(), rng=1),
        )
        assert defender.scan_and_repair(dep, AttackerKnowledge(), now=0.0) == 2
