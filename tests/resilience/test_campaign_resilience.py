"""Resilience hooks in campaigns and Monte Carlo: seed-compat and churn."""

from __future__ import annotations

import pytest

from repro.core import OneBurstAttack, SOSArchitecture, SuccessiveAttack
from repro.repair import NO_REPAIR, RepairPolicy
from repro.resilience import DetectorConfig, FaultPlan, RetryPolicy, ZERO_CHURN
from repro.simulation.campaign import run_campaign
from repro.simulation.monte_carlo import estimate_ps


def arch():
    return SOSArchitecture(
        layers=3,
        mapping="one-to-two",
        total_overlay_nodes=1000,
        sos_nodes=45,
        filters=5,
    )


ATTACK = SuccessiveAttack(
    break_in_budget=80, congestion_budget=300, rounds=3, prior_knowledge=0.3
)


class TestSeedCompatibility:
    """Acceptance: churn 0 + instantaneous detection == the seed's numbers."""

    def test_zero_churn_reproduces_seed_trajectory(self):
        baseline = run_campaign(arch(), ATTACK, NO_REPAIR, seed=11)
        resilient = run_campaign(
            arch(), ATTACK, NO_REPAIR, seed=11, fault_plan=ZERO_CHURN
        )
        assert resilient.p_s == baseline.p_s
        assert resilient.times == baseline.times
        assert resilient.round_times == baseline.round_times
        assert resilient.crashes_injected == 0
        assert resilient.benign_recoveries == 0

    def test_instantaneous_detector_matches_omniscient_repair(self):
        """timeout=0, detection 1.0 == the seed's omniscient scan.

        ``rewire=False`` keeps the defender's RNG consumption identical on
        both paths; with rewiring each repair draws a fresh table and the
        trajectories legitimately diverge after the first repair.
        """
        policy = RepairPolicy(detection_probability=1.0, rewire=False)
        baseline = run_campaign(arch(), ATTACK, policy, seed=11)
        resilient = run_campaign(
            arch(),
            ATTACK,
            policy,
            seed=11,
            detector_config=DetectorConfig(timeout=0.0),
        )
        assert resilient.p_s == baseline.p_s
        assert resilient.repairs_total == baseline.repairs_total

    def test_detection_timeout_delays_repairs(self):
        policy = RepairPolicy(detection_probability=1.0, rewire=False)
        instant = run_campaign(
            arch(),
            ATTACK,
            policy,
            seed=11,
            detector_config=DetectorConfig(timeout=0.0),
        )
        slow = run_campaign(
            arch(),
            ATTACK,
            policy,
            seed=11,
            detector_config=DetectorConfig(timeout=12.0),
        )
        assert slow.repairs_total <= instant.repairs_total
        assert slow.minimum <= instant.minimum


class TestChurnCampaign:
    def test_churn_injects_and_recovers(self):
        report = run_campaign(
            arch(),
            ATTACK,
            NO_REPAIR,
            seed=11,
            fault_plan=FaultPlan(crash_rate=0.5, mean_downtime=8.0),
        )
        assert report.crashes_injected > 0
        assert report.benign_recoveries > 0

    def test_churn_hurts_availability(self):
        calm = run_campaign(arch(), ATTACK, NO_REPAIR, seed=11)
        churned = run_campaign(
            arch(),
            ATTACK,
            NO_REPAIR,
            seed=11,
            fault_plan=FaultPlan(crash_rate=2.0, mean_downtime=20.0),
        )
        assert churned.minimum <= calm.minimum

    def test_retry_policy_accepted_by_campaign(self):
        report = run_campaign(
            arch(),
            ATTACK,
            NO_REPAIR,
            seed=11,
            fault_plan=FaultPlan(crash_rate=0.5, mean_downtime=8.0),
            retry_policy=RetryPolicy(max_attempts_per_hop=3),
        )
        assert 0.0 <= report.minimum <= 1.0


class TestChurnMonteCarlo:
    ATTACK = OneBurstAttack(break_in_budget=30, congestion_budget=120)

    def test_zero_churn_reproduces_seed_estimate(self):
        baseline = estimate_ps(
            arch(), self.ATTACK, trials=20, seed=9, metric="reachability"
        )
        explicit = estimate_ps(
            arch(),
            self.ATTACK,
            trials=20,
            seed=9,
            metric="reachability",
            churn_fraction=0.0,
        )
        assert explicit.mean == baseline.mean
        assert explicit.variance == baseline.variance

    def test_ps_monotone_non_increasing_in_churn(self):
        """Nested crash sets make P_S monotone per-trial, not just on average."""
        means = [
            estimate_ps(
                arch(),
                self.ATTACK,
                trials=20,
                seed=9,
                metric="reachability",
                churn_fraction=fraction,
            ).mean
            for fraction in (0.1, 0.3, 0.5)
        ]
        assert means[0] >= means[1] >= means[2]

    def test_churn_never_beats_no_churn(self):
        calm = estimate_ps(arch(), self.ATTACK, trials=20, seed=9, metric="reachability")
        churned = estimate_ps(
            arch(),
            self.ATTACK,
            trials=20,
            seed=9,
            metric="reachability",
            churn_fraction=0.4,
        )
        assert churned.mean <= calm.mean

    def test_churn_fraction_validation(self):
        from repro.errors import SimulationError
        from repro.simulation.monte_carlo import MonteCarloConfig

        with pytest.raises(SimulationError):
            MonteCarloConfig(trials=5, churn_fraction=1.5)
        with pytest.raises(SimulationError):
            MonteCarloConfig(trials=5, churn_fraction=-0.1)
