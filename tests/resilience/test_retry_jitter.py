"""Decorrelated jitter on the retry/backoff schedule.

The deterministic exponential schedule synchronizes a population of
retriers: every component that failed at time T retries at exactly
T + base, T + base*factor, ... — a retry storm. Decorrelated jitter
(delay ~ Uniform[base, prev * factor], capped) spreads them out while
staying reproducible, because every draw flows through the caller's
seeded generator.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.resilience.retry import RetryPolicy
from repro.utils.seeding import SeedSequenceFactory, make_rng


def _schedule(policy, generator, steps):
    delays = []
    previous = None
    for index in range(steps):
        previous = policy.delay(index, generator, previous=previous)
        delays.append(previous)
    return delays


class TestDecorrelatedJitter:
    def test_delays_stay_within_bounds(self):
        policy = RetryPolicy(
            backoff_base=0.1, backoff_factor=3.0, decorrelated=True,
            max_backoff=2.0,
        )
        delays = _schedule(policy, make_rng(7), steps=200)
        for delay in delays:
            assert 0.1 <= delay <= 2.0

    def test_reproducible_under_fixed_seed(self):
        policy = RetryPolicy(decorrelated=True)
        a = _schedule(policy, make_rng(42), steps=20)
        b = _schedule(policy, make_rng(42), steps=20)
        assert a == b

    def test_independent_streams_decorrelate(self):
        """Components on different per-component streams must not retry in
        lockstep: their schedules diverge from the very first retry."""
        policy = RetryPolicy(decorrelated=True)
        factory = SeedSequenceFactory(3)
        schedules = [
            _schedule(policy, factory.generator(), steps=8) for _ in range(16)
        ]
        first_delays = {round(s[0], 12) for s in schedules}
        assert len(first_delays) > 1

    def test_deterministic_schedule_unchanged_by_default(self):
        """decorrelated=False is the seed behavior: pure exponential, no
        generator draws — a fixed-seed run stays bit-identical."""
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0)

        class ExplodingGenerator:
            def random(self):
                raise AssertionError("deterministic schedule must not draw")

        delays = _schedule(policy, ExplodingGenerator(), steps=4)
        assert delays == [
            pytest.approx(0.1),
            pytest.approx(0.2),
            pytest.approx(0.4),
            pytest.approx(0.8),
        ]

    def test_spread_beats_deterministic_synchronization(self):
        """Many retriers drawing decorrelated delays land at measurably
        more distinct times than the single deterministic schedule."""
        policy = RetryPolicy(decorrelated=True, max_backoff=10.0)
        factory = SeedSequenceFactory(11)
        third_retry = [
            _schedule(policy, factory.generator(), steps=3)[2]
            for _ in range(64)
        ]
        assert float(np.std(third_retry)) > 0.0

    def test_requires_positive_base(self):
        with pytest.raises(ConfigurationError, match="backoff_base"):
            RetryPolicy(backoff_base=0.0, decorrelated=True)

    def test_requires_positive_cap(self):
        with pytest.raises(ConfigurationError, match="max_backoff"):
            RetryPolicy(max_backoff=0.0)
