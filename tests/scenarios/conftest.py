"""Shared small fixtures for the scenario-DSL tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.scenarios import (
    ArchitectureSpec,
    BenignSurge,
    PhaseSpec,
    PulsingFlood,
    ScenarioSpec,
    SimSpec,
    TargetedLowRate,
)
from repro.sos.deployment import SOSDeployment

TINY_ARCH = ArchitectureSpec(
    layers=3, mapping="one-to-two", overlay_nodes=200, sos_nodes=24, filters=4
)
TINY_SIM = SimSpec(duration=12.0, warmup=2.0, clients=4, client_rate=2.0)


def tiny_spec(**kwargs) -> ScenarioSpec:
    """A small two-phase campaign with one attack + one benign vector."""
    defaults = dict(
        name="tiny",
        seed=11,
        architecture=TINY_ARCH,
        sim=TINY_SIM,
        phases=(
            PhaseSpec("calm", 0.0, 4.0),
            PhaseSpec(
                "assault",
                4.0,
                8.0,
                vectors=(
                    PulsingFlood(layer=1, fraction=0.4, rate=250.0),
                    TargetedLowRate(layer=2, count=2, rate=90.0),
                    BenignSurge(clients=4, rate=3.0, ramp=1.0),
                ),
            ),
        ),
    )
    defaults.update(kwargs)
    return ScenarioSpec(**defaults)


@pytest.fixture
def spec() -> ScenarioSpec:
    return tiny_spec()


@pytest.fixture
def deployment(spec) -> SOSDeployment:
    return SOSDeployment.deploy(
        spec.build_architecture(), rng=np.random.default_rng(3)
    )
