"""The tentpole contract: one injection schedule, two engines, zero drift.

Vectors compile to absolute-time offer arrays *before* either engine
runs; the event engine chains them as scheduler events while the fast
engine merges them into its pre-sampled rows. These tests pin the
consequences: per-vector and per-campaign, the engines agree exactly on
what was offered where (sent counts, absorbed attack packets, monitor
counters), and each engine is bit-deterministic per (spec, seed).
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.detection.monitor import MonitorConfig, TrafficMonitor
from repro.scenarios import (
    BenignSurge,
    BotnetWave,
    PhaseSpec,
    PulsingFlood,
    TargetedLowRate,
    compile_scenario,
)
from repro.scenarios.runner import run_scenario
from repro.sos.deployment import SOSDeployment
from repro.simulation.packet_sim import PacketLevelSimulation

from tests.scenarios.conftest import tiny_spec

VECTOR_CASES = [
    PulsingFlood(layer=1, fraction=0.4, rate=250.0),
    BotnetWave(layer=1, fraction=0.4, bots=12, rate_per_bot=20.0),
    TargetedLowRate(layer=2, count=2, rate=90.0),
    BenignSurge(clients=4, rate=3.0, ramp=1.0),
]


def _single_vector_spec(vector):
    return tiny_spec(
        name=f"one-{vector.kind}",
        phases=(
            PhaseSpec("calm", 0.0, 4.0),
            PhaseSpec("hot", 4.0, 8.0, vectors=(vector,)),
        ),
    )


def _run_engine(spec, schedule, fast):
    deployment = SOSDeployment.deploy(
        spec.build_architecture(), rng=np.random.default_rng(3)
    )
    monitor = TrafficMonitor(MonitorConfig())
    simulation = PacketLevelSimulation(
        deployment,
        spec.sim_config(),
        rng=np.random.SeedSequence(spec.seed),
        monitor=monitor,
    )
    report = simulation.run(fast=fast, schedule=schedule)
    return report, monitor


@pytest.mark.parametrize(
    "vector", VECTOR_CASES, ids=[v.kind for v in VECTOR_CASES]
)
def test_each_vector_is_identical_across_engines(vector):
    spec = _single_vector_spec(vector)
    deployment = SOSDeployment.deploy(
        spec.build_architecture(), rng=np.random.default_rng(3)
    )
    schedule = compile_scenario(spec, deployment, salt=0).schedule
    fast_report, fast_monitor = _run_engine(spec, schedule, fast=True)
    event_report, event_monitor = _run_engine(spec, schedule, fast=False)
    assert fast_report.sent == event_report.sent
    assert (
        fast_report.attack_packets_absorbed
        == event_report.attack_packets_absorbed
    )
    # The monitor saw the exact same per-bin offered/dropped counters:
    # injection schedules AND token-bucket outcomes agree offer by offer.
    assert fast_monitor.snapshot() == event_monitor.snapshot()


def test_full_campaign_reports_identical_across_engines():
    spec = tiny_spec()
    fast = run_scenario(spec, mode="detected", phases=2, engine="fast")
    event = run_scenario(spec, mode="detected", phases=2, engine="event")
    assert fast.sent_per_phase == event.sent_per_phase
    assert fast.attack_packets_per_phase == event.attack_packets_per_phase
    assert fast.flagged_per_phase == event.flagged_per_phase
    assert fast.repaired_per_phase == event.repaired_per_phase
    assert fast.initial_targets == event.initial_targets


@pytest.mark.parametrize("engine", ["fast", "event"])
def test_per_engine_reports_are_bit_deterministic(engine):
    spec = tiny_spec()
    one = run_scenario(spec, mode="detected", phases=2, engine=engine)
    two = run_scenario(spec, mode="detected", phases=2, engine=engine)
    assert one == two


def test_gentle_no_drop_campaign_reports_fully_equal():
    # With traffic far below capacity nothing drops, so even delivered /
    # latency aggregates must match across engines bit for bit.
    spec = tiny_spec(
        name="gentle",
        phases=(
            PhaseSpec(
                "mild",
                2.0,
                8.0,
                vectors=(
                    TargetedLowRate(layer=2, count=1, rate=3.0),
                    BenignSurge(clients=2, rate=1.0, ramp=1.0),
                ),
            ),
        ),
    )
    deployment = SOSDeployment.deploy(
        spec.build_architecture(), rng=np.random.default_rng(3)
    )
    schedule = compile_scenario(spec, deployment, salt=0).schedule
    fast_report, _ = _run_engine(spec, schedule, fast=True)
    event_report, _ = _run_engine(spec, schedule, fast=False)
    assert dataclasses.asdict(fast_report) == dataclasses.asdict(event_report)
    assert fast_report.delivery_ratio == 1.0


def test_seed_changes_change_the_campaign():
    spec = tiny_spec()
    one = run_scenario(spec, mode="none", phases=1, engine="fast")
    two = run_scenario(spec, mode="none", phases=1, engine="fast", seed=spec.seed + 1)
    assert one != two
