"""scn-zoo experiment: matrix shape and claims (both engines)."""

from __future__ import annotations

from repro.experiments.figures import REGISTRY, run_figure
from repro.scenarios.zoo import list_scenarios


def test_scn_zoo_is_registered():
    assert "scn-zoo" in REGISTRY


def test_scn_zoo_claims_pass_on_fast_engine():
    result = run_figure("scn-zoo")
    failed = result.failed_claims()
    assert not failed, "; ".join(claim.description for claim in failed)
    names = list_scenarios()
    assert len(result.x_values) == len(names)
    assert set(result.series) == {
        "final delivery (no repair)",
        "final delivery (detected)",
        "precision",
        "recall",
    }
    for name in names:
        assert name in result.notes


def test_scn_zoo_accepts_engine_and_tier_overrides():
    # The runner's --engine event / --tier scalar path; quick (1 phase).
    result = run_figure("scn-zoo", fast=False, tier="scalar", phases=1)
    assert not result.failed_claims()
    assert "Event-driven engine" in result.notes
    assert "scalar tier" in result.notes
