"""run_scenario / DetectionRepairLoop.run_scenario behavior."""

from __future__ import annotations

import pytest

from repro.detection.loop import DetectionRepairLoop
from repro.errors import DetectionError, ScenarioError
from repro.repair.policy import NO_REPAIR, RepairPolicy
from repro.scenarios import load_scenario
from repro.scenarios.runner import run_scenario

from tests.scenarios.conftest import tiny_spec


def test_detected_mode_repairs_and_recovers(spec):
    report = run_scenario(spec, mode="detected", phases=2, engine="fast")
    assert report.scenario == spec.name
    assert report.phases == 2
    assert report.initial_targets
    assert report.total_repaired > 0
    # Every repaired true target leaves the schedule, so the later phase
    # absorbs strictly less attack traffic than the first.
    assert report.attack_packets_per_phase[1] < report.attack_packets_per_phase[0]
    assert report.final_delivery >= report.delivery_per_phase[0]
    assert 0.0 <= report.precision <= 1.0
    assert report.recall > 0.0


def test_none_mode_never_repairs(spec):
    report = run_scenario(spec, mode="none", phases=2, engine="fast")
    assert report.total_repaired == 0
    assert all(not flagged for flagged in report.repaired_per_phase)
    # The attack persists: both phases absorb attack traffic.
    assert all(count > 0 for count in report.attack_packets_per_phase)


def test_oracle_mode_repairs_true_targets(spec):
    report = run_scenario(spec, mode="oracle", phases=2, engine="fast")
    repaired = {node for phase in report.repaired_per_phase for node in phase}
    assert repaired <= set(report.initial_targets)
    assert report.attack_packets_per_phase[1] < report.attack_packets_per_phase[0]


def test_runs_zoo_scenarios_by_name():
    report = run_scenario("flash-crowd", mode="none", phases=1)
    assert report.scenario == "flash-crowd"
    assert report.initial_targets == ()
    assert report.recall == 1.0


def test_engine_tier_seed_default_to_the_spec():
    spec = load_scenario("stealth-lowrate")
    report = run_scenario(spec, phases=1)
    assert report.engine == spec.engine
    assert report.tier == spec.tier
    assert report.seed == spec.seed


@pytest.mark.parametrize(
    "kwargs",
    [
        {"mode": "bogus"},
        {"engine": "warp"},
        {"tier": "gpu"},
    ],
)
def test_run_scenario_validates_knobs(spec, kwargs):
    with pytest.raises(ScenarioError):
        run_scenario(spec, **kwargs)


def test_run_scenario_rejects_non_spec():
    with pytest.raises(ScenarioError, match="zoo name or ScenarioSpec"):
        run_scenario(12345)


def test_noop_policy_rejected(spec):
    # NO_REPAIR can never repair; the loop refuses it up front rather
    # than silently running a "detected" campaign with a dead defender.
    with pytest.raises(DetectionError, match="no-op"):
        run_scenario(spec, mode="detected", phases=1, policy=NO_REPAIR)


def test_capacity_limited_policy_bounds_repairs(spec):
    report = run_scenario(
        spec,
        mode="detected",
        phases=2,
        engine="fast",
        policy=RepairPolicy(detection_probability=1.0, capacity_per_round=1),
    )
    assert all(len(phase) <= 1 for phase in report.repaired_per_phase)
    assert report.total_repaired >= 1


def test_tier_threading_is_bit_identical(spec):
    import dataclasses

    reports = {
        tier: run_scenario(spec, mode="detected", phases=2, tier=tier)
        for tier in ("scalar", "numpy")
    }
    assert reports["scalar"] == dataclasses.replace(
        reports["numpy"], tier="scalar"
    )


def test_loop_rejects_marking_with_schedules(spec):
    from repro.detection.marking import MarkingConfig
    from repro.detection.monitor import MonitorConfig

    loop = DetectionRepairLoop(
        spec.build_architecture(),
        spec.sim_config(),
        MonitorConfig(),
        RepairPolicy(detection_probability=1.0),
        marking_config=MarkingConfig(
            probability=0.05, sources_per_target=1, path_depth=3
        ),
        seed=1,
    )
    with pytest.raises(DetectionError, match="marking"):
        loop.run_scenario(spec, phases=1)


def test_abort_check_fires_before_each_phase(spec):
    calls = []

    class Stop(RuntimeError):
        pass

    def abort():
        calls.append(True)
        if len(calls) >= 2:
            raise Stop()

    with pytest.raises(Stop):
        run_scenario(spec, phases=3, abort_check=abort)
    assert len(calls) == 2


def test_report_to_dict_is_json_friendly(spec):
    import json

    report = run_scenario(spec, mode="detected", phases=1)
    payload = report.to_dict()
    assert json.loads(json.dumps(payload)) == payload
    assert payload["final_delivery"] == report.final_delivery
    assert payload["total_repaired"] == report.total_repaired
