"""repro-scenarios CLI: list / show / run."""

from __future__ import annotations

import json

import pytest

from repro.scenarios.cli import main
from repro.scenarios.spec import ScenarioSpec
from repro.scenarios.zoo import ZOO_DIR, list_scenarios

from tests.scenarios.conftest import tiny_spec


def test_list_prints_every_zoo_name(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out.splitlines()
    assert out == list_scenarios()


def test_list_verbose_includes_descriptions(capsys):
    assert main(["list", "--verbose"]) == 0
    out = capsys.readouterr().out
    assert "flash-crowd:" in out
    assert "flash crowd" in out.lower()


def test_show_prints_the_committed_spec(capsys):
    assert main(["show", "pulsing-shrew"]) == 0
    out = capsys.readouterr().out
    assert json.loads(out) == json.loads(
        (ZOO_DIR / "pulsing-shrew.json").read_text()
    )


def test_show_unknown_name_fails_cleanly(capsys):
    assert main(["show", "nope"]) == 1
    assert "unknown scenario" in capsys.readouterr().err


def test_run_zoo_scenario_with_json_output(capsys, tmp_path):
    out_path = tmp_path / "report.json"
    assert (
        main(
            [
                "run",
                "stealth-lowrate",
                "--phases",
                "1",
                "--mode",
                "none",
                "--json",
                str(out_path),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "scenario stealth-lowrate" in out
    payload = json.loads(out_path.read_text())
    assert payload["scenario"] == "stealth-lowrate"
    assert payload["mode"] == "none"
    assert payload["phases"] == 1


def test_run_spec_file(capsys, tmp_path):
    spec_path = tmp_path / "campaign.json"
    spec_path.write_text(tiny_spec().to_json())
    assert main(["run", "--spec", str(spec_path), "--phases", "1"]) == 0
    assert "scenario tiny" in capsys.readouterr().out


def test_run_requires_exactly_one_source(capsys, tmp_path):
    assert main(["run"]) == 2
    spec_path = tmp_path / "campaign.json"
    spec_path.write_text(tiny_spec().to_json())
    assert main(["run", "pulsing-shrew", "--spec", str(spec_path)]) == 2


def test_run_missing_spec_file_fails_cleanly(capsys, tmp_path):
    assert main(["run", "--spec", str(tmp_path / "missing.json")]) == 1
    assert "cannot read" in capsys.readouterr().err


def test_run_rejects_bad_engine():
    with pytest.raises(SystemExit):
        main(["run", "pulsing-shrew", "--engine", "warp"])


def test_entry_point_is_wired():
    import tomllib

    with open("pyproject.toml", "rb") as handle:
        project = tomllib.load(handle)
    assert (
        project["project"]["scripts"]["repro-scenarios"]
        == "repro.scenarios.cli:main"
    )
    assert "scenarios/zoo/*.json" in (
        project["tool"]["setuptools"]["package-data"]["repro"]
    )
    # ScenarioSpec class is importable from the entry module's target
    assert ScenarioSpec is not None
