"""Schedule lowering: merge semantics, repair subtraction, fingerprints."""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.scenarios import PhaseSpec, PulsingFlood, compile_scenario
from repro.scenarios.schedule import InjectionSchedule

from tests.scenarios.conftest import tiny_spec


def test_compile_merges_per_node_rows_sorted(spec, deployment):
    # Two pulsing floods over the same layer in the same phase: nodes hit
    # by both must end up with one sorted merged row.
    doubled = dataclasses.replace(
        spec,
        phases=(
            spec.phases[0],
            dataclasses.replace(
                spec.phases[1],
                vectors=(
                    PulsingFlood(layer=1, fraction=0.8, rate=100.0),
                    PulsingFlood(layer=1, fraction=0.8, rate=100.0),
                ),
            ),
        ),
    )
    compiled = compile_scenario(doubled, deployment, salt=0)
    per_vector = [v.attack_times for v in compiled.vectors]
    overlap = set(per_vector[0]) & set(per_vector[1])
    assert overlap, "0.8 + 0.8 fractions must overlap somewhere"
    for node in overlap:
        row = compiled.schedule.attack_times[node]
        assert np.array_equal(row, np.sort(row))
        assert len(row) == len(per_vector[0][node]) + len(per_vector[1][node])
    total = sum(v.total_attack_packets for v in compiled.vectors)
    assert compiled.schedule.total_attack_packets == total


def test_without_targets_removes_only_those_rows(spec, deployment):
    schedule = compile_scenario(spec, deployment, salt=0).schedule
    targets = schedule.attack_targets
    assert len(targets) >= 2
    removed = targets[:1]
    pruned = schedule.without_targets(removed)
    assert pruned.attack_targets == tuple(
        node for node in targets if node not in removed
    )
    for node in pruned.attack_targets:
        assert np.array_equal(
            pruned.attack_times[node], schedule.attack_times[node]
        )
    assert pruned.surge_sources == schedule.surge_sources


def test_fingerprint_is_stable_and_sensitive(spec, deployment):
    one = compile_scenario(spec, deployment, salt=0).schedule
    two = compile_scenario(spec, deployment, salt=0).schedule
    assert one.fingerprint() == two.fingerprint()
    assert (
        compile_scenario(spec, deployment, salt=1).schedule.fingerprint()
        != one.fingerprint()
    )
    assert one.without_targets(one.attack_targets[:1]).fingerprint() != one.fingerprint()


def test_empty_schedule_is_benign():
    schedule = InjectionSchedule(attack_times={})
    assert schedule.attack_targets == ()
    assert schedule.total_attack_packets == 0
    assert schedule.total_surge_packets == 0
    assert schedule.without_targets([1, 2]).attack_targets == ()


def test_phase_windows_bound_vector_times(deployment):
    spec = tiny_spec(
        phases=(
            PhaseSpec(
                "only",
                3.0,
                5.0,
                vectors=(PulsingFlood(layer=1, fraction=0.5, rate=200.0),),
            ),
        )
    )
    schedule = compile_scenario(spec, deployment, salt=0).schedule
    for times in schedule.attack_times.values():
        assert (times > 3.0).all() and (times < 8.0).all()
