"""ScenarioSpec DSL: round-trip fidelity and validation errors."""

from __future__ import annotations

import dataclasses

import pytest

from repro.errors import ScenarioError
from repro.scenarios import (
    ArchitectureSpec,
    BenignSurge,
    BotnetWave,
    PhaseSpec,
    PulsingFlood,
    ScenarioSpec,
    SimSpec,
    TargetedLowRate,
    vector_from_dict,
)

from tests.scenarios.conftest import tiny_spec


def test_dict_round_trip_is_identity():
    spec = tiny_spec()
    assert ScenarioSpec.from_dict(spec.to_dict()) == spec


def test_json_round_trip_is_identity():
    spec = tiny_spec()
    assert ScenarioSpec.from_json(spec.to_json()) == spec


def test_to_dict_emits_every_field_including_defaults():
    payload = ScenarioSpec(name="bare").to_dict()
    assert set(payload) == {
        "name",
        "description",
        "seed",
        "engine",
        "tier",
        "architecture",
        "sim",
        "phases",
    }
    assert payload["engine"] == "fast"
    assert payload["tier"] == "numpy"
    assert payload["architecture"]["overlay_nodes"] == 2000


@pytest.mark.parametrize(
    "vector",
    [
        PulsingFlood(),
        BotnetWave(),
        TargetedLowRate(),
        BenignSurge(),
        PulsingFlood(layer=2, fraction=0.25, rate=100.0, intensity=2.0),
        BotnetWave(bots=7, recruit_rate=1.5),
    ],
)
def test_vector_round_trip(vector):
    assert vector_from_dict(vector.to_dict()) == vector


def test_vector_from_dict_coerces_json_ints_to_floats():
    decoded = vector_from_dict(
        {"kind": "pulsing-flood", "rate": 300, "period": 2, "duty": 1}
    )
    assert decoded == PulsingFlood(rate=300.0, period=2.0, duty=1.0)
    assert isinstance(decoded.rate, float)


@pytest.mark.parametrize(
    "payload,fragment",
    [
        ({"kind": "no-such-vector"}, "unknown vector kind"),
        ({"kind": "pulsing-flood", "rate": -1.0}, "rate"),
        ({"kind": "pulsing-flood", "bogus": 1}, "bogus"),
        ({"kind": "botnet-wave", "bots": 0}, "bots"),
        ({"kind": "targeted-low-rate", "count": "two"}, "count"),
        ({"kind": "benign-surge", "ramp": -0.5}, "ramp"),
        ("not-a-dict", "JSON object"),
    ],
)
def test_vector_from_dict_rejects_bad_payloads(payload, fragment):
    with pytest.raises(ScenarioError, match=fragment):
        vector_from_dict(payload)


def test_duplicate_phase_names_rejected():
    with pytest.raises(ScenarioError, match="duplicate phase name"):
        tiny_spec(
            phases=(PhaseSpec("p", 0.0, 2.0), PhaseSpec("p", 2.0, 2.0))
        )


def test_phase_past_sim_duration_rejected():
    with pytest.raises(ScenarioError, match="runs only to"):
        tiny_spec(phases=(PhaseSpec("late", 0.0, 100.0),))


def test_vector_layer_out_of_architecture_rejected():
    with pytest.raises(ScenarioError, match="targets layer"):
        tiny_spec(
            phases=(
                PhaseSpec(
                    "deep",
                    0.0,
                    4.0,
                    vectors=(TargetedLowRate(layer=9),),
                ),
            )
        )


@pytest.mark.parametrize(
    "kwargs",
    [
        {"name": ""},
        {"seed": -1},
        {"engine": "warp"},
        {"tier": "gpu"},
    ],
)
def test_spec_field_validation(kwargs):
    with pytest.raises(ScenarioError):
        tiny_spec(**kwargs)


def test_from_dict_rejects_unknown_and_mistyped_fields():
    good = tiny_spec().to_dict()
    bad = dict(good, surprise=1)
    with pytest.raises(ScenarioError, match="surprise"):
        ScenarioSpec.from_dict(bad)
    with pytest.raises(ScenarioError, match="seed"):
        ScenarioSpec.from_dict(dict(good, seed="eleven"))
    with pytest.raises(ScenarioError, match="seed"):
        ScenarioSpec.from_dict(dict(good, seed=True))  # bool is not an int


def test_from_json_rejects_malformed_json():
    with pytest.raises(ScenarioError, match="does not parse"):
        ScenarioSpec.from_json("{not json")


def test_architecture_spec_validates_eagerly():
    with pytest.raises(ScenarioError, match="invalid architecture"):
        ArchitectureSpec(overlay_nodes=2, sos_nodes=600)


def test_sim_spec_validates_eagerly():
    with pytest.raises(ScenarioError, match="invalid sim settings"):
        SimSpec(duration=-1.0)


def test_sim_config_tier_override_does_not_mutate_spec():
    spec = tiny_spec()
    assert spec.sim_config().tier == spec.tier
    assert spec.sim_config(tier="scalar").tier == "scalar"
    assert spec.tier == "numpy"


def test_vector_occurrences_are_phase_major():
    spec = tiny_spec()
    kinds = [vector.kind for _, vector in spec.vector_occurrences()]
    assert kinds == ["pulsing-flood", "targeted-low-rate", "benign-surge"]


def test_specs_are_frozen():
    spec = tiny_spec()
    with pytest.raises(dataclasses.FrozenInstanceError):
        spec.seed = 99
