"""The committed zoo: golden-file stability and load-time validation."""

from __future__ import annotations

import pathlib

import pytest

from repro.errors import ScenarioError
from repro.scenarios import ZOO_DIR, list_scenarios, load_scenario
from repro.scenarios.spec import ScenarioSpec
from repro.scenarios.zoo import scenario_path

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"


def test_zoo_has_at_least_six_scenarios():
    assert len(list_scenarios()) >= 6


def test_zoo_includes_a_mixed_benign_and_multi_attack_campaign():
    spec = load_scenario("combined-assault")
    kinds = {vector.kind for _, vector in spec.vector_occurrences()}
    assert "benign-surge" in kinds
    assert len(kinds - {"benign-surge"}) >= 2


@pytest.mark.parametrize("name", list_scenarios())
def test_zoo_file_matches_golden_bytes(name):
    committed = (ZOO_DIR / f"{name}.json").read_bytes()
    golden = (GOLDEN_DIR / f"{name}.json").read_bytes()
    assert committed == golden, (
        f"zoo/{name}.json drifted from its golden copy; regenerate both "
        "with tools/generate_zoo.py"
    )


@pytest.mark.parametrize("name", list_scenarios())
def test_zoo_file_is_exact_spec_serialization(name):
    text = (ZOO_DIR / f"{name}.json").read_text()
    spec = load_scenario(name)
    assert text == spec.to_json() + "\n"
    assert ScenarioSpec.from_json(spec.to_json()) == spec


@pytest.mark.parametrize("name", list_scenarios())
def test_zoo_loads_and_names_match(name):
    spec = load_scenario(name)
    assert spec.name == name
    assert spec.phases


def test_unknown_scenario_lists_available():
    with pytest.raises(ScenarioError, match="available"):
        load_scenario("definitely-not-a-scenario")


@pytest.mark.parametrize("name", ["", "../escape", "a/b", ".hidden", "a\\b"])
def test_invalid_names_rejected(name):
    with pytest.raises(ScenarioError, match="invalid scenario name"):
        scenario_path(name)


def test_name_stem_mismatch_rejected(tmp_path, monkeypatch):
    import repro.scenarios.zoo as zoo_module

    rogue = tmp_path / "zoo"
    rogue.mkdir()
    (rogue / "alias.json").write_text(
        ScenarioSpec(name="other").to_json() + "\n"
    )
    monkeypatch.setattr(zoo_module, "ZOO_DIR", rogue)
    with pytest.raises(ScenarioError, match="must match"):
        zoo_module.load_scenario("alias")


def test_unparseable_zoo_file_rejected(tmp_path, monkeypatch):
    import repro.scenarios.zoo as zoo_module

    rogue = tmp_path / "zoo"
    rogue.mkdir()
    (rogue / "broken.json").write_text("{nope")
    monkeypatch.setattr(zoo_module, "ZOO_DIR", rogue)
    with pytest.raises(ScenarioError, match="does not parse"):
        zoo_module.load_scenario("broken")
