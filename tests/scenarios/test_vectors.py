"""Vector compilation: determinism, stream isolation, shape properties."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.errors import ScenarioError
from repro.scenarios import (
    BenignSurge,
    BotnetWave,
    PhaseSpec,
    PulsingFlood,
    TargetedLowRate,
    compile_scenario,
)
from repro.scenarios.vectors import poisson_times

from tests.scenarios.conftest import tiny_spec


def _streams(seed=5):
    parent = np.random.SeedSequence(seed)
    a, b = parent.spawn(2)
    return np.random.default_rng(a), np.random.default_rng(b)


def test_poisson_times_window_and_determinism():
    stream_a = np.random.default_rng(np.random.SeedSequence(1))
    stream_b = np.random.default_rng(np.random.SeedSequence(1))
    times = poisson_times(stream_a, rate=50.0, start=3.0, end=9.0)
    assert np.array_equal(times, poisson_times(stream_b, 50.0, 3.0, 9.0))
    assert (times > 3.0).all() and (times < 9.0).all()
    assert np.array_equal(times, np.sort(times))
    # ~50/s over 6s: loose 5-sigma band
    assert 200 < len(times) < 400


def test_poisson_times_empty_cases():
    stream, _ = _streams()
    assert len(poisson_times(stream, 0.0, 0.0, 10.0)) == 0
    assert len(poisson_times(stream, 5.0, 4.0, 4.0)) == 0


@pytest.mark.parametrize(
    "vector",
    [
        PulsingFlood(layer=1, fraction=0.4, rate=200.0),
        BotnetWave(layer=1, fraction=0.4, bots=10),
        TargetedLowRate(layer=2, count=2, rate=80.0),
        BenignSurge(clients=3, rate=3.0),
    ],
)
def test_compile_is_deterministic(vector, deployment):
    outs = []
    for _ in range(2):
        target_stream, time_stream = _streams()
        outs.append(
            vector.compile(
                deployment, 2.0, 10.0, "p", target_stream, time_stream
            )
        )
    first, second = outs
    assert sorted(first.attack_times) == sorted(second.attack_times)
    for node in first.attack_times:
        assert np.array_equal(first.attack_times[node], second.attack_times[node])
    assert len(first.surge_sources) == len(second.surge_sources)
    for one, two in zip(first.surge_sources, second.surge_sources):
        assert one.contacts == two.contacts
        assert np.array_equal(one.times, two.times)


def test_pulsing_flood_respects_duty_windows(deployment):
    vector = PulsingFlood(layer=1, fraction=0.5, rate=300.0, period=2.0, duty=0.25)
    target_stream, time_stream = _streams()
    compiled = vector.compile(
        deployment, 4.0, 10.0, "p", target_stream, time_stream
    )
    assert compiled.total_attack_packets > 0
    for times in compiled.attack_times.values():
        assert (((times - 4.0) % 2.0) < 0.5).all()


def test_botnet_wave_ramps_up(deployment):
    vector = BotnetWave(
        layer=1, fraction=0.3, bots=30, rate_per_bot=20.0,
        recruit_rate=2.0, mean_lifetime=50.0,
    )
    target_stream, time_stream = _streams()
    compiled = vector.compile(
        deployment, 0.0, 10.0, "p", target_stream, time_stream
    )
    merged = np.sort(np.concatenate(list(compiled.attack_times.values())))
    early = int((merged < 3.0).sum())
    late = int((merged >= 7.0).sum())
    # Recruitment is cumulative and lifetimes are long, so the tail of
    # the window must carry much more traffic than the head.
    assert late > 2 * early


def test_targeted_low_rate_picks_exactly_count(deployment):
    vector = TargetedLowRate(layer=2, count=3, rate=50.0)
    target_stream, time_stream = _streams()
    compiled = vector.compile(
        deployment, 0.0, 8.0, "p", target_stream, time_stream
    )
    assert len(compiled.attack_times) == 3
    members = set(deployment.layer_members(2))
    assert set(compiled.attack_times) <= members


def test_benign_surge_contacts_and_ramp(deployment):
    vector = BenignSurge(clients=5, rate=4.0, ramp=4.0)
    target_stream, time_stream = _streams()
    compiled = vector.compile(
        deployment, 2.0, 10.0, "p", target_stream, time_stream
    )
    assert compiled.attack_times == {}
    assert len(compiled.surge_sources) == 5
    soaps = set(deployment.layer_members(1))
    for index, source in enumerate(compiled.surge_sources):
        assert set(source.contacts) <= soaps
        onset = 2.0 + 4.0 * (index / 5)
        assert (source.times >= onset).all()


def test_intensity_scales_rates_not_targets(deployment):
    base = TargetedLowRate(layer=2, count=2, rate=60.0)
    hot = dataclasses.replace(base, intensity=3.0)
    target_stream, time_stream = _streams()
    low = base.compile(deployment, 0.0, 10.0, "p", target_stream, time_stream)
    target_stream, time_stream = _streams()
    high = hot.compile(deployment, 0.0, 10.0, "p", target_stream, time_stream)
    assert sorted(low.attack_times) == sorted(high.attack_times)
    assert high.total_attack_packets > 2 * low.total_attack_packets


def test_layer_out_of_range_raises(deployment):
    target_stream, time_stream = _streams()
    with pytest.raises(ScenarioError, match="out of range"):
        PulsingFlood(layer=9).compile(
            deployment, 0.0, 5.0, "p", target_stream, time_stream
        )


def test_appending_a_vector_never_perturbs_earlier_occurrences(deployment):
    spec = tiny_spec()
    extended = dataclasses.replace(
        spec,
        phases=(
            spec.phases[0],
            dataclasses.replace(
                spec.phases[1],
                vectors=spec.phases[1].vectors + (BotnetWave(bots=6),),
            ),
        ),
    )
    base = compile_scenario(spec, deployment, salt=0)
    more = compile_scenario(extended, deployment, salt=0)
    # Occurrence-indexed streams: every original vector compiles to the
    # exact same arrays; only the new occurrence adds traffic.
    for index, compiled in enumerate(base.vectors):
        other = more.vectors[index]
        assert sorted(compiled.attack_times) == sorted(other.attack_times)
        for node in compiled.attack_times:
            assert np.array_equal(
                compiled.attack_times[node], other.attack_times[node]
            )
        for one, two in zip(compiled.surge_sources, other.surge_sources):
            assert one.contacts == two.contacts
            assert np.array_equal(one.times, two.times)
    assert len(more.vectors) == len(base.vectors) + 1


def test_salt_varies_times_but_not_targets(deployment):
    spec = tiny_spec()
    round0 = compile_scenario(spec, deployment, salt=0)
    round1 = compile_scenario(spec, deployment, salt=1)
    assert round0.schedule.attack_targets == round1.schedule.attack_targets
    changed = any(
        not np.array_equal(
            round0.schedule.attack_times[node],
            round1.schedule.attack_times[node],
        )
        for node in round0.schedule.attack_targets
    )
    assert changed
