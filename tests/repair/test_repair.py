"""Tests for the dynamic-repair extension (paper §5 future work)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import IntelligentAttacker
from repro.attacks.knowledge import AttackerKnowledge
from repro.attacks.strategies import SuccessiveStrategy
from repro.core import SOSArchitecture, SuccessiveAttack, evaluate
from repro.repair import (
    NO_REPAIR,
    RepairPolicy,
    RepairingDefender,
    estimate_ps_with_repair,
)
from repro.sos.deployment import SOSDeployment


def small_arch():
    return SOSArchitecture(
        layers=3,
        mapping="one-to-two",
        total_overlay_nodes=600,
        sos_nodes=45,
        filters=5,
    )


class TestRepairPolicy:
    def test_defaults(self):
        policy = RepairPolicy()
        assert policy.detection_probability == 0.5
        assert policy.capacity_per_round is None
        assert policy.rewire

    def test_noop_detection(self):
        assert NO_REPAIR.is_noop
        assert RepairPolicy(capacity_per_round=0).is_noop
        assert not RepairPolicy().is_noop

    def test_validation(self):
        with pytest.raises(Exception):
            RepairPolicy(detection_probability=1.5)
        with pytest.raises(ValueError):
            RepairPolicy(capacity_per_round=-1)


class TestRepairingDefender:
    def _damaged_deployment(self):
        deployment = SOSDeployment.deploy(small_arch(), rng=3)
        knowledge = AttackerKnowledge()
        victims = deployment.layer_members(2)[:5]
        for node_id in victims:
            deployment.network.get(node_id).compromise()
            knowledge.record_attempt(node_id, success=True)
            knowledge.learn_disclosure(
                deployment.network.get(node_id).neighbors
            )
        return deployment, knowledge, victims

    def test_perfect_detection_repairs_everything(self):
        deployment, knowledge, victims = self._damaged_deployment()
        defender = RepairingDefender(RepairPolicy(detection_probability=1.0), rng=1)
        repaired = defender.scan_and_repair(deployment, knowledge)
        assert repaired == 5
        assert all(deployment.network.get(v).is_good for v in victims)

    def test_repair_invalidates_attacker_knowledge(self):
        deployment, knowledge, victims = self._damaged_deployment()
        defender = RepairingDefender(RepairPolicy(detection_probability=1.0), rng=1)
        defender.scan_and_repair(deployment, knowledge)
        for victim in victims:
            assert victim not in knowledge.broken
            assert victim not in knowledge.disclosed
            assert victim not in knowledge.attempted

    def test_rewire_changes_neighbor_tables(self):
        deployment, knowledge, victims = self._damaged_deployment()
        before = {v: deployment.network.get(v).neighbors for v in victims}
        defender = RepairingDefender(RepairPolicy(detection_probability=1.0), rng=1)
        defender.scan_and_repair(deployment, knowledge)
        changed = sum(
            deployment.network.get(v).neighbors != before[v] for v in victims
        )
        # One-to-two tables over 15 candidates: at least some must change.
        assert changed >= 1

    def test_no_rewire_policy_keeps_tables(self):
        deployment, knowledge, victims = self._damaged_deployment()
        before = {v: deployment.network.get(v).neighbors for v in victims}
        defender = RepairingDefender(
            RepairPolicy(detection_probability=1.0, rewire=False), rng=1
        )
        defender.scan_and_repair(deployment, knowledge)
        assert all(
            deployment.network.get(v).neighbors == before[v] for v in victims
        )

    def test_capacity_limits_repairs(self):
        deployment, knowledge, _ = self._damaged_deployment()
        defender = RepairingDefender(
            RepairPolicy(detection_probability=1.0, capacity_per_round=2), rng=1
        )
        assert defender.scan_and_repair(deployment, knowledge) == 2

    def test_noop_policy_repairs_nothing(self):
        deployment, knowledge, victims = self._damaged_deployment()
        defender = RepairingDefender(NO_REPAIR, rng=1)
        assert defender.scan_and_repair(deployment, knowledge) == 0
        assert all(deployment.network.get(v).is_bad for v in victims)

    def test_hook_integration_records_rounds(self):
        deployment = SOSDeployment.deploy(small_arch(), rng=3)
        defender = RepairingDefender(RepairPolicy(detection_probability=1.0), rng=1)
        SuccessiveStrategy().execute(
            deployment,
            SuccessiveAttack(break_in_budget=60, congestion_budget=0,
                             rounds=3, prior_knowledge=0.2),
            rng=2,
            on_round_end=defender,
        )
        assert len(defender.repairs_per_round) >= 1
        assert defender.total_repaired == sum(defender.repairs_per_round.values())

    def test_repaired_filters_recover(self):
        deployment = SOSDeployment.deploy(small_arch(), rng=3)
        knowledge = AttackerKnowledge()
        filter_id = deployment.filters.filter_ids[0]
        deployment.filters.congest(filter_id)
        defender = RepairingDefender(RepairPolicy(detection_probability=1.0), rng=1)
        assert defender.scan_and_repair(deployment, knowledge) == 1
        assert deployment.filters.get(filter_id).is_good


class TestEstimator:
    ATTACK = SuccessiveAttack(
        break_in_budget=60, congestion_budget=120, rounds=3, prior_knowledge=0.2
    )

    def test_repair_never_hurts(self):
        none = estimate_ps_with_repair(
            small_arch(), self.ATTACK, NO_REPAIR, trials=30, seed=4
        )
        strong = estimate_ps_with_repair(
            small_arch(),
            self.ATTACK,
            RepairPolicy(detection_probability=1.0),
            trials=30,
            seed=4,
        )
        assert strong.mean >= none.mean

    def test_perfect_repair_restores_full_availability(self):
        estimate = estimate_ps_with_repair(
            small_arch(),
            self.ATTACK,
            RepairPolicy(detection_probability=1.0),
            trials=20,
            final_scans=2,
            seed=4,
        )
        assert estimate.mean > 0.95

    def test_no_repair_matches_plain_monte_carlo_regime(self):
        estimate = estimate_ps_with_repair(
            small_arch(), self.ATTACK, NO_REPAIR, trials=60, seed=4
        )
        analytical = evaluate(small_arch(), self.ATTACK).p_s
        assert estimate.agrees_with(analytical, tolerance=0.15)

    def test_monotone_in_detection_probability(self):
        means = []
        for p in (0.0, 0.5, 1.0):
            means.append(
                estimate_ps_with_repair(
                    small_arch(),
                    self.ATTACK,
                    RepairPolicy(detection_probability=p),
                    trials=40,
                    seed=4,
                ).mean
            )
        assert means[0] <= means[1] + 0.05
        assert means[1] <= means[2] + 0.05

    def test_invalid_config_rejected(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            estimate_ps_with_repair(
                small_arch(), self.ATTACK, NO_REPAIR, trials=0
            )
