"""Tests for the average-case repair analysis."""

from __future__ import annotations

import pytest

from repro.core import SOSArchitecture, SuccessiveAttack, evaluate
from repro.errors import ConfigurationError
from repro.repair import RepairPolicy, estimate_ps_with_repair
from repro.repair.analysis import analyze_successive_with_repair


def arch(mapping="one-to-two", layers=4):
    return SOSArchitecture(layers=layers, mapping=mapping)


class TestDegeneracy:
    @pytest.mark.parametrize("mapping", ["one-to-one", "one-to-two", "one-to-five"])
    @pytest.mark.parametrize("layers", [2, 4, 6])
    def test_zero_detection_equals_base_model(self, mapping, layers):
        attack = SuccessiveAttack()
        base = evaluate(arch(mapping, layers), attack).p_s
        repaired = analyze_successive_with_repair(
            arch(mapping, layers), attack, 0.0, final_scan=False
        ).p_s
        assert repaired == pytest.approx(base, abs=1e-12)


class TestShape:
    def test_monotone_in_detection(self):
        attack = SuccessiveAttack()
        values = [
            analyze_successive_with_repair(arch(), attack, rho).p_s
            for rho in (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)
        ]
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))

    def test_perfect_detection_full_availability(self):
        result = analyze_successive_with_repair(arch(), SuccessiveAttack(), 1.0)
        assert result.p_s == pytest.approx(1.0, abs=1e-9)

    def test_final_scan_only_helps(self):
        attack = SuccessiveAttack()
        with_scan = analyze_successive_with_repair(
            arch(), attack, 0.5, final_scan=True
        ).p_s
        without = analyze_successive_with_repair(
            arch(), attack, 0.5, final_scan=False
        ).p_s
        assert with_scan >= without - 1e-12

    def test_repair_reduces_bad_sets_everywhere(self):
        attack = SuccessiveAttack()
        base = evaluate(arch(), attack)
        repaired = analyze_successive_with_repair(arch(), attack, 0.6)
        for b_layer, r_layer in zip(base.layers, repaired.layers):
            assert r_layer.bad <= b_layer.bad + 1e-9

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            analyze_successive_with_repair(arch(), SuccessiveAttack(), 1.5)
        with pytest.raises(ConfigurationError):
            analyze_successive_with_repair(
                arch(), SuccessiveAttack(break_in_budget=20_000), 0.5
            )


class TestAgreementWithSimulation:
    @pytest.mark.parametrize("rho", [0.3, 0.7])
    def test_tracks_monte_carlo(self, rho):
        attack = SuccessiveAttack()
        analytical = analyze_successive_with_repair(arch(), attack, rho).p_s
        simulated = estimate_ps_with_repair(
            arch(),
            attack,
            RepairPolicy(detection_probability=rho),
            trials=50,
            seed=5,
        )
        assert simulated.agrees_with(analytical, tolerance=0.12), (
            f"rho={rho}: analytic={analytical:.3f} mc={simulated.mean:.3f}"
        )
