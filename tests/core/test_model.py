"""Tests for the unified evaluate() dispatcher."""

from __future__ import annotations

import pytest

from repro.core import (
    AttackModel,
    OneBurstAttack,
    SOSArchitecture,
    SuccessiveAttack,
    evaluate,
    path_availability_probability,
)
from repro.core.one_burst import analyze_one_burst
from repro.core.successive import analyze_successive
from repro.errors import ConfigurationError


@pytest.fixture
def architecture():
    return SOSArchitecture(layers=3, mapping="one-to-half")


class TestDispatch:
    def test_one_burst_routes_to_one_burst(self, architecture):
        attack = OneBurstAttack()
        assert evaluate(architecture, attack).p_s == pytest.approx(
            analyze_one_burst(architecture, attack).p_s
        )

    def test_successive_routes_to_successive(self, architecture):
        attack = SuccessiveAttack()
        assert evaluate(architecture, attack).p_s == pytest.approx(
            analyze_successive(architecture, attack).p_s
        )

    def test_base_attack_treated_as_one_burst(self, architecture):
        base = AttackModel(break_in_budget=200, congestion_budget=2000)
        assert evaluate(architecture, base).p_s == pytest.approx(
            analyze_one_burst(architecture, OneBurstAttack(200, 2000)).p_s
        )

    def test_unknown_attack_rejected(self, architecture):
        with pytest.raises(ConfigurationError):
            evaluate(architecture, "ddos")  # type: ignore[arg-type]


class TestShorthand:
    def test_probability_matches_full_result(self, architecture):
        attack = SuccessiveAttack()
        assert path_availability_probability(architecture, attack) == pytest.approx(
            evaluate(architecture, attack).p_s
        )
