"""Tests for the successive analytical model (§3.2, Algorithm 1)."""

from __future__ import annotations

import pytest

from repro.core import OneBurstAttack, SOSArchitecture, SuccessiveAttack
from repro.core.one_burst import analyze_one_burst
from repro.core.successive import (
    RoundCase,
    analyze_successive,
    analyze_successive_breakdown,
)
from repro.errors import ConfigurationError


def arch(layers=3, mapping="one-to-five", **kwargs):
    return SOSArchitecture(layers=layers, mapping=mapping, **kwargs)


class TestDegeneracy:
    """With R=1 and P_E=0 the successive model IS the one-burst model."""

    @pytest.mark.parametrize("layers", [1, 2, 3, 5, 8])
    @pytest.mark.parametrize(
        "mapping", ["one-to-one", "one-to-five", "one-to-half", "one-to-all"]
    )
    @pytest.mark.parametrize(
        "n_t,n_c", [(0, 0), (0, 6000), (200, 2000), (2000, 2000), (500, 10)]
    )
    def test_matches_one_burst(self, layers, mapping, n_t, n_c):
        a = arch(layers=layers, mapping=mapping)
        burst = analyze_one_burst(a, OneBurstAttack(n_t, n_c))
        successive = analyze_successive(
            a, SuccessiveAttack(n_t, n_c, rounds=1, prior_knowledge=0.0)
        )
        assert successive.p_s == pytest.approx(burst.p_s, abs=1e-12)
        assert successive.broken_in_total == pytest.approx(
            burst.broken_in_total, abs=1e-9
        )
        assert successive.disclosed_total == pytest.approx(
            burst.disclosed_total, abs=1e-9
        )
        for s_layer, b_layer in zip(successive.layers, burst.layers):
            assert s_layer.bad == pytest.approx(b_layer.bad, abs=1e-9)


class TestPriorKnowledge:
    def test_round_zero_knowledge_is_first_layer_fraction(self):
        breakdown = analyze_successive_breakdown(
            arch(), SuccessiveAttack(prior_knowledge=0.3)
        )
        first_round = breakdown.rounds[0]
        n1 = arch().layer_sizes_tuple[0]
        assert first_round.known_at_start == pytest.approx(0.3 * n1)
        # Those known nodes are attacked first, at layer 1.
        assert first_round.attacked_disclosed[0] == pytest.approx(0.3 * n1)

    def test_more_prior_knowledge_hurts(self):
        low = analyze_successive(arch(), SuccessiveAttack(prior_knowledge=0.0)).p_s
        high = analyze_successive(arch(), SuccessiveAttack(prior_knowledge=0.8)).p_s
        assert high <= low + 1e-12

    def test_prior_knowledge_only_at_layer_one(self):
        breakdown = analyze_successive_breakdown(
            arch(), SuccessiveAttack(prior_knowledge=0.5)
        )
        first_round = breakdown.rounds[0]
        assert all(v == 0.0 for v in first_round.attacked_disclosed[1:])


class TestAlgorithmCases:
    def test_general_case_on_defaults(self):
        breakdown = analyze_successive_breakdown(arch(), SuccessiveAttack())
        assert breakdown.rounds[0].case is RoundCase.GENERAL

    def test_final_budget_case_single_round(self):
        breakdown = analyze_successive_breakdown(
            arch(), SuccessiveAttack(rounds=1, prior_knowledge=0.0)
        )
        assert len(breakdown.rounds) == 1
        assert breakdown.rounds[0].case is RoundCase.FINAL_BUDGET

    def test_exhausted_case_when_budget_zero(self):
        breakdown = analyze_successive_breakdown(
            arch(), SuccessiveAttack(break_in_budget=0, prior_knowledge=0.4)
        )
        first = breakdown.rounds[0]
        assert first.case is RoundCase.EXHAUSTED
        # No budget: every known node is forfeited to the congestion phase.
        n1 = arch().layer_sizes_tuple[0]
        assert first.forfeited[0] == pytest.approx(0.4 * n1)
        assert sum(first.broken_in) == 0.0

    def test_disclosed_heavy_case(self):
        # Many rounds make the per-round quota alpha = N_T / R tiny; prior
        # knowledge of half the first layer (X_1 = 16.7 > alpha = 10) then
        # exceeds it while ample budget remains.
        attack = SuccessiveAttack(
            break_in_budget=300, rounds=30, prior_knowledge=0.5
        )
        breakdown = analyze_successive_breakdown(
            arch(mapping="one-to-five"), attack
        )
        cases = {state.case for state in breakdown.rounds}
        assert RoundCase.DISCLOSED_HEAVY in cases
        # Rounds in this case spend no random attempts.
        heavy = next(
            s for s in breakdown.rounds if s.case is RoundCase.DISCLOSED_HEAVY
        )
        assert sum(heavy.attacked_random) == 0.0

    def test_terminates_at_most_r_rounds(self):
        for rounds in (1, 2, 3, 7):
            breakdown = analyze_successive_breakdown(
                arch(), SuccessiveAttack(rounds=rounds)
            )
            assert breakdown.terminal_round <= rounds

    def test_budget_never_overspent(self):
        for rounds in (1, 2, 3, 5, 9):
            attack = SuccessiveAttack(break_in_budget=200, rounds=rounds)
            breakdown = analyze_successive_breakdown(arch(), attack)
            total_attempts = sum(
                sum(state.attacked) for state in breakdown.rounds
            )
            assert total_attempts <= attack.n_t + 1e-6


class TestRoundBookkeeping:
    def test_break_in_split_by_p_b(self):
        breakdown = analyze_successive_breakdown(
            arch(), SuccessiveAttack(break_in_success=0.3)
        )
        for state in breakdown.rounds:
            for h, b, u in zip(
                state.attacked_disclosed,
                state.broken_disclosed,
                state.survived_disclosed,
            ):
                assert b == pytest.approx(0.3 * h)
                assert u == pytest.approx(0.7 * h)
                assert b + u == pytest.approx(h)

    def test_layer_one_never_disclosed_in_rounds(self):
        breakdown = analyze_successive_breakdown(arch(), SuccessiveAttack())
        for state in breakdown.rounds:
            assert state.disclosed_unattacked[0] == 0.0

    def test_newly_known_feeds_next_round(self):
        breakdown = analyze_successive_breakdown(arch(), SuccessiveAttack())
        rounds = breakdown.rounds
        for prev, nxt in zip(rounds, rounds[1:]):
            # h^D of round j+1 equals d^N of round j on SOS layers 2..L.
            for i in range(1, arch().layers):
                assert nxt.attacked_disclosed[i] == pytest.approx(
                    prev.disclosed_unattacked[i]
                )

    def test_filters_accumulate_disclosures_only(self):
        breakdown = analyze_successive_breakdown(
            arch(mapping="one-to-all"), SuccessiveAttack(break_in_budget=2000)
        )
        for state in breakdown.rounds:
            assert state.attacked[-1] == 0.0
            assert state.broken_in[-1] == 0.0


class TestPaperSuccessiveClaims:
    """Qualitative claims from §3.2.3 (Figs. 6-8)."""

    def test_more_rounds_lower_ps(self):
        values = [
            analyze_successive(arch(layers=5), SuccessiveAttack(rounds=r)).p_s
            for r in range(1, 8)
        ]
        assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))

    def test_larger_nt_lower_ps(self):
        values = [
            analyze_successive(
                arch(mapping="one-to-two"), SuccessiveAttack(break_in_budget=nt)
            ).p_s
            for nt in (0, 100, 400, 1600, 6400)
        ]
        assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))

    def test_larger_overlay_population_raises_ps(self):
        small = analyze_successive(
            arch(mapping="one-to-one", total_overlay_nodes=10_000),
            SuccessiveAttack(break_in_budget=800),
        ).p_s
        large = analyze_successive(
            arch(mapping="one-to-one", total_overlay_nodes=20_000),
            SuccessiveAttack(break_in_budget=800),
        ).p_s
        assert large > small

    def test_increasing_distribution_beats_decreasing(self):
        # §3.2.3: with mapping degree > 1, increasing distributions win.
        increasing = analyze_successive(
            SOSArchitecture(layers=4, mapping="one-to-five", distribution="increasing"),
            SuccessiveAttack(),
        ).p_s
        decreasing = analyze_successive(
            SOSArchitecture(layers=4, mapping="one-to-five", distribution="decreasing"),
            SuccessiveAttack(),
        ).p_s
        assert increasing > decreasing

    def test_distribution_sensitivity_shrinks_with_layers(self):
        # §3.2.3: past its peak, sensitivity to the node distribution
        # gradually reduces as L grows. With one-to-five the spread peaks at
        # L=4 and declines beyond.
        def spread(layers):
            values = [
                analyze_successive(
                    SOSArchitecture(
                        layers=layers, mapping="one-to-five", distribution=dist
                    ),
                    SuccessiveAttack(),
                ).p_s
                for dist in ("even", "increasing", "decreasing")
            ]
            return max(values) - min(values)

        peak = spread(4)
        assert spread(8) < peak
        assert spread(10) < peak

    def test_distribution_sensitivity_grows_with_mapping_degree(self):
        # §3.2.3: "sensitivity of P_S to the node distribution seems more
        # pronounced for higher mapping degrees".
        def spread(mapping):
            values = [
                analyze_successive(
                    SOSArchitecture(layers=4, mapping=mapping, distribution=dist),
                    SuccessiveAttack(),
                ).p_s
                for dist in ("even", "increasing", "decreasing")
            ]
            return max(values) - min(values)

        assert spread("one-to-one") < spread("one-to-five")

    def test_best_config_is_l4_one_to_two_among_fig6a_grid(self):
        # Paper: "the one with L=4 and mapping degree one to two provides the
        # best overall performance" among the Fig. 6(a) configurations.
        grid = {}
        for layers in range(1, 9):
            for mapping in (
                "one-to-one",
                "one-to-two",
                "one-to-five",
                "one-to-half",
                "one-to-all",
            ):
                grid[(layers, mapping)] = analyze_successive(
                    SOSArchitecture(layers=layers, mapping=mapping),
                    SuccessiveAttack(),
                ).p_s
        best = max(grid, key=grid.get)
        assert best[1] == "one-to-two"
        assert best[0] in (3, 4, 5)


class TestValidationErrors:
    def test_budget_exceeding_population_rejected(self):
        with pytest.raises(ConfigurationError):
            analyze_successive(arch(), SuccessiveAttack(break_in_budget=20_000))


class TestStructure:
    def test_performance_layers_include_filters(self):
        result = analyze_successive(arch(layers=4), SuccessiveAttack())
        assert len(result.layers) == 5

    def test_bad_sets_within_bounds(self):
        result = analyze_successive(
            arch(mapping="one-to-all"), SuccessiveAttack(break_in_budget=2000)
        )
        for layer in result.layers:
            assert 0.0 <= layer.bad <= layer.size + 1e-9
