"""Tests for design-space search and the trade-off frontier."""

from __future__ import annotations

import pytest

from repro.core import OneBurstAttack, SuccessiveAttack
from repro.core.design_space import (
    DesignScore,
    best_design,
    enumerate_designs,
    evaluate_designs,
    tradeoff_frontier,
)
from repro.errors import ConfigurationError


class TestEnumerate:
    def test_grid_size(self):
        designs = enumerate_designs(layers=(1, 2, 3), mappings=("one-to-one",))
        assert len(designs) == 3

    def test_infeasible_points_skipped(self):
        # 20 SOS nodes cannot feed an increasing distribution at L=7 (the
        # second layer would hold < 1 node), but the even point survives.
        designs = enumerate_designs(
            layers=(7,),
            mappings=("one-to-one",),
            distributions=("increasing", "even"),
            sos_nodes=20,
        )
        assert len(designs) == 1
        assert designs[0].distribution == "even"

    def test_all_points_infeasible_rejected(self):
        with pytest.raises(ConfigurationError, match="empty"):
            enumerate_designs(
                layers=(7,),
                mappings=("one-to-one",),
                distributions=("increasing",),
                sos_nodes=20,
            )

    def test_empty_grid_rejected(self):
        with pytest.raises(ConfigurationError):
            enumerate_designs(layers=())


class TestEvaluate:
    def test_scores_sorted_descending(self):
        designs = enumerate_designs(layers=(1, 3, 5), mappings=("one-to-two",))
        scores = evaluate_designs(designs, {"default": SuccessiveAttack()})
        values = [score.aggregate for score in scores]
        assert values == sorted(values, reverse=True)

    def test_min_aggregate_is_worst_case(self):
        designs = enumerate_designs(layers=(3,), mappings=("one-to-two",))
        scenarios = {
            "congestion": OneBurstAttack(0, 6000),
            "break_in": SuccessiveAttack(break_in_budget=2000),
        }
        [score] = evaluate_designs(designs, scenarios, aggregate="min")
        assert score.aggregate == min(score.per_scenario.values())

    def test_mean_aggregate_with_weights(self):
        designs = enumerate_designs(layers=(3,), mappings=("one-to-two",))
        scenarios = {
            "a": OneBurstAttack(0, 2000),
            "b": OneBurstAttack(0, 6000),
        }
        [score] = evaluate_designs(
            designs, scenarios, aggregate="mean", weights={"a": 3.0, "b": 1.0}
        )
        expected = (3 * score.per_scenario["a"] + score.per_scenario["b"]) / 4
        assert score.aggregate == pytest.approx(expected)

    def test_label_mentions_design_features(self):
        designs = enumerate_designs(layers=(4,), mappings=("one-to-two",))
        scores = evaluate_designs(designs, {"d": SuccessiveAttack()})
        assert "L=4" in scores[0].label

    def test_validation(self):
        designs = enumerate_designs(layers=(3,), mappings=("one-to-one",))
        with pytest.raises(ConfigurationError):
            evaluate_designs(designs, {})
        with pytest.raises(ConfigurationError):
            evaluate_designs(designs, {"d": SuccessiveAttack()}, aggregate="max")
        with pytest.raises(ConfigurationError):
            evaluate_designs(
                designs,
                {"d": SuccessiveAttack()},
                aggregate="mean",
                weights={"d": 0.0},
            )


class TestBestDesign:
    def test_paper_headline_best_design(self):
        # §3.2.3: L=4 with one-to-two wins the Fig. 6(a) grid.
        score = best_design({"default": SuccessiveAttack()})
        assert isinstance(score, DesignScore)
        assert score.architecture.mapping_policy.label == "one-to-2"
        assert score.architecture.layers in (3, 4, 5)

    def test_pure_congestion_prefers_shallow_high_degree(self):
        score = best_design(
            {"congestion": OneBurstAttack(break_in_budget=0, congestion_budget=6000)}
        )
        assert score.architecture.mapping_policy.label in ("one-to-all", "one-to-half")
        assert score.aggregate == pytest.approx(1.0, abs=1e-6)


class TestFrontier:
    def test_frontier_is_pareto(self):
        designs = enumerate_designs(layers=(1, 2, 3, 4, 5))
        frontier = tradeoff_frontier(designs)
        for p in frontier:
            for q in frontier:
                strictly_better = (
                    q.break_in_resilience > p.break_in_resilience
                    and q.congestion_resilience >= p.congestion_resilience
                ) or (
                    q.break_in_resilience >= p.break_in_resilience
                    and q.congestion_resilience > p.congestion_resilience
                )
                assert not strictly_better

    def test_frontier_sorted_by_break_in_axis(self):
        designs = enumerate_designs(layers=(1, 2, 3, 4, 5))
        frontier = tradeoff_frontier(designs)
        values = [p.break_in_resilience for p in frontier]
        assert values == sorted(values)

    def test_tradeoff_exists(self):
        # No single design tops both axes: the paper's core message.
        designs = enumerate_designs(layers=range(1, 9))
        frontier = tradeoff_frontier(designs)
        assert len(frontier) >= 2
        best_break_in = max(p.break_in_resilience for p in frontier)
        best_congestion = max(p.congestion_resilience for p in frontier)
        assert not any(
            p.break_in_resilience == best_break_in
            and p.congestion_resilience == best_congestion
            for p in frontier
        )
