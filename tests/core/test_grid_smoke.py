"""Broad smoke matrix: every grid architecture under every grid attack.

Uses the shared grids from ``conftest`` to sweep ~250 (architecture,
attack) pairs through the unified evaluator, catching regressions anywhere
in the analytical pipeline's cross-product that the targeted tests do not
visit.
"""

from __future__ import annotations

import pytest

from repro.core import evaluate
from tests.conftest import architectures_grid, attacks_grid


@pytest.mark.parametrize(
    "architecture", architectures_grid(), ids=lambda a: a.describe()
)
def test_architecture_under_every_attack(architecture):
    for attack in attacks_grid():
        result = evaluate(architecture, attack)
        assert 0.0 <= result.p_s <= 1.0
        assert len(result.layers) == architecture.layers + 1
        for layer in result.layers:
            assert -1e-9 <= layer.bad <= layer.size + 1e-9


def test_grids_are_nontrivial():
    assert len(architectures_grid()) >= 20
    assert len(attacks_grid()) >= 10


def test_paper_fixture_configurations(paper_architecture, paper_one_burst,
                                      paper_successive):
    assert evaluate(paper_architecture, paper_one_burst).p_s > 0.9
    assert 0.0 <= evaluate(paper_architecture, paper_successive).p_s <= 1.0
