"""Tests for the adaptive attacker / architect game."""

from __future__ import annotations

import pytest

from repro.core import SOSArchitecture, SuccessiveAttack, evaluate
from repro.core.game import minimax_design, worst_case_attack
from repro.errors import ConfigurationError


def arch(layers=4, mapping="one-to-two"):
    return SOSArchitecture(layers=layers, mapping=mapping)


class TestWorstCaseAttack:
    def test_split_grid_spans_extremes(self):
        result = worst_case_attack(arch(), split_points=5)
        assert result.splits[0].break_in_budget == 0.0
        assert result.splits[-1].congestion_budget == pytest.approx(0.0)

    def test_budget_conserved_on_every_split(self):
        result = worst_case_attack(arch(), budget=2400, exchange_rate=10)
        for split in result.splits:
            total = split.congestion_budget + 10 * split.break_in_budget
            assert total == pytest.approx(2400)

    def test_worst_is_minimum(self):
        result = worst_case_attack(arch())
        assert result.worst.p_s == min(s.p_s for s in result.splits)
        assert result.guaranteed_p_s == result.worst.p_s

    def test_adaptive_attacker_at_least_as_good_as_fixed(self):
        # The best response can't do worse than the all-congestion split.
        result = worst_case_attack(arch(), budget=2400, exchange_rate=10)
        fixed = evaluate(
            arch(), SuccessiveAttack(break_in_budget=0, congestion_budget=2400)
        ).p_s
        assert result.guaranteed_p_s <= fixed + 1e-9

    def test_mixed_split_beats_extremes_against_balanced_design(self):
        # Against the paper's balanced design the attacker's optimum is
        # interior: some intelligence plus lots of bandwidth.
        result = worst_case_attack(arch(), split_points=13)
        assert 0.0 < result.worst.break_in_share < 1.0

    def test_break_in_cap_respected(self):
        small = SOSArchitecture(
            layers=2, mapping="one-to-two",
            total_overlay_nodes=2000, sos_nodes=40, filters=4,
        )
        result = worst_case_attack(small, budget=50_000, exchange_rate=10)
        for split in result.splits:
            assert split.break_in_budget <= 2000

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            worst_case_attack(arch(), budget=0)
        with pytest.raises(ConfigurationError):
            worst_case_attack(arch(), exchange_rate=0)
        with pytest.raises(ConfigurationError):
            worst_case_attack(arch(), split_points=1)


class TestIteratedBestResponse:
    def test_dynamics_cycle(self):
        from repro.core.game import iterated_best_response

        steps, cycled = iterated_best_response(iterations=6)
        assert cycled
        assert 2 <= len(steps) <= 6
        # The original SOS opens the game and is immediately destroyed.
        assert steps[0].architecture.mapping_policy.label == "one-to-all"
        assert steps[0].p_s < 0.01

    def test_overfitting_is_punished(self):
        from repro.core.game import iterated_best_response, worst_case_attack

        steps, _ = iterated_best_response(iterations=6)
        # At least one re-design gets exploited back below the minimax
        # guarantee of the balanced design (the lesson of the module).
        balanced = worst_case_attack(arch()).guaranteed_p_s
        assert any(step.p_s < balanced for step in steps)

    def test_validation(self):
        from repro.core.game import iterated_best_response

        with pytest.raises(ConfigurationError):
            iterated_best_response(iterations=0)


class TestMinimaxDesign:
    def test_winner_maximizes_guarantee(self):
        designs = [arch(layers, mapping) for layers in (2, 4)
                   for mapping in ("one-to-one", "one-to-two")]
        winner, results = minimax_design(designs, split_points=7)
        assert winner.guaranteed_p_s == max(r.guaranteed_p_s for r in results)
        assert results[0] is winner

    def test_default_grid_picks_balanced_design(self):
        winner, _ = minimax_design(split_points=7)
        assert winner.architecture.mapping_policy.label in ("one-to-2", "one-to-1")
        assert winner.architecture.layers >= 3

    def test_empty_designs_rejected(self):
        with pytest.raises(ConfigurationError):
            minimax_design([])

    def test_costlier_break_ins_help_the_defender(self):
        cheap, _ = minimax_design([arch()], exchange_rate=5, split_points=9)
        costly, _ = minimax_design([arch()], exchange_rate=40, split_points=9)
        assert costly.guaranteed_p_s >= cheap.guaranteed_p_s - 1e-9
