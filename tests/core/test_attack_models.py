"""Tests for attack-model specifications."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core import OneBurstAttack, SuccessiveAttack
from repro.errors import ConfigurationError


class TestOneBurst:
    def test_defaults_match_paper(self):
        attack = OneBurstAttack()
        assert attack.n_t == 200.0
        assert attack.n_c == 2000.0
        assert attack.p_b == 0.5

    def test_aliases(self):
        attack = OneBurstAttack(
            break_in_budget=123, congestion_budget=456, break_in_success=0.7
        )
        assert (attack.n_t, attack.n_c, attack.p_b) == (123.0, 456.0, 0.7)

    def test_zero_budgets_allowed(self):
        attack = OneBurstAttack(break_in_budget=0, congestion_budget=0)
        assert attack.n_t == 0.0

    def test_rejects_negative_budget(self):
        with pytest.raises(ConfigurationError):
            OneBurstAttack(break_in_budget=-1)
        with pytest.raises(ConfigurationError):
            OneBurstAttack(congestion_budget=-1)

    def test_rejects_invalid_probability(self):
        with pytest.raises(ConfigurationError):
            OneBurstAttack(break_in_success=1.5)

    def test_frozen(self):
        attack = OneBurstAttack()
        with pytest.raises(dataclasses.FrozenInstanceError):
            attack.break_in_budget = 10  # type: ignore[misc]


class TestSuccessive:
    def test_defaults_match_paper(self):
        attack = SuccessiveAttack()
        assert attack.r == 3
        assert attack.p_e == 0.2
        assert attack.n_t == 200.0
        assert attack.n_c == 2000.0

    def test_alpha_quota(self):
        attack = SuccessiveAttack(break_in_budget=300, rounds=4)
        assert attack.alpha == 75.0

    def test_rejects_zero_rounds(self):
        with pytest.raises(ConfigurationError):
            SuccessiveAttack(rounds=0)

    def test_rejects_bad_prior_knowledge(self):
        with pytest.raises(ConfigurationError):
            SuccessiveAttack(prior_knowledge=-0.1)
        with pytest.raises(ConfigurationError):
            SuccessiveAttack(prior_knowledge=1.1)

    def test_as_one_burst_projection(self):
        attack = SuccessiveAttack(
            break_in_budget=111, congestion_budget=222, break_in_success=0.3
        )
        projected = attack.as_one_burst()
        assert isinstance(projected, OneBurstAttack)
        assert projected.n_t == 111.0
        assert projected.n_c == 222.0
        assert projected.p_b == 0.3

    def test_equality_by_value(self):
        assert SuccessiveAttack() == SuccessiveAttack()
        assert SuccessiveAttack(rounds=2) != SuccessiveAttack(rounds=3)
