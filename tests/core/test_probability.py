"""Tests for the hypergeometric probability kernel (Eq. 1 machinery)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.probability import (
    all_bad_probability,
    clamp,
    exact_all_bad_probability,
    hop_success_probability,
    no_fresh_disclosure_probability,
)
from repro.errors import AnalysisError


class TestExactAgreement:
    """The continuous extension must equal C(y,z)/C(x,z) at integers."""

    @pytest.mark.parametrize("x", [1, 2, 5, 10, 33, 100])
    def test_matches_exact_on_integer_grid(self, x):
        for y in range(0, x + 1):
            for z in range(0, min(x, 12) + 1):
                expected = exact_all_bad_probability(x, y, z)
                actual = all_bad_probability(x, y, z)
                assert actual == pytest.approx(expected, abs=1e-12)

    def test_known_values(self):
        # Choosing 2 neighbors out of 4 nodes where 3 are bad:
        # C(3,2)/C(4,2) = 3/6 = 0.5
        assert all_bad_probability(4, 3, 2) == pytest.approx(0.5)
        # All nodes bad -> every neighbor bad with certainty.
        assert all_bad_probability(10, 10, 4) == pytest.approx(1.0)
        # Fewer bad nodes than neighbors -> impossible.
        assert all_bad_probability(10, 3, 4) == 0.0


class TestContinuousExtension:
    def test_fractional_between_integer_neighbors(self):
        low = all_bad_probability(10, 5, 3)
        mid = all_bad_probability(10, 5.5, 3)
        high = all_bad_probability(10, 6, 3)
        assert low < mid < high

    def test_monotone_in_bad_count(self):
        values = [all_bad_probability(33, s / 4, 5) for s in range(0, 133)]
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))

    def test_clamps_bad_count_into_range(self):
        assert all_bad_probability(10, -5, 3) == 0.0
        assert all_bad_probability(10, 99, 3) == 1.0

    def test_zero_sample_is_one(self):
        assert all_bad_probability(10, 4, 0) == 1.0


class TestValidation:
    def test_rejects_non_integer_sample(self):
        with pytest.raises(AnalysisError):
            all_bad_probability(10, 4, 2.5)  # type: ignore[arg-type]

    def test_rejects_bool_sample(self):
        with pytest.raises(AnalysisError):
            all_bad_probability(10, 4, True)  # type: ignore[arg-type]

    def test_rejects_negative_sample(self):
        with pytest.raises(AnalysisError):
            all_bad_probability(10, 4, -1)

    def test_rejects_oversized_sample(self):
        with pytest.raises(AnalysisError):
            all_bad_probability(10, 4, 11)

    def test_rejects_nonpositive_population(self):
        with pytest.raises(AnalysisError):
            all_bad_probability(0, 0, 0)
        with pytest.raises(AnalysisError):
            all_bad_probability(-3, 0, 0)

    def test_rejects_nan_population(self):
        with pytest.raises(AnalysisError):
            all_bad_probability(float("nan"), 1, 1)

    def test_exact_rejects_non_integers(self):
        with pytest.raises(AnalysisError):
            exact_all_bad_probability(10.0, 4, 2)  # type: ignore[arg-type]


class TestHopSuccess:
    def test_complement(self):
        assert hop_success_probability(10, 4, 2) == pytest.approx(
            1.0 - all_bad_probability(10, 4, 2)
        )

    def test_no_bad_nodes_means_certain_success(self):
        assert hop_success_probability(33, 0, 5) == 1.0

    def test_all_bad_means_certain_failure(self):
        assert hop_success_probability(33, 33, 5) == 0.0


class TestNoFreshDisclosure:
    def test_zero_breakins_survives(self):
        assert no_fresh_disclosure_probability(5, 33, 0) == 1.0

    def test_one_to_all_discloses_everything(self):
        assert no_fresh_disclosure_probability(10, 10, 0.5) == 0.0

    def test_matches_formula(self):
        assert no_fresh_disclosure_probability(5, 33, 3) == pytest.approx(
            (1 - 5 / 33) ** 3
        )

    def test_fractional_breakins(self):
        assert no_fresh_disclosure_probability(5, 33, 2.5) == pytest.approx(
            (1 - 5 / 33) ** 2.5
        )

    def test_negative_breakins_clamped(self):
        assert no_fresh_disclosure_probability(5, 33, -1) == 1.0

    def test_rejects_bad_mapping(self):
        with pytest.raises(AnalysisError):
            no_fresh_disclosure_probability(40, 33, 1)
        with pytest.raises(AnalysisError):
            no_fresh_disclosure_probability(-1, 33, 1)

    def test_rejects_bad_layer_size(self):
        with pytest.raises(AnalysisError):
            no_fresh_disclosure_probability(1, 0, 1)


class TestClamp:
    def test_inside(self):
        assert clamp(0.5, 0.0, 1.0) == 0.5

    def test_edges(self):
        assert clamp(-0.1, 0.0, 1.0) == 0.0
        assert clamp(1.1, 0.0, 1.0) == 1.0

    def test_empty_interval_rejected(self):
        with pytest.raises(AnalysisError):
            clamp(0.5, 1.0, 0.0)


@given(
    x=st.integers(min_value=1, max_value=200),
    y=st.floats(min_value=-10, max_value=300, allow_nan=False),
    z=st.integers(min_value=0, max_value=200),
)
def test_property_result_is_probability(x, y, z):
    """For any valid input the result lies in [0, 1]."""
    if z > x:
        with pytest.raises(AnalysisError):
            all_bad_probability(x, y, z)
        return
    value = all_bad_probability(x, y, z)
    assert 0.0 <= value <= 1.0


@given(
    x=st.integers(min_value=2, max_value=100),
    z=st.integers(min_value=1, max_value=20),
    data=st.data(),
)
def test_property_monotone_in_y(x, z, data):
    """More bad nodes never decreases the all-bad probability."""
    if z > x:
        z = x
    y1 = data.draw(st.floats(min_value=0, max_value=x, allow_nan=False))
    y2 = data.draw(st.floats(min_value=0, max_value=x, allow_nan=False))
    lo, hi = sorted((y1, y2))
    assert all_bad_probability(x, lo, z) <= all_bad_probability(x, hi, z) + 1e-12


@given(
    x=st.integers(min_value=2, max_value=60),
    y=st.integers(min_value=0, max_value=60),
    z=st.integers(min_value=0, max_value=12),
)
def test_property_continuous_equals_exact_at_integers(x, y, z):
    if z > x:
        return
    y = min(y, x)
    assert all_bad_probability(x, y, z) == pytest.approx(
        exact_all_bad_probability(x, y, z), abs=1e-12
    )
