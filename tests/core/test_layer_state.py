"""Direct tests for LayerState / SystemPerformance containers."""

from __future__ import annotations

import pytest

from repro.core.layer_state import LayerState, SystemPerformance, path_availability
from repro.errors import AnalysisError


def layer(index=1, size=20.0, degree=2, broken=1.0, congested=3.0):
    return LayerState(
        index=index,
        size=size,
        mapping_degree=degree,
        broken_in=broken,
        congested=congested,
    )


class TestLayerState:
    def test_bad_is_sum_clamped(self):
        assert layer(broken=1.0, congested=3.0).bad == 4.0
        assert layer(broken=15.0, congested=15.0).bad == 20.0

    def test_good_complements_bad(self):
        state = layer()
        assert state.good == pytest.approx(state.size - state.bad)

    def test_hop_success_matches_kernel(self):
        from repro.core.probability import hop_success_probability

        state = layer()
        assert state.hop_success == pytest.approx(
            hop_success_probability(20.0, 4.0, 2)
        )

    def test_clean_layer_certain_hop(self):
        assert layer(broken=0.0, congested=0.0).hop_success == 1.0

    def test_dead_layer_certain_failure(self):
        assert layer(broken=20.0, congested=0.0).hop_success == 0.0

    def test_validation(self):
        with pytest.raises(AnalysisError):
            LayerState(index=1, size=0.0, mapping_degree=1,
                       broken_in=0.0, congested=0.0)
        with pytest.raises(AnalysisError):
            LayerState(index=1, size=10.0, mapping_degree=0,
                       broken_in=0.0, congested=0.0)
        with pytest.raises(AnalysisError):
            LayerState(index=1, size=10.0, mapping_degree=1,
                       broken_in=-1.0, congested=0.0)


class TestPathAvailability:
    def test_product_of_hops(self):
        layers = [layer(index=i) for i in (1, 2, 3)]
        expected = 1.0
        for state in layers:
            expected *= state.hop_success
        assert path_availability(layers) == pytest.approx(expected)

    def test_empty_sequence_is_certain(self):
        assert path_availability([]) == 1.0

    def test_dead_hop_zeroes_everything(self):
        layers = [layer(), layer(index=2, broken=20.0, congested=0.0)]
        assert path_availability(layers) == 0.0


class TestSystemPerformance:
    def test_views(self):
        layers = (layer(index=1), layer(index=2))
        perf = SystemPerformance(
            p_s=path_availability(layers),
            layers=layers,
            broken_in_total=2.0,
            disclosed_total=5.0,
        )
        assert perf.hop_probabilities == tuple(
            state.hop_success for state in layers
        )
        assert perf.bad_per_layer == (4.0, 4.0)
        data = perf.as_dict()
        assert data["n_b"] == 2.0
        assert data["n_d"] == 5.0

    def test_ps_clamped_and_validated(self):
        layers = (layer(),)
        perf = SystemPerformance(
            p_s=1.0 + 5e-13, layers=layers,
            broken_in_total=0.0, disclosed_total=0.0,
        )
        assert perf.p_s == 1.0
        with pytest.raises(AnalysisError):
            SystemPerformance(
                p_s=1.5, layers=layers,
                broken_in_total=0.0, disclosed_total=0.0,
            )
