"""Tests for the operational-resource to abstract-budget mapping."""

from __future__ import annotations

import pytest

from repro.core.attack_models import SuccessiveAttack
from repro.core.budget import (
    BreakInCampaign,
    CongestionCostModel,
    attack_from_resources,
)
from repro.errors import ConfigurationError
from repro.simulation.capacity import NodeCapacity


class TestCongestionCostModel:
    def test_required_flood_rate(self):
        # c=100, theta=0.5 -> total arrivals 200; minus lam=10 -> 190 pps.
        model = CongestionCostModel()
        assert model.required_flood_rate == pytest.approx(190.0)

    def test_nodes_congestable_floor(self):
        model = CongestionCostModel()
        assert model.nodes_congestable(380.0) == 2
        assert model.nodes_congestable(379.9) == 1
        assert model.nodes_congestable(0.0) == 0

    def test_bandwidth_round_trip(self):
        model = CongestionCostModel()
        bandwidth = model.bandwidth_for(2000)
        assert model.nodes_congestable(bandwidth) == 2000

    def test_saturated_nodes_rejected(self):
        model = CongestionCostModel(
            node_capacity=10.0, legitimate_rate=50.0, congestion_threshold=0.5
        )
        assert model.required_flood_rate == 0.0
        with pytest.raises(ConfigurationError, match="legitimate load alone"):
            model.nodes_congestable(100.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CongestionCostModel(node_capacity=0)
        with pytest.raises(ConfigurationError):
            CongestionCostModel(congestion_threshold=1.0)

    def test_consistent_with_token_bucket_simulation(self):
        """A flood at the model's required rate congests the simulated
        token-bucket node; slightly below it does not."""
        model = CongestionCostModel(
            node_capacity=100.0, legitimate_rate=10.0, congestion_threshold=0.5
        )
        rate = model.required_flood_rate

        def drop_rate(total_arrival_rate: float) -> float:
            bucket = NodeCapacity(capacity=100.0, burst=200.0)
            step = 1.0 / total_arrival_rate
            time = 0.0
            # Long run so the initial burst allowance washes out.
            for _ in range(int(60 * total_arrival_rate)):
                bucket.offer(time)
                time += step
            return bucket.drop_rate

        over = drop_rate(rate + model.legitimate_rate + 10)
        under = drop_rate((rate + model.legitimate_rate) * 0.7)
        assert over >= 0.5 - 0.05
        assert under < 0.5


class TestBreakInCampaign:
    def test_total_attempts(self):
        assert BreakInCampaign(10, 20).total_attempts == 200

    def test_fractional_floor(self):
        assert BreakInCampaign(2.5, 3).total_attempts == 7

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BreakInCampaign(attempts_per_hour=-1)


class TestAttackFromResources:
    def test_paper_defaults_reachable(self):
        attack = attack_from_resources(bandwidth=380_000.0)
        assert isinstance(attack, SuccessiveAttack)
        assert attack.congestion_budget == 2000
        assert attack.break_in_budget == 200
        assert attack.rounds == 3

    def test_more_bandwidth_more_congestion(self):
        small = attack_from_resources(bandwidth=100_000.0)
        large = attack_from_resources(bandwidth=500_000.0)
        assert large.congestion_budget > small.congestion_budget

    def test_custom_campaign(self):
        attack = attack_from_resources(
            bandwidth=190_000.0,
            campaign=BreakInCampaign(attempts_per_hour=100, duration_hours=20),
            prior_knowledge=0.2,
        )
        assert attack.break_in_budget == 2000
        assert attack.prior_knowledge == 0.2
