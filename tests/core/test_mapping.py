"""Tests for mapping-degree policies."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.mapping import (
    ONE_TO_ALL,
    ONE_TO_FIVE,
    ONE_TO_HALF,
    ONE_TO_ONE,
    ONE_TO_TWO,
    FixedMapping,
    FractionMapping,
    degrees_for_layers,
    resolve_mapping,
)
from repro.errors import ConfigurationError


class TestFixedMapping:
    def test_basic_degree(self):
        assert FixedMapping(3).degree_for(33) == 3

    def test_clamped_to_layer_size(self):
        assert FixedMapping(5).degree_for(2) == 2

    def test_fractional_layer_floor(self):
        # A layer of 4.8 nodes can expose at most 4 distinct neighbors.
        assert FixedMapping(10).degree_for(4.8) == 4

    def test_minimum_one(self):
        assert FixedMapping(1).degree_for(1) == 1

    def test_rejects_zero_degree(self):
        with pytest.raises(ConfigurationError):
            FixedMapping(0)

    def test_rejects_empty_layer(self):
        with pytest.raises(ConfigurationError):
            FixedMapping(1).degree_for(0.5)

    def test_label(self):
        assert FixedMapping(7).label == "one-to-7"
        assert ONE_TO_ONE.label == "one-to-one".replace("one-to-one", "one-to-1")


class TestFractionMapping:
    def test_half(self):
        assert FractionMapping(0.5).degree_for(34) == 17

    def test_all(self):
        assert FractionMapping(1.0).degree_for(33) == 33

    def test_rounding(self):
        assert FractionMapping(0.5).degree_for(33) == round(16.5)

    def test_at_least_one(self):
        assert FractionMapping(0.1).degree_for(3) == 1

    def test_rejects_zero_fraction(self):
        with pytest.raises(ConfigurationError):
            FractionMapping(0.0)

    def test_rejects_above_one(self):
        with pytest.raises(ConfigurationError):
            FractionMapping(1.5)

    def test_labels(self):
        assert ONE_TO_HALF.label == "one-to-half"
        assert ONE_TO_ALL.label == "one-to-all"
        assert FractionMapping(0.25).label == "one-to-0.25frac"


class TestResolve:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("one-to-one", ONE_TO_ONE),
            ("one-to-two", ONE_TO_TWO),
            ("one-to-five", ONE_TO_FIVE),
            ("one-to-half", ONE_TO_HALF),
            ("one-to-all", ONE_TO_ALL),
        ],
    )
    def test_named_policies(self, name, expected):
        assert resolve_mapping(name) == expected

    def test_integer_shorthand(self):
        assert resolve_mapping(4) == FixedMapping(4)

    def test_policy_passthrough(self):
        policy = FractionMapping(0.3)
        assert resolve_mapping(policy) is policy

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown mapping policy"):
            resolve_mapping("one-to-none")

    def test_bool_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_mapping(True)

    def test_float_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_mapping(0.5)  # type: ignore[arg-type]


class TestDegreesForLayers:
    def test_mixed_layer_sizes(self):
        assert degrees_for_layers("one-to-half", [40, 20, 10]) == [20, 10, 5]

    def test_accepts_integer_policy(self):
        assert degrees_for_layers(2, [10, 1]) == [2, 1]


@given(
    degree=st.integers(min_value=1, max_value=100),
    size=st.floats(min_value=1.0, max_value=1000.0, allow_nan=False),
)
def test_property_fixed_degree_bounds(degree, size):
    resolved = FixedMapping(degree).degree_for(size)
    assert 1 <= resolved <= size


@given(
    fraction=st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
    size=st.floats(min_value=1.0, max_value=1000.0, allow_nan=False),
)
def test_property_fraction_degree_bounds(fraction, size):
    resolved = FractionMapping(fraction).degree_for(size)
    assert 1 <= resolved <= size
