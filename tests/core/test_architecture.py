"""Tests for the generalized SOS architecture configuration."""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import assume, given, strategies as st

from repro.core import (
    NodeDistribution,
    SOSArchitecture,
    original_sos_architecture,
)
from repro.errors import ConfigurationError


class TestConstruction:
    def test_paper_defaults(self):
        arch = SOSArchitecture(layers=3)
        assert arch.total_overlay_nodes == 10_000
        assert arch.sos_nodes == 100
        assert arch.filters == 10
        assert arch.layer_sizes_tuple == pytest.approx((100 / 3,) * 3)

    def test_layer_sizes_include_filters(self):
        arch = SOSArchitecture(layers=2)
        assert arch.layer_sizes_with_filters == pytest.approx((50.0, 50.0, 10.0))

    def test_explicit_layer_sizes(self):
        arch = SOSArchitecture(layers=3, layer_sizes=[10, 30, 60])
        assert arch.sos_nodes == 100
        assert arch.layer_sizes_tuple == (10.0, 30.0, 60.0)

    def test_explicit_sizes_length_mismatch(self):
        with pytest.raises(ConfigurationError, match="layer_sizes has"):
            SOSArchitecture(layers=3, layer_sizes=[50, 50])

    def test_explicit_sizes_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            SOSArchitecture(layers=2, layer_sizes=[100, 0])

    def test_sos_cannot_exceed_overlay(self):
        with pytest.raises(ConfigurationError, match="cannot exceed"):
            SOSArchitecture(layers=1, sos_nodes=200, total_overlay_nodes=100)

    def test_distribution_by_name(self):
        arch = SOSArchitecture(layers=4, distribution="increasing")
        sizes = arch.layer_sizes_tuple
        assert sizes[0] == pytest.approx(25.0)
        assert sizes[1] < sizes[2] < sizes[3]

    def test_frozen(self):
        arch = SOSArchitecture(layers=3)
        with pytest.raises(dataclasses.FrozenInstanceError):
            arch.layers = 4  # type: ignore[misc]

    def test_rejects_zero_layers(self):
        with pytest.raises(ConfigurationError):
            SOSArchitecture(layers=0)

    def test_rejects_zero_filters(self):
        with pytest.raises(ConfigurationError):
            SOSArchitecture(layers=3, filters=0)


class TestMappingDegrees:
    def test_one_to_all_resolution(self):
        arch = SOSArchitecture(layers=3, mapping="one-to-all")
        # Each SOS layer has 33.33 nodes -> 33 distinct neighbors; all 10 filters.
        assert arch.mapping_degrees == (33, 33, 33, 10)

    def test_one_to_one_resolution(self):
        arch = SOSArchitecture(layers=3, mapping="one-to-one")
        assert arch.mapping_degrees == (1, 1, 1, 1)

    def test_filter_mapping_override(self):
        arch = SOSArchitecture(
            layers=3, mapping="one-to-one", filter_mapping="one-to-all"
        )
        assert arch.mapping_degrees == (1, 1, 1, 10)

    def test_mapping_degree_accessor(self):
        arch = SOSArchitecture(layers=3, mapping="one-to-half")
        assert arch.mapping_degree(1) == 17  # round(33.33 / 2)
        assert arch.mapping_degree(4) == 5  # half of 10 filters

    def test_layer_size_accessor(self):
        arch = SOSArchitecture(layers=2)
        assert arch.layer_size(1) == pytest.approx(50.0)
        assert arch.layer_size(3) == 10.0  # filter layer

    def test_layer_index_bounds(self):
        arch = SOSArchitecture(layers=2)
        with pytest.raises(ConfigurationError):
            arch.layer_size(0)
        with pytest.raises(ConfigurationError):
            arch.layer_size(4)
        with pytest.raises(ConfigurationError):
            arch.mapping_degree(1.5)  # type: ignore[arg-type]


class TestDerivedViews:
    def test_integer_layer_sizes_preserve_total(self):
        arch = SOSArchitecture(layers=3)
        assert sum(arch.integer_layer_sizes) == 100

    def test_non_sos_nodes(self):
        arch = SOSArchitecture(layers=3)
        assert arch.non_sos_nodes == pytest.approx(9900.0)

    def test_describe_mentions_key_features(self):
        text = SOSArchitecture(layers=4, mapping="one-to-two").describe()
        assert "L=4" in text
        assert "one-to-2" in text
        assert "N=10000" in text


class TestOriginalSOS:
    def test_is_three_layer_one_to_all(self):
        arch = original_sos_architecture()
        assert arch.layers == 3
        assert arch.mapping_policy.label == "one-to-all"
        assert arch.mapping_degrees[:3] == (33, 33, 33)

    def test_custom_population(self):
        arch = original_sos_architecture(total_overlay_nodes=5000, sos_nodes=60)
        assert arch.total_overlay_nodes == 5000
        assert arch.sos_nodes == 60


@given(
    layers=st.integers(min_value=1, max_value=15),
    mapping=st.sampled_from(
        ["one-to-one", "one-to-two", "one-to-five", "one-to-half", "one-to-all"]
    ),
    distribution=st.sampled_from(list(NodeDistribution)),
    sos_nodes=st.integers(min_value=20, max_value=400),
)
def test_property_architecture_invariants(layers, mapping, distribution, sos_nodes):
    """Any valid configuration yields consistent derived views."""
    try:
        arch = SOSArchitecture(
            layers=layers,
            mapping=mapping,
            distribution=distribution,
            sos_nodes=sos_nodes,
        )
    except ConfigurationError:
        # Distributions that starve a layer below one node are rejected;
        # that is itself the contract under test here.
        assume(False)
    sizes = arch.layer_sizes_with_filters
    degrees = arch.mapping_degrees
    assert len(sizes) == layers + 1
    assert len(degrees) == layers + 1
    assert sum(arch.layer_sizes_tuple) == pytest.approx(float(sos_nodes))
    for size, degree in zip(sizes, degrees):
        assert 1 <= degree <= size
    assert sum(arch.integer_layer_sizes) == sos_nodes
