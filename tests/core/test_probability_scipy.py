"""Cross-validate the probability kernel against scipy.stats.

The continuous extension of ``P(x, y, z)`` must agree with scipy's exact
hypergeometric distribution at integer arguments: the probability that all
``z`` sampled neighbors are bad equals ``hypergeom.pmf(z, x, y, z)``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st
from scipy import stats

from repro.core.probability import all_bad_probability


@given(
    x=st.integers(min_value=1, max_value=80),
    y=st.integers(min_value=0, max_value=80),
    z=st.integers(min_value=0, max_value=15),
)
def test_matches_scipy_hypergeom(x, y, z):
    if z > x:
        return
    y = min(y, x)
    expected = float(stats.hypergeom.pmf(z, x, y, z))
    assert all_bad_probability(x, y, z) == pytest.approx(expected, abs=1e-10)


@pytest.mark.parametrize(
    "x,y,z",
    [(33, 20, 5), (100, 60, 10), (10, 10, 3), (50, 0, 4)],
)
def test_paper_scale_points(x, y, z):
    expected = float(stats.hypergeom.pmf(z, x, y, z))
    assert all_bad_probability(x, y, z) == pytest.approx(expected, abs=1e-12)


def test_survival_complement_matches_scipy():
    # P(at least one good neighbor) via scipy's sf vs our hop success.
    from repro.core.probability import hop_success_probability

    x, y, z = 33, 25, 5
    expected = 1.0 - float(stats.hypergeom.pmf(z, x, y, z))
    assert hop_success_probability(x, y, z) == pytest.approx(expected)
