"""Tests for node-distribution policies (§3.2.3)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.distributions import (
    NodeDistribution,
    decreasing_distribution,
    distribute,
    even_distribution,
    increasing_distribution,
    integerize,
)
from repro.errors import ConfigurationError


class TestEven:
    def test_simple_split(self):
        assert even_distribution(100, 4) == [25.0] * 4

    def test_fractional_split(self):
        sizes = even_distribution(100, 3)
        assert sizes == pytest.approx([100 / 3] * 3)

    def test_single_layer(self):
        assert even_distribution(100, 1) == [100.0]

    def test_rejects_zero_nodes(self):
        with pytest.raises(ConfigurationError):
            even_distribution(0, 3)


class TestIncreasing:
    def test_first_layer_keeps_even_share(self):
        sizes = increasing_distribution(100, 4)
        assert sizes[0] == pytest.approx(25.0)

    def test_tail_in_increasing_proportion(self):
        sizes = increasing_distribution(100, 4)
        # Tail shares 1:2:3 of the remaining 75.
        assert sizes[1:] == pytest.approx([12.5, 25.0, 37.5])

    def test_total_preserved(self):
        assert sum(increasing_distribution(100, 6)) == pytest.approx(100.0)

    def test_single_layer_degenerates(self):
        assert increasing_distribution(100, 1) == [100.0]

    def test_monotone_tail(self):
        sizes = increasing_distribution(100, 5)
        tail = sizes[1:]
        assert all(a < b for a, b in zip(tail, tail[1:]))


class TestDecreasing:
    def test_tail_in_decreasing_proportion(self):
        sizes = decreasing_distribution(100, 4)
        assert sizes[0] == pytest.approx(25.0)
        assert sizes[1:] == pytest.approx([37.5, 25.0, 12.5])

    def test_total_preserved(self):
        assert sum(decreasing_distribution(100, 6)) == pytest.approx(100.0)

    def test_is_mirror_of_increasing(self):
        inc = increasing_distribution(100, 5)
        dec = decreasing_distribution(100, 5)
        assert inc[1:] == pytest.approx(dec[1:][::-1])


class TestDistribute:
    def test_by_enum(self):
        assert distribute(100, 4, NodeDistribution.EVEN) == [25.0] * 4

    def test_by_name(self):
        assert distribute(100, 4, "increasing") == increasing_distribution(100, 4)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown node distribution"):
            distribute(100, 4, "parabolic")


class TestIntegerize:
    def test_already_integral(self):
        assert integerize([25.0, 25.0, 50.0]) == [25, 25, 50]

    def test_largest_remainder(self):
        assert integerize([33.4, 33.3, 33.3]) == [34, 33, 33]

    def test_total_preserved(self):
        result = integerize(distribute(100, 3, "even"))
        assert sum(result) == 100

    def test_increasing_distribution_totals(self):
        for layers in range(1, 12):
            assert sum(integerize(distribute(100, layers, "increasing"))) == 100
            assert sum(integerize(distribute(100, layers, "decreasing"))) == 100

    def test_rejects_non_integral_total(self):
        with pytest.raises(ConfigurationError):
            integerize([1.2, 1.3])

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            integerize([])

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            integerize([-1.0, 2.0])


@given(
    n=st.integers(min_value=1, max_value=5000),
    layers=st.integers(min_value=1, max_value=20),
    policy=st.sampled_from(list(NodeDistribution)),
)
def test_property_distribution_invariants(n, layers, policy):
    """Every policy: positive shares summing to n, one per layer."""
    sizes = distribute(n, layers, policy)
    assert len(sizes) == layers
    assert all(s > 0 for s in sizes)
    assert sum(sizes) == pytest.approx(float(n))


@given(
    n=st.integers(min_value=1, max_value=5000),
    layers=st.integers(min_value=1, max_value=20),
    policy=st.sampled_from(list(NodeDistribution)),
)
def test_property_integerize_preserves_total(n, layers, policy):
    result = integerize(distribute(n, layers, policy))
    assert sum(result) == n
    assert all(isinstance(v, int) for v in result)
