"""Hand-computed verification of the successive model's equations.

Each test evaluates one of the paper's Eqs. (10)-(20) by hand at a small
parameter point and compares against the implementation's round state —
the same style of check `test_one_burst.py` applies to Eqs. (5)-(7).
"""

from __future__ import annotations

import pytest

from repro.core import SOSArchitecture, SuccessiveAttack
from repro.core.successive import RoundCase, analyze_successive_breakdown

# Small, fully hand-checkable configuration:
# L=2, n=40 (n_i = 20), N=400, filters=4, one-to-five (m_i = 5, m_3 = 4),
# N_T=40 over R=2 (alpha=20), P_B=0.5, P_E=0.5 -> X_1 = 10.
ARCH = SOSArchitecture(
    layers=2,
    mapping="one-to-five",
    total_overlay_nodes=400,
    sos_nodes=40,
    filters=4,
)
ATTACK = SuccessiveAttack(
    break_in_budget=40,
    congestion_budget=0,
    break_in_success=0.5,
    rounds=2,
    prior_knowledge=0.5,
)


@pytest.fixture(scope="module")
def breakdown():
    return analyze_successive_breakdown(ARCH, ATTACK)


class TestRoundOne:
    """Round 1: X_1 = 10 < alpha = 20 < beta = 40 (general case)."""

    def test_case_classification(self, breakdown):
        assert breakdown.rounds[0].case is RoundCase.GENERAL
        assert breakdown.rounds[0].known_at_start == pytest.approx(10.0)

    def test_eq10_disclosed_attacks(self, breakdown):
        # h^D_{1,1} = d_{1,0} = 10 (prior knowledge, all at layer 1).
        state = breakdown.rounds[0]
        assert state.attacked_disclosed[0] == pytest.approx(10.0)
        assert state.attacked_disclosed[1] == 0.0

    def test_eq11_random_attacks(self, breakdown):
        # h^A_{i,1} = (alpha - X_1) * (n_i - d_{i,0} - 0) / (N - X_1 - 0).
        state = breakdown.rounds[0]
        pool = 400 - 10
        assert state.attacked_random[0] == pytest.approx(10 * (20 - 10) / pool)
        assert state.attacked_random[1] == pytest.approx(20 * (20 - 10) / pool)

    def test_eqs13_16_break_in_split(self, breakdown):
        state = breakdown.rounds[0]
        for i in (0, 1):
            assert state.broken_disclosed[i] == pytest.approx(
                0.5 * state.attacked_disclosed[i]
            )
            assert state.broken_random[i] == pytest.approx(
                0.5 * state.attacked_random[i]
            )
            assert state.survived_random[i] == pytest.approx(
                0.5 * state.attacked_random[i]
            )

    def test_eq18_19_layer2_disclosure(self, breakdown):
        # z_{2,1} = n_2 (1 - (1 - m_2/n_2)^{b_{1,1}} (1 - h_{2,1}/n_2));
        # d^N_{2,1} = z_{2,1} - h_{2,1}.
        state = breakdown.rounds[0]
        b_1_1 = state.broken_in[0]
        h_2_1 = state.attacked[1]
        z = 20 * (1 - (1 - 5 / 20) ** b_1_1 * (1 - h_2_1 / 20))
        assert state.disclosed_unattacked[1] == pytest.approx(z - h_2_1)

    def test_eq20_layer2_random_survivors_disclosed(self, breakdown):
        # d^A_{2,1} = u^A_{2,1} (1 - (1 - m_2/n_2)^{b_{1,1}}).
        state = breakdown.rounds[0]
        b_1_1 = state.broken_in[0]
        expected = state.survived_random[1] * (1 - (1 - 5 / 20) ** b_1_1)
        assert state.disclosed_survived_random[1] == pytest.approx(expected)

    def test_filter_disclosure_round_one(self, breakdown):
        # m_3 = 4 = all filters: any layer-2 break-in leaks the whole ring.
        state = breakdown.rounds[0]
        b_2_1 = state.broken_in[1]
        expected = 4 * (1 - (1 - 4 / 4) ** b_2_1) if b_2_1 > 0 else 0.0
        assert state.disclosed_unattacked[2] == pytest.approx(expected)


class TestRoundTwo:
    """Round 2 feeds on round 1's d^N and excludes everything attacked."""

    def test_x2_is_previous_rounds_fresh_disclosure(self, breakdown):
        first, second = breakdown.rounds[0], breakdown.rounds[1]
        assert second.known_at_start == pytest.approx(first.newly_known)

    def test_disclosed_attacks_follow_eq10(self, breakdown):
        first, second = breakdown.rounds[0], breakdown.rounds[1]
        # Layer 1 is never freshly disclosed; layer 2 inherits d^N_{2,1}.
        assert second.attacked_disclosed[0] == 0.0
        assert second.attacked_disclosed[1] == pytest.approx(
            first.disclosed_unattacked[1]
        )

    def test_random_pool_excludes_history(self, breakdown):
        # Eq. 11 at j=2: pool = N - X_2 - sum_k h_{.,1}.
        first, second = breakdown.rounds[0], breakdown.rounds[1]
        x2 = second.known_at_start
        spent_round_one = sum(first.attacked[:2])
        pool = 400 - x2 - spent_round_one
        budget_left = 40 - 20  # beta after round 1; equals alpha -> FINAL
        assert second.case is RoundCase.FINAL_BUDGET
        expected_random_layer1 = (
            (20 - first.attacked[0]) / pool * (budget_left - x2)
        )
        assert second.attacked_random[0] == pytest.approx(
            expected_random_layer1
        )

    def test_sos_attacked_share_of_budget(self, breakdown):
        # The per-layer h arrays count only attempts landing on SOS nodes;
        # the rest of each round's spend hits the 360 non-SOS overlay
        # nodes. Reconstruct the SOS share by hand for both rounds.
        first, second = breakdown.rounds
        # Round 1: 10 disclosed + 10 random spread over pool 390.
        round1 = 10 + 10 * (10 / 390) + 10 * (20 / 390)
        assert sum(first.attacked[:2]) == pytest.approx(round1)
        # Round 2: X_2 disclosed + (20 - X_2) random over the shrunken pool.
        x2 = second.known_at_start
        pool = 400 - x2 - sum(first.attacked[:2])
        untouched1 = 20 - first.attacked[0]
        untouched2 = 20 - x2 - first.attacked[1]
        round2 = x2 + (20 - x2) * (untouched1 + untouched2) / pool
        assert sum(second.attacked[:2]) == pytest.approx(round2)
        assert breakdown.terminal_round == 2
