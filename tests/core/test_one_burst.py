"""Tests for the one-burst analytical model (§3.1, Eqs. 1-9)."""

from __future__ import annotations

import pytest

from repro.core import OneBurstAttack, SOSArchitecture
from repro.core.one_burst import analyze_one_burst, analyze_one_burst_breakdown
from repro.errors import ConfigurationError


def arch(layers=3, mapping="one-to-half", **kwargs):
    return SOSArchitecture(layers=layers, mapping=mapping, **kwargs)


class TestNoAttack:
    def test_no_resources_perfect_availability(self):
        result = analyze_one_burst(arch(), OneBurstAttack(0, 0))
        assert result.p_s == 1.0
        assert result.broken_in_total == 0.0
        assert result.disclosed_total == 0.0

    def test_all_layers_untouched(self):
        result = analyze_one_burst(arch(), OneBurstAttack(0, 0))
        for layer in result.layers:
            assert layer.bad == 0.0
            assert layer.hop_success == 1.0


class TestBreakInPhase:
    def test_attempts_proportional_to_layer_share(self):
        breakdown = analyze_one_burst_breakdown(
            arch(layers=4), OneBurstAttack(break_in_budget=400)
        )
        # Each layer holds 25 of 10000 nodes; 400 trials -> 1 per layer.
        assert breakdown.attempted[:4] == pytest.approx((1.0,) * 4)

    def test_success_scaled_by_p_b(self):
        breakdown = analyze_one_burst_breakdown(
            arch(), OneBurstAttack(break_in_budget=300, break_in_success=0.25)
        )
        for h, b in zip(breakdown.attempted[:3], breakdown.broken_in[:3]):
            assert b == pytest.approx(0.25 * h)

    def test_filters_never_attacked(self):
        breakdown = analyze_one_burst_breakdown(
            arch(), OneBurstAttack(break_in_budget=5000)
        )
        assert breakdown.attempted[-1] == 0.0
        assert breakdown.broken_in[-1] == 0.0

    def test_total_broken_in_matches_paper_formula(self):
        # N_B = P_B * (n / N) * N_T
        attack = OneBurstAttack(break_in_budget=2000, break_in_success=0.5)
        breakdown = analyze_one_burst_breakdown(arch(), attack)
        assert breakdown.broken_in_total == pytest.approx(0.5 * 100 / 10000 * 2000)

    def test_budget_larger_than_population_rejected(self):
        with pytest.raises(ConfigurationError):
            analyze_one_burst(arch(), OneBurstAttack(break_in_budget=20_000))


class TestDisclosurePhase:
    def test_layer_one_never_disclosed(self):
        breakdown = analyze_one_burst_breakdown(
            arch(), OneBurstAttack(break_in_budget=2000)
        )
        assert breakdown.disclosed_unattacked[0] == 0.0
        assert breakdown.disclosed_survived[0] == 0.0

    def test_no_break_in_no_disclosure(self):
        breakdown = analyze_one_burst_breakdown(
            arch(), OneBurstAttack(break_in_budget=0, congestion_budget=3000)
        )
        assert breakdown.disclosed_total == 0.0

    def test_one_to_all_discloses_whole_next_layer(self):
        breakdown = analyze_one_burst_breakdown(
            arch(mapping="one-to-all"), OneBurstAttack(break_in_budget=2000)
        )
        # With one break-in upstream and m = n, z_i = n_i; every node in
        # layers 2.. is disclosed or attacked (d^A is a subset of the
        # attempted set, so it is not added here).
        sizes = arch(mapping="one-to-all").layer_sizes_with_filters
        for i in (1, 2, 3):
            disclosed_or_attacked = (
                breakdown.disclosed_unattacked[i] + breakdown.attempted[i]
            )
            assert disclosed_or_attacked == pytest.approx(sizes[i], rel=1e-6)

    def test_disclosure_grows_with_mapping_degree(self):
        attack = OneBurstAttack(break_in_budget=1000)
        small = analyze_one_burst_breakdown(arch(mapping="one-to-one"), attack)
        large = analyze_one_burst_breakdown(arch(mapping="one-to-five"), attack)
        assert large.disclosed_total > small.disclosed_total

    def test_eq5_matches_hand_computation(self):
        # L=2, even: n_i = 50, m_i = 5 (one-to-five), N_T = 1000, P_B = 0.5
        a = arch(layers=2, mapping="one-to-five")
        breakdown = analyze_one_burst_breakdown(a, OneBurstAttack(break_in_budget=1000))
        h2 = 50 / 10000 * 1000  # 5.0
        b1 = 0.5 * h2  # layer1 share equals layer2 share here
        z2 = 50 * (1 - (1 - 5 / 50) ** b1 * (1 - h2 / 50))
        assert breakdown.disclosed_or_attacked[1] == pytest.approx(z2)
        assert breakdown.disclosed_unattacked[1] == pytest.approx(z2 - h2)
        d_a2 = (h2 - b1) * (1 - (1 - 5 / 50) ** b1)
        assert breakdown.disclosed_survived[1] == pytest.approx(d_a2)


class TestCongestionPhase:
    def test_pure_random_congestion_uniform(self):
        # With no break-ins the budget spreads uniformly over the overlay.
        breakdown = analyze_one_burst_breakdown(
            arch(), OneBurstAttack(break_in_budget=0, congestion_budget=2000)
        )
        expected = 100 / 3 * 2000 / 10000
        assert breakdown.congested[:3] == pytest.approx((expected,) * 3)

    def test_filters_not_randomly_congested(self):
        breakdown = analyze_one_burst_breakdown(
            arch(), OneBurstAttack(break_in_budget=0, congestion_budget=9000)
        )
        assert breakdown.congested[-1] == 0.0

    def test_scarce_budget_proportional_split(self):
        # N_C far below N_D: congested_i = (N_C / N_D) * disclosed_i (Eq. 9).
        attack = OneBurstAttack(break_in_budget=2000, congestion_budget=10)
        breakdown = analyze_one_burst_breakdown(arch(mapping="one-to-five"), attack)
        n_d = breakdown.disclosed_total
        assert n_d > 10
        for i in range(4):
            disclosed = (
                breakdown.disclosed_unattacked[i] + breakdown.disclosed_survived[i]
            )
            assert breakdown.congested[i] == pytest.approx(10 / n_d * disclosed)
        assert sum(breakdown.congested) == pytest.approx(10.0)

    def test_ample_budget_congests_all_disclosed(self):
        attack = OneBurstAttack(break_in_budget=2000, congestion_budget=6000)
        breakdown = analyze_one_burst_breakdown(arch(mapping="one-to-five"), attack)
        for i in range(4):
            disclosed = (
                breakdown.disclosed_unattacked[i] + breakdown.disclosed_survived[i]
            )
            assert breakdown.congested[i] >= disclosed - 1e-9

    def test_congestion_never_exceeds_layer(self):
        attack = OneBurstAttack(break_in_budget=2000, congestion_budget=9999)
        breakdown = analyze_one_burst_breakdown(arch(mapping="one-to-all"), attack)
        sizes = arch(mapping="one-to-all").layer_sizes_with_filters
        for c, size in zip(breakdown.congested, sizes):
            assert 0.0 <= c <= size + 1e-9


class TestPaperFig4Claims:
    """Qualitative claims the paper makes about Fig. 4."""

    def test_pure_congestion_ps_decreases_with_layers(self):
        for mapping in ("one-to-one", "one-to-half"):
            values = [
                analyze_one_burst(
                    arch(layers=layers, mapping=mapping),
                    OneBurstAttack(break_in_budget=0, congestion_budget=6000),
                ).p_s
                for layers in range(1, 9)
            ]
            assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))

    def test_pure_congestion_higher_mapping_is_better(self):
        attack = OneBurstAttack(break_in_budget=0, congestion_budget=6000)
        one = analyze_one_burst(arch(mapping="one-to-one"), attack).p_s
        half = analyze_one_burst(arch(mapping="one-to-half"), attack).p_s
        all_ = analyze_one_burst(arch(mapping="one-to-all"), attack).p_s
        assert one < half <= all_

    def test_one_to_all_collapses_under_break_in(self):
        attack = OneBurstAttack(break_in_budget=200, congestion_budget=2000)
        result = analyze_one_burst(arch(mapping="one-to-all"), attack)
        assert result.p_s == pytest.approx(0.0, abs=1e-6)

    def test_heavier_congestion_lowers_ps(self):
        moderate = analyze_one_burst(
            arch(mapping="one-to-one"),
            OneBurstAttack(break_in_budget=0, congestion_budget=2000),
        ).p_s
        heavy = analyze_one_burst(
            arch(mapping="one-to-one"),
            OneBurstAttack(break_in_budget=0, congestion_budget=6000),
        ).p_s
        assert heavy < moderate

    def test_heavier_break_in_lowers_ps(self):
        light = analyze_one_burst(
            arch(mapping="one-to-half"), OneBurstAttack(200, 2000)
        ).p_s
        heavy = analyze_one_burst(
            arch(mapping="one-to-half"), OneBurstAttack(2000, 2000)
        ).p_s
        assert heavy < light

    def test_single_layer_best_for_pure_congestion(self):
        attack = OneBurstAttack(break_in_budget=0, congestion_budget=6000)
        single = analyze_one_burst(arch(layers=1, mapping="one-to-one"), attack).p_s
        for layers in range(2, 10):
            multi = analyze_one_burst(
                arch(layers=layers, mapping="one-to-one"), attack
            ).p_s
            assert single >= multi


class TestResultStructure:
    def test_layer_count_includes_filters(self):
        result = analyze_one_burst(arch(layers=5), OneBurstAttack())
        assert len(result.layers) == 6
        assert result.layers[-1].size == 10.0

    def test_ps_is_product_of_hops(self):
        result = analyze_one_burst(arch(), OneBurstAttack())
        product = 1.0
        for p in result.hop_probabilities:
            product *= p
        assert result.p_s == pytest.approx(product)

    def test_as_dict_round_trip(self):
        result = analyze_one_burst(arch(), OneBurstAttack())
        data = result.as_dict()
        assert data["p_s"] == result.p_s
        assert len(data["hop_probabilities"]) == 4
