"""Tests for the timely-delivery (latency) analysis."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core import OneBurstAttack, SOSArchitecture, SuccessiveAttack, evaluate
from repro.core.latency import (
    LatencyEstimate,
    estimate_latency,
    expected_probes,
    latency_availability_tradeoff,
)
from repro.errors import AnalysisError


class TestExpectedProbes:
    def test_clean_table_one_probe(self):
        assert expected_probes(5, 0.0) == 1.0

    def test_all_bad_limit_is_uniform_mean(self):
        assert expected_probes(5, 1.0) == 3.0

    def test_half_bad_two_entries(self):
        # E = (1*0.5 + 2*0.5*0.5) / (1 - 0.25) = 0.75 / 0.75 = 1.0 ... no:
        # k=1: 0.5; k=2: 0.5*0.5 = 0.25 -> (0.5 + 2*0.25)/(0.75) = 4/3.
        assert expected_probes(2, 0.5) == pytest.approx(4 / 3)

    def test_single_entry_table(self):
        # Conditioned on success, the single entry was good: one probe.
        assert expected_probes(1, 0.3) == pytest.approx(1.0)

    def test_monotone_in_bad_fraction(self):
        values = [expected_probes(8, q / 20) for q in range(20)]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))

    def test_bounded_by_table_size(self):
        for m in (1, 2, 5, 33):
            for q in (0.0, 0.3, 0.9, 0.99):
                assert 1.0 <= expected_probes(m, q) <= m

    def test_validation(self):
        with pytest.raises(AnalysisError):
            expected_probes(0, 0.5)
        with pytest.raises(AnalysisError):
            expected_probes(5, 1.5)


class TestEstimateLatency:
    def arch(self, layers=3, mapping="one-to-half"):
        return SOSArchitecture(layers=layers, mapping=mapping)

    def test_healthy_system_baseline(self):
        arch = self.arch()
        performance = evaluate(arch, OneBurstAttack(0, 0))
        estimate = estimate_latency(arch, performance, hop_latency=2.0)
        assert estimate.hops == 4
        assert estimate.expected_latency == pytest.approx(8.0)
        assert estimate.expected_latency == estimate.baseline_latency

    def test_damage_adds_probe_latency(self):
        arch = self.arch()
        performance = evaluate(arch, OneBurstAttack(0, 6000))
        estimate = estimate_latency(arch, performance)
        assert estimate.expected_latency > estimate.baseline_latency

    def test_more_layers_longer_baseline(self):
        for layers in (2, 4, 6):
            arch = self.arch(layers=layers)
            performance = evaluate(arch, OneBurstAttack(0, 0))
            estimate = estimate_latency(arch, performance, hop_latency=1.0)
            assert estimate.baseline_latency == layers + 1

    def test_zero_probe_cost_ignores_damage(self):
        arch = self.arch()
        performance = evaluate(arch, OneBurstAttack(0, 6000))
        estimate = estimate_latency(arch, performance, probe_cost=0.0)
        assert estimate.expected_latency == estimate.baseline_latency

    def test_mismatched_performance_rejected(self):
        arch3 = self.arch(layers=3)
        arch5 = self.arch(layers=5)
        performance = evaluate(arch5, OneBurstAttack(0, 0))
        with pytest.raises(AnalysisError):
            estimate_latency(arch3, performance)

    def test_bad_costs_rejected(self):
        arch = self.arch()
        performance = evaluate(arch, OneBurstAttack(0, 0))
        with pytest.raises(AnalysisError):
            estimate_latency(arch, performance, hop_latency=0.0)
        with pytest.raises(AnalysisError):
            estimate_latency(arch, performance, probe_cost=-1.0)


class TestTradeoff:
    def test_paper_section5_tradeoff_visible(self):
        """§5: more layers -> more break-in resilience but more latency."""
        designs = [
            SOSArchitecture(layers=layers, mapping="one-to-two")
            for layers in (2, 4, 6, 8)
        ]
        attack = SuccessiveAttack(break_in_budget=2000)
        points = latency_availability_tradeoff(designs, attack)
        latencies = [p.baseline_latency for p in points]
        assert latencies == sorted(latencies)  # latency grows with L
        # and the deepest design survives break-ins better than the shallowest
        assert points[-1].p_s >= points[0].p_s

    def test_higher_mapping_buys_availability_at_bounded_latency_cost(self):
        """§5's mapping/latency interplay, under this model's metric.

        Latency here is conditional on delivery, so one-to-one shows zero
        retry overhead (it either succeeds first try or fails outright)
        while one-to-half pays a small retry cost — but converts a 0.06
        availability into certainty. The retry overhead must stay bounded
        by the bad-fraction geometric mean (~1/(1-q) probes per hop).
        """
        attack = OneBurstAttack(break_in_budget=0, congestion_budget=6000)
        one = latency_availability_tradeoff(
            [SOSArchitecture(layers=3, mapping="one-to-one")], attack
        )[0]
        half = latency_availability_tradeoff(
            [SOSArchitecture(layers=3, mapping="one-to-half")], attack
        )[0]
        assert one.expected_latency == pytest.approx(one.baseline_latency)
        assert half.p_s > one.p_s + 0.9
        # q = 0.6 bad fraction -> about 1/(1-q) = 2.5 probes per hop; with
        # probe_cost 0.5 and 4 hops the overhead stays under 4 time units.
        assert half.expected_latency - half.baseline_latency < 4.0

    def test_labels(self):
        points = latency_availability_tradeoff(
            [SOSArchitecture(layers=3, mapping="one-to-two")],
            SuccessiveAttack(),
        )
        assert points[0].label == "L=3 one-to-2"


@given(
    m=st.integers(min_value=1, max_value=40),
    q=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)
def test_property_probes_in_range(m, q):
    value = expected_probes(m, q)
    assert 1.0 - 1e-12 <= value <= m + 1e-12
