"""Tests for the local sensitivity profile."""

from __future__ import annotations

import pytest

from repro.core import OneBurstAttack, SOSArchitecture, SuccessiveAttack, evaluate
from repro.core.sensitivity import sensitivity_profile
from repro.errors import ConfigurationError


def arch():
    return SOSArchitecture(layers=4, mapping="one-to-two")


@pytest.fixture(scope="module")
def profile():
    return sensitivity_profile(arch(), SuccessiveAttack())


class TestProfile:
    def test_sorted_by_magnitude(self, profile):
        magnitudes = [s.magnitude for s in profile]
        assert magnitudes == sorted(magnitudes, reverse=True)

    def test_covers_attack_and_design_parameters(self, profile):
        names = {s.parameter for s in profile}
        assert any("N_C" in n for n in names)
        assert any("N_T" in n for n in names)
        assert any("R (rounds)" in n for n in names)
        assert any("L (layers)" in n for n in names)
        assert any("N (overlay" in n for n in names)

    def test_deltas_match_direct_evaluation(self, profile):
        base = evaluate(arch(), SuccessiveAttack()).p_s
        nc = next(s for s in profile if s.parameter.startswith("N_C"))
        direct = evaluate(
            arch(), SuccessiveAttack(congestion_budget=nc.perturbed_value)
        ).p_s
        assert nc.base_p_s == pytest.approx(base)
        assert nc.perturbed_p_s == pytest.approx(direct)
        assert nc.delta == pytest.approx(direct - base)

    def test_attack_resources_hurt(self, profile):
        for prefix in ("N_C", "N_T", "P_B", "P_E", "R ("):
            entry = next(s for s in profile if s.parameter.startswith(prefix))
            assert entry.delta <= 1e-9, entry.parameter

    def test_population_growth_helps(self, profile):
        entry = next(s for s in profile if s.parameter.startswith("N (overlay"))
        assert entry.delta > 0

    def test_saturated_probability_skipped(self):
        result = sensitivity_profile(
            arch(), SuccessiveAttack(break_in_success=1.0)
        )
        assert not any(s.parameter.startswith("P_B") for s in result)

    def test_zero_budget_perturbation_is_absolute(self):
        result = sensitivity_profile(
            arch(), SuccessiveAttack(break_in_budget=0)
        )
        nt = next(s for s in result if s.parameter.startswith("N_T"))
        assert nt.base_value == 0.0
        assert nt.perturbed_value > 0.0


class TestValidation:
    def test_requires_successive_attack(self):
        with pytest.raises(ConfigurationError, match="SuccessiveAttack"):
            sensitivity_profile(arch(), OneBurstAttack())  # type: ignore[arg-type]

    def test_rel_step_bounds(self):
        with pytest.raises(ConfigurationError):
            sensitivity_profile(arch(), SuccessiveAttack(), rel_step=0.0)
        with pytest.raises(ConfigurationError):
            sensitivity_profile(arch(), SuccessiveAttack(), rel_step=1.5)
