"""Property-based invariants of the analytical models.

These hypothesis tests sweep random architectures and attacks and assert the
model-level invariants that must hold for *any* input: probabilities in
range, monotone damage in attack resources, bad sets bounded by layer sizes,
and internal consistency between ``P_S`` and the per-hop probabilities.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, assume, given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.core import (
    NodeDistribution,
    OneBurstAttack,
    SOSArchitecture,
    SuccessiveAttack,
    evaluate,
)

MAPPINGS = ["one-to-one", "one-to-two", "one-to-five", "one-to-half", "one-to-all"]


@st.composite
def architectures(draw):
    layers = draw(st.integers(min_value=1, max_value=10))
    mapping = draw(st.sampled_from(MAPPINGS))
    distribution = draw(st.sampled_from(list(NodeDistribution)))
    # Keep at least `layers` nodes per layer under the skewed distributions:
    # the increasing/decreasing tails give the smallest layer roughly a
    # 2/(L*(L-1)) share, so scale sos_nodes with layers^2.
    sos_nodes = draw(st.integers(min_value=max(20, layers * layers), max_value=300))
    # Keep the population an order of magnitude above the attack budgets the
    # attack strategies draw (<= 8000 congestion), matching the paper's
    # regime; at N_C ~= N the average-case formulas sit on a boundary where
    # monotonicity can wobble by ~1e-6.
    total = draw(st.integers(min_value=20_000, max_value=80_000))
    filters = draw(st.integers(min_value=1, max_value=30))
    try:
        return SOSArchitecture(
            layers=layers,
            mapping=mapping,
            distribution=distribution,
            sos_nodes=sos_nodes,
            total_overlay_nodes=max(total, sos_nodes),
            filters=filters,
        )
    except ConfigurationError:
        assume(False)


@st.composite
def one_burst_attacks(draw):
    return OneBurstAttack(
        break_in_budget=draw(st.integers(min_value=0, max_value=2000)),
        congestion_budget=draw(st.integers(min_value=0, max_value=8000)),
        break_in_success=draw(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
        ),
    )


@st.composite
def successive_attacks(draw):
    return SuccessiveAttack(
        break_in_budget=draw(st.integers(min_value=0, max_value=2000)),
        congestion_budget=draw(st.integers(min_value=0, max_value=8000)),
        break_in_success=draw(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
        ),
        rounds=draw(st.integers(min_value=1, max_value=8)),
        prior_knowledge=draw(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
        ),
    )


@settings(max_examples=150, suppress_health_check=[HealthCheck.too_slow], deadline=None)
@given(architecture=architectures(), attack=one_burst_attacks())
def test_one_burst_ps_is_probability(architecture, attack):
    result = evaluate(architecture, attack)
    assert 0.0 <= result.p_s <= 1.0
    for p in result.hop_probabilities:
        assert 0.0 <= p <= 1.0


@settings(max_examples=150, suppress_health_check=[HealthCheck.too_slow], deadline=None)
@given(architecture=architectures(), attack=successive_attacks())
def test_successive_ps_is_probability(architecture, attack):
    result = evaluate(architecture, attack)
    assert 0.0 <= result.p_s <= 1.0
    for p in result.hop_probabilities:
        assert 0.0 <= p <= 1.0


@settings(max_examples=100, suppress_health_check=[HealthCheck.too_slow], deadline=None)
@given(architecture=architectures(), attack=successive_attacks())
def test_bad_sets_bounded_by_layer_sizes(architecture, attack):
    result = evaluate(architecture, attack)
    for layer in result.layers:
        assert -1e-9 <= layer.bad <= layer.size + 1e-9
        assert layer.broken_in >= -1e-9
        assert layer.congested >= -1e-9


@settings(max_examples=100, suppress_health_check=[HealthCheck.too_slow], deadline=None)
@given(architecture=architectures(), attack=successive_attacks())
def test_ps_equals_product_of_hops(architecture, attack):
    result = evaluate(architecture, attack)
    product = 1.0
    for p in result.hop_probabilities:
        product *= p
    assert result.p_s == pytest.approx(product, abs=1e-9)


@settings(max_examples=75, suppress_health_check=[HealthCheck.too_slow], deadline=None)
@given(
    architecture=architectures(),
    attack=one_burst_attacks(),
    extra=st.integers(min_value=1, max_value=3000),
)
def test_more_congestion_never_helps(architecture, attack, extra):
    stronger = OneBurstAttack(
        break_in_budget=attack.break_in_budget,
        congestion_budget=attack.congestion_budget + extra,
        break_in_success=attack.break_in_success,
    )
    assert evaluate(architecture, stronger).p_s <= evaluate(
        architecture, attack
    ).p_s + 1e-9


@settings(max_examples=75, suppress_health_check=[HealthCheck.too_slow], deadline=None)
@given(
    architecture=architectures(),
    budget=st.integers(min_value=0, max_value=1500),
    extra=st.integers(min_value=1, max_value=500),
    p_b=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)
def test_more_break_in_never_helps_one_burst(architecture, budget, extra, p_b):
    weak = OneBurstAttack(budget, 2000, p_b)
    strong = OneBurstAttack(budget + extra, 2000, p_b)
    assert evaluate(architecture, strong).p_s <= evaluate(architecture, weak).p_s + 1e-9


@settings(max_examples=75, suppress_health_check=[HealthCheck.too_slow], deadline=None)
@given(architecture=architectures(), attack=successive_attacks())
def test_no_resources_means_no_damage(architecture, attack):
    harmless = SuccessiveAttack(
        break_in_budget=0,
        congestion_budget=0,
        break_in_success=attack.break_in_success,
        rounds=attack.rounds,
        prior_knowledge=attack.prior_knowledge,
    )
    result = evaluate(architecture, harmless)
    assert result.p_s == 1.0
