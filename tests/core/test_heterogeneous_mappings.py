"""Tests for heterogeneous per-layer mapping degrees (§2 flexibility)."""

from __future__ import annotations

import pytest

from repro.core import (
    OneBurstAttack,
    SOSArchitecture,
    SuccessiveAttack,
    evaluate,
)
from repro.errors import ConfigurationError
from repro.sos.deployment import SOSDeployment


class TestConfiguration:
    def test_per_layer_degrees_resolved(self):
        arch = SOSArchitecture(
            layers=3,
            layer_mappings=["one-to-five", "one-to-one", "one-to-half"],
        )
        # n_i = 33.33 -> degrees 5, 1, 17; filter hop follows `mapping`
        # (default one-to-all over 10 filters).
        assert arch.mapping_degrees == (5, 1, 17, 10)

    def test_integer_shorthand_per_layer(self):
        arch = SOSArchitecture(layers=2, layer_mappings=[3, 7])
        assert arch.mapping_degrees[:2] == (3, 7)

    def test_uniform_when_not_given(self):
        arch = SOSArchitecture(layers=3, mapping="one-to-two")
        assert len(set(arch.layer_mapping_policies)) == 1

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError, match="layer_mappings has"):
            SOSArchitecture(layers=3, layer_mappings=["one-to-one"])

    def test_filter_mapping_still_separate(self):
        arch = SOSArchitecture(
            layers=2,
            layer_mappings=[1, 1],
            filter_mapping="one-to-all",
        )
        assert arch.mapping_degrees == (1, 1, 10)


class TestAnalysis:
    def test_evaluates_under_both_models(self):
        arch = SOSArchitecture(
            layers=3, layer_mappings=["one-to-five", "one-to-two", "one-to-one"]
        )
        for attack in (OneBurstAttack(), SuccessiveAttack()):
            result = evaluate(arch, attack)
            assert 0.0 <= result.p_s <= 1.0

    def test_thin_deep_layers_beat_uniform_thick_under_break_in(self):
        """Design insight: wide first hop (client access) + thin deep hops
        (disclosure containment) outperforms uniform one-to-five under the
        default intelligent attack."""
        attack = SuccessiveAttack()
        uniform = evaluate(
            SOSArchitecture(layers=4, mapping="one-to-five"), attack
        ).p_s
        tapered = evaluate(
            SOSArchitecture(
                layers=4,
                layer_mappings=["one-to-five", "one-to-two", "one-to-two",
                                "one-to-one"],
                filter_mapping="one-to-two",
            ),
            attack,
        ).p_s
        assert tapered > uniform

    def test_default_filter_mapping_is_a_trap_with_layer_mappings(self):
        # When layer_mappings is given but `mapping` is left at its
        # one-to-all default, the servlet->filter hop stays one-to-all:
        # one broken servlet discloses every filter and P_S collapses.
        attack = SuccessiveAttack()
        trap = evaluate(
            SOSArchitecture(
                layers=4,
                layer_mappings=["one-to-five", "one-to-two", "one-to-two",
                                "one-to-one"],
            ),
            attack,
        ).p_s
        assert trap == pytest.approx(0.0, abs=1e-9)

    def test_degenerate_equivalence_with_uniform(self):
        attack = SuccessiveAttack()
        uniform = evaluate(SOSArchitecture(layers=3, mapping="one-to-two"), attack)
        explicit = evaluate(
            SOSArchitecture(layers=3, layer_mappings=["one-to-two"] * 3,
                            filter_mapping="one-to-two"),
            attack,
        )
        # Same degrees everywhere except possibly the filter hop default.
        base = SOSArchitecture(layers=3, mapping="one-to-two")
        assert explicit.p_s == pytest.approx(
            evaluate(base, attack).p_s, abs=1e-12
        ) or uniform.p_s == pytest.approx(explicit.p_s, abs=1e-12)


class TestDeployment:
    def test_wiring_respects_per_layer_degrees(self):
        arch = SOSArchitecture(
            layers=3,
            layer_mappings=[2, 5, 1],
            total_overlay_nodes=500,
            sos_nodes=60,
            filters=5,
        )
        deployment = SOSDeployment.deploy(arch, rng=3)
        # Layer-1 nodes map into layer 2 with m_2 = 5; layer-2 nodes map
        # into layer 3 with m_3 = 1.
        for node_id in deployment.layer_members(1):
            assert len(deployment.network.get(node_id).neighbors) == 5
        for node_id in deployment.layer_members(2):
            assert len(deployment.network.get(node_id).neighbors) == 1
