"""The headline reproduction tests: every figure regenerates and every
machine-checked claim the paper makes about it holds.

These are the tests that say "the reproduction reproduces the paper."
"""

from __future__ import annotations

import math

import pytest

from repro.experiments.figures import PAPER_FIGURES, run_figure
from repro.experiments.result import FigureResult


@pytest.fixture(scope="module")
def results():
    return {figure_id: run_figure(figure_id) for figure_id in PAPER_FIGURES}


class TestEveryPaperFigure:
    @pytest.mark.parametrize("figure_id", PAPER_FIGURES)
    def test_figure_regenerates(self, results, figure_id):
        result = results[figure_id]
        assert isinstance(result, FigureResult)
        assert result.figure_id == figure_id
        assert result.series

    @pytest.mark.parametrize("figure_id", PAPER_FIGURES)
    def test_all_values_are_probabilities(self, results, figure_id):
        for name, values in results[figure_id].series.items():
            for value in values:
                if isinstance(value, float) and math.isnan(value):
                    continue  # infeasible grid point, rendered as gap
                assert 0.0 <= value <= 1.0, f"{figure_id}/{name}: {value}"

    @pytest.mark.parametrize("figure_id", PAPER_FIGURES)
    def test_every_claim_holds(self, results, figure_id):
        result = results[figure_id]
        assert result.claims, f"{figure_id} encodes no claims"
        failed = result.failed_claims()
        assert not failed, (
            f"{figure_id} failed claims: "
            + "; ".join(c.description for c in failed)
        )


class TestSpecificNumbers:
    """Pin a few representative values so regressions are loud.

    These are *our* reproduced numbers (the paper prints curves, not
    tables); the tolerance guards against accidental model changes.
    """

    def test_fig4a_one_to_one_moderate_congestion_l1(self, results):
        # n=100 SOS nodes in one layer, N_C=2000 of N=10000 congested
        # -> s_1 = 20, P_1 = 1 - 20/100 = 0.8.
        value = results["fig4a"].series["one-to-one N_C=2000"][0]
        assert value == pytest.approx(0.8, abs=1e-6)

    def test_fig4a_one_to_one_heavy_congestion_l1(self, results):
        value = results["fig4a"].series["one-to-one N_C=6000"][0]
        assert value == pytest.approx(0.4, abs=1e-6)

    def test_fig6a_headline_configuration(self, results):
        value = results["fig6a"].series["one-to-two"][3]  # L = 4
        assert value == pytest.approx(0.594, abs=0.01)

    def test_fig7_r1_near_one(self, results):
        # One-round successive attack at defaults barely dents L>=3 designs.
        assert results["fig7"].series["L=4"][0] > 0.9

    def test_fig8a_population_dilution(self, results):
        small = results["fig8a"].series["one-to-one N=10000"]
        large = results["fig8a"].series["one-to-one N=20000"]
        # Doubling N lifts P_S by a visible margin at N_T=800.
        index = results["fig8a"].x_values.index(800)
        assert large[index] - small[index] > 0.1
