"""Tests for the programmable sweep API."""

from __future__ import annotations

import pytest

from repro.core import OneBurstAttack, SOSArchitecture, SuccessiveAttack, evaluate
from repro.errors import ConfigurationError, ExperimentError
from repro.experiments.sweep import architecture_sweep, attack_sweep, grid_sweep


def arch(**kwargs):
    defaults = dict(layers=4, mapping="one-to-two")
    defaults.update(kwargs)
    return SOSArchitecture(**defaults)


class TestAttackSweep:
    def test_values_evaluated_pointwise(self):
        result = attack_sweep(
            arch(), SuccessiveAttack(), "break_in_budget", [0, 200, 800]
        )
        for value, p_s in zip(result.values, result.p_s):
            expected = evaluate(
                arch(), SuccessiveAttack(break_in_budget=value)
            ).p_s
            assert p_s == pytest.approx(expected)

    def test_rounds_sweep_decreasing(self):
        result = attack_sweep(arch(), SuccessiveAttack(), "rounds", [1, 2, 3, 4])
        assert all(b <= a + 1e-9 for a, b in zip(result.p_s, result.p_s[1:]))

    def test_works_for_one_burst(self):
        result = attack_sweep(
            arch(), OneBurstAttack(), "congestion_budget", [0, 4000]
        )
        assert result.p_s[0] >= result.p_s[1]

    def test_unknown_parameter_lists_alternatives(self):
        with pytest.raises(ConfigurationError, match="break_in_budget"):
            attack_sweep(arch(), SuccessiveAttack(), "bandwidth", [1])

    def test_empty_values_rejected(self):
        with pytest.raises(ExperimentError):
            attack_sweep(arch(), SuccessiveAttack(), "rounds", [])

    def test_argmax_and_table(self):
        result = attack_sweep(arch(), SuccessiveAttack(), "rounds", [1, 3])
        assert result.argmax() == 1
        assert "rounds" in result.as_table()


class TestArchitectureSweep:
    def test_layers_sweep(self):
        result = architecture_sweep(
            arch(), SuccessiveAttack(), "layers", [2, 4, 6]
        )
        assert len(result.p_s) == 3
        assert result.parameter == "layers"

    def test_mapping_sweep(self):
        result = architecture_sweep(
            arch(),
            OneBurstAttack(break_in_budget=0, congestion_budget=6000),
            "mapping",
            ["one-to-one", "one-to-half", "one-to-all"],
        )
        assert result.p_s[0] <= result.p_s[1] <= result.p_s[2]

    def test_infeasible_point_raises(self):
        with pytest.raises(ConfigurationError):
            architecture_sweep(
                arch(sos_nodes=20), SuccessiveAttack(), "layers", [30]
            )


class TestGridSweep:
    @pytest.fixture(scope="class")
    def grid(self):
        return grid_sweep(
            arch(),
            SuccessiveAttack(),
            "layers",
            [2, 4, 6],
            "break_in_budget",
            [0, 200, 800],
        )

    def test_shape(self, grid):
        assert len(grid.p_s) == 3
        assert all(len(row) == 3 for row in grid.p_s)

    def test_row_and_column_views_consistent(self, grid):
        row = grid.row(4)
        column = grid.column(200)
        assert row.p_s[1] == column.p_s[1]  # the (4, 200) cell

    def test_best_cell_is_grid_maximum(self, grid):
        row_value, column_value, best = grid.best_cell()
        assert best == max(v for row in grid.p_s for v in row)
        assert best == grid.row(row_value).p_s[
            grid.column_values.index(column_value)
        ]

    def test_no_break_in_column_is_best(self, grid):
        assert grid.best_cell()[1] == 0

    def test_table_renders(self, grid):
        text = grid.as_table()
        assert "layers\\break_in_budget" in text

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            grid_sweep(arch(), SuccessiveAttack(), "layers", [], "rounds", [1])
