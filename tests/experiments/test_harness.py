"""Tests for the experiment registry, reporting, and CLI runner."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments.figures import REGISTRY, available, run_figure
from repro.experiments.report import render_markdown, render_text
from repro.experiments.result import Claim, FigureResult
from repro.experiments.runner import main


class TestRegistry:
    def test_all_paper_figures_registered(self):
        for figure_id in ("fig4a", "fig4b", "fig6a", "fig6b", "fig7", "fig8a", "fig8b"):
            assert figure_id in REGISTRY

    def test_validation_and_ablations_registered(self):
        for figure_id in ("val-mc", "abl-filters", "abl-prior", "abl-pb", "abl-tradeoff"):
            assert figure_id in REGISTRY

    def test_section5_extensions_registered(self):
        for figure_id in ("ext-latency", "ext-repair", "ext-monitoring"):
            assert figure_id in REGISTRY

    def test_available_lists_everything(self):
        assert set(available()) == set(REGISTRY)

    def test_unknown_figure_rejected(self):
        with pytest.raises(ExperimentError, match="unknown figure"):
            run_figure("fig99")


@pytest.fixture
def sample_result():
    return FigureResult(
        figure_id="figX",
        title="Sample",
        x_label="L",
        x_values=[1, 2],
        series={"s": [0.25, 0.75]},
        claims=[Claim("holds", True), Claim("broken", False)],
        notes="a note",
    )


class TestReport:
    def test_render_text_contains_table_and_claims(self, sample_result):
        text = render_text(sample_result)
        assert "Sample" in text
        assert "0.2500" in text
        assert "[PASS] holds" in text
        assert "[FAIL] broken" in text
        assert "a note" in text

    def test_render_text_without_plot(self, sample_result):
        text = render_text(sample_result, plot=False)
        assert "P_S (top=" not in text

    def test_render_markdown_structure(self, sample_result):
        md = render_markdown(sample_result)
        assert md.startswith("### figX")
        assert "| L | s |" in md
        assert "- [x] holds" in md
        assert "- [ ] broken" in md

    def test_render_text_handles_nan_gaps(self):
        # Infeasible sweep points are stored as NaN; the plot must render
        # them as gaps instead of crashing.
        result = FigureResult(
            figure_id="gappy",
            title="Gappy",
            x_label="L",
            x_values=[1, 2, 3],
            series={"s": [0.5, float("nan"), 0.7]},
        )
        text = render_text(result, plot=True)
        assert "Gappy" in text


class TestRunnerCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig4a" in out

    def test_single_figure(self, capsys):
        assert main(["fig4a", "--no-plot"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 4(a)" in out
        assert "all claims PASS" in out

    def test_no_arguments_errors(self, capsys):
        assert main([]) == 2

    def test_unknown_figure_id_errors_cleanly(self, capsys):
        assert main(["fig99"]) == 2
        err = capsys.readouterr().err
        assert "unknown figure" in err

    def test_trials_and_seed_overrides(self, capsys):
        # fig4a takes no trials/seed: overrides must be ignored cleanly.
        assert main(["fig4a", "--no-plot", "--trials", "5", "--seed", "1"]) == 0
        # val-mc accepts both: a tiny run should still succeed.
        assert main(["ext-repair", "--no-plot", "--trials", "5",
                     "--seed", "1"]) in (0, 1)


class TestRunFigureOverrides:
    def test_overrides_forwarded_when_supported(self):
        a = run_figure("fig4a-mc", trials=10, seed=3)
        b = run_figure("fig4a-mc", trials=10, seed=3)
        c = run_figure("fig4a-mc", trials=10, seed=4)
        assert a.series["monte_carlo"] == b.series["monte_carlo"]
        assert a.series["monte_carlo"] != c.series["monte_carlo"]

    def test_unsupported_overrides_ignored(self):
        result = run_figure("fig4a", trials=3, seed=1)
        assert result.figure_id == "fig4a"

    def test_markdown_output(self, tmp_path, capsys):
        path = tmp_path / "out.md"
        assert main(["fig4a", "--no-plot", "--markdown", str(path)]) == 0
        content = path.read_text()
        assert content.startswith("# Reproduced experiments")
        assert "fig4a" in content

    def test_json_output_round_trips(self, tmp_path, capsys):
        from repro.utils.serialization import load_results

        path = tmp_path / "out.json"
        assert main(["fig4a", "--no-plot", "--json", str(path)]) == 0
        [loaded] = load_results(path)
        assert loaded.figure_id == "fig4a"
        assert loaded.all_claims_hold


class TestExtensionFigures:
    def test_latency_extension_runs_and_passes(self):
        result = run_figure("ext-latency")
        assert result.all_claims_hold

    def test_underlay_extension_runs_and_passes(self):
        result = run_figure("ext-underlay")
        assert result.all_claims_hold


class TestRunnerErrorIsolation:
    def test_bad_figure_does_not_abort_batch(self, capsys):
        # fig99 errors, fig4a still runs; the batch exits 2 with a summary.
        assert main(["fig99", "fig4a", "--no-plot"]) == 2
        captured = capsys.readouterr()
        assert "ERROR [fig99]:" in captured.err
        assert "1 figure(s) errored (1 of 2 completed):" in captured.err
        assert "Fig. 4(a)" in captured.out  # the good figure rendered anyway

    def test_error_summary_lists_every_failure(self, capsys):
        assert main(["fig98", "fig99", "--no-plot"]) == 2
        err = capsys.readouterr().err
        assert "2 figure(s) errored (0 of 2 completed):" in err
        assert "fig98:" in err
        assert "fig99:" in err

    def test_clean_batch_still_exits_zero(self, capsys):
        assert main(["fig4a", "fig4b", "--no-plot"]) == 0
        assert "all claims PASS" in capsys.readouterr().out


class TestDegradedCoverageWarnings:
    @pytest.fixture
    def degraded_result(self):
        return FigureResult(
            figure_id="figW",
            title="Warned",
            x_label="L",
            x_values=[1],
            series={"s": [0.5]},
            warnings=["3 of 30 trials failed at churn=0.2"],
        )

    def test_render_text_shows_warning_block(self, degraded_result):
        text = render_text(degraded_result, plot=False)
        assert "WARNING — degraded coverage:" in text
        assert "! 3 of 30 trials failed at churn=0.2" in text

    def test_render_markdown_shows_warning_block(self, degraded_result):
        md = render_markdown(degraded_result)
        assert "> **Warning — degraded coverage:**" in md
        assert "> - 3 of 30 trials failed at churn=0.2" in md

    def test_clean_result_has_no_warning_block(self, sample_result):
        assert "WARNING" not in render_text(sample_result, plot=False)
        assert "Warning" not in render_markdown(sample_result)
