"""Unit tests for figure-module helpers and configuration constants."""

from __future__ import annotations

import pytest

from repro.experiments import config
from repro.experiments.fig8 import _plateau_width


class TestPlateauWidth:
    def test_flat_curve_full_width(self):
        assert _plateau_width([0.9, 0.5, 0.5, 0.5, 0.5]) == 4

    def test_drop_ends_plateau(self):
        # Reference is values[1]; the slide starts at the 4th point.
        assert _plateau_width([0.9, 0.5, 0.48, 0.45, 0.1]) == 3

    def test_tolerance_is_relative(self):
        values = [1.0, 0.5, 0.45, 0.40]
        # 0.45 is within 15% of 0.5; 0.40 is not (0.1 > 0.075).
        assert _plateau_width(values, tolerance=0.15) == 2
        # At 25% all three post-N_T=0 points stay on the plateau.
        assert _plateau_width(values, tolerance=0.25) == 3

    def test_short_input(self):
        assert _plateau_width([1.0]) == 0


class TestPaperConstants:
    """The §3 parameter points, pinned so config drift is loud."""

    def test_system_defaults(self):
        assert config.TOTAL_OVERLAY_NODES == 10_000
        assert config.SOS_NODES == 100
        assert config.FILTERS == 10
        assert config.BREAK_IN_SUCCESS == 0.5

    def test_successive_defaults(self):
        assert config.BREAK_IN_BUDGET == 200
        assert config.CONGESTION_BUDGET == 2_000
        assert config.ROUNDS == 3
        assert config.PRIOR_KNOWLEDGE == 0.2

    def test_sweeps_cover_the_paper_axes(self):
        assert config.LAYER_SWEEP[0] == 1
        assert set(config.FIG4_MAPPINGS) == {
            "one-to-one", "one-to-half", "one-to-all",
        }
        assert "one-to-two" in config.FIG6_MAPPINGS
        assert "one-to-five" in config.FIG6_MAPPINGS
        assert config.ROUND_SWEEP[0] == 1
        assert 0 in config.BREAK_IN_SWEEP
