"""Shared --engine / --tier options on the experiment runner."""

from __future__ import annotations

import pytest

from repro.experiments.runner import build_parser, main


def test_engine_choices():
    parser = build_parser()
    args = parser.parse_args(["scn-zoo", "--engine", "event"])
    assert args.engine == "event"
    with pytest.raises(SystemExit):
        parser.parse_args(["scn-zoo", "--engine", "warp"])


def test_tier_choices():
    parser = build_parser()
    args = parser.parse_args(["scn-zoo", "--tier", "numpy"])
    assert args.tier == "numpy"
    with pytest.raises(SystemExit):
        parser.parse_args(["scn-zoo", "--tier", "gpu"])


def test_event_engine_is_a_compatible_alias(capsys):
    # --event-engine alone still works; combined with a contradictory
    # --engine it must fail loudly instead of silently picking one.
    assert main(["bogus-fig", "--engine", "fast", "--event-engine"]) == 2
    assert "disagree" in capsys.readouterr().err


def test_engine_and_alias_agreeing_is_accepted(capsys):
    # ERROR (unknown figure) not the disagreement exit: flag handling
    # passed and the runner proceeded to figure lookup.
    assert main(["bogus-fig", "--engine", "event", "--event-engine"]) == 2
    assert "ERROR" in capsys.readouterr().err
