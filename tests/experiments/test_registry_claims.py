"""Every cheap (pure-analytic) registered experiment must pass its claims.

The Monte Carlo experiments (val-mc, ext-repair, ext-monitoring,
ext-priority, abl-variants, fig4a-mc, ext-underlay, ext-placement) take
seconds to minutes and run in the benchmark suite; everything analytic is
asserted here on every test run.
"""

from __future__ import annotations

import pytest

from repro.experiments.figures import REGISTRY, run_figure

ANALYTIC_FIGURES = [
    "fig4a",
    "fig4b",
    "fig6a",
    "fig6b",
    "fig7",
    "fig8a",
    "fig8b",
    "fig-nc",
    "fig-nc-pure",
    "base-n",
    "abl-filters",
    "abl-prior",
    "abl-pb",
    "abl-tradeoff",
    "abl-shared",
    "ext-latency",
    "ext-game",
    "ext-sensitivity",
]

MC_FIGURES = [
    "val-mc",
    "abl-variants",
    "ext-repair",
    "ext-monitoring",
    "ext-underlay",
    "ext-priority",
    "ext-placement",
    "fig4a-mc",
    "res-churn",
    "res-detect",
    "res-flood",
    "det-traceback",
    "det-ppm",
    "det-sweep",
    # scn-zoo is simulation-backed like the MC figures; its claims are
    # asserted by tests/scenarios/test_scenario_figure.py.
    "scn-zoo",
]


def test_every_registered_figure_is_classified():
    assert set(ANALYTIC_FIGURES) | set(MC_FIGURES) == set(REGISTRY)
    assert not set(ANALYTIC_FIGURES) & set(MC_FIGURES)


@pytest.mark.parametrize("figure_id", ANALYTIC_FIGURES)
def test_analytic_figure_claims_pass(figure_id):
    result = run_figure(figure_id)
    failed = result.failed_claims()
    assert not failed, f"{figure_id}: " + "; ".join(
        claim.description for claim in failed
    )
