"""Direct tests for the validation experiment module (small trials)."""

from __future__ import annotations

import pytest

from repro.experiments.validation import (
    ValidationPoint,
    default_grid,
    run_validation,
    validation_figure,
)
from repro.repair import NO_REPAIR, RepairPolicy, repair_benefit
from repro.core import SOSArchitecture, SuccessiveAttack


class TestDefaultGrid:
    def test_spans_both_attack_models(self):
        grid = default_grid()
        from repro.core import OneBurstAttack

        kinds = {type(attack) for _, _, attack in grid}
        assert OneBurstAttack in kinds
        assert SuccessiveAttack in kinds
        assert len(grid) >= 6

    def test_names_unique(self):
        names = [name for name, _, _ in default_grid()]
        assert len(names) == len(set(names))


class TestRunValidation:
    @pytest.fixture(scope="class")
    def points(self):
        return run_validation(trials=20, clients_per_trial=2, seed=5)

    def test_one_point_per_grid_entry(self, points):
        assert len(points) == len(default_grid())
        assert all(isinstance(p, ValidationPoint) for p in points)

    def test_errors_are_bounded(self, points):
        # At 20 trials the CI is wide, but the absolute errors should
        # already be small on this grid.
        mean_error = sum(p.absolute_error for p in points) / len(points)
        assert mean_error < 0.15

    def test_figure_wrapper(self):
        result = validation_figure(trials=20, clients_per_trial=2, seed=5)
        assert result.figure_id == "val-mc"
        assert set(result.series) == {
            "analytical", "monte_carlo", "mc_ci_low", "mc_ci_high",
        }


class TestRepairBenefit:
    def test_positive_for_a_real_defender(self):
        arch = SOSArchitecture(
            layers=3, mapping="one-to-two",
            total_overlay_nodes=600, sos_nodes=45, filters=5,
        )
        attack = SuccessiveAttack(break_in_budget=60, congestion_budget=120)
        benefit = repair_benefit(
            arch, attack, RepairPolicy(detection_probability=0.9),
            trials=25, seed=3,
        )
        assert benefit > 0.0

    def test_exactly_zero_for_noop_defender(self):
        arch = SOSArchitecture(
            layers=3, mapping="one-to-two",
            total_overlay_nodes=600, sos_nodes=45, filters=5,
        )
        attack = SuccessiveAttack(break_in_budget=60, congestion_budget=120)
        # Same seed stream, same (absent) defender: identical trajectories.
        benefit = repair_benefit(arch, attack, NO_REPAIR, trials=20, seed=3)
        assert benefit == 0.0
