"""Tests for the FigureResult container and shape helpers."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments.result import (
    Claim,
    FigureResult,
    dominates,
    non_decreasing,
    non_increasing,
)


def make_result(**kwargs):
    defaults = dict(
        figure_id="figX",
        title="Test figure",
        x_label="L",
        x_values=[1, 2, 3],
        series={"a": [0.1, 0.2, 0.3], "b": [0.3, 0.2, 0.1]},
    )
    defaults.update(kwargs)
    return FigureResult(**defaults)


class TestFigureResult:
    def test_rows_align_series(self):
        result = make_result()
        assert result.rows() == [[1, 0.1, 0.3], [2, 0.2, 0.2], [3, 0.3, 0.1]]
        assert result.headers() == ["L", "a", "b"]

    def test_series_length_mismatch_rejected(self):
        with pytest.raises(ExperimentError, match="points"):
            make_result(series={"a": [0.1]})

    def test_empty_x_rejected(self):
        with pytest.raises(ExperimentError, match="empty"):
            make_result(x_values=[])

    def test_claim_bookkeeping(self):
        result = make_result(
            claims=[Claim("good", True), Claim("bad", False)]
        )
        assert not result.all_claims_hold
        assert [c.description for c in result.failed_claims()] == ["bad"]

    def test_all_claims_hold_when_empty(self):
        assert make_result().all_claims_hold


class TestShapeHelpers:
    def test_non_increasing(self):
        assert non_increasing([3, 2, 2, 1])
        assert not non_increasing([1, 2])
        assert non_increasing([1.0, 1.0 + 1e-12])  # within slack

    def test_non_decreasing(self):
        assert non_decreasing([1, 2, 2, 3])
        assert not non_decreasing([2, 1])

    def test_dominates(self):
        assert dominates([1, 1], [0, 1])
        assert not dominates([1, 0], [0, 1])
