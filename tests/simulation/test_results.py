"""Tests for Monte Carlo result containers."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.simulation.results import PsEstimate, summarize_indicators


class TestPsEstimate:
    def test_std_error(self):
        estimate = PsEstimate(mean=0.5, variance=0.25, trials=100)
        assert estimate.std_error == pytest.approx(0.05)

    def test_ci_clipped_to_unit_interval(self):
        estimate = PsEstimate(mean=0.99, variance=0.25, trials=10)
        lo, hi = estimate.ci95
        assert 0.0 <= lo <= hi <= 1.0

    def test_agrees_within_ci(self):
        estimate = PsEstimate(mean=0.5, variance=0.04, trials=100)
        assert estimate.agrees_with(0.52, tolerance=0.0)
        assert not estimate.agrees_with(0.9, tolerance=0.0)

    def test_agrees_with_tolerance_margin(self):
        estimate = PsEstimate(mean=0.5, variance=0.0, trials=100)
        assert estimate.agrees_with(0.55, tolerance=0.06)
        assert not estimate.agrees_with(0.57, tolerance=0.06)

    def test_rejects_invalid(self):
        with pytest.raises(SimulationError):
            PsEstimate(mean=1.5, variance=0.0, trials=10)
        with pytest.raises(SimulationError):
            PsEstimate(mean=0.5, variance=-1.0, trials=10)
        with pytest.raises(SimulationError):
            PsEstimate(mean=0.5, variance=0.0, trials=0)


class TestSummarize:
    def test_mean_and_variance(self):
        estimate = summarize_indicators([0.0, 1.0, 1.0, 0.0])
        assert estimate.mean == 0.5
        assert estimate.variance == pytest.approx(1 / 3)
        assert estimate.trials == 4

    def test_single_trial_zero_variance(self):
        estimate = summarize_indicators([1.0])
        assert estimate.variance == 0.0

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            summarize_indicators([])

    def test_bad_counts_averaged(self):
        estimate = summarize_indicators(
            [1.0, 0.0],
            bad_counts=[{1: 2, 2: 4}, {1: 4, 2: 0}],
        )
        assert estimate.mean_bad_per_layer == {1: 3.0, 2: 2.0}
