"""Tests for the token-bucket capacity model."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.simulation.capacity import NodeCapacity


class TestTokenBucket:
    def test_accepts_within_burst(self):
        capacity = NodeCapacity(capacity=10, burst=20)
        accepted = sum(capacity.offer(0.0) for _ in range(20))
        assert accepted == 20

    def test_drops_beyond_burst(self):
        capacity = NodeCapacity(capacity=10, burst=20)
        results = [capacity.offer(0.0) for _ in range(30)]
        assert sum(results) == 20
        assert capacity.dropped == 10

    def test_refills_over_time(self):
        capacity = NodeCapacity(capacity=10, burst=20)
        for _ in range(20):
            capacity.offer(0.0)
        assert not capacity.offer(0.0)
        # After 1 time unit, 10 tokens refill.
        accepted = sum(capacity.offer(1.0) for _ in range(15))
        assert accepted == 10

    def test_burst_caps_refill(self):
        capacity = NodeCapacity(capacity=10, burst=20)
        # Long idle period cannot exceed the burst ceiling.
        accepted = sum(capacity.offer(100.0) for _ in range(30))
        assert accepted == 20

    def test_time_cannot_go_backwards(self):
        capacity = NodeCapacity()
        capacity.offer(5.0)
        with pytest.raises(SimulationError):
            capacity.offer(4.0)


class TestCongestionDetection:
    def test_not_congested_without_traffic(self):
        assert not NodeCapacity().is_congested

    def test_sustained_overload_flags_congestion(self):
        capacity = NodeCapacity(capacity=10, burst=10)
        for _ in range(100):
            capacity.offer(0.0)
        assert capacity.drop_rate > 0.5
        assert capacity.is_congested

    def test_light_load_not_congested(self):
        capacity = NodeCapacity(capacity=10, burst=20)
        for t in range(50):
            capacity.offer(float(t))
        assert not capacity.is_congested

    def test_minimum_observations_before_flagging(self):
        capacity = NodeCapacity(capacity=1, burst=1)
        capacity.offer(0.0)
        capacity.offer(0.0)  # dropped
        assert capacity.drop_rate == 0.5
        assert not capacity.is_congested  # fewer than 10 observations

    def test_reset_window(self):
        capacity = NodeCapacity(capacity=10, burst=10)
        for _ in range(100):
            capacity.offer(0.0)
        capacity.reset_window()
        assert capacity.accepted == 0
        assert capacity.dropped == 0
        assert not capacity.is_congested


class TestValidation:
    def test_rejects_zero_capacity(self):
        with pytest.raises(SimulationError):
            NodeCapacity(capacity=0)

    def test_rejects_burst_below_capacity(self):
        with pytest.raises(SimulationError):
            NodeCapacity(capacity=10, burst=5)

    def test_rejects_bad_threshold(self):
        with pytest.raises(SimulationError):
            NodeCapacity(congestion_threshold=0.0)
