"""Process-parallel Monte Carlo: bit-identity, checkpoints, isolation.

The parallel dispatcher pre-spawns every trial's SeedSequence in the
parent and aggregates in trial order, so any worker count must reproduce
the serial estimate bit for bit — including through checkpoint/resume
and in the presence of poisoned trials.
"""

from __future__ import annotations

import pytest

from repro.core import OneBurstAttack, SOSArchitecture
from repro.errors import SimulationError
from repro.resilience.checkpoint import CampaignCheckpoint
from repro.simulation.monte_carlo import (
    MonteCarloConfig,
    MonteCarloEstimator,
    estimate_ps,
)
from tests.resilience.test_checkpoint_resume import FlakyAttacker

ARCH = SOSArchitecture(
    layers=2, mapping="one-to-two", total_overlay_nodes=400, sos_nodes=40,
    filters=4,
)
ATTACK = OneBurstAttack(break_in_budget=20, congestion_budget=80)
TRIALS = 12


def _config(**overrides):
    return MonteCarloConfig(
        trials=overrides.pop("trials", TRIALS),
        clients_per_trial=3,
        seed=overrides.pop("seed", 17),
        **overrides,
    )


class TestBitIdentity:
    def test_workers_match_serial_exactly(self):
        serial = MonteCarloEstimator(_config()).estimate(ARCH, ATTACK)
        for workers in (2, 4):
            parallel = MonteCarloEstimator(_config(workers=workers)).estimate(
                ARCH, ATTACK
            )
            assert parallel == serial

    def test_chunk_size_does_not_change_results(self):
        serial = MonteCarloEstimator(_config()).estimate(ARCH, ATTACK)
        chunked = MonteCarloEstimator(
            _config(workers=2, chunk_size=1)
        ).estimate(ARCH, ATTACK)
        assert chunked == serial

    def test_estimate_ps_accepts_workers(self):
        serial = estimate_ps(ARCH, ATTACK, trials=8, seed=3)
        parallel = estimate_ps(ARCH, ATTACK, trials=8, seed=3, workers=2)
        assert parallel == serial

    def test_workers_zero_resolves_to_cpu_count(self):
        config = _config(workers=0)
        assert config.resolved_workers >= 1
        result = MonteCarloEstimator(config).estimate(ARCH, ATTACK)
        assert result == MonteCarloEstimator(_config()).estimate(ARCH, ATTACK)


class TestParallelCheckpoint:
    def test_parallel_resume_is_bit_identical(self, tmp_path):
        path = str(tmp_path / "campaign.json")
        uninterrupted = MonteCarloEstimator(_config()).estimate(ARCH, ATTACK)

        first = MonteCarloEstimator(_config(workers=2, checkpoint_path=path))
        first._attacker = FlakyAttacker(fail_on={1})
        partial = first.estimate(ARCH, ATTACK)
        assert partial.failed_trials >= 1

        resumed = MonteCarloEstimator(
            _config(workers=4, checkpoint_path=path)
        ).estimate(ARCH, ATTACK)
        assert resumed.failed_trials == 0
        assert resumed == uninterrupted

    def test_checkpoint_written_under_serial_resumes_under_workers(self, tmp_path):
        path = str(tmp_path / "campaign.json")
        MonteCarloEstimator(_config(checkpoint_path=path)).estimate(ARCH, ATTACK)
        resumed = MonteCarloEstimator(_config(workers=2, checkpoint_path=path))
        resumed._attacker = FlakyAttacker(fail_on=set(range(100)))
        result = resumed.estimate(ARCH, ATTACK)
        # Every trial was checkpointed: no worker ever ran the attacker.
        assert result.failed_trials == 0


class TestParallelErrorIsolation:
    def test_poisoned_trials_recorded_not_fatal(self):
        est = MonteCarloEstimator(_config(workers=2))
        # Worker-side attacker copies each fail their first execution, so
        # at least one (up to `workers`) trials die; the campaign survives.
        est._attacker = FlakyAttacker(fail_on={0})
        result = est.estimate(ARCH, ATTACK)
        assert 1 <= result.failed_trials <= 2
        assert result.trials == TRIALS - result.failed_trials
        assert len(est.last_failures) == result.failed_trials
        assert all("injected fault" in error for _, error in est.last_failures)
        # Failures are reported in trial order even when chunks complete
        # out of order.
        indices = [trial for trial, _ in est.last_failures]
        assert indices == sorted(indices)

    def test_isolation_disabled_propagates_worker_error(self):
        est = MonteCarloEstimator(_config(workers=2, error_isolation=False))
        est._attacker = FlakyAttacker(fail_on=set(range(100)))
        with pytest.raises(RuntimeError, match="injected fault"):
            est.estimate(ARCH, ATTACK)

    def test_all_trials_failing_raises(self):
        est = MonteCarloEstimator(_config(trials=4, workers=2))
        est._attacker = FlakyAttacker(fail_on=set(range(100)))
        with pytest.raises(SimulationError, match="all 4 trials failed"):
            est.estimate(ARCH, ATTACK)


class TestCheckpointBatching:
    def test_saves_are_batched(self, tmp_path, monkeypatch):
        saves = []
        original_save = CampaignCheckpoint.save

        def counting_save(self):
            saves.append(len(self.trials))
            original_save(self)

        monkeypatch.setattr(CampaignCheckpoint, "save", counting_save)
        path = str(tmp_path / "campaign.json")
        MonteCarloEstimator(
            _config(trials=10, checkpoint_path=path, checkpoint_every=4)
        ).estimate(ARCH, ATTACK)
        # 10 trials at checkpoint_every=4: saves after trials 4 and 8,
        # plus the final flush of the remaining 2 — not one per trial.
        assert saves == [4, 8, 10]

    def test_checkpoint_every_one_saves_per_trial(self, tmp_path, monkeypatch):
        saves = []
        original_save = CampaignCheckpoint.save

        def counting_save(self):
            saves.append(len(self.trials))
            original_save(self)

        monkeypatch.setattr(CampaignCheckpoint, "save", counting_save)
        path = str(tmp_path / "campaign.json")
        MonteCarloEstimator(
            _config(trials=5, checkpoint_path=path, checkpoint_every=1)
        ).estimate(ARCH, ATTACK)
        assert saves == [1, 2, 3, 4, 5]


class TestConfigValidation:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"workers": -1},
            {"chunk_size": 0},
            {"chunk_size": -3},
            {"checkpoint_every": 0},
        ],
    )
    def test_invalid_execution_knobs_rejected(self, overrides):
        with pytest.raises(SimulationError):
            _config(**overrides)
