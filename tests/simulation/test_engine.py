"""Tests for the discrete-event scheduler."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.simulation.engine import EventScheduler


class TestScheduling:
    def test_events_execute_in_time_order(self):
        scheduler = EventScheduler()
        log = []
        scheduler.schedule_at(3.0, lambda: log.append("c"))
        scheduler.schedule_at(1.0, lambda: log.append("a"))
        scheduler.schedule_at(2.0, lambda: log.append("b"))
        scheduler.run()
        assert log == ["a", "b", "c"]

    def test_ties_break_fifo(self):
        scheduler = EventScheduler()
        log = []
        for i in range(5):
            scheduler.schedule_at(1.0, lambda i=i: log.append(i))
        scheduler.run()
        assert log == [0, 1, 2, 3, 4]

    def test_schedule_after_is_relative(self):
        scheduler = EventScheduler()
        times = []
        scheduler.schedule_after(1.0, lambda: times.append(scheduler.now))
        scheduler.run()
        assert times == [1.0]

    def test_nested_scheduling(self):
        scheduler = EventScheduler()
        log = []

        def first():
            log.append(("first", scheduler.now))
            scheduler.schedule_after(0.5, second)

        def second():
            log.append(("second", scheduler.now))

        scheduler.schedule_at(1.0, first)
        scheduler.run()
        assert log == [("first", 1.0), ("second", 1.5)]

    def test_cannot_schedule_in_past(self):
        scheduler = EventScheduler()
        scheduler.schedule_at(1.0, lambda: None)
        scheduler.run()
        with pytest.raises(SimulationError):
            scheduler.schedule_at(0.5, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            EventScheduler().schedule_after(-1.0, lambda: None)


class TestRun:
    def test_run_until_horizon(self):
        scheduler = EventScheduler()
        log = []
        scheduler.schedule_at(1.0, lambda: log.append(1))
        scheduler.schedule_at(5.0, lambda: log.append(5))
        scheduler.run(until=2.0)
        assert log == [1]
        assert scheduler.now == 2.0
        assert scheduler.pending == 1

    def test_resume_after_horizon(self):
        scheduler = EventScheduler()
        log = []
        scheduler.schedule_at(5.0, lambda: log.append(5))
        scheduler.run(until=2.0)
        scheduler.run()
        assert log == [5]

    def test_runaway_loop_detected(self):
        scheduler = EventScheduler()

        def forever():
            scheduler.schedule_after(0.1, forever)

        scheduler.schedule_after(0.0, forever)
        with pytest.raises(SimulationError, match="max_events"):
            scheduler.run(max_events=100)

    def test_step(self):
        scheduler = EventScheduler()
        log = []
        scheduler.schedule_at(1.0, lambda: log.append(1))
        assert scheduler.step() is True
        assert scheduler.step() is False
        assert log == [1]

    def test_processed_counter(self):
        scheduler = EventScheduler()
        for i in range(3):
            scheduler.schedule_at(float(i), lambda: None)
        scheduler.run()
        assert scheduler.processed == 3


class TestCancellation:
    def test_cancelled_event_never_fires(self):
        scheduler = EventScheduler()
        log = []
        event = scheduler.schedule_at(1.0, lambda: log.append("a"))
        scheduler.schedule_at(2.0, lambda: log.append("b"))
        scheduler.cancel(event)
        scheduler.run()
        assert log == ["b"]

    def test_cancel_updates_pending_count(self):
        scheduler = EventScheduler()
        first = scheduler.schedule_at(1.0, lambda: None)
        scheduler.schedule_at(2.0, lambda: None)
        assert scheduler.pending == 2
        scheduler.cancel(first)
        assert scheduler.pending == 1

    def test_cancelled_event_does_not_advance_clock(self):
        scheduler = EventScheduler()
        event = scheduler.schedule_at(5.0, lambda: None)
        scheduler.schedule_at(2.0, lambda: None)
        scheduler.cancel(event)
        scheduler.run()
        assert scheduler.now == 2.0

    def test_cancelled_event_not_counted_as_processed(self):
        scheduler = EventScheduler()
        event = scheduler.schedule_at(1.0, lambda: None)
        scheduler.schedule_at(2.0, lambda: None)
        scheduler.cancel(event)
        scheduler.run()
        assert scheduler.processed == 1

    def test_cancel_is_idempotent(self):
        scheduler = EventScheduler()
        event = scheduler.schedule_at(1.0, lambda: None)
        scheduler.cancel(event)
        scheduler.cancel(event)
        scheduler.run()
        assert scheduler.processed == 0

    def test_cancel_after_execution_is_noop(self):
        scheduler = EventScheduler()
        event = scheduler.schedule_at(1.0, lambda: None)
        scheduler.run()
        scheduler.cancel(event)  # must not raise
        assert scheduler.processed == 1

    def test_cancel_from_within_a_running_event(self):
        scheduler = EventScheduler()
        log = []
        victim = scheduler.schedule_at(2.0, lambda: log.append("victim"))
        scheduler.schedule_at(1.0, lambda: scheduler.cancel(victim))
        scheduler.run()
        assert log == []

    def test_step_skips_cancelled_events(self):
        scheduler = EventScheduler()
        log = []
        event = scheduler.schedule_at(1.0, lambda: log.append("a"))
        scheduler.schedule_at(2.0, lambda: log.append("b"))
        scheduler.cancel(event)
        assert scheduler.step() is True
        assert log == ["b"]
        assert scheduler.step() is False


class TestCompaction:
    def test_tombstones_reclaimed_when_dominating(self):
        # Regression: cancelled events used to sit in the heap until
        # popped, so a cancel-heavy workload grew the queue without
        # bound. Cancelling more than half of a large queue must now
        # shrink the raw heap down to the live events.
        scheduler = EventScheduler()
        events = [
            scheduler.schedule_at(float(i + 1), lambda: None)
            for i in range(EventScheduler.COMPACTION_MIN_QUEUE * 2)
        ]
        assert scheduler.queued == len(events)
        for event in events[::2]:
            scheduler.cancel(event)
        # One more cancel pushes tombstones past half the queue.
        scheduler.cancel(events[1])
        assert scheduler.tombstones == 0
        assert scheduler.queued == len(events) // 2 - 1
        assert scheduler.pending == scheduler.queued

    def test_small_queues_never_compacted(self):
        scheduler = EventScheduler()
        events = [
            scheduler.schedule_at(float(i + 1), lambda: None)
            for i in range(EventScheduler.COMPACTION_MIN_QUEUE - 1)
        ]
        for event in events:
            scheduler.cancel(event)
        # All tombstoned, but below the size floor: heap left alone.
        assert scheduler.queued == len(events)
        assert scheduler.tombstones == len(events)

    def test_compaction_preserves_execution_order(self):
        scheduler = EventScheduler()
        log = []
        keep = []
        for i in range(EventScheduler.COMPACTION_MIN_QUEUE * 2):
            time = float(i + 1)
            if i % 3 == 0:
                keep.append((time, scheduler.schedule_at(time, lambda t=time: log.append(t))))
            else:
                scheduler.cancel(scheduler.schedule_at(time, lambda: log.append("wrong")))
        scheduler.run()
        assert log == [time for time, _ in keep]
        assert scheduler.queued == 0
