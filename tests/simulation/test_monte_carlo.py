"""Tests for the Monte Carlo P_S estimator, including agreement with the
analytical model — the library's central cross-validation."""

from __future__ import annotations

import pytest

from repro.core import OneBurstAttack, SOSArchitecture, SuccessiveAttack, evaluate
from repro.errors import SimulationError
from repro.simulation.monte_carlo import (
    MonteCarloConfig,
    MonteCarloEstimator,
    estimate_ps,
)


def small_arch(mapping="one-to-half", layers=3):
    return SOSArchitecture(
        layers=layers,
        mapping=mapping,
        total_overlay_nodes=800,
        sos_nodes=60,
        filters=5,
    )


class TestConfig:
    def test_defaults(self):
        config = MonteCarloConfig()
        assert config.trials == 200
        assert config.metric == "forward"

    def test_rejects_bad_values(self):
        with pytest.raises(SimulationError):
            MonteCarloConfig(trials=0)
        with pytest.raises(SimulationError):
            MonteCarloConfig(clients_per_trial=0)
        with pytest.raises(SimulationError):
            MonteCarloConfig(metric="teleport")


class TestEstimator:
    def test_no_attack_gives_certainty(self):
        result = estimate_ps(
            small_arch(), OneBurstAttack(0, 0), trials=10, seed=1
        )
        assert result.mean == 1.0
        assert result.trials == 10

    def test_total_congestion_gives_zero(self):
        # Congest the entire overlay: no SOS node survives.
        result = estimate_ps(
            small_arch(),
            OneBurstAttack(break_in_budget=0, congestion_budget=800),
            trials=10,
            seed=1,
        )
        assert result.mean == 0.0

    def test_deterministic_under_seed(self):
        attack = OneBurstAttack(100, 200)
        a = estimate_ps(small_arch(), attack, trials=15, seed=9)
        b = estimate_ps(small_arch(), attack, trials=15, seed=9)
        assert a.mean == b.mean
        assert a.mean_bad_per_layer == b.mean_bad_per_layer

    def test_reports_bad_counts_per_layer(self):
        result = estimate_ps(
            small_arch(), OneBurstAttack(100, 200), trials=10, seed=2
        )
        assert set(result.mean_bad_per_layer) == {1, 2, 3, 4}

    def test_reachability_upper_bounds_forwarding(self):
        attack = SuccessiveAttack(
            break_in_budget=100, congestion_budget=150, rounds=2,
            prior_knowledge=0.2,
        )
        forward = estimate_ps(
            small_arch("one-to-two"), attack, trials=40, seed=3, metric="forward"
        )
        reach = estimate_ps(
            small_arch("one-to-two"), attack, trials=40, seed=3,
            metric="reachability",
        )
        assert reach.mean >= forward.mean - 0.05


@pytest.mark.parametrize(
    "mapping,attack",
    [
        ("one-to-one", OneBurstAttack(break_in_budget=0, congestion_budget=480)),
        ("one-to-half", OneBurstAttack(break_in_budget=160, congestion_budget=160)),
        ("one-to-two", SuccessiveAttack(break_in_budget=16, congestion_budget=160)),
        ("one-to-one", SuccessiveAttack(break_in_budget=64, congestion_budget=160)),
    ],
)
def test_agreement_with_analytical_model(mapping, attack):
    """MC on executed attacks tracks the average-case analysis.

    Budgets above are the paper's defaults scaled to N=800 (so the n/N and
    budget/N ratios match §3's regime).
    """
    architecture = small_arch(mapping)
    analytical = evaluate(architecture, attack).p_s
    estimate = MonteCarloEstimator(
        MonteCarloConfig(trials=120, clients_per_trial=4, seed=7)
    ).estimate(architecture, attack)
    assert estimate.agrees_with(analytical, tolerance=0.12), (
        f"analytical={analytical:.3f} vs MC={estimate.mean:.3f} "
        f"CI={estimate.ci95}"
    )
