"""Tier threading through the time-resolved campaign simulation."""

from __future__ import annotations

import pytest

from repro.core import SOSArchitecture, SuccessiveAttack
from repro.errors import SimulationError
from repro.repair import NO_REPAIR
from repro.simulation.campaign import CampaignSimulation, run_campaign

ARCH = SOSArchitecture(
    layers=3,
    mapping="one-to-two",
    total_overlay_nodes=1000,
    sos_nodes=45,
    filters=5,
)
ATTACK = SuccessiveAttack(
    break_in_budget=80, congestion_budget=300, rounds=3, prior_knowledge=0.3
)


def test_reports_are_bit_identical_across_tiers():
    reports = {
        tier: run_campaign(ARCH, ATTACK, NO_REPAIR, seed=11, tier=tier)
        for tier in ("scalar", "numpy", "compiled")
    }
    assert reports["scalar"] == reports["numpy"]
    assert reports["scalar"] == reports["compiled"]


def test_p_s_moments_match_the_trajectory():
    report = run_campaign(ARCH, ATTACK, NO_REPAIR, seed=11)
    mean = sum(report.p_s) / len(report.p_s)
    assert report.p_s_mean == pytest.approx(mean)
    variance = sum((p - report.p_s_mean) ** 2 for p in report.p_s) / len(
        report.p_s
    )
    assert report.p_s_variance == pytest.approx(variance)
    assert report.p_s_variance > 0.0  # the attack visibly moves p_s


def test_unknown_tier_rejected():
    with pytest.raises(SimulationError, match="tier"):
        CampaignSimulation(ARCH, ATTACK, NO_REPAIR, tier="gpu")
