"""Per-layer validation: the analytical ``s_i`` must match the executed
attacks' mean bad counts, not just the end-to-end ``P_S``.

This is a sharper check than comparing ``P_S`` values — two wrong layer
models could cancel in the product. Budgets follow the paper's ratios
scaled to N=800 (so n/N and budget/N match §3's regime).
"""

from __future__ import annotations

import pytest

from repro.core import OneBurstAttack, SOSArchitecture, SuccessiveAttack, evaluate
from repro.simulation.monte_carlo import estimate_ps


def arch(mapping="one-to-half", layers=3):
    return SOSArchitecture(
        layers=layers,
        mapping=mapping,
        total_overlay_nodes=800,
        sos_nodes=60,
        filters=5,
    )


CASES = [
    pytest.param(
        arch("one-to-one"),
        OneBurstAttack(break_in_budget=0, congestion_budget=480),
        id="pure-congestion",
    ),
    pytest.param(
        arch("one-to-half"),
        OneBurstAttack(break_in_budget=160, congestion_budget=160),
        id="one-burst-break-in",
    ),
    pytest.param(
        arch("one-to-two"),
        SuccessiveAttack(break_in_budget=16, congestion_budget=160),
        id="successive-defaults",
    ),
    pytest.param(
        arch("one-to-one", layers=5),
        SuccessiveAttack(break_in_budget=64, congestion_budget=160,
                         prior_knowledge=0.4),
        id="successive-heavy-prior",
    ),
]


@pytest.mark.parametrize("architecture,attack", CASES)
def test_per_layer_bad_sets_agree(architecture, attack):
    analytic = evaluate(architecture, attack)
    estimate = estimate_ps(
        architecture, attack, trials=150, clients_per_trial=2, seed=31
    )
    for layer_state in analytic.layers:
        simulated = estimate.mean_bad_per_layer[layer_state.index]
        layer_size = layer_state.size
        # Average-case vs MC mean: within 15% of the layer size plus one
        # node of slack (integerization of layer sizes and budgets).
        tolerance = 0.15 * layer_size + 1.0
        assert simulated == pytest.approx(layer_state.bad, abs=tolerance), (
            f"layer {layer_state.index}: analytic s_i={layer_state.bad:.2f}, "
            f"simulated {simulated:.2f}"
        )


def test_broken_in_totals_agree():
    architecture = arch("one-to-half")
    attack = OneBurstAttack(break_in_budget=160, congestion_budget=0)
    analytic = evaluate(architecture, attack)
    estimate = estimate_ps(
        architecture, attack, trials=200, clients_per_trial=1, seed=32
    )
    simulated_total = sum(
        estimate.mean_bad_per_layer[layer.index] for layer in analytic.layers
    )
    # With no congestion, all bad nodes are break-ins: N_B = P_B * n/N * N_T.
    expected = 0.5 * 60 / 800 * 160
    assert analytic.broken_in_total == pytest.approx(expected)
    assert simulated_total == pytest.approx(expected, abs=1.5)
