"""Tests for the time-resolved campaign simulation."""

from __future__ import annotations

import math

import pytest

from repro.core import SOSArchitecture, SuccessiveAttack
from repro.errors import SimulationError
from repro.repair import NO_REPAIR, RepairPolicy
from repro.simulation.campaign import (
    CampaignConfig,
    CampaignReport,
    run_campaign,
)


def arch():
    return SOSArchitecture(
        layers=3,
        mapping="one-to-two",
        total_overlay_nodes=1000,
        sos_nodes=45,
        filters=5,
    )


ATTACK = SuccessiveAttack(
    break_in_budget=80, congestion_budget=300, rounds=3, prior_knowledge=0.3
)


class TestConfig:
    def test_validation(self):
        with pytest.raises(SimulationError):
            CampaignConfig(round_interval=0)
        with pytest.raises(SimulationError):
            CampaignConfig(probes_per_sample=0)
        with pytest.raises(SimulationError):
            CampaignConfig(cooldown=-1)


class TestTimeline:
    @pytest.fixture(scope="class")
    def no_repair_report(self):
        return run_campaign(arch(), ATTACK, NO_REPAIR, seed=11)

    def test_healthy_before_first_round(self, no_repair_report):
        first_round = no_repair_report.round_times[0]
        for t, p in zip(no_repair_report.times, no_repair_report.p_s):
            if t < first_round:
                assert p == 1.0

    def test_rounds_happen_on_schedule(self, no_repair_report):
        assert len(no_repair_report.round_times) <= ATTACK.rounds
        intervals = [
            b - a
            for a, b in zip(
                no_repair_report.round_times, no_repair_report.round_times[1:]
            )
        ]
        assert all(i == pytest.approx(10.0) for i in intervals)

    def test_congestion_follows_break_in_phase(self, no_repair_report):
        assert not math.isnan(no_repair_report.congestion_time)
        assert no_repair_report.congestion_time > no_repair_report.round_times[-1]

    def test_attack_causes_visible_damage(self, no_repair_report):
        assert no_repair_report.minimum < 0.95
        assert no_repair_report.repairs_total == 0

    def test_damage_persists_without_repair(self, no_repair_report):
        after = [
            p
            for t, p in zip(no_repair_report.times, no_repair_report.p_s)
            if t > no_repair_report.congestion_time
        ]
        assert sum(after) / len(after) < 0.99

    def test_p_s_at_lookup(self, no_repair_report):
        assert no_repair_report.p_s_at(-1.0) == 1.0
        assert no_repair_report.p_s_at(no_repair_report.times[-1]) == (
            no_repair_report.p_s[-1]
        )

    def test_deterministic_under_seed(self):
        a = run_campaign(arch(), ATTACK, NO_REPAIR, seed=4)
        b = run_campaign(arch(), ATTACK, NO_REPAIR, seed=4)
        assert a.p_s == b.p_s
        assert a.round_times == b.round_times


class TestRepairRace:
    def test_repair_improves_trajectory(self):
        config = CampaignConfig(repair_interval=6.0)
        without = run_campaign(arch(), ATTACK, NO_REPAIR, config, seed=11)
        with_repair = run_campaign(
            arch(),
            ATTACK,
            RepairPolicy(detection_probability=0.8),
            config,
            seed=11,
        )
        assert with_repair.repairs_total > 0
        assert with_repair.final >= without.final - 0.05
        mean_without = sum(without.p_s) / len(without.p_s)
        mean_with = sum(with_repair.p_s) / len(with_repair.p_s)
        assert mean_with >= mean_without

    def test_slow_repair_still_recovers_eventually(self):
        config = CampaignConfig(repair_interval=15.0, cooldown=60.0)
        report = run_campaign(
            arch(),
            ATTACK,
            RepairPolicy(detection_probability=1.0),
            config,
            seed=11,
        )
        # Perfect detection: once scans run after the congestion phase,
        # the tail of the trajectory returns to full availability.
        assert report.p_s[-1] == 1.0
