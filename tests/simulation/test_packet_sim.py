"""Tests for the packet-level flooding simulation."""

from __future__ import annotations

import pytest

from repro.core import SOSArchitecture
from repro.errors import SimulationError
from repro.simulation.packet_sim import (
    PacketLevelSimulation,
    PacketSimConfig,
    flood_layer,
)
from repro.sos.deployment import SOSDeployment


def deployment(seed=7, mapping="one-to-half"):
    arch = SOSArchitecture(
        layers=3,
        mapping=mapping,
        total_overlay_nodes=400,
        sos_nodes=30,
        filters=4,
    )
    return SOSDeployment.deploy(arch, rng=seed)


CONFIG = PacketSimConfig(duration=20.0, warmup=2.0)


class TestConfigValidation:
    def test_duration_must_exceed_warmup(self):
        with pytest.raises(SimulationError):
            PacketSimConfig(duration=1.0, warmup=5.0)

    def test_positive_rates_required(self):
        with pytest.raises(SimulationError):
            PacketSimConfig(client_rate=0)
        with pytest.raises(SimulationError):
            PacketSimConfig(clients=-1)

    def test_zero_clients_allowed(self):
        assert PacketSimConfig(clients=0).clients == 0

    def test_tier_validated(self):
        with pytest.raises(SimulationError):
            PacketSimConfig(tier="turbo")
        for tier in ("scalar", "numpy", "compiled"):
            assert PacketSimConfig(tier=tier).tier == tier


class TestBaseline:
    def test_healthy_system_delivers_everything(self):
        sim = PacketLevelSimulation(deployment(), CONFIG, rng=1)
        report = sim.run()
        assert report.sent > 50
        assert report.delivery_ratio == 1.0

    def test_latency_is_hop_count_times_hop_latency(self):
        sim = PacketLevelSimulation(deployment(), CONFIG, rng=1)
        report = sim.run()
        # 4 hops (3 SOS layers + filter) at 0.05 each.
        assert report.mean_latency == pytest.approx(0.2, abs=1e-6)

    def test_deterministic_under_seed(self):
        a = PacketLevelSimulation(deployment(), CONFIG, rng=5).run()
        b = PacketLevelSimulation(deployment(), CONFIG, rng=5).run()
        assert a.sent == b.sent
        assert a.delivered == b.delivered


class TestFlooding:
    def test_flooding_whole_layer_kills_delivery(self):
        dep = deployment()
        sim = PacketLevelSimulation(dep, CONFIG, rng=1)
        targets = flood_layer(dep, layer=2, fraction=1.0, rng=2)
        report = sim.run(flood_targets=targets)
        assert report.delivery_ratio < 0.05
        assert set(report.congested_nodes) >= set(targets)

    def test_partial_flood_degrades_gracefully(self):
        dep = deployment()
        sim = PacketLevelSimulation(dep, CONFIG, rng=1)
        targets = flood_layer(dep, layer=2, fraction=0.5, rng=2)
        report = sim.run(flood_targets=targets)
        # Routing around congested neighbors keeps most traffic flowing.
        assert report.delivery_ratio > 0.5

    def test_flood_targets_must_be_sos_nodes(self):
        dep = deployment()
        sim = PacketLevelSimulation(dep, CONFIG, rng=1)
        plain = dep.network.plain_nodes[0].node_id
        with pytest.raises(SimulationError):
            sim.run(flood_targets=[plain])

    def test_flooded_nodes_show_drops(self):
        dep = deployment()
        sim = PacketLevelSimulation(dep, CONFIG, rng=1)
        targets = flood_layer(dep, layer=1, fraction=1.0, rng=2)
        report = sim.run(flood_targets=targets)
        assert report.dropped_at_congested + report.dropped_no_neighbor > 0

    def test_attack_traffic_accounted(self):
        dep = deployment()
        sim = PacketLevelSimulation(dep, CONFIG, rng=1)
        targets = flood_layer(dep, layer=2, fraction=0.5, rng=2)
        report = sim.run(flood_targets=targets)
        # flood_rate=500/node over ~18 post-warmup time units.
        assert report.attack_packets_absorbed > 1000

    def test_bottleneck_layer_is_the_flooded_one(self):
        dep = deployment()
        sim = PacketLevelSimulation(dep, CONFIG, rng=1)
        targets = flood_layer(dep, layer=2, fraction=1.0, rng=2)
        report = sim.run(flood_targets=targets)
        assert report.bottleneck_layer() == 2

    def test_per_layer_arrivals_monotone_down_the_stack(self):
        dep = deployment()
        sim = PacketLevelSimulation(dep, CONFIG, rng=1)
        report = sim.run()
        arrivals = report.arrivals_per_layer
        # Traffic can only shrink as it moves toward the target.
        for layer in (1, 2, 3):
            assert arrivals.get(layer, 0) >= arrivals.get(layer + 1, 0)

    def test_healthy_run_has_no_bottleneck(self):
        dep = deployment()
        report = PacketLevelSimulation(dep, CONFIG, rng=1).run()
        assert report.bottleneck_layer() is None
        assert report.attack_packets_absorbed == 0


class TestFloodLayerHelper:
    def test_fraction_selects_subset(self):
        dep = deployment()
        targets = flood_layer(dep, layer=2, fraction=0.5, rng=1)
        members = dep.layer_members(2)
        assert len(targets) == max(1, round(0.5 * len(members)))
        assert set(targets) <= set(members)

    def test_bad_fraction_rejected(self):
        with pytest.raises(SimulationError):
            flood_layer(deployment(), layer=2, fraction=0.0)


class TestDrainHorizon:
    def test_computed_bound(self):
        sim = PacketLevelSimulation(deployment(), CONFIG, rng=1)
        layers = sim.deployment.architecture.layers
        expected = CONFIG.duration + (layers + 2) * CONFIG.hop_latency
        assert sim.drain_horizon() == pytest.approx(expected)

    def test_every_inflight_packet_resolves(self):
        # Nothing may be lost to the horizon: sent packets either
        # deliver or drop, never silently expire in flight.
        report = PacketLevelSimulation(deployment(), CONFIG, rng=3).run()
        accounted = (
            report.delivered
            + report.dropped_at_congested
            + report.dropped_no_neighbor
        )
        assert accounted == report.sent


class TestStreamingLatency:
    def test_latencies_list_off_by_default(self):
        report = PacketLevelSimulation(deployment(), CONFIG, rng=1).run()
        assert report.delivered > 0
        assert report.latencies == []
        assert report.latency_count == report.delivered

    def test_keep_latencies_populates_list(self):
        config = PacketSimConfig(
            duration=20.0, warmup=2.0, keep_latencies=True
        )
        report = PacketLevelSimulation(deployment(), config, rng=1).run()
        assert len(report.latencies) == report.delivered

    def test_streaming_stats_match_kept_list(self):
        config = PacketSimConfig(
            duration=20.0, warmup=2.0, keep_latencies=True
        )
        report = PacketLevelSimulation(deployment(), config, rng=2).run()
        values = report.latencies
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / len(values)
        assert report.mean_latency == pytest.approx(mean)
        assert report.latency_variance == pytest.approx(var, abs=1e-12)
        assert report.max_latency == pytest.approx(max(values))

    def test_variance_degenerate_cases(self):
        from repro.simulation.packet_sim import PacketSimReport

        report = PacketSimReport()
        assert report.latency_variance == 0.0
        report.record_latency(0.3)
        assert report.latency_variance == 0.0
        assert report.max_latency == 0.3
