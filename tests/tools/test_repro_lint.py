"""Tests for the repro-lint AST rule engine.

Every rule gets at least one positive case (the violation is found) and
one negative case (compliant code is not flagged), plus engine-level tests
for suppressions, JSON output, and CLI exit codes. The final class lints
the real repository — ``src`` must stay clean, which is the acceptance
criterion the CI lint job enforces.
"""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys

import pytest

from repro_lint import ALL_RULES, Severity, lint_source, rule_by_id
from repro_lint.cli import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_USAGE,
    main,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent

#: Path inside a fictional src tree — activates src-scoped rules.
SRC_PATH = "src/repro/fake_module.py"
#: Path outside src — deactivates src-scoped rules.
SCRIPT_PATH = "examples/fake_script.py"


def rule_ids(source: str, path: str = SRC_PATH) -> list:
    report = lint_source(source, path, ALL_RULES)
    return [finding.rule_id for finding in report.findings]


class TestRngDiscipline:
    def test_flags_stdlib_random_import(self):
        assert "rng-discipline" in rule_ids("import random\n")

    def test_flags_stdlib_random_from_import(self):
        assert "rng-discipline" in rule_ids("from random import choice\n")

    def test_flags_stdlib_random_call(self):
        source = "import random\nx = random.random()\n"
        report = lint_source(source, SRC_PATH, ALL_RULES)
        assert sum(f.rule_id == "rng-discipline" for f in report.findings) == 2

    def test_flags_unseeded_default_rng(self):
        source = "import numpy as np\nrng = np.random.default_rng()\n"
        assert "rng-discipline" in rule_ids(source)

    def test_flags_default_rng_with_none_seed(self):
        source = (
            "import numpy as np\n"
            "def f():\n    return np.random.default_rng(None)\n"
        )
        assert "rng-discipline" in rule_ids(source)

    def test_flags_legacy_global_numpy_api(self):
        source = "import numpy as np\nnp.random.seed(42)\n"
        assert "rng-discipline" in rule_ids(source)

    def test_flags_module_global_generator(self):
        source = (
            "import numpy as np\n"
            "RNG = np.random.default_rng(1234)\n"
        )
        report = lint_source(source, SRC_PATH, ALL_RULES)
        messages = [
            f.message
            for f in report.findings
            if f.rule_id == "rng-discipline"
        ]
        assert any("module global" in message for message in messages)

    def test_seeded_default_rng_inside_function_is_clean(self):
        source = (
            "import numpy as np\n"
            "def make(seed):\n    return np.random.default_rng(seed)\n"
        )
        assert "rng-discipline" not in rule_ids(source)

    def test_generator_method_calls_are_clean(self):
        # rng.random() is a Generator method, not the stdlib module.
        source = "def sample(rng):\n    return rng.random()\n"
        assert "rng-discipline" not in rule_ids(source)

    def test_seeding_module_is_exempt(self):
        source = "import numpy as np\nrng = np.random.default_rng()\n"
        path = "src/repro/utils/seeding.py"
        assert rule_ids(source, path) == []


class TestFloatEquality:
    def test_flags_equality_with_float_literal(self):
        assert "float-equality" in rule_ids("ok = x == 1.0\n")

    def test_flags_inequality_with_float_literal(self):
        assert "float-equality" in rule_ids("ok = 0.0 != y\n")

    def test_flags_negative_float_literal(self):
        assert "float-equality" in rule_ids("ok = x == -1.0\n")

    def test_flags_float_cast(self):
        assert "float-equality" in rule_ids("ok = float(x) == y\n")

    def test_integer_comparison_is_clean(self):
        assert "float-equality" not in rule_ids("ok = x == 1\n")

    def test_ordering_comparison_is_clean(self):
        assert "float-equality" not in rule_ids("ok = x <= 1.0\n")

    def test_string_comparison_is_clean(self):
        assert "float-equality" not in rule_ids("ok = x == 'one'\n")


class TestProbabilityHygiene:
    def test_flags_unguarded_probability_function(self):
        source = "def success_probability(x):\n    return x * 2\n"
        assert "probability-hygiene" in rule_ids(source)

    def test_contract_decorator_satisfies(self):
        source = (
            "from repro.contracts import returns_probability\n"
            "@returns_probability\n"
            "def success_probability(x):\n    return x\n"
        )
        assert "probability-hygiene" not in rule_ids(source)

    def test_check_probability_call_satisfies(self):
        source = (
            "def success_probability(x):\n"
            "    return check_probability('x', x)\n"
        )
        assert "probability-hygiene" not in rule_ids(source)

    def test_clamp_call_satisfies(self):
        source = (
            "def success_probability(x):\n"
            "    return clamp(x, 0.0, 1.0)\n"
        )
        assert "probability-hygiene" not in rule_ids(source)

    def test_validators_are_exempt(self):
        source = "def check_probability(name, value):\n    return value\n"
        assert "probability-hygiene" not in rule_ids(source)

    def test_predicates_are_exempt(self):
        source = "def _is_probability(value):\n    return 0 <= value <= 1\n"
        assert "probability-hygiene" not in rule_ids(source)

    def test_outside_src_is_exempt(self):
        source = "def success_probability(x):\n    return x * 2\n"
        assert "probability-hygiene" not in rule_ids(source, SCRIPT_PATH)


class TestBareAssert:
    def test_flags_assert_in_src(self):
        assert "bare-assert" in rule_ids("assert x > 0, 'boom'\n")

    def test_raise_is_clean(self):
        source = "if x < 0:\n    raise ValueError('boom')\n"
        assert "bare-assert" not in rule_ids(source)

    def test_assert_outside_src_is_exempt(self):
        # Benchmarks and examples may assert freely (pytest rewrites them).
        assert "bare-assert" not in rule_ids("assert x > 0\n", SCRIPT_PATH)


class TestMutableDefault:
    def test_flags_list_literal_default(self):
        assert "mutable-default" in rule_ids("def f(acc=[]):\n    pass\n")

    def test_flags_dict_call_default(self):
        assert "mutable-default" in rule_ids("def f(acc=dict()):\n    pass\n")

    def test_flags_keyword_only_default(self):
        assert "mutable-default" in rule_ids("def f(*, acc={}):\n    pass\n")

    def test_none_default_is_clean(self):
        assert "mutable-default" not in rule_ids("def f(acc=None):\n    pass\n")

    def test_tuple_default_is_clean(self):
        assert "mutable-default" not in rule_ids("def f(acc=()):\n    pass\n")


class TestSuppressions:
    def test_same_line_suppression(self):
        source = "ok = x == 1.0  # repro-lint: disable=float-equality -- sentinel\n"
        report = lint_source(source, SRC_PATH, ALL_RULES)
        assert report.findings == []
        assert [f.rule_id for f in report.suppressed] == ["float-equality"]

    def test_previous_line_suppression(self):
        source = (
            "# repro-lint: disable=bare-assert\n"
            "assert invariant_holds\n"
        )
        report = lint_source(source, SRC_PATH, ALL_RULES)
        assert report.findings == []
        assert [f.rule_id for f in report.suppressed] == ["bare-assert"]

    def test_disable_all(self):
        source = "ok = x == 1.0  # repro-lint: disable=all\n"
        report = lint_source(source, SRC_PATH, ALL_RULES)
        assert report.findings == []

    def test_suppression_is_rule_specific(self):
        # Suppressing one rule must not hide a different rule's finding.
        source = "assert x == 1.0  # repro-lint: disable=float-equality\n"
        report = lint_source(source, SRC_PATH, ALL_RULES)
        assert [f.rule_id for f in report.findings] == ["bare-assert"]

    def test_justification_text_does_not_break_parsing(self):
        source = (
            "ok = x == 1.0  "
            "# repro-lint: disable=float-equality -- clamped via max(0.0, .)\n"
        )
        report = lint_source(source, SRC_PATH, ALL_RULES)
        assert report.findings == []


class TestEngine:
    def test_syntax_error_becomes_parse_error_finding(self):
        report = lint_source("def broken(:\n", SRC_PATH, ALL_RULES)
        assert report.parse_error
        assert [f.rule_id for f in report.findings] == ["parse-error"]
        assert report.findings[0].severity is Severity.ERROR

    def test_findings_are_sorted_by_location(self):
        source = "b = x == 2.0\na = y == 1.0\n"
        report = lint_source(source, SRC_PATH, ALL_RULES)
        assert [f.line for f in report.findings] == [1, 2]

    def test_rule_by_id_roundtrip(self):
        for rule in ALL_RULES:
            assert rule_by_id(rule.id) is rule
        with pytest.raises(KeyError):
            rule_by_id("no-such-rule")

    def test_every_rule_has_id_severity_description(self):
        for rule in ALL_RULES:
            assert rule.id and rule.description
            assert isinstance(rule.severity, Severity)


class TestCli:
    def test_exit_clean_on_compliant_file(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n")
        assert main([str(target)]) == EXIT_CLEAN
        assert "0 findings" in capsys.readouterr().out

    def test_exit_findings_on_violation(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text("ok = x == 1.0\n")
        assert main([str(target)]) == EXIT_FINDINGS
        out = capsys.readouterr().out
        assert "float-equality" in out

    def test_exit_usage_on_unknown_rule(self, capsys):
        assert main(["--select", "no-such-rule", "."]) == EXIT_USAGE
        assert "unknown rule" in capsys.readouterr().err

    def test_select_limits_rules(self, tmp_path):
        target = tmp_path / "bad.py"
        target.write_text("ok = x == 1.0\ndef f(a=[]):\n    pass\n")
        assert main(["--select", "mutable-default", str(target)]) == EXIT_FINDINGS
        assert main(["--select", "rng-discipline", str(target)]) == EXIT_CLEAN

    def test_ignore_drops_rules(self, tmp_path):
        target = tmp_path / "bad.py"
        target.write_text("ok = x == 1.0\n")
        assert (
            main(["--ignore", "float-equality", str(target)]) == EXIT_CLEAN
        )

    def test_json_output_schema(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text("ok = x == 1.0\n")
        main(["--format", "json", str(target)])
        payload = json.loads(capsys.readouterr().out)
        assert payload["files"] == 1
        (finding,) = payload["findings"]
        assert finding["rule"] == "float-equality"
        assert finding["line"] == 1
        assert finding["severity"] == "error"

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == EXIT_CLEAN
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule.id in out

    def test_module_invocation(self, tmp_path):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n")
        env_path = str(REPO_ROOT / "tools")
        result = subprocess.run(
            [sys.executable, "-m", "repro_lint", str(target)],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": env_path, "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == EXIT_CLEAN, result.stderr


class TestRepositoryIsClean:
    """The acceptance criterion: the real tree lints clean."""

    def test_src_benchmarks_examples_exit_zero(self, capsys):
        paths = [str(REPO_ROOT / name) for name in ("src", "benchmarks", "examples")]
        assert main(paths) == EXIT_CLEAN

    def test_every_suppression_in_src_is_justified(self):
        """Suppressions must carry a `--` justification after the rule list."""
        for path in (REPO_ROOT / "src").rglob("*.py"):
            for lineno, line in enumerate(path.read_text().splitlines(), 1):
                if "repro-lint: disable" in line:
                    assert "--" in line.split("disable", 1)[1], (
                        f"{path}:{lineno} suppression lacks a justification"
                    )
