"""Put ``tools/`` on sys.path so ``repro_lint`` imports without install."""

from __future__ import annotations

import pathlib
import sys

TOOLS_DIR = pathlib.Path(__file__).resolve().parent.parent.parent / "tools"

if str(TOOLS_DIR) not in sys.path:
    sys.path.insert(0, str(TOOLS_DIR))
