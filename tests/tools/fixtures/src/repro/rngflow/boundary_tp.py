"""True positives: one Generator shared across worker boundaries."""

import numpy as np


def draw_after_handoff(pool, run_task, seed_sequence):
    rng = np.random.default_rng(seed_sequence)
    pool.submit(run_task, rng)
    return rng.random()  # TP anchor: parent draws after the handoff


def double_handoff(pool, task_a, task_b, seed_sequence):
    rng = np.random.default_rng(seed_sequence)
    pool.submit(task_a, rng)
    pool.submit(task_b, rng)  # TP anchor: second worker shares the stream


def handoff_inside_loop(pool, run_task, tasks, seed_sequence):
    rng = np.random.default_rng(seed_sequence)
    for task in tasks:
        pool.submit(run_task, task, rng)  # TP anchor: one stream, N workers
