"""Guarded false positives: Generators derived the sanctioned way."""

import numpy as np

from repro.utils.seeding import make_rng


def from_spawned_sequence(seed_sequence):
    rng = np.random.default_rng(seed_sequence)
    return rng


def from_variable(seed):
    # A variable seed is a caller decision, not a hard-coded constant.
    rng = np.random.default_rng(seed)
    return rng


def through_the_helper(seed):
    # make_rng normalizes whatever it is given through a SeedSequence.
    rng = make_rng(seed)
    return rng
