"""True positives: Generators seeded with raw integer literals."""

import numpy as np


def positional_literal():
    rng = np.random.default_rng(1234)  # TP anchor: raw positional seed
    return rng


def keyword_literal():
    rng = np.random.default_rng(seed=7)  # TP anchor: raw keyword seed
    return rng
