"""Guarded false positives: draws whose order is pinned by sorted(...)."""

import numpy as np


def sample_sorted_set(members, rng: np.random.Generator):
    weights = []
    for member in sorted(set(members)):
        weights.append(rng.random())
        del member
    return weights


def sample_sorted_dict(table, rng: np.random.Generator):
    draws = []
    for key in sorted(table.keys()):
        draws.append(rng.normal())
        del key
    return draws


def iterate_set_without_draw(members):
    # Unordered iteration is fine while no stream is consumed inside.
    labels = []
    for member in set(members):
        labels.append(str(member))
    return labels
