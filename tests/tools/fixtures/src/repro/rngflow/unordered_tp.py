"""True positives: RNG draws ordered by hash/iteration state."""

import numpy as np


def sample_from_set(members, rng: np.random.Generator):
    weights = []
    for member in set(members):
        weights.append(rng.random())  # TP anchor: set order is hash-seeded
        del member
    return weights


def sample_from_dict_view(table, rng: np.random.Generator):
    draws = []
    for key in table.keys():
        draws.append(rng.normal())  # TP anchor: unsorted dict view
        del key
    return draws
