"""Guarded false positives: disciplined stream handling around boundaries."""

import numpy as np


def spawn_per_submission(pool, run_task, tasks, seed_sequence):
    # One child stream per worker: created inside the loop, handed off
    # exactly once each.
    for task, child in zip(tasks, seed_sequence.spawn(len(tasks))):
        rng = np.random.default_rng(child)
        pool.submit(run_task, task, rng)


def draw_then_hand_off(pool, run_task, seed_sequence):
    # Drawing *before* the handoff is deterministic: the stream state the
    # worker receives is a pure function of the seed.
    rng = np.random.default_rng(seed_sequence)
    warmup = rng.random()
    pool.submit(run_task, rng)
    return warmup


def spawn_is_not_a_draw(pool, run_task, rng: np.random.Generator):
    # .spawn() is the sanctioned fork; it must not count as consumption.
    pool.submit(run_task, rng)
    children = rng.spawn(3)
    return children
