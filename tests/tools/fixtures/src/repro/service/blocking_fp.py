"""Guarded false positives: blocking-shaped code that never stalls the loop."""

import asyncio
import time


async def executor_hop(delay: float) -> None:
    loop = asyncio.get_running_loop()
    # Sanctioned hop: time.sleep runs on a worker thread.
    await loop.run_in_executor(None, time.sleep, delay)


async def thread_hop(delay: float) -> None:
    await asyncio.to_thread(time.sleep, delay)


async def lambda_join(process) -> None:
    loop = asyncio.get_running_loop()
    # The join happens inside the lambda, which executes on the executor.
    await loop.run_in_executor(None, lambda: process.join(timeout=1.0))


async def format_names(separator: str, names) -> str:
    # str.join takes an iterable argument; the heuristic must not
    # mistake it for Process.join.
    return separator.join(names)


async def read_deadline() -> float:
    # Wall-clock reads are *expected* in service code (deadlines, SLO
    # reports); only simulation/detection/perf forbid them.
    return time.time()


def worker_side(delay: float) -> None:
    # Sync function never reached from an async def in this module.
    time.sleep(delay)
