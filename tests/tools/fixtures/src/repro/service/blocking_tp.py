"""True positives: blocking work reachable from service coroutines."""

import subprocess
import time

from repro.service.blocking_helpers import settle


async def handle_request(delay: float) -> None:
    # The stall is two hops away: handle_request -> settle -> time.sleep.
    settle(delay)


async def shell_out(command) -> None:
    subprocess.run(command)  # TP anchor: direct subprocess on the loop


class Relay:
    def __init__(self) -> None:
        self._paused = False

    def _throttle(self) -> None:
        time.sleep(0.01)  # TP anchor: reached via self._throttle()

    async def forward(self, packet) -> None:
        self._throttle()
        del packet
