"""Sync helper used by the async-blocking TP fixture (indirection hop)."""

import time


def settle(delay: float) -> None:
    time.sleep(delay)  # TP anchor: reachable from handle_request


def relabel(parts):
    return "-".join(parts)
