"""Guarded false positives: jitted bodies are a compiled boundary.

Everything in here would be a ``wallclock`` or ``rng-raw-seed`` finding
in plain Python, but every body is (or is nested inside) a numba-jitted
function — lowered to machine code, unable to call the sanctioned
helpers, and covered by the bit-identity property tests at its call
boundary instead. The passes must stay silent.
"""

import time

import numba
import numpy as np
from numba import njit


@njit(cache=True)
def raw_seed_kernel(offset):
    # A jitted kernel cannot reach repro.utils.seeding: numba cannot
    # lower the factory objects. Raw seeding here is the callers'
    # responsibility to wire, not this body's.
    rng = np.random.default_rng(1234)
    return rng.random() + offset


@numba.njit
def qualified_decorator_kernel():
    rng = np.random.default_rng(seed=7)
    return rng.random()


@numba.guvectorize(["float64[:], float64[:]"], "(n)->(n)")
def wallclock_spelling(values, out):
    # ``time.time`` in a jitted body is lowered (or rejected) by numba,
    # never executed by CPython — not a wall-clock read of this process.
    out[0] = time.time() + values[0]


@njit
def closure_host(values):
    def accumulate(total, value):
        rng = np.random.default_rng(99)
        return total + value + rng.random()

    total = 0.0
    for value in values:
        total = accumulate(total, value)
    return total
