"""True positives: non-numba decorators are not a compiled boundary.

The sharpest near-miss for the compiled-boundary mark: functions in a
``perf`` module that *are* decorated — just not with anything from the
numba jit family — must still be scanned like ordinary Python.
"""

import functools
import time


@functools.lru_cache(maxsize=8)
def cached_stamp(key):
    return key, time.time()  # TP anchor: lru_cache is not a jit


@functools.wraps(cached_stamp)
def wrapped_stamp():
    return time.time()  # TP anchor: wraps is not a jit
