"""True positives: wall-clock reads inside a deterministic package."""

import time
from datetime import datetime


def stamp_run(events):
    started = time.time()  # TP anchor: host-clock read in simulation
    stamped = [(event, datetime.now()) for event in events]  # TP anchor
    return started, stamped
