"""Guarded false positives: sanctioned clocks in a deterministic package."""

import time


def measure(step):
    # monotonic intervals are allowed: they never enter results, only
    # perf telemetry, and cannot go backwards under NTP steps.
    start = time.monotonic()
    step()
    return time.monotonic() - start


def budget(deadline: float) -> float:
    return max(0.0, deadline - time.perf_counter())
