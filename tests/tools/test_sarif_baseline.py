"""SARIF emission, baseline workflow, and pyproject config tests."""

import json
from pathlib import Path

import pytest

from repro_lint.analysis import analyze_paths
from repro_lint.baseline import (
    Baseline,
    compute_fingerprints,
    split_by_baseline,
    write_baseline,
)
from repro_lint.cli import EXIT_CLEAN, EXIT_FINDINGS, main
from repro_lint.config import load_config
from repro_lint.passes import ALL_PASSES
from repro_lint.rules import ALL_RULES
from repro_lint.sarif import render_sarif

BAD = "ok = x == 1.0\n"  # one float-equality finding


def run_analysis(tmp_path, source=BAD, name="bad.py"):
    target = tmp_path / name
    target.write_text(source, encoding="utf-8")
    return analyze_paths([target], ALL_RULES, ALL_PASSES)


class TestSarif:
    def test_log_structure(self, tmp_path):
        result = run_analysis(tmp_path)
        log = json.loads(render_sarif(result.findings, [*ALL_RULES, *ALL_PASSES]))
        assert log["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in log["$schema"]
        (run,) = log["runs"]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
        assert {p.id for p in ALL_PASSES} <= rule_ids
        assert {r.id for r in ALL_RULES} <= rule_ids

    def test_result_location_and_level(self, tmp_path):
        result = run_analysis(tmp_path)
        log = json.loads(render_sarif(result.findings, ALL_RULES))
        (entry,) = log["runs"][0]["results"]
        assert entry["ruleId"] == "float-equality"
        assert entry["level"] == "error"
        region = entry["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 1
        uri = entry["locations"][0]["physicalLocation"]["artifactLocation"]
        assert uri["uri"].endswith("bad.py")

    def test_baselined_results_are_marked_unchanged(self, tmp_path):
        result = run_analysis(tmp_path)
        fingerprints = compute_fingerprints(result.findings, result.sources)
        log = json.loads(
            render_sarif(
                [],
                ALL_RULES,
                fingerprints=fingerprints,
                baselined=result.findings,
            )
        )
        (entry,) = log["runs"][0]["results"]
        assert entry["baselineState"] == "unchanged"
        assert entry["partialFingerprints"]["reproLint/v1"]

    def test_cli_sarif_format_is_valid_json(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text(BAD, encoding="utf-8")
        assert main(["--format", "sarif", str(target)]) == EXIT_FINDINGS
        log = json.loads(capsys.readouterr().out)
        assert log["runs"][0]["results"]


class TestFingerprints:
    def test_stable_under_line_shift(self, tmp_path):
        before = run_analysis(tmp_path, source=BAD)
        fp_before = set(
            compute_fingerprints(before.findings, before.sources).values()
        )
        shifted = "# a new leading comment\n\n" + BAD
        after = run_analysis(tmp_path, source=shifted)
        fp_after = set(
            compute_fingerprints(after.findings, after.sources).values()
        )
        assert before.findings[0].line != after.findings[0].line
        assert fp_before == fp_after

    def test_duplicate_lines_get_distinct_fingerprints(self, tmp_path):
        result = run_analysis(tmp_path, source=BAD + BAD)
        values = list(
            compute_fingerprints(result.findings, result.sources).values()
        )
        assert len(values) == 2
        assert len(set(values)) == 2

    def test_changed_line_text_retires_the_entry(self, tmp_path):
        result = run_analysis(tmp_path)
        fingerprints = compute_fingerprints(result.findings, result.sources)
        write_baseline(tmp_path / "bl.json", result.findings, fingerprints)
        edited = run_analysis(tmp_path, source="flag = y == 2.5\n")
        new_fps = compute_fingerprints(edited.findings, edited.sources)
        baseline = Baseline.load(tmp_path / "bl.json")
        new, old = split_by_baseline(edited.findings, new_fps, baseline)
        assert len(new) == 1 and old == []
        assert baseline.stale(new_fps.values())  # old entry now stale


class TestBaselineCli:
    def test_write_then_pass(self, tmp_path, capsys):
        target = tmp_path / "bad.py"
        target.write_text(BAD, encoding="utf-8")
        bl = tmp_path / "bl.json"
        assert (
            main(["--baseline", str(bl), "--write-baseline", str(target)])
            == EXIT_CLEAN
        )
        assert bl.exists()
        assert main(["--baseline", str(bl), str(target)]) == EXIT_CLEAN
        out = capsys.readouterr().out
        assert "baselined" in out

    def test_new_finding_still_fails(self, tmp_path):
        target = tmp_path / "bad.py"
        target.write_text(BAD, encoding="utf-8")
        bl = tmp_path / "bl.json"
        main(["--baseline", str(bl), "--write-baseline", str(target)])
        target.write_text(BAD + "worse = y == 2.0\n", encoding="utf-8")
        assert main(["--baseline", str(bl), str(target)]) == EXIT_FINDINGS

    def test_no_baseline_flag_counts_everything(self, tmp_path):
        target = tmp_path / "bad.py"
        target.write_text(BAD, encoding="utf-8")
        bl = tmp_path / "bl.json"
        main(["--baseline", str(bl), "--write-baseline", str(target)])
        assert (
            main(["--baseline", str(bl), "--no-baseline", str(target)])
            == EXIT_FINDINGS
        )

    def test_committed_repo_baseline_is_empty(self):
        payload = json.loads(
            (Path(__file__).parents[2] / ".repro-lint-baseline.json").read_text(
                encoding="utf-8"
            )
        )
        assert payload["findings"] == {}


class TestConfig:
    def write_pyproject(self, tmp_path, body):
        path = tmp_path / "pyproject.toml"
        path.write_text(body, encoding="utf-8")
        return path

    def test_missing_file_degrades_to_defaults(self, tmp_path):
        config = load_config(tmp_path / "nope.toml")
        assert config.baseline is None
        assert config.severity == {}

    def test_severity_parsing(self, tmp_path):
        path = self.write_pyproject(
            tmp_path,
            '[tool.repro-lint]\nbaseline = "bl.json"\n'
            '[tool.repro-lint.severity]\n'
            'float-equality = "off"\nrng-raw-seed = "error"\n'
            'bogus-level = "loud"\n',
        )
        config = load_config(path)
        assert config.baseline == "bl.json"
        assert config.disabled_ids() == frozenset({"float-equality"})
        assert config.overrides() == {"rng-raw-seed": "error"}

    def test_off_disables_the_rule_via_cli(self, tmp_path):
        target = tmp_path / "bad.py"
        target.write_text(BAD, encoding="utf-8")
        pyproject = self.write_pyproject(
            tmp_path,
            '[tool.repro-lint.severity]\nfloat-equality = "off"\n',
        )
        assert (
            main(["--config", str(pyproject), str(target)]) == EXIT_CLEAN
        )

    def test_downgrade_to_warning_changes_exit_code(self, tmp_path):
        target = tmp_path / "bad.py"
        target.write_text(BAD, encoding="utf-8")
        pyproject = self.write_pyproject(
            tmp_path,
            '[tool.repro-lint.severity]\nfloat-equality = "warning"\n',
        )
        assert (
            main(["--config", str(pyproject), str(target)]) == EXIT_CLEAN
        )
        assert (
            main(
                [
                    "--config",
                    str(pyproject),
                    "--strict-warnings",
                    str(target),
                ]
            )
            == EXIT_FINDINGS
        )

    def test_repo_pyproject_parses(self):
        config = load_config(Path(__file__).parents[2] / "pyproject.toml")
        assert config.baseline == ".repro-lint-baseline.json"
        for level in config.severity.values():
            assert level in ("off", "warning", "error")


@pytest.mark.parametrize("fmt", ["text", "json", "sarif"])
def test_formats_share_exit_semantics(tmp_path, capsys, fmt):
    target = tmp_path / "clean.py"
    target.write_text("x = 1\n", encoding="utf-8")
    assert main(["--format", fmt, str(target)]) == EXIT_CLEAN
    capsys.readouterr()
