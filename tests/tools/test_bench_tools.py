"""Tests for the benchmark-trajectory tools.

``tools/bench_snapshot.py`` normalizes raw pytest-benchmark output into
``BENCH_<n>.json`` snapshots; ``tools/bench_compare.py`` diffs two
snapshots and must exit non-zero on a >threshold regression — that exit
code is the contract future PRs' perf gates rely on.
"""

from __future__ import annotations

import copy
import json

import pytest

import bench_compare
import bench_snapshot


def _raw_report(means):
    """A minimal raw pytest-benchmark report with the given mean timings."""
    return {
        "datetime": "2026-08-07T12:00:00",
        "machine_info": {
            "node": "testhost",
            "processor": "x86_64",
            "machine": "x86_64",
            "python_version": "3.12.0",
            "release": "ignored-key",
        },
        "benchmarks": [
            {
                "fullname": name,
                "stats": {
                    "mean": mean,
                    "stddev": mean / 10.0,
                    "median": mean,
                    "min": mean * 0.9,
                    "max": mean * 1.1,
                    "rounds": 5,
                    "iterations": 1,
                },
            }
            for name, mean in means.items()
        ],
    }


MEANS = {
    "benchmarks/bench_batch.py::test_grid_sweep_1000pt_vectorized": 0.010,
    "benchmarks/bench_parallel.py::test_mc_200_trials_serial": 0.900,
    "benchmarks/bench_memo.py::test_kernel_warm_cache": 0.0002,
}


def _write_raw(tmp_path, means, name="raw.json"):
    path = tmp_path / name
    path.write_text(json.dumps(_raw_report(means)))
    return str(path)


class TestSnapshot:
    def test_normalizes_and_autonumbers(self, tmp_path):
        raw = _write_raw(tmp_path, MEANS)
        root = str(tmp_path)
        assert bench_snapshot.main([raw, "--root", root]) == 0
        first = tmp_path / "BENCH_1.json"
        assert first.exists()

        snapshot = json.loads(first.read_text())
        assert snapshot["version"] == bench_snapshot.SNAPSHOT_VERSION
        assert set(snapshot["benchmarks"]) == set(MEANS)
        assert "release" not in snapshot["machine_info"]
        for name, mean in MEANS.items():
            assert snapshot["benchmarks"][name]["mean"] == mean

        # Second run numbers itself BENCH_2.json.
        assert bench_snapshot.main([raw, "--root", root]) == 0
        assert (tmp_path / "BENCH_2.json").exists()

    def test_rejects_empty_report(self, tmp_path):
        raw = _write_raw(tmp_path, {})
        assert bench_snapshot.main([raw, "--root", str(tmp_path)]) == 2

    def test_rejects_unreadable_input(self, tmp_path):
        missing = str(tmp_path / "nope.json")
        assert bench_snapshot.main([missing, "--root", str(tmp_path)]) == 2


class TestCompare:
    def _snapshot_pair(self, tmp_path, regression_factor=1.0):
        base_raw = _write_raw(tmp_path, MEANS, "base_raw.json")
        bench_snapshot.main(
            [base_raw, "--output", str(tmp_path / "BENCH_1.json")]
        )
        slower = copy.deepcopy(MEANS)
        first = next(iter(slower))
        slower[first] = slower[first] * regression_factor
        new_raw = _write_raw(tmp_path, slower, "new_raw.json")
        bench_snapshot.main([new_raw, "--output", str(tmp_path / "BENCH_2.json")])
        return str(tmp_path / "BENCH_1.json"), str(tmp_path / "BENCH_2.json")

    def test_identical_snapshots_pass(self, tmp_path, capsys):
        base, new = self._snapshot_pair(tmp_path)
        assert bench_compare.main([base, new]) == 0
        assert "OK" in capsys.readouterr().out

    def test_injected_regression_fails(self, tmp_path, capsys):
        """The acceptance criterion: >=20% slower must exit non-zero."""
        base, new = self._snapshot_pair(tmp_path, regression_factor=1.25)
        assert bench_compare.main([base, new]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_regression_within_threshold_passes(self, tmp_path):
        base, new = self._snapshot_pair(tmp_path, regression_factor=1.15)
        assert bench_compare.main([base, new]) == 0

    def test_threshold_is_configurable(self, tmp_path):
        base, new = self._snapshot_pair(tmp_path, regression_factor=1.15)
        assert bench_compare.main([base, new, "--threshold", "0.1"]) == 1

    def test_speedups_never_fail(self, tmp_path):
        base, new = self._snapshot_pair(tmp_path, regression_factor=0.5)
        assert bench_compare.main([base, new]) == 0

    def test_auto_mode_picks_two_newest(self, tmp_path):
        self._snapshot_pair(tmp_path, regression_factor=1.25)
        assert bench_compare.main(["--root", str(tmp_path)]) == 1

    def test_auto_mode_without_baseline_is_a_clean_noop(self, tmp_path, capsys):
        """Fresh clones / new branches have no trajectory: exit 0, say why."""
        assert bench_compare.main(["--root", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "no baseline snapshot found" in out

    def test_auto_mode_with_single_snapshot_is_a_clean_noop(
        self, tmp_path, capsys
    ):
        raw = _write_raw(tmp_path, MEANS)
        bench_snapshot.main([raw, "--root", str(tmp_path)])
        assert bench_compare.main(["--root", str(tmp_path)]) == 0
        assert "no baseline snapshot found" in capsys.readouterr().out

    def test_disjoint_snapshots_error(self, tmp_path):
        raw_a = _write_raw(tmp_path, {"a::one": 1.0}, "a.json")
        raw_b = _write_raw(tmp_path, {"b::two": 1.0}, "b.json")
        bench_snapshot.main([raw_a, "--output", str(tmp_path / "BENCH_1.json")])
        bench_snapshot.main([raw_b, "--output", str(tmp_path / "BENCH_2.json")])
        assert (
            bench_compare.main(
                [str(tmp_path / "BENCH_1.json"), str(tmp_path / "BENCH_2.json")]
            )
            == 2
        )

    def test_grown_suite_reports_additions_without_failing(self, tmp_path, capsys):
        grown = dict(MEANS)
        grown["benchmarks/bench_new.py::test_shiny"] = 0.5
        raw_a = _write_raw(tmp_path, MEANS, "a.json")
        raw_b = _write_raw(tmp_path, grown, "b.json")
        bench_snapshot.main([raw_a, "--output", str(tmp_path / "BENCH_1.json")])
        bench_snapshot.main([raw_b, "--output", str(tmp_path / "BENCH_2.json")])
        assert (
            bench_compare.main(
                [str(tmp_path / "BENCH_1.json"), str(tmp_path / "BENCH_2.json")]
            )
            == 0
        )
        assert "added:" in capsys.readouterr().out


def _ladder(flooded_compiled=0.08, flooded_numpy=0.40):
    return {
        "version": 1,
        "available": ["scalar", "numpy", "compiled"],
        "backend": "cc",
        "rounds": 3,
        "benchmarks": {
            "flooded_packet_1000c": {
                "tiers": {
                    "numpy": {"mean": flooded_numpy, "rounds": 3},
                    "compiled": {"mean": flooded_compiled, "rounds": 3},
                },
                "speedup_vs_numpy": {
                    "compiled": flooded_numpy / flooded_compiled
                },
            },
        },
    }


class TestLadderEmbedding:
    def test_snapshot_embeds_ladder_as_tiers_block(self, tmp_path):
        raw = _write_raw(tmp_path, MEANS)
        ladder_path = tmp_path / "ladder.json"
        ladder_path.write_text(json.dumps(_ladder()))
        out = tmp_path / "BENCH_1.json"
        assert bench_snapshot.main(
            [raw, "--output", str(out), "--ladder", str(ladder_path)]
        ) == 0
        snapshot = json.loads(out.read_text())
        assert snapshot["tiers"]["backend"] == "cc"
        assert "flooded_packet_1000c" in snapshot["tiers"]["benchmarks"]

    def test_malformed_ladder_rejected(self, tmp_path):
        raw = _write_raw(tmp_path, MEANS)
        ladder_path = tmp_path / "ladder.json"
        ladder_path.write_text(json.dumps({"no": "benchmarks"}))
        assert bench_snapshot.main(
            [raw, "--ladder", str(ladder_path), "--root", str(tmp_path)]
        ) == 2


class TestCompareTiers:
    def _tiered_pair(self, tmp_path, new_compiled, new_numpy=0.40):
        for number, ladder in (
            (1, _ladder()),
            (2, _ladder(flooded_compiled=new_compiled,
                        flooded_numpy=new_numpy)),
        ):
            raw = _write_raw(tmp_path, MEANS, f"raw{number}.json")
            ladder_path = tmp_path / f"ladder{number}.json"
            ladder_path.write_text(json.dumps(ladder))
            bench_snapshot.main(
                [raw, "--output", str(tmp_path / f"BENCH_{number}.json"),
                 "--ladder", str(ladder_path)]
            )
        return (
            str(tmp_path / "BENCH_1.json"),
            str(tmp_path / "BENCH_2.json"),
        )

    def test_compiled_regression_cannot_hide_behind_numpy(
        self, tmp_path, capsys
    ):
        # numpy got 2x faster, compiled got 3x slower: the per-tier rows
        # must still fail the gate.
        base, new = self._tiered_pair(
            tmp_path, new_compiled=0.24, new_numpy=0.20
        )
        assert bench_compare.main([base, new]) == 1
        out = capsys.readouterr().out
        assert "flooded_packet_1000c[compiled]" in out
        assert "REGRESSION" in out

    def test_matching_tiers_pass(self, tmp_path, capsys):
        base, new = self._tiered_pair(tmp_path, new_compiled=0.08)
        assert bench_compare.main([base, new]) == 0
        assert "flooded_packet_1000c[numpy]" in capsys.readouterr().out

    def test_pre_ladder_snapshots_skip_tier_rows(self, tmp_path):
        # Old snapshots have no tiers block; comparison degrades to the
        # plain timing diff instead of erroring.
        raw = _write_raw(tmp_path, MEANS)
        bench_snapshot.main([raw, "--output", str(tmp_path / "BENCH_1.json")])
        ladder_path = tmp_path / "ladder.json"
        ladder_path.write_text(json.dumps(_ladder()))
        bench_snapshot.main(
            [raw, "--output", str(tmp_path / "BENCH_2.json"),
             "--ladder", str(ladder_path)]
        )
        assert bench_compare.main(
            [str(tmp_path / "BENCH_1.json"), str(tmp_path / "BENCH_2.json")]
        ) == 0


class TestCompareAgainst:
    def _trajectory(self, tmp_path, factors):
        """BENCH_1..n with every benchmark scaled by the given factors."""
        for number, factor in enumerate(factors, start=1):
            means = {name: mean * factor for name, mean in MEANS.items()}
            raw = _write_raw(tmp_path, means, f"raw{number}.json")
            bench_snapshot.main(
                [raw, "--output", str(tmp_path / f"BENCH_{number}.json")]
            )

    def test_against_compares_newest_to_chosen_base(self, tmp_path, capsys):
        # 1.0 -> 1.1 -> 1.15: newest vs previous is within threshold,
        # but vs BENCH_1 the cumulative drift is not.
        self._trajectory(tmp_path, [1.0, 1.1, 1.15])
        root = str(tmp_path)
        assert bench_compare.main(["--root", root]) == 0
        assert bench_compare.main(
            ["--root", root, "--against", "1", "--threshold", "0.12"]
        ) == 1
        assert "BENCH_1.json" in capsys.readouterr().out

    def test_against_missing_snapshot_errors(self, tmp_path):
        self._trajectory(tmp_path, [1.0, 1.0])
        assert bench_compare.main(
            ["--root", str(tmp_path), "--against", "9"]
        ) == 2

    def test_against_newest_itself_errors(self, tmp_path):
        self._trajectory(tmp_path, [1.0, 1.0])
        assert bench_compare.main(
            ["--root", str(tmp_path), "--against", "2"]
        ) == 2


class TestMemoizationContract:
    def test_memoized_kernel_identical_results(self):
        from repro.core.probability import (
            all_bad_cache_clear,
            all_bad_cache_info,
            all_bad_probability,
        )

        all_bad_cache_clear()
        cold = [all_bad_probability(100.0, 17.5, k) for k in range(10)]
        warm = [all_bad_probability(100.0, 17.5, k) for k in range(10)]
        assert cold == warm
        info = all_bad_cache_info()
        assert info.hits >= 9  # z=0 short-circuits before the cache
        assert info.currsize <= info.maxsize
