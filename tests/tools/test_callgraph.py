"""Unit tests for the project module index / call graph."""

import ast
import textwrap
from pathlib import Path

from repro_lint.callgraph import (
    ProjectGraph,
    classify_boundary,
    dotted_name,
    module_name_for,
)


def build_graph(modules):
    """``{relative_path: source}`` -> ProjectGraph (paths under a fake src)."""
    files = []
    for rel, source in modules.items():
        files.append((Path("src") / rel, ast.parse(textwrap.dedent(source))))
    return ProjectGraph.build(files)


class TestModuleNames:
    def test_src_relative(self):
        name, is_pkg = module_name_for(Path("src/repro/service/pool.py"))
        assert name == "repro.service.pool"
        assert not is_pkg

    def test_init_maps_to_package(self):
        name, is_pkg = module_name_for(Path("src/repro/service/__init__.py"))
        assert name == "repro.service"
        assert is_pkg

    def test_outside_src_uses_stem(self):
        name, _ = module_name_for(Path("benchmarks/bench_lookup.py"))
        assert name == "bench_lookup"

    def test_last_src_segment_wins(self):
        name, _ = module_name_for(
            Path("tests/tools/fixtures/src/repro/rngflow/boundary_tp.py")
        )
        assert name == "repro.rngflow.boundary_tp"


class TestImportResolution:
    def test_from_import_cross_module(self):
        graph = build_graph(
            {
                "repro/a.py": """
                    def helper():
                        pass
                """,
                "repro/b.py": """
                    from repro.a import helper

                    def caller():
                        helper()
                """,
            }
        )
        (site,) = graph.function("repro.b.caller").calls
        assert site.resolved == "repro.a.helper"
        assert graph.resolve_to_function(site.resolved) is not None

    def test_relative_import(self):
        graph = build_graph(
            {
                "repro/pkg/a.py": """
                    def helper():
                        pass
                """,
                "repro/pkg/b.py": """
                    from .a import helper

                    def caller():
                        helper()
                """,
            }
        )
        (site,) = graph.function("repro.pkg.b.caller").calls
        assert site.resolved == "repro.pkg.a.helper"

    def test_aliased_module_import(self):
        graph = build_graph(
            {
                "repro/a.py": """
                    def helper():
                        pass
                """,
                "repro/b.py": """
                    import repro.a as aa

                    def caller():
                        aa.helper()
                """,
            }
        )
        (site,) = graph.function("repro.b.caller").calls
        assert site.resolved == "repro.a.helper"


class TestReceiverResolution:
    SOURCE = {
        "repro/mod.py": """
            class Engine:
                def __init__(self):
                    self.clock = Clock()

                def step(self):
                    self.advance()
                    self.clock.tick()

                def advance(self):
                    pass

            class Clock:
                def __init__(self):
                    pass

                def tick(self):
                    pass

            def run(engine: Engine):
                engine.step()
                local = Clock()
                local.tick()
        """
    }

    def test_self_method(self):
        graph = build_graph(self.SOURCE)
        targets = {
            s.resolved for s in graph.function("repro.mod.Engine.step").calls
        }
        assert "repro.mod.Engine.advance" in targets

    def test_self_attr_type_from_init(self):
        graph = build_graph(self.SOURCE)
        targets = {
            s.resolved for s in graph.function("repro.mod.Engine.step").calls
        }
        assert "repro.mod.Clock.tick" in targets

    def test_param_annotation_and_local_assignment(self):
        graph = build_graph(self.SOURCE)
        targets = {s.resolved for s in graph.function("repro.mod.run").calls}
        assert "repro.mod.Engine.step" in targets
        assert "repro.mod.Clock.tick" in targets
        # Calling a class resolves to its constructor.
        assert "repro.mod.Clock.__init__" in targets


class TestBoundariesAndNesting:
    def test_boundary_classification(self):
        call = ast.parse("loop.run_in_executor(None, f)").body[0].value
        assert classify_boundary(dotted_name(call.func), call) == "executor"
        call = ast.parse("ctx.Process(target=f)").body[0].value
        assert classify_boundary(dotted_name(call.func), call) == "process"
        call = ast.parse("queue.try_submit(item)").body[0].value
        assert classify_boundary(dotted_name(call.func), call) is None

    def test_lambda_bodies_are_not_enclosing_calls(self):
        graph = build_graph(
            {
                "repro/mod.py": """
                    def dispatch(loop, process):
                        loop.run_in_executor(None, lambda: process.join(1.0))
                """
            }
        )
        raws = {
            s.raw_name for s in graph.function("repro.mod.dispatch").calls
        }
        assert "loop.run_in_executor" in raws
        assert "process.join" not in raws

    def test_nested_defs_are_indexed_separately(self):
        graph = build_graph(
            {
                "repro/mod.py": """
                    def outer():
                        def inner():
                            blocked()
                        return inner
                """
            }
        )
        outer = graph.function("repro.mod.outer")
        assert outer.locals_functions == {
            "inner": "repro.mod.outer.<locals>.inner"
        }
        inner = graph.function("repro.mod.outer.<locals>.inner")
        assert {s.raw_name for s in inner.calls} == {"blocked"}
        # The nested call does not leak into outer's own call list.
        assert "blocked" not in {s.raw_name for s in outer.calls}

    def test_async_functions_query(self):
        graph = build_graph(
            {
                "repro/mod.py": """
                    async def a():
                        pass

                    def b():
                        pass
                """
            }
        )
        names = {f.qualname for f in graph.async_functions()}
        assert names == {"repro.mod.a"}
