"""Pass-level tests over the fixture corpus.

Every ``*_tp.py`` fixture marks its expected finding lines with a
``# TP anchor`` comment; the tests assert the passes report **exactly**
those (rule, line) pairs — catching both missed true positives and any
false positive the guarded ``*_fp.py`` variants are designed to provoke.
"""

from pathlib import Path

import pytest

from repro_lint.analysis import analyze_paths
from repro_lint.passes import ALL_PASSES, pass_by_id
from repro_lint.rules import ALL_RULES

FIXTURES = Path(__file__).parent / "fixtures" / "src" / "repro"

PASS_IDS = {p.id for p in ALL_PASSES}


def pass_findings(report):
    return [f for f in report.findings if f.rule_id in PASS_IDS]


def anchor_lines(path: Path):
    return {
        lineno
        for lineno, text in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        )
        if "TP anchor" in text
    }


@pytest.fixture(scope="module")
def result():
    return analyze_paths([FIXTURES], ALL_RULES, ALL_PASSES)


def report_for(result, name):
    for report in result.reports:
        if report.path.endswith(name):
            return report
    raise AssertionError(f"no report for {name}")


class TestTruePositives:
    EXPECTED = {
        "service/blocking_helpers.py": "async-blocking",
        "service/blocking_tp.py": "async-blocking",
        "rngflow/boundary_tp.py": "rng-boundary-reuse",
        "rngflow/rawseed_tp.py": "rng-raw-seed",
        "rngflow/unordered_tp.py": "rng-unordered-iter",
        "simulation/wallclock_tp.py": "wallclock",
        # Decorated but not jitted: the compiled-boundary mark must not
        # swallow ordinary decorators.
        "perf/compiled_tp.py": "wallclock",
    }

    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_findings_hit_every_anchor_exactly(self, result, name):
        rule_id = self.EXPECTED[name]
        report = report_for(result, name)
        findings = pass_findings(report)
        assert {f.rule_id for f in findings} == {rule_id}
        assert {f.line for f in findings} == anchor_lines(FIXTURES / name)

    def test_blocking_message_names_the_call_chain(self, result):
        report = report_for(result, "service/blocking_helpers.py")
        (finding,) = pass_findings(report)
        assert "handle_request -> settle" in finding.message

    def test_severities_come_from_the_pass(self, result):
        report = report_for(result, "rngflow/rawseed_tp.py")
        for finding in pass_findings(report):
            assert finding.severity == pass_by_id("rng-raw-seed").severity


class TestGuardedFalsePositives:
    CLEAN = [
        "service/blocking_fp.py",
        "rngflow/boundary_fp.py",
        "rngflow/rawseed_fp.py",
        "rngflow/unordered_fp.py",
        "simulation/wallclock_fp.py",
        "perf/compiled_fp.py",
    ]

    @pytest.mark.parametrize("name", CLEAN)
    def test_no_pass_findings(self, result, name):
        report = report_for(result, name)
        assert pass_findings(report) == []

    def test_fp_files_are_clean_on_statement_rules_too(self, result):
        for name in self.CLEAN:
            report = report_for(result, name)
            assert report.findings == []


class TestCompiledBoundary:
    """Jitted bodies are a compiled boundary the hygiene passes stop at."""

    def test_jitted_bodies_marked_compiled(self):
        import ast

        from repro_lint.callgraph import ProjectGraph

        path = FIXTURES / "perf" / "compiled_fp.py"
        tree = ast.parse(path.read_text(encoding="utf-8"))
        graph = ProjectGraph.build([(path, tree)])
        compiled = {
            info.name
            for info in graph.functions.values()
            if info.is_compiled
        }
        assert compiled == {
            "raw_seed_kernel",
            "qualified_decorator_kernel",
            "wallclock_spelling",
            "closure_host",
            "accumulate",  # nested def inherits the enclosing jit
        }

    def test_non_jit_decorators_not_marked(self):
        import ast

        from repro_lint.callgraph import ProjectGraph

        path = FIXTURES / "perf" / "compiled_tp.py"
        tree = ast.parse(path.read_text(encoding="utf-8"))
        graph = ProjectGraph.build([(path, tree)])
        assert not any(
            info.is_compiled for info in graph.functions.values()
        )


class TestScoping:
    def test_wallclock_ignores_service_modules(self, result):
        # blocking_fp.py reads time.time() in a coroutine — fine for
        # service code, which owns deadlines and SLO reporting.
        report = report_for(result, "service/blocking_fp.py")
        assert all(f.rule_id != "wallclock" for f in report.findings)

    def test_every_pass_has_tp_and_fp_coverage(self):
        covered = set(TestTruePositives.EXPECTED.values())
        assert covered == PASS_IDS


class TestSuppressionIntegration:
    def test_pass_findings_honor_inline_suppressions(self, tmp_path):
        src = tmp_path / "src" / "repro" / "simulation"
        src.mkdir(parents=True)
        target = src / "mod.py"
        target.write_text(
            "import time\n"
            "\n"
            "def stamp():\n"
            "    return time.time()  "
            "# repro-lint: disable=wallclock -- telemetry only\n",
            encoding="utf-8",
        )
        result = analyze_paths([tmp_path], ALL_RULES, ALL_PASSES)
        (report,) = [r for r in result.reports if r.path.endswith("mod.py")]
        assert report.findings == []
        assert [f.rule_id for f in report.suppressed] == ["wallclock"]
