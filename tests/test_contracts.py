"""Tests for the runtime probability contracts (:mod:`repro.contracts`).

Covers the decorator behavior on pathological floats (NaN, infinities,
negative zero), the disabled-contracts fast path (provably zero overhead:
the decorator must return the *same function object*), and error-message
quality (function name, argument name, offending value all present).
"""

from __future__ import annotations

import math

import pytest

from repro import contracts
from repro.contracts import (
    contracts_enabled,
    ensures,
    requires_fraction,
    requires_non_negative,
    requires_probability,
    returns_probability,
)
from repro.errors import AnalysisError, ContractViolationError, ReproError


def identity(value):
    return value


@pytest.fixture
def enabled(monkeypatch):
    """Force contracts on, regardless of the REPRO_CONTRACTS this run has.

    All decoration in these tests happens inside the test bodies, after the
    monkeypatch, so the decoration-time snapshot sees the forced value.
    """
    monkeypatch.setattr(contracts, "_ENABLED", True)


@pytest.mark.usefixtures("enabled")
class TestReturnsProbability:
    @pytest.mark.parametrize("value", [0.0, 1.0, 0.5, 1e-300, 0, 1, -0.0])
    def test_accepts_valid_probabilities(self, value):
        assert returns_probability(identity)(value) == value

    @pytest.mark.parametrize(
        "value",
        [
            -0.1,
            1.0000000001,
            float("nan"),
            float("inf"),
            float("-inf"),
            None,
            "0.5",
            True,  # bools are not probabilities even though True == 1
        ],
    )
    def test_rejects_invalid_results(self, value):
        with pytest.raises(ContractViolationError):
            returns_probability(identity)(value)

    def test_error_message_names_function_and_value(self):
        @returns_probability
        def broken_probability():
            return 1.5

        with pytest.raises(ContractViolationError, match="broken_probability") as info:
            broken_probability()
        assert "1.5" in str(info.value)
        assert "[0, 1]" in str(info.value)

    def test_negative_zero_passes(self):
        # -0.0 == 0.0: a clamp that produces the negative-zero float is fine.
        assert returns_probability(identity)(-0.0) == 0.0


@pytest.mark.usefixtures("enabled")
class TestEnsures:
    def test_passing_predicate(self):
        wrapped = ensures(lambda r: r > 0, "must be positive")(identity)
        assert wrapped(3) == 3

    def test_failing_predicate_includes_description_and_result(self):
        wrapped = ensures(lambda r: r > 0, "must be positive")(identity)
        with pytest.raises(ContractViolationError, match="must be positive") as info:
            wrapped(-2)
        assert "-2" in str(info.value)


@pytest.mark.usefixtures("enabled")
class TestRequiresDecorators:
    def test_requires_probability_accepts_boundaries(self):
        @requires_probability("p")
        def f(p):
            return p

        assert f(0.0) == 0.0
        assert f(p=1.0) == 1.0

    def test_requires_probability_rejects_nan(self):
        @requires_probability("p")
        def f(p):
            return p

        with pytest.raises(ContractViolationError, match="p="):
            f(float("nan"))

    def test_requires_fraction_excludes_zero(self):
        @requires_fraction("share")
        def f(share):
            return share

        assert f(1.0) == 1.0
        with pytest.raises(ContractViolationError, match="share=0.0"):
            f(0.0)
        with pytest.raises(ContractViolationError):
            f(-0.0)  # negative zero is still zero: not a valid fraction

    def test_requires_non_negative_rejects_infinity(self):
        @requires_non_negative("count")
        def f(count):
            return count

        assert f(0.0) == 0.0
        with pytest.raises(ContractViolationError):
            f(float("inf"))
        with pytest.raises(ContractViolationError):
            f(-1e-12)

    def test_checks_defaults_too(self):
        @requires_probability("p")
        def f(p=2.0):
            return p

        with pytest.raises(ContractViolationError):
            f()

    def test_multiple_names_report_the_offender(self):
        @requires_probability("a", "b")
        def f(a, b):
            return a + b

        with pytest.raises(ContractViolationError, match="b=7"):
            f(0.5, 7)

    def test_unknown_parameter_fails_at_decoration_time(self):
        with pytest.raises(ContractViolationError, match="no parameter"):

            @requires_probability("nope")
            def f(p):
                return p


class TestDisabledMode:
    """REPRO_CONTRACTS=0 must make every decorator the identity function."""

    @pytest.fixture
    def disabled(self, monkeypatch):
        monkeypatch.setattr(contracts, "_ENABLED", False)

    def test_returns_probability_is_identity(self, disabled):
        assert returns_probability(identity) is identity

    def test_ensures_is_identity(self, disabled):
        assert ensures(lambda r: False, "never holds")(identity) is identity

    def test_requires_decorators_are_identity(self, disabled):
        def f(p):
            return p

        assert requires_probability("p")(f) is f
        assert requires_fraction("p")(f) is f
        assert requires_non_negative("p")(f) is f

    def test_no_checking_when_disabled(self, disabled):
        wrapped = returns_probability(identity)
        assert math.isnan(wrapped(float("nan")))  # nothing raised

    def test_contracts_enabled_reflects_flag(self, disabled):
        assert contracts_enabled() is False

    def test_env_parsing(self, monkeypatch):
        for raw, expected in [
            ("0", False),
            ("false", False),
            ("OFF", False),
            ("no", False),
            ("1", True),
            ("", True),
            ("yes", True),
        ]:
            monkeypatch.setenv("REPRO_CONTRACTS", raw)
            assert contracts._env_enabled() is expected, raw
        monkeypatch.delenv("REPRO_CONTRACTS")
        assert contracts._env_enabled() is True


class TestExceptionHierarchy:
    def test_contract_violation_is_analysis_and_repro_error(self):
        assert issubclass(ContractViolationError, AnalysisError)
        assert issubclass(ContractViolationError, ReproError)

    @pytest.mark.usefixtures("enabled")
    def test_violations_are_catchable_as_library_errors(self):
        @returns_probability
        def broken():
            return 2.0

        with pytest.raises(ReproError):
            broken()


class TestContractedCoreFunctions:
    """The contracts are actually installed on the analytical core."""

    def test_all_bad_probability_is_wrapped(self):
        from repro.core.probability import all_bad_probability

        if contracts_enabled():
            assert all_bad_probability.__wrapped__ is not None
        assert all_bad_probability(100, 50, 2) == pytest.approx(
            (50 * 49) / (100 * 99)
        )

    def test_fraction_degree_contract_fires(self):
        from repro.core.mapping import fraction_degree

        assert fraction_degree(0.5, 10) == 5
        if contracts_enabled():
            with pytest.raises(ContractViolationError):
                fraction_degree(0.0, 10)

    def test_surplus_share_contract_fires(self):
        from repro.core.one_burst import surplus_share

        assert surplus_share(0.5, 10.0) == 5.0
        if contracts_enabled():
            with pytest.raises(ContractViolationError):
                surplus_share(1.5, 10.0)
