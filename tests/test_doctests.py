"""Execute every doctest in the library as part of the test suite.

Doctests double as the API's usage examples (README-level snippets live in
module and class docstrings); running them here keeps the documentation
from rotting.
"""

from __future__ import annotations

import doctest
import importlib
import pkgutil

import pytest

import repro


def _iter_modules():
    yield "repro"
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield info.name


MODULES = sorted(set(_iter_modules()))


@pytest.mark.parametrize("module_name", MODULES)
def test_module_doctests(module_name):
    try:
        module = importlib.import_module(module_name)
    except ModuleNotFoundError as exc:
        # Optional-backend modules (e.g. repro.perf._numba_kernels) only
        # import when their extra is installed.
        pytest.skip(f"optional dependency missing: {exc.name}")
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{module_name}: {results.failed} doctest failures"


def test_discovered_a_reasonable_module_count():
    # Guard against the walker silently finding nothing.
    assert len(MODULES) > 30
