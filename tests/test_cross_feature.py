"""Cross-feature integration: the smartest attacker vs the active defender.

Combines the §5 extensions that normally live apart: the traffic-monitoring
attacker (more disclosure per break-in) races the repairing defender
(re-keying between rounds) on the same deployments.
"""

from __future__ import annotations

import pytest

from repro.attacks import IntelligentAttacker, MonitoringAttacker
from repro.attacks.strategies import SuccessiveStrategy
from repro.attacks.monitoring import upstream_observer
from repro.core import SOSArchitecture, SuccessiveAttack
from repro.repair import NO_REPAIR, RepairPolicy, RepairingDefender
from repro.sos import SOSDeployment, SOSProtocol
from repro.utils.seeding import SeedSequenceFactory


def arch():
    return SOSArchitecture(
        layers=3,
        mapping="one-to-two",
        total_overlay_nodes=800,
        sos_nodes=45,
        filters=5,
    )


ATTACK = SuccessiveAttack(
    break_in_budget=80, congestion_budget=240, rounds=3, prior_knowledge=0.3
)


def run_race(observation: float, detection: float, trials: int = 30, seed: int = 8):
    """Mean client success with a monitoring attacker vs a repairing defender.

    The defender scans after every break-in round (strategy hook) and once
    more after the congestion phase.
    """
    factory = SeedSequenceFactory(seed)
    strategy = SuccessiveStrategy(
        disclosure_extension=(
            upstream_observer(observation) if observation > 0 else None
        )
    )
    policy = (
        RepairPolicy(detection_probability=detection)
        if detection > 0
        else NO_REPAIR
    )
    hits = probes = 0
    for _ in range(trials):
        trial_rng = factory.generator()
        deployment = SOSDeployment.deploy(arch(), rng=trial_rng)
        defender = RepairingDefender(policy, rng=factory.generator())
        outcome = strategy.execute(
            deployment, ATTACK, rng=trial_rng, on_round_end=defender
        )
        defender.scan_and_repair(deployment, outcome.knowledge)
        protocol = SOSProtocol(deployment)
        for _ in range(4):
            contacts = deployment.sample_client_contacts(trial_rng)
            hits += int(
                protocol.send("c", "t", contacts=contacts, rng=trial_rng).delivered
            )
            probes += 1
    return hits / probes


class TestMonitoringVsRepair:
    @pytest.fixture(scope="class")
    def rates(self):
        return {
            (obs, det): run_race(obs, det)
            for obs in (0.0, 1.0)
            for det in (0.0, 0.7)
        }

    def test_monitoring_hurts_undefended_systems(self, rates):
        assert rates[(1.0, 0.0)] <= rates[(0.0, 0.0)] + 0.05

    def test_repair_helps_against_both_attackers(self, rates):
        assert rates[(0.0, 0.7)] > rates[(0.0, 0.0)]
        assert rates[(1.0, 0.7)] > rates[(1.0, 0.0)]

    def test_repair_blunts_the_monitoring_edge(self, rates):
        undefended_gap = rates[(0.0, 0.0)] - rates[(1.0, 0.0)]
        defended_gap = rates[(0.0, 0.7)] - rates[(1.0, 0.7)]
        # Re-keying invalidates the extra intelligence, shrinking the
        # monitoring attacker's advantage (allowing MC noise).
        assert defended_gap <= undefended_gap + 0.08

    def test_defended_monitored_system_beats_undefended_unmonitored(self, rates):
        assert rates[(1.0, 0.7)] > rates[(0.0, 0.0)]


class TestAttackerFacadeWithExtension:
    def test_monitoring_attacker_supports_one_burst_too(self):
        from repro.core import OneBurstAttack

        deployment = SOSDeployment.deploy(arch(), rng=5)
        outcome = MonitoringAttacker().execute(
            deployment, OneBurstAttack(80, 100, 1.0), rng=6
        )
        baseline = IntelligentAttacker().execute(
            SOSDeployment.deploy(arch(), rng=5), OneBurstAttack(80, 100, 1.0),
            rng=6,
        )
        assert len(outcome.knowledge.disclosed) >= len(
            baseline.knowledge.disclosed
        )
