"""Tests for the repro-design advisor CLI."""

from __future__ import annotations

import pytest

from repro.cli import run


class TestDesignAdvisor:
    def test_default_run_recommends_paper_optimum(self, capsys):
        assert run([]) == 0
        out = capsys.readouterr().out
        assert "Recommended: " in out
        # The paper-default attack grid is won by one-to-two designs.
        assert "one-to-2" in out

    def test_break_in_heavy_prefers_thin_mappings(self, capsys):
        assert run(["--break-in-budget", "4000"]) == 0
        out = capsys.readouterr().out
        recommended = out.split("Recommended: ")[1].splitlines()[0]
        assert "one-to-1" in recommended or "one-to-2" in recommended

    def test_congestion_only_prefers_dense_mappings(self, capsys):
        assert run([
            "--break-in-budget", "0",
            "--prior-knowledge", "0.0",
            "--congestion-budget", "6000",
        ]) == 0
        out = capsys.readouterr().out
        recommended = out.split("Recommended: ")[1].splitlines()[0]
        assert "one-to-all" in recommended or "one-to-half" in recommended

    def test_top_limits_table(self, capsys):
        assert run(["--top", "3"]) == 0
        out = capsys.readouterr().out
        table = out.split("Top 3 designs")[1]
        rows = [line for line in table.splitlines() if line.startswith("| L=")]
        assert len(rows) == 3

    def test_invalid_top_rejected(self, capsys):
        assert run(["--top", "0"]) == 2

    def test_includes_latency_line(self, capsys):
        run([])
        out = capsys.readouterr().out
        assert "expected latency" in out

    def test_scenario_flag(self, capsys):
        assert run(["--include-congestion-scenario"]) == 0
        out = capsys.readouterr().out
        assert "2 scenario(s)" in out

    def test_sensitivity_flag(self, capsys):
        assert run(["--sensitivity", "--top", "1"]) == 0
        out = capsys.readouterr().out
        assert "Sensitivity of the recommended design" in out
        assert "N_C (congestion budget)" in out
