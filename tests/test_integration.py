"""End-to-end integration tests tying every subsystem together.

The scenario follows the paper's story: design a generalized SOS
architecture, deploy it over an overlay with a Chord ring, admit clients,
run the intelligent successive attack (Algorithm 1) against the live
deployment, and confirm that (a) forwarding degrades exactly as the bad
sets dictate and (b) the analytical model's P_S tracks what actually
happens.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    OneBurstAttack,
    SOSArchitecture,
    SuccessiveAttack,
    evaluate,
)
from repro.attacks import IntelligentAttacker
from repro.core.design_space import best_design
from repro.simulation import (
    PacketLevelSimulation,
    PacketSimConfig,
    estimate_ps,
    flood_layer,
)
from repro.sos import SOSDeployment, SOSProtocol
from repro.sos.roles import Role


@pytest.fixture(scope="module")
def architecture():
    return SOSArchitecture(
        layers=4,
        mapping="one-to-two",
        total_overlay_nodes=1000,
        sos_nodes=80,
        filters=8,
    )


class TestFullStack:
    def test_design_deploy_attack_route(self, architecture):
        rng = np.random.default_rng(42)
        deployment = SOSDeployment.deploy(architecture, rng=rng)
        protocol = SOSProtocol(deployment)

        # Healthy system: clients route through all five layers.
        contacts = protocol.register_client(rng=rng)
        receipt = protocol.send("alice", "hospital", contacts=contacts, rng=rng)
        assert receipt.delivered
        assert deployment.role_of(receipt.hop_trail[0]) is Role.ACCESS_POINT
        assert deployment.role_of(receipt.hop_trail[-1]) is Role.FILTER

        # Attack it.
        attack = SuccessiveAttack(
            break_in_budget=100, congestion_budget=250, rounds=3,
            prior_knowledge=0.2,
        )
        outcome = IntelligentAttacker().execute(deployment, attack, rng=rng)
        assert outcome.total_broken > 0

        # The attack outcome is visible to routing: success over many
        # clients roughly matches the product over realized bad sets.
        realized = 1.0
        from repro.core.probability import hop_success_probability

        bad = outcome.bad_per_layer()
        for layer in range(1, architecture.layers + 2):
            members = deployment.layer_members(layer)
            degree = min(architecture.mapping_degree(layer), len(members))
            realized *= hop_success_probability(
                len(members), bad[layer], degree
            )
        hits = 0
        trials = 300
        for _ in range(trials):
            contacts = deployment.sample_client_contacts(rng)
            hits += int(
                protocol.send("c", "t", contacts=contacts, rng=rng).delivered
            )
        observed = hits / trials
        assert observed == pytest.approx(realized, abs=0.12)

    def test_analytical_model_predicts_simulation(self, architecture):
        attack = SuccessiveAttack(
            break_in_budget=20, congestion_budget=200, rounds=3,
            prior_knowledge=0.2,
        )
        analytical = evaluate(architecture, attack).p_s
        simulated = estimate_ps(
            architecture, attack, trials=80, clients_per_trial=4, seed=11
        )
        assert simulated.agrees_with(analytical, tolerance=0.12)

    def test_chord_supports_beacon_lookup_under_failures(self, architecture):
        rng = np.random.default_rng(3)
        deployment = SOSDeployment.deploy(architecture, rng=rng)
        chord = deployment.chord
        # Crash a third of the SOS nodes; lookups still resolve and agree.
        victims = rng.choice(chord.live_node_ids, size=25, replace=False)
        for node_id in victims:
            if len(chord) > 1:
                chord.fail(int(node_id))
        start = chord.live_node_ids[0]
        result = chord.lookup_key("target:hospital", start=start)
        assert result.succeeded
        assert result.owner == chord.find_successor(
            chord.space.hash_key("target:hospital")
        )

    def test_packet_level_confirms_congestion_semantics(self, architecture):
        deployment = SOSDeployment.deploy(architecture, rng=5)
        config = PacketSimConfig(duration=15.0, warmup=2.0)
        baseline = PacketLevelSimulation(deployment, config, rng=1).run()
        assert baseline.delivery_ratio == 1.0

        deployment2 = SOSDeployment.deploy(architecture, rng=5)
        sim = PacketLevelSimulation(deployment2, config, rng=1)
        report = sim.run(
            flood_targets=flood_layer(deployment2, layer=2, fraction=1.0, rng=2)
        )
        assert report.delivery_ratio < baseline.delivery_ratio

    def test_design_search_recommends_paper_optimum(self):
        score = best_design({"paper-default": SuccessiveAttack()})
        assert score.architecture.layers in (3, 4, 5)
        assert score.architecture.mapping_policy.label == "one-to-2"

    def test_original_sos_fragile_generalized_robust(self):
        """The paper's motivating comparison, end to end."""
        from repro.core import original_sos_architecture

        attack = SuccessiveAttack()  # defaults: intelligent attack
        original = evaluate(original_sos_architecture(), attack).p_s
        generalized = evaluate(
            SOSArchitecture(layers=4, mapping="one-to-two"), attack
        ).p_s
        assert original < 0.01
        assert generalized > 0.5

    def test_original_sos_fine_against_its_own_threat_model(self):
        from repro.core import original_sos_architecture

        random_congestion = OneBurstAttack(break_in_budget=0, congestion_budget=6000)
        assert evaluate(original_sos_architecture(), random_congestion).p_s > 0.99
