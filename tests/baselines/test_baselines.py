"""Tests for the original-SOS and direct-target baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    direct_target_ps,
    exact_random_congestion_ps,
    generalized_model_ps,
    original_sos_ps,
)
from repro.errors import ConfigurationError


class TestExactRandomCongestion:
    def test_no_congestion_certain_success(self):
        assert exact_random_congestion_ps([10, 10, 10], 1000, 0) == 1.0

    def test_full_congestion_certain_failure(self):
        assert exact_random_congestion_ps([10, 10, 10], 1000, 1000) == 0.0

    def test_single_layer_matches_hypergeometric(self):
        # P(all 3 of a 3-node layer congested when 5 of 10 congested)
        # = C(7,2)/C(10,5) ... computed directly:
        from math import comb

        expected = 1 - comb(10 - 3, 5 - 3) / comb(10, 5)
        assert exact_random_congestion_ps([3], 10, 5) == pytest.approx(expected)

    def test_monotone_in_budget(self):
        values = [
            exact_random_congestion_ps([5, 5], 100, nc) for nc in range(0, 101, 10)
        ]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    def test_inclusion_exclusion_against_monte_carlo(self):
        rng = np.random.default_rng(0)
        layers = [3, 4]
        total, budget = 30, 18
        trials = 4000
        failures = 0
        ids = np.arange(total)
        for _ in range(trials):
            congested = set(rng.choice(ids, size=budget, replace=False))
            # Layer 1 = ids 0..2, layer 2 = ids 3..6.
            if set(range(3)) <= congested or set(range(3, 7)) <= congested:
                failures += 1
        expected = 1 - failures / trials
        assert exact_random_congestion_ps(layers, total, budget) == pytest.approx(
            expected, abs=0.03
        )

    def test_validation_errors(self):
        with pytest.raises(ConfigurationError):
            exact_random_congestion_ps([0], 10, 5)
        with pytest.raises(ConfigurationError):
            exact_random_congestion_ps([20], 10, 5)
        with pytest.raises(ConfigurationError):
            exact_random_congestion_ps([5], 10, 50)


class TestOriginalSOS:
    def test_resilient_at_paper_scale(self):
        # The SIGCOMM paper's headline: tiny overlays survive huge random
        # attacks. Congesting 60% of 10000 nodes barely dents P_S.
        assert original_sos_ps(congestion_budget=6000) > 0.95

    def test_collapses_only_near_total_congestion(self):
        assert original_sos_ps(congestion_budget=9900) < 0.5
        assert original_sos_ps(congestion_budget=10_000) == 0.0

    def test_generalized_model_tracks_exact_baseline(self):
        for budget in (0, 2000, 5000, 8000):
            exact = original_sos_ps(congestion_budget=budget)
            approx = generalized_model_ps(congestion_budget=budget)
            assert approx == pytest.approx(exact, abs=0.02)

    def test_generalized_model_optimistic_at_extremes(self):
        # The average-case model rounds the failure tail away near N_C = N;
        # the exact baseline is the reference there.
        exact = original_sos_ps(congestion_budget=9500)
        approx = generalized_model_ps(congestion_budget=9500)
        assert approx >= exact


class TestDirectTarget:
    def test_known_target_dies(self):
        assert direct_target_ps(1) == 0.0

    def test_no_attack_survives(self):
        assert direct_target_ps(0) == 1.0

    def test_blind_attacker_linear(self):
        assert direct_target_ps(2000, total_addresses=10_000, target_known=False) == (
            pytest.approx(0.8)
        )

    def test_sos_beats_direct_exposure(self):
        # The whole point of the architecture.
        assert original_sos_ps(2000) > direct_target_ps(2000)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            direct_target_ps(-1)
        with pytest.raises(ConfigurationError):
            direct_target_ps(1, total_addresses=0)
