"""Tests for the shared-roles analysis (§3.1's refused assumption)."""

from __future__ import annotations

import pytest

from repro.baselines.shared_roles import (
    analyze_shared_roles_one_burst,
    shared_roles_ps,
    shared_vs_dedicated,
)
from repro.core import OneBurstAttack, SOSArchitecture
from repro.errors import ConfigurationError


def arch(mapping="one-to-half", layers=3):
    return SOSArchitecture(layers=layers, mapping=mapping)


class TestBasics:
    def test_no_attack_full_availability(self):
        assert shared_roles_ps(arch(), OneBurstAttack(0, 0)) == 1.0

    def test_probability_range(self):
        for n_t in (0, 200, 2000):
            for n_c in (0, 2000, 8000):
                value = shared_roles_ps(arch(), OneBurstAttack(n_t, n_c))
                assert 0.0 <= value <= 1.0

    def test_budget_validation(self):
        with pytest.raises(ConfigurationError):
            shared_roles_ps(arch(), OneBurstAttack(break_in_budget=20_000))

    def test_breakdown_consistency(self):
        breakdown = analyze_shared_roles_one_burst(
            arch(), OneBurstAttack(2000, 2000)
        )
        assert breakdown.broken_in == pytest.approx(0.5 * breakdown.attempted)
        assert breakdown.disclosed_unattacked >= 0
        assert breakdown.congested >= 0

    def test_fraction_mapping_resolves_against_pool(self):
        # one-to-half of the shared 100-node pool is 50 neighbors.
        breakdown = analyze_shared_roles_one_burst(
            arch("one-to-half"), OneBurstAttack(0, 9000)
        )
        # With m=50 and 90% of the pool congested, survival is still high:
        # the attacker must kill essentially all 100 nodes.
        assert breakdown.p_s > 0.9


class TestPaperArgument:
    """§3.1: shared roles help against congestion, kill you under break-in."""

    def test_shared_beats_dedicated_under_pure_heavy_congestion(self):
        shared, dedicated = shared_vs_dedicated(
            arch("one-to-half"), OneBurstAttack(0, 9000)
        )
        assert shared > dedicated

    def test_shared_collapses_under_break_in(self):
        shared, dedicated = shared_vs_dedicated(
            arch("one-to-half"), OneBurstAttack(2000, 2000)
        )
        assert shared < 0.01
        assert dedicated > 0.3

    def test_disclosure_compounds_across_roles(self):
        # The same budget discloses more in the shared design than in the
        # dedicated one because every break-in leaks L tables.
        from repro.core.one_burst import analyze_one_burst_breakdown

        attack = OneBurstAttack(2000, 0)
        shared = analyze_shared_roles_one_burst(arch("one-to-five"), attack)
        dedicated = analyze_one_burst_breakdown(arch("one-to-five"), attack)
        shared_disclosed = (
            shared.disclosed_unattacked
            + shared.disclosed_survived
            + shared.disclosed_filters
        )
        assert shared_disclosed > dedicated.disclosed_total

    def test_one_to_one_pure_congestion_scale_invariant(self):
        # With m=1 the hop survival is 1 - s/n in both designs, so pure
        # random congestion treats them identically.
        shared, dedicated = shared_vs_dedicated(
            arch("one-to-one"), OneBurstAttack(0, 6000)
        )
        assert shared == pytest.approx(dedicated, abs=1e-6)

    def test_more_break_in_hurts_shared_more(self):
        light_s, light_d = shared_vs_dedicated(
            arch("one-to-five"), OneBurstAttack(200, 2000)
        )
        heavy_s, heavy_d = shared_vs_dedicated(
            arch("one-to-five"), OneBurstAttack(2000, 2000)
        )
        assert (light_s - heavy_s) > (light_d - heavy_d)
