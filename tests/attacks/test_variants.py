"""Tests for successive-attack schedule variants."""

from __future__ import annotations

import pytest

from repro.attacks.strategies import SuccessiveStrategy, even_quotas
from repro.attacks.variants import (
    ScheduledSuccessiveStrategy,
    back_loaded_weights,
    compare_schedules,
    front_loaded_weights,
    quotas_from_weights,
)
from repro.core import SOSArchitecture, SuccessiveAttack
from repro.errors import ConfigurationError
from repro.sos.deployment import SOSDeployment


def arch():
    return SOSArchitecture(
        layers=3,
        mapping="one-to-two",
        total_overlay_nodes=1000,
        sos_nodes=45,
        filters=5,
    )


ATTACK = SuccessiveAttack(
    break_in_budget=100, congestion_budget=250, rounds=3, prior_knowledge=0.2
)


class TestQuotaSchedules:
    def test_even_quotas_sum(self):
        assert sum(even_quotas(200, 3)) == 200
        assert even_quotas(200, 3) == [66, 67, 67]

    def test_weights_to_quotas_sum(self):
        assert sum(quotas_from_weights(100, [1, 0.5, 0.25])) == 100

    def test_front_loaded_decreasing(self):
        weights = front_loaded_weights(4)
        assert weights == sorted(weights, reverse=True)

    def test_back_loaded_mirrors_front(self):
        assert back_loaded_weights(4) == list(reversed(front_loaded_weights(4)))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            front_loaded_weights(0)
        with pytest.raises(ConfigurationError):
            front_loaded_weights(3, decay=0.0)
        with pytest.raises(ConfigurationError):
            quotas_from_weights(10, [])
        with pytest.raises(ConfigurationError):
            quotas_from_weights(10, [-1, 2])
        with pytest.raises(ConfigurationError):
            ScheduledSuccessiveStrategy([0.0, 0.0])


class TestScheduledStrategy:
    def test_even_schedule_matches_paper_strategy(self):
        # Equal weights reproduce SuccessiveStrategy exactly (same quotas,
        # same RNG consumption).
        deployment_a = SOSDeployment.deploy(arch(), rng=9)
        deployment_b = SOSDeployment.deploy(arch(), rng=9)
        paper = SuccessiveStrategy().execute(deployment_a, ATTACK, rng=5)
        scheduled = ScheduledSuccessiveStrategy([1.0, 1.0, 1.0]).execute(
            deployment_b, ATTACK, rng=5
        )
        assert paper.bad_per_layer() == scheduled.bad_per_layer()
        assert paper.break_in_attempts == scheduled.break_in_attempts

    def test_budget_respected_for_all_schedules(self):
        for weights in ([1, 1, 1], front_loaded_weights(3), [1, 0, 0]):
            deployment = SOSDeployment.deploy(arch(), rng=9)
            outcome = ScheduledSuccessiveStrategy(weights).execute(
                deployment, ATTACK, rng=5
            )
            assert outcome.break_in_attempts <= 100

    def test_one_burst_limit_single_round(self):
        deployment = SOSDeployment.deploy(arch(), rng=9)
        outcome = ScheduledSuccessiveStrategy([1, 0, 0]).execute(
            deployment, ATTACK, rng=5
        )
        assert outcome.rounds_executed == 1

    def test_oversized_budget_rejected(self):
        deployment = SOSDeployment.deploy(arch(), rng=9)
        with pytest.raises(ConfigurationError):
            ScheduledSuccessiveStrategy([1, 1]).execute(
                deployment,
                SuccessiveAttack(break_in_budget=5000, rounds=2),
                rng=5,
            )


class TestRepresentativeness:
    """The paper's claim: the even schedule is representative."""

    @pytest.fixture(scope="class")
    def results(self):
        return compare_schedules(arch(), ATTACK, trials=40, seed=17)

    def test_multi_round_schedules_within_band(self, results):
        multi = [
            results["even (paper)"],
            results["front-loaded"],
            results["back-loaded"],
        ]
        assert max(multi) - min(multi) < 0.12

    def test_multi_round_beats_one_burst_for_the_attacker(self, results):
        # Collapsing to a single round forfeits the disclosure cascade,
        # leaving the defender strictly better off (Fig. 7's message).
        assert results["one-burst limit"] > results["even (paper)"] + 0.05

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            compare_schedules(arch(), ATTACK, trials=0)
