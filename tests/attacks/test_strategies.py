"""Tests for executable attack strategies against concrete deployments."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import IntelligentAttacker, OneBurstStrategy, SuccessiveStrategy
from repro.core import OneBurstAttack, SOSArchitecture, SuccessiveAttack
from repro.errors import ConfigurationError
from repro.overlay.node import NodeHealth
from repro.sos.deployment import SOSDeployment


def deploy(mapping="one-to-half", layers=3, total=400, sos=60, filters=5, seed=7):
    arch = SOSArchitecture(
        layers=layers,
        mapping=mapping,
        total_overlay_nodes=total,
        sos_nodes=sos,
        filters=filters,
    )
    return SOSDeployment.deploy(arch, rng=seed)


class TestOneBurst:
    def test_respects_budgets(self):
        deployment = deploy()
        outcome = OneBurstStrategy().execute(
            deployment, OneBurstAttack(break_in_budget=50, congestion_budget=100),
            rng=1,
        )
        assert outcome.break_in_attempts == 50
        assert outcome.congestion_spent <= 100
        assert outcome.total_broken <= 50

    def test_zero_resources_do_nothing(self):
        deployment = deploy()
        outcome = OneBurstStrategy().execute(
            deployment, OneBurstAttack(0, 0), rng=1
        )
        assert outcome.total_broken == 0
        assert outcome.total_congested == 0
        assert all(node.is_good for node in deployment.network)

    def test_p_b_one_breaks_every_attempted_sos_node(self):
        deployment = deploy()
        outcome = OneBurstStrategy().execute(
            deployment,
            OneBurstAttack(break_in_budget=400, congestion_budget=0,
                           break_in_success=1.0),
            rng=1,
        )
        # Every SOS node was attempted (budget == N) and P_B = 1.
        assert outcome.total_broken == 60

    def test_p_b_zero_breaks_nothing_but_still_congests_randomly(self):
        deployment = deploy()
        outcome = OneBurstStrategy().execute(
            deployment,
            OneBurstAttack(break_in_budget=100, congestion_budget=50,
                           break_in_success=0.0),
            rng=1,
        )
        assert outcome.total_broken == 0
        # With nothing disclosed the congestion is purely random overlay-wide.
        assert outcome.knowledge.congestion_targets == set()

    def test_disclosed_nodes_congested_first(self):
        deployment = deploy(mapping="one-to-two")
        outcome = OneBurstStrategy().execute(
            deployment,
            OneBurstAttack(break_in_budget=200, congestion_budget=300,
                           break_in_success=1.0),
            rng=3,
        )
        for node_id in outcome.knowledge.congestion_targets:
            assert deployment.resolve(node_id).is_bad

    def test_filters_never_broken(self):
        deployment = deploy()
        outcome = OneBurstStrategy().execute(
            deployment,
            OneBurstAttack(break_in_budget=400, congestion_budget=400,
                           break_in_success=1.0),
            rng=1,
        )
        assert outcome.broken_per_layer[4] == 0

    def test_filters_congested_only_on_disclosure(self):
        deployment = deploy()
        # No break-ins -> no filter disclosure -> no congested filters,
        # even with a huge congestion budget.
        OneBurstStrategy().execute(
            deployment, OneBurstAttack(0, 399), rng=1
        )
        assert len(deployment.filters.good_filters()) == 5

    def test_budget_exceeding_population_rejected(self):
        deployment = deploy()
        with pytest.raises(ConfigurationError):
            OneBurstStrategy().execute(
                deployment, OneBurstAttack(break_in_budget=500), rng=1
            )

    def test_broken_nodes_not_congested(self):
        deployment = deploy()
        OneBurstStrategy().execute(
            deployment,
            OneBurstAttack(break_in_budget=400, congestion_budget=399,
                           break_in_success=1.0),
            rng=1,
        )
        census = deployment.network.health_census()
        # Every overlay node was attempted with P_B = 1, so the whole
        # population is compromised (non-SOS nodes just disclose nothing)
        # and there is nothing left for the congestion budget to touch.
        assert census[NodeHealth.COMPROMISED] == 400
        assert census[NodeHealth.CONGESTED] == 0


class TestSuccessive:
    def test_prior_knowledge_attacks_first_layer(self):
        deployment = deploy()
        outcome = SuccessiveStrategy().execute(
            deployment,
            SuccessiveAttack(break_in_budget=8, congestion_budget=0,
                             rounds=1, prior_knowledge=1.0,
                             break_in_success=1.0),
            rng=1,
        )
        # X_1 = n_1 = 20 > beta = 8: exhausted case, 8 attacked, 12 forfeited.
        assert outcome.break_in_attempts == 8
        assert outcome.broken_per_layer[1] == 8
        assert len(outcome.knowledge.forfeited) == 12

    def test_budget_split_across_rounds(self):
        deployment = deploy()
        outcome = SuccessiveStrategy().execute(
            deployment,
            SuccessiveAttack(break_in_budget=90, congestion_budget=0,
                             rounds=3, prior_knowledge=0.0),
            rng=1,
        )
        assert outcome.rounds_executed <= 3
        assert outcome.break_in_attempts <= 90

    def test_total_attempts_never_exceed_budget(self):
        for seed in range(5):
            deployment = deploy(mapping="one-to-five", seed=seed)
            attack = SuccessiveAttack(break_in_budget=60, congestion_budget=50,
                                      rounds=4, prior_knowledge=0.3)
            outcome = SuccessiveStrategy().execute(deployment, attack, rng=seed)
            assert outcome.break_in_attempts <= 60

    def test_quotas_sum_to_budget(self):
        # Internal arithmetic check through observable behavior: with plenty
        # of rounds and nothing disclosed (P_B=0, P_E=0) all N_T random
        # attempts are spent.
        deployment = deploy()
        outcome = SuccessiveStrategy().execute(
            deployment,
            SuccessiveAttack(break_in_budget=70, congestion_budget=0,
                             rounds=3, prior_knowledge=0.0,
                             break_in_success=0.0),
            rng=1,
        )
        assert outcome.break_in_attempts == 70
        assert outcome.rounds_executed == 3

    def test_disclosure_cascade_reaches_deeper_layers(self):
        deployment = deploy(mapping="one-to-five", total=400, sos=60)
        outcome = SuccessiveStrategy().execute(
            deployment,
            SuccessiveAttack(break_in_budget=60, congestion_budget=0,
                             rounds=3, prior_knowledge=0.5,
                             break_in_success=1.0),
            rng=2,
        )
        # Prior knowledge seeds layer 1; cascading rounds must break into
        # layers 2 and 3 via disclosed neighbor tables.
        assert outcome.broken_per_layer[2] > 0
        assert outcome.broken_per_layer[3] > 0

    def test_filters_disclosed_then_congested(self):
        deployment = deploy(mapping="one-to-all", total=400, sos=60)
        outcome = SuccessiveStrategy().execute(
            deployment,
            SuccessiveAttack(break_in_budget=100, congestion_budget=200,
                             rounds=2, prior_knowledge=0.5,
                             break_in_success=1.0),
            rng=2,
        )
        assert outcome.congested_per_layer[4] == len(
            outcome.knowledge.disclosed_filters
        )
        assert outcome.congested_per_layer[4] > 0

    def test_congestion_budget_scarcity(self):
        deployment = deploy(mapping="one-to-all", total=400, sos=60)
        attack = SuccessiveAttack(break_in_budget=100, congestion_budget=3,
                                  rounds=2, prior_knowledge=0.5,
                                  break_in_success=1.0)
        outcome = SuccessiveStrategy().execute(deployment, attack, rng=2)
        assert outcome.congestion_spent == 3
        assert outcome.total_congested == 3


class TestAttackerFacade:
    def test_dispatch_one_burst(self):
        deployment = deploy()
        outcome = IntelligentAttacker().execute(
            deployment, OneBurstAttack(10, 10), rng=1
        )
        assert outcome.rounds_executed == 1

    def test_dispatch_successive(self):
        deployment = deploy()
        outcome = IntelligentAttacker().execute(
            deployment, SuccessiveAttack(break_in_budget=30, rounds=3), rng=1
        )
        assert outcome.rounds_executed >= 1

    def test_unknown_attack_rejected(self):
        deployment = deploy()
        with pytest.raises(ConfigurationError):
            IntelligentAttacker().execute(deployment, "flood", rng=1)  # type: ignore[arg-type]


class TestOutcome:
    def test_bad_per_layer_sums(self):
        deployment = deploy()
        outcome = IntelligentAttacker().execute(
            deployment, OneBurstAttack(100, 100, 0.5), rng=4
        )
        bad = outcome.bad_per_layer()
        for layer, count in bad.items():
            assert count == outcome.broken_per_layer[layer] + (
                outcome.congested_per_layer[layer]
            )
        assert outcome.as_row()[0] == 1

    def test_outcome_matches_network_census(self):
        deployment = deploy()
        outcome = IntelligentAttacker().execute(
            deployment, OneBurstAttack(100, 100, 0.5), rng=4
        )
        recounted = deployment.bad_counts()
        assert recounted == outcome.bad_per_layer()


class TestStatisticalAgreement:
    """Executed attacks should agree with the analytical per-layer averages."""

    def test_one_burst_break_in_counts_match_expectation(self):
        arch = SOSArchitecture(
            layers=3, mapping="one-to-half",
            total_overlay_nodes=400, sos_nodes=60, filters=5,
        )
        attack = OneBurstAttack(break_in_budget=100, congestion_budget=0,
                                break_in_success=0.5)
        rng = np.random.default_rng(0)
        totals = np.zeros(3)
        trials = 40
        for _ in range(trials):
            deployment = SOSDeployment.deploy(arch, rng=rng)
            outcome = OneBurstStrategy().execute(deployment, attack, rng=rng)
            for layer in (1, 2, 3):
                totals[layer - 1] += outcome.broken_per_layer[layer]
        means = totals / trials
        # Analytical: b_i = P_B * (n_i / N) * N_T = 0.5 * 20/400 * 100 = 2.5
        assert means == pytest.approx([2.5] * 3, abs=0.8)
