"""Tests for the attacker knowledge base."""

from __future__ import annotations

from repro.attacks.knowledge import AttackerKnowledge


class TestLearning:
    def test_prior_knowledge_enters_attack_pool(self):
        knowledge = AttackerKnowledge()
        knowledge.learn_prior([1, 2, 3])
        assert knowledge.known_unattacked == {1, 2, 3}
        assert knowledge.disclosed == {1, 2, 3}

    def test_disclosure_splits_filters(self):
        knowledge = AttackerKnowledge()
        knowledge.learn_disclosure([10, 11], filter_ids=[900])
        assert knowledge.known_unattacked == {10, 11}
        assert knowledge.disclosed_filters == {900}

    def test_already_attempted_nodes_not_reattacked(self):
        knowledge = AttackerKnowledge()
        knowledge.record_attempt(10, success=False)
        knowledge.learn_disclosure([10, 11])
        assert knowledge.known_unattacked == {11}
        # ...but the attacker still knows node 10 is an SOS node.
        assert 10 in knowledge.disclosed

    def test_duplicate_disclosures_collapse(self):
        knowledge = AttackerKnowledge()
        knowledge.learn_disclosure([5])
        knowledge.learn_disclosure([5])
        assert knowledge.known_unattacked == {5}


class TestAttempts:
    def test_attempt_moves_out_of_pool(self):
        knowledge = AttackerKnowledge()
        knowledge.learn_prior([1])
        knowledge.record_attempt(1, success=False)
        assert knowledge.known_unattacked == set()
        assert knowledge.attempted == {1}
        assert knowledge.broken == set()

    def test_successful_attempt_recorded(self):
        knowledge = AttackerKnowledge()
        knowledge.record_attempt(2, success=True)
        assert knowledge.broken == {2}


class TestForfeit:
    def test_forfeited_leave_pool_but_stay_targets(self):
        knowledge = AttackerKnowledge()
        knowledge.learn_prior([1, 2])
        knowledge.forfeit([1])
        assert knowledge.known_unattacked == {2}
        assert 1 in knowledge.congestion_targets


class TestCongestionTargets:
    def test_disclosed_not_broken(self):
        knowledge = AttackerKnowledge()
        knowledge.learn_disclosure([1, 2, 3])
        knowledge.record_attempt(1, success=True)
        knowledge.record_attempt(2, success=False)
        assert knowledge.congestion_targets == {2, 3}

    def test_filters_separate(self):
        knowledge = AttackerKnowledge()
        knowledge.learn_disclosure([], filter_ids=[7, 8])
        assert knowledge.congestion_filter_targets == {7, 8}
        assert knowledge.congestion_targets == set()

    def test_snapshot_counts(self):
        knowledge = AttackerKnowledge()
        knowledge.learn_disclosure([1, 2], filter_ids=[9])
        knowledge.record_attempt(1, success=True)
        snap = knowledge.snapshot()
        assert snap["disclosed"] == 2
        assert snap["broken"] == 1
        assert snap["disclosed_filters"] == 1
        assert snap["known_unattacked"] == 1
