"""Stateful property tests: AttackerKnowledge under arbitrary op sequences.

Hypothesis drives random interleavings of learning, attacking, and
forfeiting, and after every step checks the set-algebra invariants that
the analytical model's overlap discounting relies on (Fig. 5 of the
paper): the pools must stay disjoint where the derivation assumes
disjointness, and nothing may be both broken and congestible.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.attacks.knowledge import AttackerKnowledge

NODE_IDS = st.integers(min_value=0, max_value=60)
FILTER_IDS = st.integers(min_value=1000, max_value=1010)


class KnowledgeMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.knowledge = AttackerKnowledge()

    @rule(node_ids=st.lists(NODE_IDS, max_size=8))
    def learn_prior(self, node_ids):
        self.knowledge.learn_prior(node_ids)

    @rule(
        node_ids=st.lists(NODE_IDS, max_size=8),
        filter_ids=st.lists(FILTER_IDS, max_size=3),
    )
    def learn_disclosure(self, node_ids, filter_ids):
        self.knowledge.learn_disclosure(node_ids, filter_ids)

    @rule(node_id=NODE_IDS, success=st.booleans())
    def attempt(self, node_id, success):
        self.knowledge.record_attempt(node_id, success)

    @rule(node_ids=st.lists(NODE_IDS, max_size=8))
    def forfeit(self, node_ids):
        self.knowledge.forfeit(node_ids)

    # ------------------------------------------------------------------
    # Invariants the analytical bookkeeping depends on
    # ------------------------------------------------------------------
    @invariant()
    def attack_pool_never_contains_attempted(self):
        assert not (self.knowledge.known_unattacked & self.knowledge.attempted)

    @invariant()
    def broken_is_subset_of_attempted(self):
        assert self.knowledge.broken <= self.knowledge.attempted

    @invariant()
    def congestion_targets_exclude_broken(self):
        assert not (self.knowledge.congestion_targets & self.knowledge.broken)

    @invariant()
    def filters_never_enter_overlay_pools(self):
        filters = self.knowledge.disclosed_filters
        assert not (filters & self.knowledge.known_unattacked)
        assert not (filters & self.knowledge.broken)

    @invariant()
    def snapshot_matches_sets(self):
        snapshot = self.knowledge.snapshot()
        assert snapshot["broken"] == len(self.knowledge.broken)
        assert snapshot["disclosed"] == len(self.knowledge.disclosed)
        assert snapshot["known_unattacked"] == len(self.knowledge.known_unattacked)


KnowledgeStatefulTest = KnowledgeMachine.TestCase
KnowledgeStatefulTest.settings = settings(
    max_examples=60, stateful_step_count=30, deadline=None
)
