"""Tests for the traffic-monitoring attacker (paper §5 extension)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import (
    AttackerKnowledge,
    IntelligentAttacker,
    MonitoringAttacker,
    monitoring_damage_comparison,
    upstream_observer,
)
from repro.core import SOSArchitecture, SuccessiveAttack
from repro.errors import ConfigurationError
from repro.sos.deployment import SOSDeployment


def deploy(seed=3, mapping="one-to-two"):
    arch = SOSArchitecture(
        layers=3,
        mapping=mapping,
        total_overlay_nodes=500,
        sos_nodes=45,
        filters=5,
    )
    return SOSDeployment.deploy(arch, rng=seed)


class TestUpstreamObserver:
    def test_observes_exact_upstream_set(self):
        deployment = deploy()
        observe = upstream_observer(observation_probability=1.0)
        rng = np.random.default_rng(1)
        victim = deployment.layer_members(2)[0]
        observed = observe(deployment, victim, rng)
        expected = [
            node_id
            for node_id in deployment.layer_members(1)
            if victim in deployment.network.get(node_id).neighbors
        ]
        assert sorted(observed) == sorted(expected)

    def test_layer_one_has_no_upstream(self):
        deployment = deploy()
        observe = upstream_observer(1.0)
        rng = np.random.default_rng(1)
        assert observe(deployment, deployment.layer_members(1)[0], rng) == []

    def test_plain_overlay_node_reveals_nothing(self):
        deployment = deploy()
        observe = upstream_observer(1.0)
        rng = np.random.default_rng(1)
        plain = deployment.network.plain_nodes[0].node_id
        assert observe(deployment, plain, rng) == []

    def test_zero_observation_probability(self):
        deployment = deploy()
        observe = upstream_observer(0.0)
        rng = np.random.default_rng(1)
        victim = deployment.layer_members(2)[0]
        assert observe(deployment, victim, rng) == []

    def test_invalid_probability_rejected(self):
        with pytest.raises(ConfigurationError):
            upstream_observer(1.5)


class TestMonitoringAttacker:
    ATTACK = SuccessiveAttack(
        break_in_budget=50, congestion_budget=100, rounds=2, prior_knowledge=0.3
    )

    def test_discloses_at_least_as_much_as_baseline(self):
        totals = {"baseline": 0, "monitoring": 0}
        for seed in range(5):
            base = IntelligentAttacker().execute(deploy(seed), self.ATTACK, rng=seed)
            mon = MonitoringAttacker().execute(deploy(seed), self.ATTACK, rng=seed)
            totals["baseline"] += len(base.knowledge.disclosed)
            totals["monitoring"] += len(mon.knowledge.disclosed)
        assert totals["monitoring"] > totals["baseline"]

    def test_monitoring_can_disclose_layer_one(self):
        # The baseline attacker can never *disclose* layer-1 nodes via
        # break-ins; the monitoring attacker can, by watching traffic
        # arrive at a compromised layer-2 node.
        deployment = deploy()
        knowledge = AttackerKnowledge()
        observe = upstream_observer(1.0)
        rng = np.random.default_rng(1)
        victim = deployment.layer_members(2)[0]
        deployment.network.get(victim).compromise()
        upstream = observe(deployment, victim, rng)
        knowledge.learn_disclosure(upstream)
        layer_one = set(deployment.layer_members(1))
        assert knowledge.disclosed & layer_one


class TestComparison:
    def test_monitoring_does_more_damage(self):
        arch = SOSArchitecture(
            layers=3, mapping="one-to-two",
            total_overlay_nodes=500, sos_nodes=45, filters=5,
        )
        attack = SuccessiveAttack(
            break_in_budget=50, congestion_budget=100, rounds=3,
            prior_knowledge=0.3,
        )
        comparison = monitoring_damage_comparison(
            arch, attack, trials=30, seed=9
        )
        assert comparison.extra_disclosure > 0
        assert comparison.monitoring_ps <= comparison.baseline_ps + 0.05

    def test_validation(self):
        arch = SOSArchitecture(
            layers=2, mapping="one-to-one",
            total_overlay_nodes=300, sos_nodes=30, filters=3,
        )
        with pytest.raises(ConfigurationError):
            monitoring_damage_comparison(
                arch, SuccessiveAttack(break_in_budget=10), trials=0
            )
