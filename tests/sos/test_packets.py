"""Direct tests for Packet and DeliveryReceipt."""

from __future__ import annotations

from repro.sos.packets import DeliveryReceipt, Packet


class TestPacket:
    def test_unique_increasing_ids(self):
        a, b = Packet("s", "t"), Packet("s", "t")
        assert b.packet_id > a.packet_id

    def test_hop_trail_recording(self):
        packet = Packet("s", "t")
        packet.record_hop(1)
        packet.record_hop(2)
        assert packet.hops == (1, 2)

    def test_stamp(self):
        packet = Packet("s", "t")
        packet.stamp(issuer=7, mac=b"\x01\x02")
        assert packet.mac_issuer == 7
        assert packet.mac == b"\x01\x02"

    def test_payload_default_empty(self):
        assert Packet("s", "t").payload == b""


class TestDeliveryReceipt:
    def test_path_length(self):
        receipt = DeliveryReceipt(
            packet_id=1, delivered=True, hop_trail=(1, 2, 3)
        )
        assert receipt.path_length == 3

    def test_failure_carries_reason(self):
        receipt = DeliveryReceipt(
            packet_id=1, delivered=False, hop_trail=(),
            failure_reason="all access points bad",
        )
        assert not receipt.delivered
        assert "access points" in receipt.failure_reason

    def test_frozen(self):
        import dataclasses

        receipt = DeliveryReceipt(packet_id=1, delivered=True, hop_trail=())
        try:
            receipt.delivered = False  # type: ignore[misc]
            raised = False
        except dataclasses.FrozenInstanceError:
            raised = True
        assert raised
