"""Tests for hop-by-hop MAC authentication."""

from __future__ import annotations

import pytest

from repro.errors import ProtocolError
from repro.sos.auth import HopAuthenticator


@pytest.fixture
def auth():
    authenticator = HopAuthenticator(layers=3)
    authenticator.enroll(1, 101)
    authenticator.enroll(2, 202)
    return authenticator


class TestEnrollment:
    def test_enrolled_member_verifies(self, auth):
        mac = auth.issue(1, 101, packet_id=7)
        assert auth.verify(1, 101, 7, mac)

    def test_unenrolled_cannot_issue(self, auth):
        with pytest.raises(ProtocolError, match="not enrolled"):
            auth.issue(1, 999, packet_id=7)

    def test_revoked_member_fails_verification(self, auth):
        mac = auth.issue(1, 101, packet_id=7)
        auth.revoke(1, 101)
        assert not auth.verify(1, 101, 7, mac)

    def test_is_enrolled(self, auth):
        assert auth.is_enrolled(1, 101)
        assert not auth.is_enrolled(1, 202)

    def test_layers_property(self, auth):
        assert auth.layers == 3


class TestVerification:
    def test_wrong_layer_key_rejected(self, auth):
        auth.enroll(2, 101)
        mac = auth.issue(1, 101, packet_id=7)
        assert not auth.verify(2, 101, 7, mac)

    def test_wrong_packet_id_rejected(self, auth):
        mac = auth.issue(1, 101, packet_id=7)
        assert not auth.verify(1, 101, 8, mac)

    def test_forged_issuer_rejected(self, auth):
        auth.enroll(1, 102)
        mac = auth.issue(1, 101, packet_id=7)
        assert not auth.verify(1, 102, 7, mac)

    def test_tampered_mac_rejected(self, auth):
        mac = bytearray(auth.issue(1, 101, packet_id=7))
        mac[0] ^= 0xFF
        assert not auth.verify(1, 101, 7, bytes(mac))

    def test_unknown_layer_raises(self, auth):
        with pytest.raises(ProtocolError, match="unknown layer"):
            auth.verify(9, 101, 7, b"x")


class TestDeterministicKeys:
    def test_seeded_authenticators_agree(self):
        a = HopAuthenticator(layers=2, seed_material=b"seed")
        b = HopAuthenticator(layers=2, seed_material=b"seed")
        a.enroll(1, 5)
        b.enroll(1, 5)
        assert a.issue(1, 5, 1) == b.issue(1, 5, 1)

    def test_unseeded_authenticators_differ(self):
        a = HopAuthenticator(layers=2)
        b = HopAuthenticator(layers=2)
        a.enroll(1, 5)
        b.enroll(1, 5)
        assert a.issue(1, 5, 1) != b.issue(1, 5, 1)

    def test_needs_one_layer(self):
        with pytest.raises(ProtocolError):
            HopAuthenticator(layers=0)
