"""Tests for underlay-aware SOS node placement."""

from __future__ import annotations

import pytest

from repro.core import SOSArchitecture
from repro.errors import ConfigurationError, RoutingError
from repro.overlay.network import OverlayNetwork
from repro.overlay.topology import UnderlayTopology
from repro.sos.placement import (
    deploy_with_placement,
    diverse_enrollment,
    placement_resilience,
)


def arch():
    return SOSArchitecture(
        layers=3,
        mapping="one-to-half",
        total_overlay_nodes=400,
        sos_nodes=45,
        filters=5,
    )


class TestRouterFailures:
    def test_fail_router_kills_attached_hops(self):
        topology = UnderlayTopology(routers=30, rng=1)
        topology.attach_overlay_nodes([1, 2])
        router = topology.router_of(1)
        other = topology.router_of(2)
        if router == other:
            pytest.skip("both nodes landed on the same router")
        topology.fail_router(router)
        assert not topology.router_alive(router)
        assert topology.overlay_hop_latency(1, 2) == float("inf")

    def test_fail_unknown_router_rejected(self):
        topology = UnderlayTopology(routers=10, rng=1)
        with pytest.raises(RoutingError):
            topology.fail_router(10_000)

    def test_fail_busiest_targets_concentration(self):
        topology = UnderlayTopology(routers=40, rng=1)
        ids = list(range(60))
        topology.attach_overlay_nodes(ids, concentration=2.0)
        loads = {}
        for overlay_id in ids:
            router = topology.router_of(overlay_id)
            loads[router] = loads.get(router, 0) + 1
        busiest = max(loads, key=loads.get)
        victims = topology.fail_busiest_routers(1, ids)
        assert victims == [busiest]

    def test_concentration_validation(self):
        topology = UnderlayTopology(routers=10, rng=1)
        with pytest.raises(ConfigurationError):
            topology.attach_overlay_nodes([1], concentration=-1)

    def test_concentrated_attachment_clusters(self):
        topology = UnderlayTopology(routers=50, rng=1)
        ids = list(range(200))
        topology.attach_overlay_nodes(ids, concentration=2.0)
        routers_used = {topology.router_of(i) for i in ids}
        # Zipf concentration: far fewer distinct routers than uniform.
        assert len(routers_used) < 40


class TestDiverseEnrollment:
    def test_spreads_over_distinct_routers(self):
        network = OverlayNetwork(200, rng=2)
        topology = UnderlayTopology(routers=60, rng=3)
        topology.attach_overlay_nodes(
            (n.node_id for n in network), concentration=1.5
        )
        chosen = diverse_enrollment(network, topology, 30, rng=4)
        routers = {topology.router_of(node_id) for node_id in chosen}
        assert len(chosen) == 30
        # Diversity: at least ~2/3 distinct routers despite the clustering.
        assert len(routers) >= 20

    def test_count_validation(self):
        network = OverlayNetwork(50, rng=2)
        topology = UnderlayTopology(routers=20, rng=3)
        topology.attach_overlay_nodes(n.node_id for n in network)
        with pytest.raises(ConfigurationError):
            diverse_enrollment(network, topology, 0)
        with pytest.raises(ConfigurationError):
            diverse_enrollment(network, topology, 51)


class TestDeployWithPlacement:
    def test_layer_sizes_preserved(self):
        topology = UnderlayTopology(routers=60, rng=3)
        deployment, network = deploy_with_placement(
            arch(), topology, rng=5, diverse=True
        )
        assert [len(deployment.layer_members(i)) for i in (1, 2, 3)] == (
            arch().integer_layer_sizes
        )
        assert len(network.sos_nodes) == 45

    def test_neighbor_tables_rewired_consistently(self):
        topology = UnderlayTopology(routers=60, rng=3)
        deployment, _ = deploy_with_placement(arch(), topology, rng=5)
        for layer in (1, 2):
            next_members = set(deployment.layer_members(layer + 1))
            for node_id in deployment.layer_members(layer):
                neighbors = deployment.network.get(node_id).neighbors
                assert neighbors
                assert set(neighbors) <= next_members

    def test_routing_works_after_placement(self):
        from repro.sos.protocol import SOSProtocol

        topology = UnderlayTopology(routers=60, rng=3)
        deployment, _ = deploy_with_placement(arch(), topology, rng=5)
        receipt = SOSProtocol(deployment).send("c", "t", rng=6)
        assert receipt.delivered


class TestResilience:
    def test_diverse_placement_survives_targeted_outages(self):
        random_rate, diverse_rate = placement_resilience(
            arch(), outages=3, probes=150, seed=11
        )
        assert diverse_rate > random_rate + 0.2

    def test_no_outage_both_connected(self):
        random_rate, diverse_rate = placement_resilience(
            arch(), outages=0, probes=60, seed=11
        )
        assert random_rate == 1.0
        assert diverse_rate == 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            placement_resilience(arch(), outages=-1)
