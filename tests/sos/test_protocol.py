"""Tests for the SOS forwarding plane."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SOSArchitecture
from repro.sos.deployment import SOSDeployment
from repro.sos.protocol import SOSProtocol
from repro.sos.roles import Role


def deploy(mapping="one-to-half", layers=3, seed=7):
    arch = SOSArchitecture(
        layers=layers,
        mapping=mapping,
        total_overlay_nodes=400,
        sos_nodes=60,
        filters=5,
    )
    return SOSDeployment.deploy(arch, rng=seed)


@pytest.fixture
def protocol():
    return SOSProtocol(deploy())


class TestHappyPath:
    def test_delivery_through_all_layers(self, protocol):
        receipt = protocol.send("client", "target", rng=1)
        assert receipt.delivered
        assert len(receipt.hop_trail) == 4  # 3 SOS layers + filter
        roles = [protocol.deployment.role_of(h) for h in receipt.hop_trail]
        assert roles == [
            Role.ACCESS_POINT,
            Role.BEACON,
            Role.SECRET_SERVLET,
            Role.FILTER,
        ]

    def test_registered_contacts_are_reused(self, protocol):
        contacts = protocol.register_client(rng=3)
        receipt = protocol.send("client", "target", contacts=contacts, rng=1)
        assert receipt.delivered
        assert receipt.hop_trail[0] in contacts

    def test_deterministic_with_seed(self, protocol):
        contacts = protocol.register_client(rng=3)
        a = protocol.send("c", "t", contacts=contacts, rng=9)
        b = protocol.send("c", "t", contacts=contacts, rng=9)
        assert a.hop_trail == b.hop_trail

    def test_path_exists_on_healthy_system(self, protocol):
        contacts = protocol.register_client(rng=3)
        assert protocol.path_exists(contacts)


class TestFailures:
    def test_all_access_points_bad(self, protocol):
        deployment = protocol.deployment
        contacts = protocol.register_client(rng=3)
        for node_id in contacts:
            deployment.network.get(node_id).congest()
        receipt = protocol.send("c", "t", contacts=contacts, rng=1)
        assert not receipt.delivered
        assert receipt.failure_reason == "all access points bad"
        assert receipt.hop_trail == ()

    def test_whole_layer_congested_blocks_delivery(self, protocol):
        deployment = protocol.deployment
        for node_id in deployment.layer_members(2):
            deployment.network.get(node_id).congest()
        receipt = protocol.send("c", "t", rng=1)
        assert not receipt.delivered
        assert "layer-2" in receipt.failure_reason
        contacts = protocol.register_client(rng=3)
        assert not protocol.path_exists(contacts)

    def test_all_filters_congested_blocks_delivery(self, protocol):
        deployment = protocol.deployment
        for filter_id in deployment.filters.filter_ids:
            deployment.filters.congest(filter_id)
        receipt = protocol.send("c", "t", rng=1)
        assert not receipt.delivered
        assert "layer-4" in receipt.failure_reason

    def test_partial_damage_routes_around(self, protocol):
        deployment = protocol.deployment
        # Congest all but one node of layer 2: one-to-half tables make it
        # very likely every layer-1 node still knows the survivor.
        members = deployment.layer_members(2)
        for node_id in members[:-1]:
            deployment.network.get(node_id).congest()
        survivor = members[-1]
        receipt = protocol.send("c", "t", rng=1)
        if receipt.delivered:
            assert receipt.hop_trail[1] == survivor

    def test_compromised_node_does_not_route(self, protocol):
        deployment = protocol.deployment
        for node_id in deployment.layer_members(2):
            deployment.network.get(node_id).compromise()
        receipt = protocol.send("c", "t", rng=1)
        assert not receipt.delivered


class TestOneToOneFragility:
    def test_single_neighbor_failure_blocks_forwarding(self):
        protocol = SOSProtocol(deploy(mapping="one-to-one"))
        deployment = protocol.deployment
        contacts = protocol.register_client(rng=3)
        assert len(contacts) == 1
        entry = deployment.network.get(contacts[0])
        only_neighbor = entry.neighbors[0]
        deployment.network.get(only_neighbor).congest()
        receipt = protocol.send("c", "t", contacts=contacts, rng=1)
        assert not receipt.delivered


class TestReachabilityVsForwarding:
    def test_reachability_upper_bounds_forwarding(self):
        rng = np.random.default_rng(0)
        protocol = SOSProtocol(deploy(mapping="one-to-two", seed=13))
        deployment = protocol.deployment
        # Congest a random half of every layer.
        for layer in (1, 2, 3):
            members = deployment.layer_members(layer)
            for node_id in members[: len(members) // 2]:
                deployment.network.get(node_id).congest()
        forwarded = reachable = 0
        for _ in range(60):
            contacts = deployment.sample_client_contacts(rng)
            delivered = protocol.send("c", "t", contacts=contacts, rng=rng).delivered
            exists = protocol.path_exists(contacts)
            forwarded += int(delivered)
            reachable += int(exists)
            if delivered:
                assert exists  # forwarding success implies a path exists
        assert reachable >= forwarded


class TestBeaconLookup:
    def test_beacon_is_sos_member(self, protocol):
        beacon = protocol.beacon_for("target-A")
        sos_ids = {n.node_id for n in protocol.deployment.network.sos_nodes}
        assert beacon in sos_ids

    def test_beacon_stable_for_same_target(self, protocol):
        assert protocol.beacon_for("t1") == protocol.beacon_for("t1")

    def test_beacon_lookup_from_any_start(self, protocol):
        starts = protocol.deployment.chord.live_node_ids
        owners = {protocol.beacon_for("t2", start_id=s) for s in starts[:10]}
        assert len(owners) == 1
