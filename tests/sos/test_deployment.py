"""Tests for deploying architectures onto overlays."""

from __future__ import annotations

import pytest

from repro.core import SOSArchitecture
from repro.errors import ConfigurationError
from repro.overlay import OverlayNetwork
from repro.sos.deployment import SOSDeployment
from repro.sos.roles import Role


def small_arch(**kwargs):
    defaults = dict(
        layers=3,
        mapping="one-to-half",
        total_overlay_nodes=400,
        sos_nodes=60,
        filters=5,
    )
    defaults.update(kwargs)
    return SOSArchitecture(**defaults)


@pytest.fixture
def deployment():
    return SOSDeployment.deploy(small_arch(), rng=7)


class TestDeploy:
    def test_layer_sizes_match_architecture(self, deployment):
        sizes = [len(deployment.layer_members(i)) for i in (1, 2, 3)]
        assert sizes == deployment.architecture.integer_layer_sizes

    def test_filter_layer_present(self, deployment):
        assert len(deployment.layer_members(4)) == 5

    def test_sos_enrollment_marks_nodes(self, deployment):
        assert len(deployment.network.sos_nodes) == 60

    def test_deterministic_under_seed(self):
        a = SOSDeployment.deploy(small_arch(), rng=11)
        b = SOSDeployment.deploy(small_arch(), rng=11)
        assert a.layer_members(1) == b.layer_members(1)
        node = a.layer_members(1)[0]
        assert a.network.get(node).neighbors == b.network.get(node).neighbors

    def test_existing_network_reused(self):
        network = OverlayNetwork(400, rng=3)
        deployment = SOSDeployment.deploy(small_arch(), network=network, rng=5)
        assert deployment.network is network

    def test_network_size_mismatch_rejected(self):
        network = OverlayNetwork(100, rng=3)
        with pytest.raises(ConfigurationError, match="expects N=400"):
            SOSDeployment.deploy(small_arch(), network=network)

    def test_redeploy_resets_previous_roles(self):
        network = OverlayNetwork(400, rng=3)
        SOSDeployment.deploy(small_arch(), network=network, rng=5)
        second = SOSDeployment.deploy(small_arch(), network=network, rng=6)
        assert len(network.sos_nodes) == 60
        assert len(second.layer_members(1)) == 20


class TestNeighborTables:
    def test_mapping_degree_respected(self, deployment):
        arch = deployment.architecture
        for layer in (1, 2):
            expected = min(
                arch.mapping_degree(layer + 1),
                len(deployment.layer_members(layer + 1)),
            )
            for node_id in deployment.layer_members(layer):
                assert len(deployment.network.get(node_id).neighbors) == expected

    def test_neighbors_live_in_next_layer(self, deployment):
        for layer in (1, 2):
            next_members = set(deployment.layer_members(layer + 1))
            for node_id in deployment.layer_members(layer):
                neighbors = deployment.network.get(node_id).neighbors
                assert set(neighbors) <= next_members

    def test_neighbors_distinct(self, deployment):
        for layer in (1, 2, 3):
            for node_id in deployment.layer_members(layer):
                neighbors = deployment.resolve(node_id).neighbors
                assert len(set(neighbors)) == len(neighbors)

    def test_servlets_point_at_filters(self, deployment):
        filters = set(deployment.filters.filter_ids)
        for node_id in deployment.layer_members(3):
            neighbors = deployment.network.get(node_id).neighbors
            assert set(neighbors) <= filters
            assert deployment.filters.admits(node_id)

    def test_authenticator_enrollment(self, deployment):
        for layer in (1, 2, 3, 4):
            for node_id in deployment.layer_members(layer):
                assert deployment.authenticator.is_enrolled(layer, node_id)


class TestViews:
    def test_roles(self, deployment):
        assert deployment.role_of(deployment.layer_members(1)[0]) is Role.ACCESS_POINT
        assert deployment.role_of(deployment.layer_members(2)[0]) is Role.BEACON
        assert (
            deployment.role_of(deployment.layer_members(3)[0]) is Role.SECRET_SERVLET
        )
        assert deployment.role_of(deployment.filters.filter_ids[0]) is Role.FILTER

    def test_role_of_plain_node_rejected(self, deployment):
        plain = deployment.network.plain_nodes[0]
        with pytest.raises(ConfigurationError, match="not enrolled"):
            deployment.role_of(plain.node_id)

    def test_layer_members_out_of_range(self, deployment):
        with pytest.raises(ConfigurationError):
            deployment.layer_members(9)

    def test_client_contacts_are_layer_one(self, deployment):
        import numpy as np

        contacts = deployment.sample_client_contacts(np.random.default_rng(1))
        assert set(contacts) <= set(deployment.layer_members(1))
        assert len(contacts) == min(
            deployment.architecture.mapping_degree(1),
            len(deployment.layer_members(1)),
        )

    def test_bad_counts_and_reset(self, deployment):
        victim = deployment.layer_members(2)[0]
        deployment.network.get(victim).congest()
        deployment.filters.congest(deployment.filters.filter_ids[0])
        counts = deployment.bad_counts()
        assert counts[2] == 1
        assert counts[4] == 1
        deployment.reset_attack_state()
        assert all(v == 0 for v in deployment.bad_counts().values())

    def test_good_members(self, deployment):
        victim = deployment.layer_members(1)[0]
        deployment.network.get(victim).congest()
        good = deployment.good_members(1)
        assert victim not in good
        assert len(good) == len(deployment.layer_members(1)) - 1

    def test_reassign_membership(self, deployment):
        import numpy as np

        generator = np.random.default_rng(9)
        chosen = [node.node_id for node in deployment.network][:60]
        deployment.reassign_membership(chosen, generator)
        assert sorted(
            node_id
            for layer in (1, 2, 3)
            for node_id in deployment.layer_members(layer)
        ) == sorted(chosen)
        # Tables rewired and enrollment refreshed.
        first = deployment.layer_members(1)[0]
        assert deployment.network.get(first).neighbors
        assert deployment.authenticator.is_enrolled(1, first)

    def test_reassign_membership_wrong_count(self, deployment):
        import numpy as np

        with pytest.raises(ConfigurationError, match="need exactly"):
            deployment.reassign_membership([1, 2, 3], np.random.default_rng(1))

    def test_chord_ring_covers_sos_nodes(self, deployment):
        sos_ids = {node.node_id for node in deployment.network.sos_nodes}
        assert set(deployment.chord.live_node_ids) == sos_ids
