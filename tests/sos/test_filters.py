"""Tests for the filter ring."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, ProtocolError
from repro.sos.filters import FilterRing


@pytest.fixture
def ring():
    return FilterRing(count=5, layer=4, id_offset=1000)


class TestConstruction:
    def test_count_and_ids(self, ring):
        assert len(ring) == 5
        assert ring.filter_ids == [1000, 1001, 1002, 1003, 1004]

    def test_ids_offset_above_overlay(self, ring):
        assert all(filter_id >= 1000 for filter_id in ring.filter_ids)

    def test_filters_sit_at_given_layer(self, ring):
        assert all(f.sos_layer == 4 for f in ring)

    def test_rejects_zero_filters(self):
        with pytest.raises(ConfigurationError):
            FilterRing(count=0, layer=4, id_offset=1000)

    def test_rejects_layer_one(self):
        with pytest.raises(ConfigurationError):
            FilterRing(count=3, layer=1, id_offset=1000)

    def test_get_unknown_raises(self, ring):
        with pytest.raises(ProtocolError):
            ring.get(42)

    def test_contains(self, ring):
        assert 1000 in ring
        assert 42 not in ring


class TestServletAdmission:
    def test_allow_then_admit(self, ring):
        ring.allow_servlet(7)
        assert ring.admits(7)

    def test_unknown_servlet_rejected(self, ring):
        assert not ring.admits(7)

    def test_disallow(self, ring):
        ring.allow_servlet(7)
        ring.disallow_servlet(7)
        assert not ring.admits(7)


class TestAttackSurface:
    def test_congest_disclosed_filter(self, ring):
        ring.congest(1002)
        assert ring.get(1002).is_bad
        assert len(ring.good_filters()) == 4

    def test_reset_health(self, ring):
        ring.congest(1002)
        ring.reset_health()
        assert len(ring.good_filters()) == 5
