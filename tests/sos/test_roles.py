"""Tests for SOS role assignment."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.sos.roles import Role, role_for_layer


class TestRoleForLayer:
    def test_original_three_layer_mapping(self):
        assert role_for_layer(1, 3) is Role.ACCESS_POINT
        assert role_for_layer(2, 3) is Role.BEACON
        assert role_for_layer(3, 3) is Role.SECRET_SERVLET
        assert role_for_layer(4, 3) is Role.FILTER

    def test_deep_hierarchy_has_many_beacons(self):
        roles = [role_for_layer(i, 6) for i in range(1, 8)]
        assert roles[0] is Role.ACCESS_POINT
        assert roles[1:5] == [Role.BEACON] * 4
        assert roles[5] is Role.SECRET_SERVLET
        assert roles[6] is Role.FILTER

    def test_single_layer_system(self):
        assert role_for_layer(1, 1) is Role.ACCESS_POINT
        assert role_for_layer(2, 1) is Role.FILTER

    def test_two_layer_system_has_no_beacons(self):
        assert role_for_layer(1, 2) is Role.ACCESS_POINT
        assert role_for_layer(2, 2) is Role.SECRET_SERVLET

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            role_for_layer(0, 3)
        with pytest.raises(ConfigurationError):
            role_for_layer(5, 3)

    def test_bad_types_rejected(self):
        with pytest.raises(ConfigurationError):
            role_for_layer(1.5, 3)  # type: ignore[arg-type]
        with pytest.raises(ConfigurationError):
            role_for_layer(1, 0)
