"""Tests for priority clients (guaranteed delivery for special clients)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import IntelligentAttacker
from repro.core import SOSArchitecture, SuccessiveAttack
from repro.errors import ConfigurationError
from repro.sos import SOSDeployment
from repro.sos.priority import PriorityProvisioner, priority_advantage


def deploy(seed=3):
    arch = SOSArchitecture(
        layers=3,
        mapping="one-to-two",
        total_overlay_nodes=1000,
        sos_nodes=45,
        filters=5,
    )
    return SOSDeployment.deploy(arch, rng=seed)


class TestRegistration:
    def test_boosted_contacts(self):
        deployment = deploy()
        provisioner = PriorityProvisioner(deployment)
        client = provisioner.register("vip", contact_multiplier=3, rng=1)
        # base m_1 = 2, boosted to 6 (layer has 15 members).
        assert len(client.contacts) == 6
        assert set(client.contacts) <= set(deployment.layer_members(1))

    def test_contact_boost_capped_at_layer_size(self):
        deployment = deploy()
        provisioner = PriorityProvisioner(deployment)
        client = provisioner.register("vip", contact_multiplier=100, rng=1)
        assert len(client.contacts) == len(deployment.layer_members(1))

    def test_provisioned_paths_follow_neighbor_tables(self):
        deployment = deploy()
        provisioner = PriorityProvisioner(deployment)
        client = provisioner.register("vip", provisioned_paths=2, rng=1)
        for path in client.paths:
            assert len(path.nodes) == 4  # 3 layers + filter
            for a, b in zip(path.nodes, path.nodes[1:]):
                assert b in deployment.resolve(a).neighbors

    def test_paths_are_node_disjoint(self):
        deployment = deploy()
        provisioner = PriorityProvisioner(deployment)
        client = provisioner.register("vip", provisioned_paths=3, rng=1)
        seen = set()
        for path in client.paths:
            assert not (seen & set(path.nodes))
            seen |= set(path.nodes)

    def test_validation(self):
        provisioner = PriorityProvisioner(deploy())
        with pytest.raises(ConfigurationError):
            provisioner.register("vip", contact_multiplier=0)
        with pytest.raises(ConfigurationError):
            provisioner.register("vip", provisioned_paths=-1)


class TestDelivery:
    def test_healthy_system_uses_provisioned_path(self):
        deployment = deploy()
        provisioner = PriorityProvisioner(deployment)
        client = provisioner.register("vip", provisioned_paths=2, rng=1)
        receipt = provisioner.send(client, "target", rng=2)
        assert receipt.delivered
        assert receipt.hop_trail == client.paths[0].nodes

    def test_falls_back_when_path_damaged(self):
        deployment = deploy()
        provisioner = PriorityProvisioner(deployment)
        client = provisioner.register("vip", provisioned_paths=1, rng=1)
        for node_id in client.paths[0].nodes[:-1]:
            deployment.resolve(node_id).congest()
        receipt = provisioner.send(client, "target", rng=2)
        # Fallback routing may or may not succeed, but it must not use the
        # dead provisioned path.
        if receipt.delivered:
            assert receipt.hop_trail != client.paths[0].nodes

    def test_no_paths_means_pure_fallback(self):
        deployment = deploy()
        provisioner = PriorityProvisioner(deployment)
        client = provisioner.register("vip", provisioned_paths=0, rng=1)
        receipt = provisioner.send(client, "target", rng=2)
        assert receipt.delivered


class TestAdvantage:
    def test_priority_clients_survive_attacks_better(self):
        deployment = deploy()
        IntelligentAttacker().execute(
            deployment,
            SuccessiveAttack(
                break_in_budget=80, congestion_budget=300, prior_knowledge=0.3
            ),
            rng=4,
        )
        regular, priority = priority_advantage(deployment, trials=200, seed=5)
        assert priority >= regular

    def test_no_attack_both_perfect(self):
        regular, priority = priority_advantage(deploy(), trials=50, seed=5)
        assert regular == 1.0
        assert priority == 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            priority_advantage(deploy(), trials=0)
