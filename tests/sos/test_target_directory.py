"""Tests for the DHT-backed target directory (beacon state)."""

from __future__ import annotations

import pytest

from repro.core import SOSArchitecture
from repro.errors import ProtocolError
from repro.sos.deployment import SOSDeployment
from repro.sos.protocol import SOSProtocol


@pytest.fixture
def protocol():
    arch = SOSArchitecture(
        layers=3,
        mapping="one-to-half",
        total_overlay_nodes=500,
        sos_nodes=60,
        filters=5,
    )
    return SOSProtocol(SOSDeployment.deploy(arch, rng=7))


class TestPublishResolve:
    def test_round_trip(self, protocol):
        servlet = protocol.deployment.layer_members(3)[0]
        holders = protocol.publish_target("hospital", servlet)
        assert len(holders) == 3
        assert protocol.resolve_servlet("hospital") == servlet

    def test_holders_are_sos_members(self, protocol):
        servlet = protocol.deployment.layer_members(3)[0]
        holders = protocol.publish_target("hospital", servlet)
        sos_ids = {n.node_id for n in protocol.deployment.network.sos_nodes}
        assert set(holders) <= sos_ids

    def test_only_servlets_publishable(self, protocol):
        beacon = protocol.deployment.layer_members(2)[0]
        with pytest.raises(ProtocolError, match="not a secret servlet"):
            protocol.publish_target("hospital", beacon)

    def test_unpublished_target_rejected(self, protocol):
        with pytest.raises(ProtocolError, match="no servlet binding"):
            protocol.resolve_servlet("ghost")

    def test_rebinding_overwrites(self, protocol):
        servlets = protocol.deployment.layer_members(3)
        protocol.publish_target("t", servlets[0])
        protocol.publish_target("t", servlets[1])
        assert protocol.resolve_servlet("t") == servlets[1]

    def test_resolution_from_any_start(self, protocol):
        servlet = protocol.deployment.layer_members(3)[0]
        protocol.publish_target("t", servlet)
        for start in protocol.deployment.chord.live_node_ids[:6]:
            assert protocol.resolve_servlet("t", start_id=start) == servlet


class TestBeaconFailure:
    def test_binding_survives_beacon_crash(self, protocol):
        servlet = protocol.deployment.layer_members(3)[0]
        protocol.publish_target("hospital", servlet)
        beacon = protocol.beacon_for("hospital")
        protocol.deployment.chord.fail(beacon)
        assert protocol.resolve_servlet("hospital") == servlet

    def test_re_replication_after_crash(self, protocol):
        chord = protocol.deployment.chord
        servlet = protocol.deployment.layer_members(3)[0]
        protocol.publish_target("hospital", servlet)
        key = chord.space.hash_key("target:hospital")
        chord.fail(chord.find_successor(key))
        chord.maintain_replicas(replicas=3)
        assert chord.replica_count(key) == 3
        assert protocol.resolve_servlet("hospital") == servlet
