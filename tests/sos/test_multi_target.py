"""Tests for multi-target SOS (one overlay, many protected services)."""

from __future__ import annotations

import pytest

from repro.core import SOSArchitecture
from repro.errors import ConfigurationError, ProtocolError
from repro.sos.deployment import SOSDeployment
from repro.sos.multi_target import MultiTargetSOS


@pytest.fixture
def overlay():
    arch = SOSArchitecture(
        layers=3,
        mapping="one-to-half",
        total_overlay_nodes=500,
        sos_nodes=60,
        filters=5,
    )
    return MultiTargetSOS(SOSDeployment.deploy(arch, rng=7))


class TestRegistration:
    def test_site_resources(self, overlay):
        site = overlay.register_target("hospital", rng=1)
        assert len(site.servlet_ids) == 3
        assert len(site.filters) == 5
        servlet_layer = set(overlay.deployment.layer_members(3))
        assert set(site.servlet_ids) <= servlet_layer

    def test_directory_binding_published(self, overlay):
        site = overlay.register_target("hospital", rng=1)
        assert overlay.resolve_servlets("hospital") == list(site.servlet_ids)

    def test_distinct_filter_namespaces(self, overlay):
        a = overlay.register_target("a", rng=1)
        b = overlay.register_target("b", rng=2)
        assert not set(a.filters.filter_ids) & set(b.filters.filter_ids)

    def test_duplicate_target_rejected(self, overlay):
        overlay.register_target("a", rng=1)
        with pytest.raises(ConfigurationError, match="already registered"):
            overlay.register_target("a", rng=2)

    def test_too_many_servlets_rejected(self, overlay):
        with pytest.raises(ConfigurationError, match="not enough"):
            overlay.register_target("x", servlets_per_target=999, rng=1)

    def test_unknown_target_rejected(self, overlay):
        with pytest.raises(ProtocolError, match="unknown target"):
            overlay.site("ghost")
        with pytest.raises(ProtocolError, match="no directory binding"):
            overlay.resolve_servlets("ghost")

    def test_targets_listing(self, overlay):
        overlay.register_target("b", rng=1)
        overlay.register_target("a", rng=2)
        assert overlay.targets == ["a", "b"]


class TestForwarding:
    def test_delivery_to_each_target(self, overlay):
        overlay.register_target("a", rng=1)
        overlay.register_target("b", rng=2)
        for name in ("a", "b"):
            receipt = overlay.send("client", name, rng=3)
            assert receipt.delivered
            # 3 shared/servlet hops + the filter hop.
            assert len(receipt.hop_trail) == 4

    def test_final_hop_is_target_servlet_then_filter(self, overlay):
        site = overlay.register_target("a", rng=1)
        receipt = overlay.send("client", "a", rng=3)
        assert receipt.hop_trail[-2] in site.servlet_ids
        assert receipt.hop_trail[-1] in site.filters

    def test_deterministic_under_seed(self, overlay):
        overlay.register_target("a", rng=1)
        contacts = overlay.deployment.sample_client_contacts(
            __import__("numpy").random.default_rng(5)
        )
        r1 = overlay.send("c", "a", contacts=contacts, rng=9)
        r2 = overlay.send("c", "a", contacts=contacts, rng=9)
        assert r1.hop_trail == r2.hop_trail


class TestAnalyticTargetPs:
    def test_healthy_system_is_certain(self, overlay):
        overlay.register_target("a", rng=1)
        assert overlay.analytic_target_ps("a", [0.0, 0.0]) == 1.0

    def test_matches_measured_rate_under_shared_damage(self, overlay):
        import numpy as np

        overlay.register_target("a", rng=1)
        # Congest a third of layer 2 (a shared layer).
        members = overlay.deployment.layer_members(2)
        for node_id in members[: len(members) // 3]:
            overlay.deployment.network.get(node_id).congest()
        bad2 = len(members) // 3
        analytic = overlay.analytic_target_ps("a", [0.0, float(bad2)])
        rng = np.random.default_rng(5)
        hits = sum(
            overlay.send("c", "a", rng=rng).delivered for _ in range(400)
        )
        assert hits / 400 == pytest.approx(analytic, abs=0.07)

    def test_dead_servlets_zero_availability(self, overlay):
        site = overlay.register_target("a", rng=1)
        for servlet_id in site.servlet_ids:
            overlay.deployment.resolve(servlet_id).congest()
        assert overlay.analytic_target_ps(
            "a", [0.0, 0.0], servlet_bad_fraction=1.0
        ) == 0.0

    def test_dead_filters_zero_availability(self, overlay):
        site = overlay.register_target("a", rng=1)
        for filter_id in site.filters.filter_ids:
            site.filters.congest(filter_id)
        assert overlay.analytic_target_ps("a", [0.0, 0.0]) == 0.0

    def test_wrong_layer_count_rejected(self, overlay):
        overlay.register_target("a", rng=1)
        with pytest.raises(ConfigurationError, match="shared-layer bad"):
            overlay.analytic_target_ps("a", [0.0])


class TestIsolation:
    def test_attacking_one_target_spares_the_other(self, overlay):
        overlay.register_target("victim", rng=1)
        overlay.register_target("bystander", rng=2)
        overlay.attack_target_site("victim")
        rates = overlay.delivery_rates(probes=50, rng=4)
        assert rates["victim"] == 0.0
        assert rates["bystander"] > 0.9

    def test_victim_failure_reason_is_its_own_resources(self, overlay):
        overlay.register_target("victim", rng=1)
        overlay.attack_target_site("victim")
        receipt = overlay.send("c", "victim", rng=3)
        assert not receipt.delivered
        assert "servlet" in receipt.failure_reason or "filter" in (
            receipt.failure_reason
        )

    def test_shared_layer_attack_hurts_everyone(self, overlay):
        overlay.register_target("a", rng=1)
        overlay.register_target("b", rng=2)
        for node_id in overlay.deployment.layer_members(2):
            overlay.deployment.network.get(node_id).congest()
        rates = overlay.delivery_rates(probes=30, rng=4)
        assert rates["a"] == 0.0
        assert rates["b"] == 0.0

    def test_servlet_sets_may_overlap_but_filters_do_not(self, overlay):
        a = overlay.register_target("a", rng=1)
        b = overlay.register_target("b", rng=2)
        # Servlet overlap is allowed (shared layer-L nodes can serve two
        # targets); what must never overlap is the filter hardware.
        assert not set(a.filters.filter_ids) & set(b.filters.filter_ids)
        assert not a.filters.admits(
            next(iter(set(b.servlet_ids) - set(a.servlet_ids)), -1)
        )
