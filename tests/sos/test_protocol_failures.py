"""Failure-path and retry/backoff tests for :meth:`SOSProtocol.send`."""

from __future__ import annotations

import pytest

from repro.core import SOSArchitecture
from repro.resilience.retry import RetryPolicy
from repro.sos.deployment import SOSDeployment
from repro.sos.packets import FailureCause
from repro.sos.protocol import SOSProtocol


def deploy(mapping="one-to-half", layers=3, seed=7):
    arch = SOSArchitecture(
        layers=layers,
        mapping=mapping,
        total_overlay_nodes=400,
        sos_nodes=60,
        filters=5,
    )
    return SOSDeployment.deploy(arch, rng=seed)


@pytest.fixture
def protocol():
    return SOSProtocol(deploy())


def crash_layer(deployment, layer):
    for node_id in deployment.layer_members(layer):
        deployment.resolve(node_id).crash()


class TestAccessPointExhaustion:
    def test_all_access_points_bad(self, protocol):
        contacts = protocol.register_client(rng=3)
        for node_id in contacts:
            protocol.deployment.resolve(node_id).congest()
        receipt = protocol.send("c", "t", contacts=contacts, rng=1)
        assert not receipt.delivered
        assert receipt.failure_cause is FailureCause.ACCESS_POINTS_EXHAUSTED
        assert len(receipt.hop_trail) == 0

    def test_all_access_points_bad_with_retry(self, protocol):
        """Retry mode burns the whole contact list, then gives up."""
        contacts = protocol.register_client(rng=3)
        for node_id in contacts:
            protocol.deployment.resolve(node_id).crash()
        receipt = protocol.send(
            "c",
            "t",
            contacts=contacts,
            rng=1,
            retry_policy=RetryPolicy(max_attempts_per_hop=2),
        )
        assert not receipt.delivered
        assert receipt.failure_cause is FailureCause.ACCESS_POINTS_EXHAUSTED
        # Failover covers every contact despite the 2-attempt hop budget.
        assert receipt.attempts == len(contacts)
        assert receipt.retries == len(contacts) - 1
        assert receipt.backoff_total > 0.0

    def test_failover_disabled_respects_hop_budget(self, protocol):
        contacts = protocol.register_client(rng=3)
        for node_id in contacts:
            protocol.deployment.resolve(node_id).crash()
        receipt = protocol.send(
            "c",
            "t",
            contacts=contacts,
            rng=1,
            retry_policy=RetryPolicy(
                max_attempts_per_hop=2, failover_all_contacts=False
            ),
        )
        assert not receipt.delivered
        assert receipt.attempts == 2


class TestMidPathExhaustion:
    def test_neighbors_exhausted_at_inner_layer(self, protocol):
        crash_layer(protocol.deployment, 2)
        contacts = protocol.register_client(rng=3)
        receipt = protocol.send("c", "t", contacts=contacts, rng=1)
        assert not receipt.delivered
        assert receipt.failure_cause is FailureCause.NEIGHBORS_EXHAUSTED
        assert "layer-2" in receipt.failure_reason
        # The packet made it through the access layer before dying.
        assert len(receipt.hop_trail) == 1

    def test_neighbors_exhausted_with_retry_counts_attempts(self, protocol):
        crash_layer(protocol.deployment, 2)
        contacts = protocol.register_client(rng=3)
        receipt = protocol.send(
            "c",
            "t",
            contacts=contacts,
            rng=1,
            retry_policy=RetryPolicy(max_attempts_per_hop=3),
        )
        assert not receipt.delivered
        assert receipt.failure_cause is FailureCause.NEIGHBORS_EXHAUSTED
        # One good access pick plus a full inner-hop budget of misses.
        assert receipt.attempts >= 1 + 3
        assert receipt.retries >= 2

    def test_exhaustion_at_filter_layer(self, protocol):
        crash_layer(protocol.deployment, protocol.deployment.architecture.layers + 1)
        contacts = protocol.register_client(rng=3)
        receipt = protocol.send("c", "t", contacts=contacts, rng=1)
        assert not receipt.delivered
        assert receipt.failure_cause is FailureCause.NEIGHBORS_EXHAUSTED


class TestRetryDeterminism:
    POLICY = RetryPolicy(
        max_attempts_per_hop=3,
        backoff_base=0.05,
        backoff_factor=2.0,
        jitter=0.01,
    )

    def test_same_seed_same_trail_and_retries(self, protocol):
        # Crash a slice of every layer so retries actually happen.
        for layer in range(1, protocol.deployment.architecture.layers + 2):
            for node_id in protocol.deployment.layer_members(layer)[::3]:
                protocol.deployment.resolve(node_id).crash()
        contacts = protocol.register_client(rng=3)
        receipts = [
            protocol.send(
                "c", "t", contacts=contacts, rng=42, retry_policy=self.POLICY
            )
            for _ in range(2)
        ]
        first, second = receipts
        assert first.hop_trail == second.hop_trail
        assert first.attempts == second.attempts
        assert first.retries == second.retries
        assert first.backoff_total == second.backoff_total

    def test_different_seeds_can_diverge(self, protocol):
        contacts = protocol.register_client(rng=3)
        trails = {
            tuple(
                protocol.send(
                    "c", "t", contacts=contacts, rng=seed, retry_policy=self.POLICY
                ).hop_trail
            )
            for seed in range(8)
        }
        assert len(trails) > 1

    def test_healthy_overlay_needs_no_retries(self, protocol):
        contacts = protocol.register_client(rng=3)
        receipt = protocol.send(
            "c", "t", contacts=contacts, rng=1, retry_policy=self.POLICY
        )
        assert receipt.delivered
        assert receipt.retries == 0
        assert receipt.backoff_total == 0.0
        # One attempt per traversed layer.
        assert receipt.attempts == len(receipt.hop_trail)

    def test_retry_finds_good_node_blindly(self, protocol):
        """With some bad nodes, blind retry still delivers, at a cost."""
        deployment = protocol.deployment
        for layer in range(1, deployment.architecture.layers + 2):
            members = deployment.layer_members(layer)
            for node_id in members[: len(members) // 2]:
                deployment.resolve(node_id).crash()
        contacts = protocol.register_client(rng=3)
        delivered = retried = 0
        for seed in range(30):
            receipt = protocol.send(
                "c", "t", contacts=contacts, rng=seed, retry_policy=self.POLICY
            )
            delivered += receipt.delivered
            retried += receipt.retries > 0
        assert delivered > 0
        assert retried > 0

    def test_backoff_grows_with_retry_index(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0, jitter=0.0)
        import numpy as np

        rng = np.random.default_rng(0)
        delays = [policy.delay(i, rng) for i in range(4)]
        assert delays == [0.1, 0.2, 0.4, 0.8]
