"""Detection instruments vs the two packet engines.

The satellite contract from the detection subsystem, in three tiers:

* **Marking is bit-identical everywhere.** Mark uniforms come from
  dedicated per-target streams both engines spawn and consume in the
  same order, independent of routing — so mark tallies (and every
  traceback built on them) match bit for bit even on heavily flooded
  runs.
* **Monitor counters are bit-identical wherever the offer streams
  are.** Unflooded runs drop nothing, so the full monitor state
  matches exactly; on layer-1 floods the layer-1 (flooded) counters
  match exactly while deeper layers — downstream of the engines'
  congestion-view approximation — agree statistically.
* **Disabled detection changes nothing.** Attaching no monitor/marking
  spawns no extra stream and draws nothing, so reports are
  bit-identical to a detection-free simulation — including with the
  new ``flood_start`` left at its 0.0 default.
"""

from __future__ import annotations

import dataclasses
import math

import pytest

from repro.core import SOSArchitecture
from repro.detection.marking import MarkCollector, MarkingConfig, build_attack_graph
from repro.detection.monitor import MonitorConfig, TrafficMonitor
from repro.simulation.packet_sim import (
    PacketLevelSimulation,
    PacketSimConfig,
    flood_layer,
)
from repro.sos.deployment import SOSDeployment

MONITOR = MonitorConfig(bin_width=0.5, warmup_bins=4, baseline_bins=4)
MARKING = MarkingConfig(probability=0.08, sources_per_target=2, path_depth=5)
CONFIG = PacketSimConfig(
    duration=12.0, warmup=2.0, clients=6, client_rate=2.0, flood_start=4.0
)


def deployment(seed=11):
    arch = SOSArchitecture(
        layers=3,
        mapping="one-to-half",
        total_overlay_nodes=400,
        sos_nodes=30,
        filters=4,
    )
    return SOSDeployment.deploy(arch, rng=seed)


def instrumented_run(config, seed, targets, fast, marking=True):
    dep = deployment()
    monitor = TrafficMonitor(MONITOR)
    collector = None
    if marking and targets:
        graph = build_attack_graph(targets, MARKING)
        collector = MarkCollector(graph, MARKING)
    sim = PacketLevelSimulation(
        dep, config, rng=seed, monitor=monitor, marking=collector
    )
    report = sim.run(flood_targets=targets, fast=fast)
    return monitor, collector, report


class TestMarkingBitIdentity:
    def test_flooded_mark_tallies_identical(self):
        dep = deployment()
        targets = flood_layer(dep, layer=1, fraction=0.5, rng=3)
        for seed in range(5):
            _, event_marks, event = instrumented_run(
                CONFIG, seed, targets, fast=False
            )
            _, fast_marks, fast = instrumented_run(
                CONFIG, seed, targets, fast=True
            )
            assert event.attack_packets_absorbed == fast.attack_packets_absorbed
            assert event_marks.packets_per_victim == fast_marks.packets_per_victim
            for victim in targets:
                assert event_marks.marks_for(victim) == fast_marks.marks_for(
                    victim
                )

    def test_mark_draws_do_not_perturb_the_simulation(self):
        # Same seed, marking on vs off: the report must not change by a
        # bit, because mark uniforms come from a dedicated spawned
        # stream, never from the flood/routing/arrival streams.
        dep = deployment()
        targets = flood_layer(dep, layer=1, fraction=0.5, rng=3)
        for fast in (False, True):
            _, _, with_marks = instrumented_run(
                CONFIG, 0, targets, fast=fast, marking=True
            )
            _, _, without = instrumented_run(
                CONFIG, 0, targets, fast=fast, marking=False
            )
            assert dataclasses.asdict(with_marks) == dataclasses.asdict(without)


class TestMonitorEquivalence:
    def test_unflooded_monitor_state_identical(self):
        for seed in range(3):
            event_monitor, _, event = instrumented_run(
                CONFIG, seed, None, fast=False
            )
            fast_monitor, _, fast = instrumented_run(
                CONFIG, seed, None, fast=True
            )
            assert event.delivery_ratio == 1.0
            assert dataclasses.asdict(event) == dataclasses.asdict(fast)
            assert event_monitor.snapshot() == fast_monitor.snapshot()
            assert event_monitor.observations == fast_monitor.observations

    def test_flooded_layer1_counters_identical(self):
        # Layer-1 offer streams (legit arrivals + floods) are
        # bit-identical across engines: arrivals precede any drop and
        # flood rows come from per-target streams. The counters at the
        # flooded layer must therefore match exactly.
        dep = deployment()
        targets = flood_layer(dep, layer=1, fraction=0.5, rng=3)
        for seed in range(3):
            event_monitor, _, _ = instrumented_run(
                CONFIG, seed, targets, fast=False
            )
            fast_monitor, _, _ = instrumented_run(
                CONFIG, seed, targets, fast=True
            )
            event_snap = event_monitor.snapshot()
            fast_snap = fast_monitor.snapshot()
            for node_id in targets:
                assert event_snap[node_id] == fast_snap[node_id]

    def test_flooded_flags_agree_statistically(self):
        dep = deployment()
        targets = flood_layer(dep, layer=1, fraction=0.5, rng=3)
        agree = 0
        total = 0
        for seed in range(5):
            event_monitor, _, _ = instrumented_run(
                CONFIG, seed, targets, fast=False
            )
            fast_monitor, _, _ = instrumented_run(
                CONFIG, seed, targets, fast=True
            )
            # Every flooded node must be flagged by both engines.
            assert set(targets) <= set(event_monitor.flagged_nodes())
            assert set(targets) <= set(fast_monitor.flagged_nodes())
            event_flags = set(event_monitor.flagged_nodes())
            fast_flags = set(fast_monitor.flagged_nodes())
            agree += len(event_flags & fast_flags)
            total += len(event_flags | fast_flags)
        assert agree / total >= 0.8

    def test_monitor_attachment_does_not_perturb_reports(self):
        dep = deployment()
        targets = flood_layer(dep, layer=1, fraction=0.5, rng=3)
        for fast in (False, True):
            _, _, monitored = instrumented_run(
                CONFIG, 1, targets, fast=fast, marking=False
            )
            bare_sim = PacketLevelSimulation(deployment(), CONFIG, rng=1)
            bare = bare_sim.run(flood_targets=targets, fast=fast)
            assert dataclasses.asdict(monitored) == dataclasses.asdict(bare)


class TestDisabledDetectionChangesNothing:
    # flood_start was added alongside the detection hooks; its 0.0
    # default must reproduce the pre-detection flood schedule exactly
    # (0.0 + gap == gap bitwise), on both engines.
    def test_flood_start_zero_matches_historical_defaults(self):
        legacy = PacketSimConfig(
            duration=12.0, warmup=2.0, clients=6, client_rate=2.0
        )
        assert legacy.flood_start == 0.0
        dep = deployment()
        targets = flood_layer(dep, layer=1, fraction=0.5, rng=3)
        for fast in (False, True):
            report = PacketLevelSimulation(deployment(), legacy, rng=2).run(
                flood_targets=targets, fast=fast
            )
            assert report.attack_packets_absorbed > 0

    def test_engines_still_bit_identical_when_undropped(self):
        legacy = PacketSimConfig(
            duration=8.0, warmup=5.0, clients=1, client_rate=0.4
        )
        for seed in range(10):
            event = PacketLevelSimulation(deployment(), legacy, rng=seed).run(
                fast=False
            )
            fast = PacketLevelSimulation(deployment(), legacy, rng=seed).run(
                fast=True
            )
            assert dataclasses.asdict(event) == dataclasses.asdict(fast)

    def test_flood_start_delays_absorption(self):
        dep = deployment()
        targets = flood_layer(dep, layer=1, fraction=0.5, rng=3)
        early = PacketLevelSimulation(deployment(), CONFIG, rng=5).run(
            flood_targets=targets, fast=True
        )
        late_config = dataclasses.replace(CONFIG, flood_start=10.0)
        late = PacketLevelSimulation(deployment(), late_config, rng=5).run(
            flood_targets=targets, fast=True
        )
        # Starting 6 time units later sheds roughly that share of the
        # flood packets.
        expected = (CONFIG.duration - late_config.flood_start) / (
            CONFIG.duration - CONFIG.flood_start
        )
        ratio = late.attack_packets_absorbed / early.attack_packets_absorbed
        assert math.isclose(ratio, expected, rel_tol=0.05)


class TestMonitorEngineEquivalenceStatistical:
    def test_total_offer_mass_close(self):
        dep = deployment()
        targets = flood_layer(dep, layer=1, fraction=0.5, rng=3)
        event_offers = []
        fast_offers = []
        for seed in range(8):
            event_monitor, _, _ = instrumented_run(
                CONFIG, seed, targets, fast=False
            )
            fast_monitor, _, _ = instrumented_run(
                CONFIG, seed, targets, fast=True
            )
            event_offers.append(event_monitor.observations)
            fast_offers.append(fast_monitor.observations)
        event_mean = sum(event_offers) / len(event_offers)
        fast_mean = sum(fast_offers) / len(fast_offers)
        assert fast_mean == pytest.approx(event_mean, rel=0.02)
