"""Packet marking: attack-graph construction and mark collection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detection.marking import (
    MarkCollector,
    MarkingConfig,
    PacketMark,
    build_attack_graph,
)
from repro.errors import DetectionError


def graph_and_config(targets=(10, 20), **overrides):
    config = MarkingConfig(
        probability=0.1, sources_per_target=2, path_depth=4, **overrides
    )
    return build_attack_graph(targets, config), config


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"probability": 0.0},
            {"probability": 1.0},
            {"sources_per_target": 0},
            {"path_depth": 0},
        ],
    )
    def test_bad_configs_raise(self, kwargs):
        with pytest.raises((DetectionError, Exception)):
            MarkingConfig(**kwargs)


class TestAttackGraph:
    def test_structure(self):
        graph, config = graph_and_config()
        assert graph.victims() == [10, 20]
        assert len(graph) == 4
        for victim in graph.victims():
            paths = graph.paths_for(victim)
            assert len(paths) == config.sources_per_target
            for path in paths:
                assert path.depth == config.path_depth
                assert path.victim == victim

    def test_paths_node_disjoint(self):
        graph, _ = graph_and_config()
        seen = set()
        for path in graph.paths:
            routers = set(path.routers)
            assert not routers & seen
            seen |= routers
            assert path.source not in seen

    def test_deterministic(self):
        a, _ = graph_and_config()
        b, _ = graph_and_config()
        assert a.paths == b.paths

    def test_edges_chain_to_victim(self):
        graph, config = graph_and_config(targets=(5,))
        path = graph.paths_for(5)[0]
        mark0 = path.edge_at_distance(0)
        assert mark0.end == 5 and mark0.distance == 0
        for distance in range(1, config.path_depth):
            mark = path.edge_at_distance(distance)
            nearer = path.edge_at_distance(distance - 1)
            assert mark.end == nearer.start

    def test_bad_inputs(self):
        _, config = graph_and_config()
        with pytest.raises(DetectionError):
            build_attack_graph([], config)
        with pytest.raises(DetectionError):
            build_attack_graph([1, 1], config)
        graph, _ = graph_and_config()
        with pytest.raises(DetectionError):
            graph.paths_for(99)


class TestMarkCollector:
    def test_scalar_batch_bit_identical(self):
        graph, config = graph_and_config()
        rng = np.random.default_rng(3)
        uniforms = rng.random((500, 2))
        scalar = MarkCollector(graph, config)
        batch = MarkCollector(graph, config)
        for u in uniforms:
            scalar.observe(10, float(u[0]), float(u[1]))
        batch.observe_batch(10, uniforms)
        assert scalar.packets_per_victim == batch.packets_per_victim
        assert scalar.marks_for(10) == batch.marks_for(10)
        assert scalar.marks_for(20) == batch.marks_for(20) == {}

    def test_distance_distribution_geometric(self):
        graph, config = graph_and_config(targets=(10,))
        collector = MarkCollector(graph, config)
        n = 200_000
        collector.observe_batch(10, np.random.default_rng(8).random((n, 2)))
        p = config.probability
        total_marked = sum(
            tally.count for tally in collector.marks_for(10).values()
        )
        # Unmarked fraction ~ (1 - p)^depth.
        expected_unmarked = (1.0 - p) ** config.path_depth
        assert (n - total_marked) / n == pytest.approx(
            expected_unmarked, rel=0.05
        )
        # Distance-j mass ~ p (1-p)^j, split over the victim's 2 sources.
        by_distance = {}
        for mark, tally in collector.marks_for(10).items():
            by_distance[mark.distance] = (
                by_distance.get(mark.distance, 0) + tally.count
            )
        for distance in range(config.path_depth):
            expected = p * (1.0 - p) ** distance
            assert by_distance[distance] / n == pytest.approx(
                expected, rel=0.1
            )

    def test_first_packet_is_min(self):
        graph, config = graph_and_config(targets=(10,))
        collector = MarkCollector(graph, config)
        # Packet 1 unmarked (u_mark ~ 1), packet 2 marks distance 0 on
        # source 0, packet 3 repeats the same mark.
        collector.observe(10, 0.0, 0.999999)
        collector.observe(10, 0.0, 0.01)
        collector.observe(10, 0.0, 0.01)
        path = graph.paths_for(10)[0]
        mark = path.edge_at_distance(0)
        tally = collector.marks_for(10)[mark]
        assert tally.first_packet == 2
        assert tally.count == 2
        assert collector.packets_per_victim[10] == 3

    def test_memory_bounded_by_distinct_marks(self):
        graph, config = graph_and_config(targets=(10,))
        collector = MarkCollector(graph, config)
        collector.observe_batch(
            10, np.random.default_rng(1).random((50_000, 2))
        )
        assert (
            collector.distinct_marks()
            <= config.sources_per_target * config.path_depth
        )

    def test_unknown_victim_rejected(self):
        graph, config = graph_and_config()
        collector = MarkCollector(graph, config)
        with pytest.raises(DetectionError):
            collector.observe(99, 0.5, 0.5)
        with pytest.raises(DetectionError):
            collector.observe_batch(99, np.zeros((1, 2)))

    def test_bad_shape_rejected(self):
        graph, config = graph_and_config()
        collector = MarkCollector(graph, config)
        with pytest.raises(DetectionError):
            collector.observe_batch(10, np.zeros((3, 3)))


def test_packet_mark_hashable():
    mark = PacketMark(start=1, end=2, distance=0)
    assert mark in {mark}
