"""Detection feeds and the detect → traceback → repair loop."""

from __future__ import annotations

import pytest

from repro.core import SOSArchitecture
from repro.detection.feed import MonitorBackedDetector, OracleFloodDetector
from repro.detection.loop import DetectionRepairLoop
from repro.detection.marking import MarkingConfig
from repro.detection.monitor import MonitorConfig, TrafficMonitor
from repro.errors import DetectionError
from repro.repair.defender import RepairingDefender
from repro.repair.policy import RepairPolicy
from repro.simulation.packet_sim import PacketSimConfig
from repro.sos.deployment import SOSDeployment

ARCH = SOSArchitecture(
    layers=3,
    mapping="one-to-half",
    total_overlay_nodes=400,
    sos_nodes=30,
    filters=4,
)
SIM = PacketSimConfig(
    duration=12.0, warmup=2.0, clients=6, client_rate=2.0, flood_start=4.0
)
MONITOR = MonitorConfig(bin_width=0.5, warmup_bins=4, baseline_bins=4)
POLICY = RepairPolicy(detection_probability=1.0)


def make_loop(marking=False, seed=7):
    return DetectionRepairLoop(
        ARCH,
        SIM,
        MONITOR,
        POLICY,
        marking_config=(
            MarkingConfig(probability=0.08, sources_per_target=2, path_depth=5)
            if marking
            else None
        ),
        seed=seed,
    )


class TestFeeds:
    def test_oracle_detector_scans_targets_in_membership_order(self):
        deployment = SOSDeployment.deploy(ARCH, rng=1)
        members = deployment.layer_members(1)
        feed = OracleFloodDetector([members[2], members[0]])
        detected = feed.scan(deployment, now=0.0)
        assert detected == [members[0], members[2]]
        feed.forget(members[0])
        assert feed.scan(deployment, now=1.0) == [members[2]]
        feed.retarget([members[1]])
        assert feed.scan(deployment, now=2.0) == [members[1]]

    def test_monitor_backed_detector_needs_attachment(self):
        deployment = SOSDeployment.deploy(ARCH, rng=1)
        feed = MonitorBackedDetector()
        with pytest.raises(DetectionError):
            feed.scan(deployment, now=0.0)

    def test_monitor_backed_detector_reports_flagged_members(self):
        deployment = SOSDeployment.deploy(ARCH, rng=1)
        target = deployment.layer_members(1)[0]
        monitor = TrafficMonitor(MONITOR)
        for b in range(4):
            for k in range(3):
                monitor.observe(target, 2.0 + 0.5 * b + 0.1 * k, True)
        for b in range(8, 16):
            for k in range(60):
                monitor.observe(target, 0.5 * b + 0.005 * k, k % 2 == 0)
        feed = MonitorBackedDetector()
        feed.attach(monitor)
        assert feed.scan(deployment, now=8.0) == [target]
        feed.forget(target)
        assert feed.scan(deployment, now=9.0) == []
        # Re-attaching clears forgotten state.
        feed.attach(monitor)
        assert feed.scan(deployment, now=10.0) == [target]

    def test_feeds_plug_into_defender(self):
        deployment = SOSDeployment.deploy(ARCH, rng=1)
        targets = list(deployment.layer_members(1)[:2])
        defender = RepairingDefender(
            POLICY, rng=3, detector=OracleFloodDetector(targets)
        )
        repaired = defender.scan_and_repair(deployment, knowledge=None)
        assert repaired == 2
        assert sorted(defender.last_repaired) == sorted(targets)
        # forget() was called: a second scan repairs nothing further.
        assert defender.scan_and_repair(deployment, knowledge=None) == 0
        assert defender.last_repaired == []


class TestLoop:
    def test_mode_ordering(self):
        loop = make_loop()
        results = {
            mode: loop.run(mode=mode, phases=3, flood_fraction=0.5, fast=True)
            for mode in ("none", "oracle", "detected")
        }
        # Phase 0 is identical across modes (repair acts only between
        # phases and the phase streams are shared).
        first = {m: r.outcomes[0].delivery_ratio for m, r in results.items()}
        assert len(set(first.values())) == 1
        assert results["none"].total_repaired == 0
        assert results["oracle"].total_repaired >= 1
        assert results["detected"].total_repaired >= 1
        assert (
            results["oracle"].final_delivery
            >= results["none"].final_delivery - 0.02
        )
        assert (
            results["detected"].final_delivery
            >= results["none"].final_delivery - 0.02
        )

    def test_oracle_repairs_exactly_the_flooded_nodes(self):
        result = make_loop().run(mode="oracle", phases=2, fast=True)
        assert set(result.outcomes[0].repaired) == set(result.initial_targets)
        assert result.outcomes[1].flooded == ()

    def test_detected_mode_reports_false_positives(self):
        result = make_loop().run(mode="detected", phases=2, fast=True)
        outcome = result.outcomes[0]
        assert set(outcome.detected_true) <= set(outcome.flagged)
        assert set(outcome.false_positives) == set(outcome.flagged) - set(
            outcome.flooded
        )
        # Every repaired node was flagged.
        assert set(outcome.repaired) <= set(outcome.flagged)

    def test_marking_collects_phase0_only(self):
        result = make_loop(marking=True).run(
            mode="detected", phases=2, fast=True
        )
        assert result.collector is not None
        assert result.graph is not None
        first_phase_flood = result.outcomes[0].flooded
        assert set(result.collector.packets_per_victim) == set(
            result.graph.victims()
        )
        assert sum(result.collector.packets_per_victim.values()) > 0
        assert set(result.graph.victims()) == set(first_phase_flood)

    def test_engines_agree_on_loop_shape(self):
        loop = make_loop()
        fast = loop.run(mode="oracle", phases=2, fast=True)
        event = loop.run(mode="oracle", phases=2, fast=False)
        assert fast.initial_targets == event.initial_targets
        assert [o.repaired for o in fast.outcomes] == [
            o.repaired for o in event.outcomes
        ]
        for fast_outcome, event_outcome in zip(fast.outcomes, event.outcomes):
            assert fast_outcome.delivery_ratio == pytest.approx(
                event_outcome.delivery_ratio, abs=0.1
            )

    def test_validation(self):
        with pytest.raises(DetectionError):
            DetectionRepairLoop(
                ARCH, SIM, MONITOR, RepairPolicy(detection_probability=0.0)
            )
        loop = make_loop()
        with pytest.raises(DetectionError):
            loop.run(mode="psychic")
        with pytest.raises(DetectionError):
            loop.run(phases=0)
