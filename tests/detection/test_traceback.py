"""Attack-graph reconstruction from marks: chaining, budgets, accuracy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.detection.marking import MarkCollector, MarkingConfig, build_attack_graph
from repro.detection.traceback import AttackGraphReconstructor
from repro.errors import DetectionError


def saturated_collector(targets=(10, 20), packets=5000, seed=4, **overrides):
    config = MarkingConfig(
        probability=0.1, sources_per_target=2, path_depth=4, **overrides
    )
    graph = build_attack_graph(targets, config)
    collector = MarkCollector(graph, config)
    rng = np.random.default_rng(seed)
    for victim in graph.victims():
        collector.observe_batch(victim, rng.random((packets, 2)))
    return graph, collector


class TestReconstruction:
    def test_full_recovery_with_ample_packets(self):
        graph, collector = saturated_collector()
        reconstructor = AttackGraphReconstructor(collector)
        report = reconstructor.evaluate(graph)
        assert report.recovery_rate == 1.0
        assert report.recovered_paths == report.total_paths == 4
        rebuilt = {
            path.routers
            for path in reconstructor.reconstruct(10)
            if path.complete
        }
        assert rebuilt == {p.routers for p in graph.paths_for(10)}

    def test_zero_budget_recovers_nothing(self):
        graph, collector = saturated_collector()
        reconstructor = AttackGraphReconstructor(collector)
        assert reconstructor.evaluate(graph, budget=0).recovery_rate == 0.0

    def test_accuracy_curve_monotone_and_saturating(self):
        graph, collector = saturated_collector()
        reconstructor = AttackGraphReconstructor(collector)
        budgets = [0, 10, 50, 200, 1000, 5000]
        curve = reconstructor.accuracy_curve(graph, budgets)
        assert curve == sorted(curve)
        assert curve[-1] == 1.0

    def test_packets_needed_consistent_with_budget(self):
        graph, collector = saturated_collector()
        reconstructor = AttackGraphReconstructor(collector)
        report = reconstructor.evaluate(graph)
        budget = report.packets_needed(1.0)
        assert budget is not None
        assert reconstructor.evaluate(graph, budget=budget).recovery_rate == 1.0
        if budget > 1:
            partial = reconstructor.evaluate(graph, budget=budget - 1)
            assert partial.recovery_rate < 1.0

    def test_packets_needed_none_when_unreachable(self):
        graph, collector = saturated_collector(packets=3)
        reconstructor = AttackGraphReconstructor(collector)
        report = reconstructor.evaluate(graph)
        if report.recovery_rate < 1.0:
            assert report.packets_needed(1.0) is None

    def test_partial_marks_give_incomplete_paths(self):
        config = MarkingConfig(
            probability=0.1, sources_per_target=1, path_depth=4
        )
        graph = build_attack_graph([10], config)
        collector = MarkCollector(graph, config)
        # Hand-feed marks for distances 0 and 1 only (u_mark chosen via
        # the geometric inverse CDF regions: j = 0 for u < p, j = 1 for
        # u in [p, p + p(1-p))).
        collector.observe(10, 0.0, 0.05)  # j = 0
        collector.observe(10, 0.0, 0.15)  # j = 1
        paths = AttackGraphReconstructor(collector).reconstruct(10)
        assert len(paths) == 1
        assert not paths[0].complete
        assert len(paths[0].routers) == 2

    def test_bad_inputs(self):
        graph, collector = saturated_collector()
        reconstructor = AttackGraphReconstructor(collector)
        with pytest.raises(DetectionError):
            reconstructor.reconstruct(10, budget=-1)
        with pytest.raises(DetectionError):
            reconstructor.evaluate(graph).packets_needed(0.0)
        other_config = MarkingConfig(
            probability=0.1, sources_per_target=1, path_depth=4
        )
        other = build_attack_graph([99], other_config)
        with pytest.raises(DetectionError):
            reconstructor.evaluate(other)
