"""TrafficMonitor: binning, change-point detection, and batch/scalar parity."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detection.monitor import MonitorConfig, TrafficMonitor
from repro.errors import DetectionError


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"bin_width": 0.0},
            {"bin_width": -1.0},
            {"method": "median"},
            {"threshold": 0.0},
            {"drift": -0.1},
            {"ewma_alpha": 0.0},
            {"ewma_alpha": 1.5},
            {"warmup_bins": -1},
            {"baseline_bins": 0},
            {"min_sigma": 0.0},
        ],
    )
    def test_bad_configs_raise(self, kwargs):
        with pytest.raises(DetectionError):
            MonitorConfig(**kwargs)

    def test_defaults_valid(self):
        config = MonitorConfig()
        assert config.method == "cusum"


def step_monitor(
    quiet_rate=5, loud_rate=200, quiet_bins=10, loud_bins=10, **overrides
):
    """A node at ``quiet_rate`` offers/bin that jumps to ``loud_rate``."""
    config = MonitorConfig(
        bin_width=1.0, warmup_bins=0, baseline_bins=4, **overrides
    )
    monitor = TrafficMonitor(config)
    for b in range(quiet_bins):
        for k in range(quiet_rate):
            monitor.observe(7, b + k / (quiet_rate + 1), True)
    for b in range(quiet_bins, quiet_bins + loud_bins):
        for k in range(loud_rate):
            monitor.observe(7, b + k / (loud_rate + 1), k % 2 == 0)
    return monitor


class TestBinning:
    def test_snapshot_counts(self):
        monitor = TrafficMonitor(MonitorConfig(bin_width=0.5))
        monitor.observe(1, 0.1, True)
        monitor.observe(1, 0.4, False)
        monitor.observe(1, 0.6, True)
        monitor.observe(2, 1.9, False)
        snap = monitor.snapshot()
        assert snap[1] == {0: (2, 1), 1: (1, 0)}
        assert snap[2] == {3: (1, 1)}
        assert monitor.nodes() == [1, 2]
        assert monitor.last_bin() == 3
        assert monitor.observations == 4

    def test_series_spans_global_horizon(self):
        monitor = TrafficMonitor(MonitorConfig(bin_width=1.0))
        monitor.observe(1, 0.5, True)
        monitor.observe(2, 5.5, True)
        assert monitor.series(1).tolist() == [1.0, 0.0, 0.0, 0.0, 0.0, 0.0]

    def test_window_counts_and_drop_rate(self):
        monitor = step_monitor()
        offered, dropped = monitor.window_counts(7, 0, 10)
        assert offered == 50 and dropped == 0
        assert monitor.drop_rate(7) == pytest.approx(
            1000 / 2050, rel=1e-12
        )

    def test_negative_time_rejected(self):
        monitor = TrafficMonitor(MonitorConfig())
        monitor.observe(1, -0.5, True)
        with pytest.raises(DetectionError):
            monitor.snapshot()

    def test_misaligned_batch_rejected(self):
        monitor = TrafficMonitor(MonitorConfig())
        with pytest.raises(DetectionError):
            monitor.observe_batch(
                np.array([1, 2]), np.array([0.1]), np.array([True])
            )


class TestDetection:
    def test_cusum_flags_step_promptly(self):
        monitor = step_monitor()
        bin_index = monitor.detection_bin(7)
        assert bin_index is not None
        assert 10 <= bin_index <= 11
        assert monitor.detection_time(7) == (bin_index + 1) * 1.0
        assert monitor.flagged_nodes() == [7]

    def test_quiet_node_not_flagged(self):
        monitor = step_monitor(loud_rate=5)
        assert monitor.detection_bin(7) is None
        assert monitor.flagged_nodes() == []

    def test_ewma_also_detects(self):
        monitor = step_monitor(method="ewma", threshold=3.0)
        assert monitor.detection_bin(7) is not None

    def test_now_truncates_evidence(self):
        monitor = step_monitor()
        assert monitor.detection_bin(7, now=9.0) is None
        assert monitor.detection_bin(7, now=20.0) is not None

    def test_detection_monotone_in_threshold(self):
        monitor = step_monitor()
        import dataclasses

        bins = []
        for threshold in (1.0, 4.0, 16.0, 64.0, 256.0, 4096.0):
            tuned = dataclasses.replace(monitor.config, threshold=threshold)
            found = monitor.detection_bin(7, config=tuned)
            bins.append(float("inf") if found is None else found)
        assert bins == sorted(bins)
        assert bins[-1] == float("inf")

    def test_short_series_never_flags(self):
        monitor = TrafficMonitor(MonitorConfig(baseline_bins=4))
        monitor.observe(1, 0.2, True)
        assert monitor.detection_bin(1) is None


class TestScalarBatchParity:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=5),
                st.floats(
                    min_value=0.0,
                    max_value=30.0,
                    allow_nan=False,
                    exclude_max=True,
                ),
                st.booleans(),
            ),
            min_size=1,
            max_size=120,
        )
    )
    def test_batch_equals_scalar(self, events):
        config = MonitorConfig(bin_width=0.7)
        scalar = TrafficMonitor(config)
        batch = TrafficMonitor(config)
        for node, time, ok in events:
            scalar.observe(node, time, ok)
        batch.observe_batch(
            np.array([e[0] for e in events], dtype=np.int64),
            np.array([e[1] for e in events], dtype=np.float64),
            np.array([e[2] for e in events], dtype=np.bool_),
        )
        assert scalar.snapshot() == batch.snapshot()
        assert scalar.flagged_nodes() == batch.flagged_nodes()

    def test_interleaved_batches_order_insensitive(self):
        config = MonitorConfig(bin_width=0.5)
        forward = TrafficMonitor(config)
        backward = TrafficMonitor(config)
        events = [(i % 3, 0.1 * i, i % 4 != 0) for i in range(50)]
        for node, time, ok in events:
            forward.observe(node, time, ok)
        for node, time, ok in reversed(events):
            backward.observe(node, time, ok)
        assert forward.snapshot() == backward.snapshot()
