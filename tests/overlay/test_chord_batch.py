"""``lookup_batch`` against the per-query ``lookup`` oracle.

The batch engine promises *exact* agreement — owners, hop counts, and
success flags — with the scalar lookup on any ring state: freshly
built, churned (failures, joins, leaves), stabilized or stale, across
identifier-space widths, with and without a warm batch cache. These
tests sweep random rings through random churn and check every promise,
plus the vectorized ``rebuild_routing_state`` against its scalar
twin and the input-validation corners.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, RoutingError
from repro.overlay.chord import ChordRing


def random_ring(rng, bits, size):
    ids = sorted(
        int(i) for i in rng.choice(2**bits, size=size, replace=False)
    )
    return ChordRing.build(ids, bits=bits)


def churn(ring, rng, rounds=3):
    """Apply random fails/joins/leaves/stabilizes, keeping >= 2 live."""
    for _ in range(rounds):
        action = int(rng.integers(0, 4))
        live = ring.live_node_ids
        if action == 0 and len(live) > 2:
            ring.fail(int(rng.choice(live)))
        elif action == 1 and len(live) > 2:
            ring.leave(int(rng.choice(live)))
        elif action == 2:
            candidate = int(rng.integers(0, ring.space.size))
            if candidate not in ring.known_node_ids:
                ring.join(candidate)
        else:
            ring.stabilize(rounds=1)


def assert_batch_matches_oracle(ring, rng, queries=40):
    live = ring.live_node_ids
    keys = [int(k) for k in rng.integers(0, ring.space.size, size=queries)]
    starts = [int(s) for s in rng.choice(live, size=queries)]
    batch = ring.lookup_batch(keys, starts)
    for i, (key, start) in enumerate(zip(keys, starts)):
        oracle = ring.lookup(key, start=start)
        assert bool(batch.succeeded[i]) == oracle.succeeded, (key, start)
        assert int(batch.hops[i]) == oracle.hops, (key, start)
        if oracle.succeeded:
            assert int(batch.owners[i]) == oracle.owner, (key, start)


class TestOracleEquivalence:
    @pytest.mark.parametrize("bits", [5, 8, 12, 16])
    def test_fresh_ring_matches_lookup(self, bits):
        rng = np.random.default_rng(bits)
        ring = random_ring(rng, bits, size=min(2**bits - 1, 40))
        assert_batch_matches_oracle(ring, rng)

    @pytest.mark.parametrize("seed", range(12))
    def test_churned_ring_matches_lookup(self, seed):
        rng = np.random.default_rng(seed)
        bits = int(rng.integers(5, 17))
        ring = random_ring(rng, bits, size=min(2**bits - 1, 30))
        churn(ring, rng, rounds=int(rng.integers(1, 6)))
        # Twice: first call builds the epoch-keyed cache, second hits it.
        assert_batch_matches_oracle(ring, rng)
        assert_batch_matches_oracle(ring, rng)

    def test_cache_invalidated_by_churn(self):
        rng = np.random.default_rng(99)
        ring = random_ring(rng, 10, size=25)
        assert_batch_matches_oracle(ring, rng)  # warm the cache
        ring.fail(ring.live_node_ids[3])
        # Stale fingers + a dead node: only correct if the epoch bump
        # forced a state rebuild.
        assert_batch_matches_oracle(ring, rng)

    def test_single_node_ring(self):
        ring = ChordRing.build([42], bits=8)
        batch = ring.lookup_batch([0, 41, 42, 200], starts=42)
        assert batch.owners.tolist() == [42] * 4
        assert batch.hops.tolist() == [0] * 4
        assert batch.succeeded.all()

    def test_wide_ring_scalar_fallback(self):
        # 160-bit space exceeds the int64 vector limit and must fall
        # back to looped lookups with identical results.
        ids = [2**80, 2**120, 2**159 + 11]
        ring = ChordRing.build(ids, bits=160)
        keys = [0, 2**100, 2**159]
        batch = ring.lookup_batch(keys, starts=ids[0])
        for i, key in enumerate(keys):
            oracle = ring.lookup(key, start=ids[0])
            assert int(batch.owners[i]) == oracle.owner
            assert int(batch.hops[i]) == oracle.hops


class TestRebuildEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    def test_vectorized_rebuild_matches_scalar(self, seed):
        rng = np.random.default_rng(seed)
        bits = int(rng.integers(5, 14))
        vec = random_ring(rng, bits, size=min(2**bits - 1, 30))
        scalar = ChordRing.build(vec.live_node_ids, bits=bits)
        scalar._rebuild_routing_state_scalar()
        for node_id in vec.live_node_ids:
            a, b = vec.node(node_id), scalar.node(node_id)
            assert a.fingers == b.fingers
            assert a.successor_list == b.successor_list
            assert a.predecessor == b.predecessor


class TestValidation:
    @pytest.fixture()
    def ring(self):
        return ChordRing.build([1, 18, 36, 99, 200], bits=8)

    def test_empty_batch(self, ring):
        batch = ring.lookup_batch([], starts=[])
        assert len(batch.owners) == len(batch.hops) == 0
        assert batch.succeeded.dtype == bool

    def test_scalar_start_broadcasts(self, ring):
        batch = ring.lookup_batch([5, 37, 150], starts=1)
        for i, key in enumerate([5, 37, 150]):
            assert int(batch.owners[i]) == ring.lookup(key, start=1).owner

    def test_length_mismatch(self, ring):
        with pytest.raises(ConfigurationError):
            ring.lookup_batch([1, 2, 3], starts=[1, 18])

    def test_out_of_range_key(self, ring):
        with pytest.raises(ConfigurationError):
            ring.lookup_batch([5, 300], starts=1)

    def test_dead_start_rejected(self, ring):
        ring.fail(18)
        with pytest.raises(RoutingError):
            ring.lookup_batch([5], starts=18)

    def test_unknown_start_rejected(self, ring):
        with pytest.raises(RoutingError):
            ring.lookup_batch([5], starts=77)
