"""Stateful property tests: Chord under arbitrary churn.

Hypothesis drives random interleavings of joins, crash failures, graceful
departures, and stabilization rounds; after stabilization, lookups from
every live node must agree with the ground-truth successor oracle.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.overlay.chord import ChordRing

BITS = 10
RING_SIZE = 1 << BITS
IDS = st.integers(min_value=0, max_value=RING_SIZE - 1)


class ChordChurnMachine(RuleBasedStateMachine):
    @initialize(seed_ids=st.sets(IDS, min_size=8, max_size=16))
    def setup(self, seed_ids):
        self.ring = ChordRing.build(sorted(seed_ids), bits=BITS)
        self.stable = True

    @rule(node_id=IDS)
    def join(self, node_id):
        if node_id in self.ring:
            return
        self.ring.join(node_id)
        self.stable = False

    @rule(node_id=IDS)
    @precondition(lambda self: len(self.ring) > 4)
    def crash(self, node_id):
        # Crash the owner of node_id's position (a live node, arbitrary).
        victim = self.ring.find_successor(node_id)
        self.ring.fail(victim)
        self.stable = False

    @rule(node_id=IDS)
    @precondition(lambda self: len(self.ring) > 4)
    def leave(self, node_id):
        victim = self.ring.find_successor(node_id)
        self.ring.leave(victim)
        self.stable = False

    @rule()
    def stabilize(self):
        self.ring.stabilize(rounds=2)
        self.ring.rebuild_routing_state()
        self.stable = True

    @invariant()
    def live_membership_is_consistent(self):
        live = self.ring.live_node_ids
        assert live == sorted(set(live))
        for node_id in live:
            assert node_id in self.ring

    @invariant()
    def lookups_match_oracle_when_stable(self):
        if not self.stable:
            return
        live = self.ring.live_node_ids
        for key in (0, RING_SIZE // 3, RING_SIZE - 1):
            result = self.ring.lookup(key, start=live[0])
            assert result.succeeded
            assert result.owner == self.ring.find_successor(key)


ChordChurnTest = ChordChurnMachine.TestCase
ChordChurnTest.settings = settings(
    max_examples=25, stateful_step_count=20, deadline=None
)
