"""Tests for the Chord DHT implementation."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError, RoutingError
from repro.overlay.chord import ChordRing


def build_ring(ids, bits=16):
    return ChordRing.build(list(ids), bits=bits)


class TestBuild:
    def test_basic_ring(self):
        ring = build_ring([1, 18, 36, 99, 200], bits=8)
        assert len(ring) == 5
        assert ring.live_node_ids == [1, 18, 36, 99, 200]

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            ChordRing.build([])

    def test_rejects_duplicates(self):
        with pytest.raises(ConfigurationError):
            ChordRing.build([1, 1])

    def test_rejects_out_of_range_ids(self):
        with pytest.raises(ConfigurationError):
            ChordRing.build([300], bits=8)

    def test_single_node_ring(self):
        ring = build_ring([42], bits=8)
        assert ring.find_successor(0) == 42
        result = ring.lookup(200, start=42)
        assert result.succeeded
        assert result.owner == 42


class TestOwnership:
    def test_find_successor_wraps(self):
        ring = build_ring([10, 100, 200], bits=8)
        assert ring.find_successor(5) == 10
        assert ring.find_successor(10) == 10
        assert ring.find_successor(11) == 100
        assert ring.find_successor(201) == 10  # wraps past the top

    def test_every_key_has_exactly_one_owner(self):
        ring = build_ring([10, 100, 200], bits=8)
        owners = {ring.find_successor(k) for k in range(256)}
        assert owners == {10, 100, 200}


class TestFingerTables:
    def test_fingers_point_to_interval_successors(self):
        ring = build_ring([1, 18, 36, 99, 200], bits=8)
        node = ring.node(1)
        # finger[i] = successor(1 + 2^i)
        expected = [ring.find_successor((1 + (1 << i)) % 256) for i in range(8)]
        assert node.fingers == expected

    def test_successor_list_follows_ring_order(self):
        ring = build_ring([1, 18, 36, 99, 200], bits=8)
        assert ring.node(1).successor_list[:4] == [18, 36, 99, 200]

    def test_predecessors(self):
        ring = build_ring([1, 18, 36], bits=8)
        assert ring.node(1).predecessor == 36
        assert ring.node(18).predecessor == 1


class TestLookup:
    def test_owner_matches_oracle(self):
        rng = np.random.default_rng(7)
        ids = sorted(int(i) for i in rng.choice(2**16, size=120, replace=False))
        ring = build_ring(ids)
        for _ in range(150):
            key = int(rng.integers(0, 2**16))
            start = ids[int(rng.integers(0, len(ids)))]
            result = ring.lookup(key, start)
            assert result.succeeded
            assert result.owner == ring.find_successor(key)

    def test_logarithmic_hops(self):
        rng = np.random.default_rng(3)
        ids = sorted(int(i) for i in rng.choice(2**20, size=400, replace=False))
        ring = ChordRing.build(ids, bits=20)
        hops = []
        for _ in range(150):
            key = int(rng.integers(0, 2**20))
            start = ids[int(rng.integers(0, len(ids)))]
            hops.append(ring.lookup(key, start).hops)
        # Chord: O(log2 N) hops; allow factor ~1.5 on the mean.
        assert sum(hops) / len(hops) <= 1.5 * math.log2(len(ids))

    def test_path_starts_at_origin(self):
        ring = build_ring([1, 18, 36, 99, 200], bits=8)
        result = ring.lookup(70, start=200)
        assert result.path[0] == 200
        assert result.path[-1] == result.owner

    def test_lookup_from_dead_node_rejected(self):
        ring = build_ring([1, 18, 36], bits=8)
        ring.fail(18)
        with pytest.raises(RoutingError):
            ring.lookup(5, start=18)

    def test_lookup_key_hashes_strings(self):
        ring = build_ring([1, 18, 36, 99, 200], bits=8)
        result = ring.lookup_key("target:A", start=1)
        assert result.succeeded
        assert result.owner == ring.find_successor(ring.space.hash_key("target:A"))


class TestJoin:
    def test_join_then_stabilize_converges(self):
        rng = np.random.default_rng(11)
        ids = sorted(int(i) for i in rng.choice(2**16, size=60, replace=False))
        ring = build_ring(ids[:30])
        for node_id in ids[30:]:
            ring.join(node_id)
            ring.stabilize(rounds=1)
        ring.stabilize(rounds=3)
        for _ in range(100):
            key = int(rng.integers(0, 2**16))
            start = ids[int(rng.integers(0, len(ids)))]
            result = ring.lookup(key, start)
            assert result.succeeded
            assert result.owner == ring.find_successor(key)

    def test_join_existing_rejected(self):
        ring = build_ring([1, 18], bits=8)
        with pytest.raises(ConfigurationError):
            ring.join(18)

    def test_join_empty_ring(self):
        ring = ChordRing(bits=8)
        ring.join(7)
        assert ring.lookup(200, start=7).owner == 7


class TestFailures:
    def _scored_ring(self, failures, seed=5):
        rng = np.random.default_rng(seed)
        ids = sorted(int(i) for i in rng.choice(2**16, size=200, replace=False))
        ring = build_ring(ids)
        dead = rng.choice(ids, size=failures, replace=False)
        for node_id in dead:
            ring.fail(int(node_id))
        return ring, rng

    def test_random_failures_routed_around(self):
        ring, rng = self._scored_ring(failures=40)
        for _ in range(150):
            key = int(rng.integers(0, 2**16))
            start = ring.live_node_ids[int(rng.integers(0, len(ring)))]
            result = ring.lookup(key, start)
            assert result.succeeded
            assert result.owner == ring.find_successor(key)

    def test_fail_is_idempotent(self):
        ring = build_ring([1, 18, 36], bits=8)
        ring.fail(18)
        ring.fail(18)
        assert len(ring) == 2

    def test_last_node_cannot_fail(self):
        ring = build_ring([5], bits=8)
        with pytest.raises(RoutingError):
            ring.fail(5)

    def test_membership_check(self):
        ring = build_ring([1, 18, 36], bits=8)
        ring.fail(18)
        assert 18 not in ring
        assert 1 in ring

    def test_stabilize_repairs_state(self):
        ring, rng = self._scored_ring(failures=40)
        ring.stabilize(rounds=3)
        # After stabilization no live node references a dead successor first.
        for node_id in ring.live_node_ids:
            assert ring.node(node_id).successor in ring

    def test_leave_hands_over_pointers(self):
        ring = build_ring([1, 18, 36, 99], bits=8)
        ring.leave(36)
        assert 36 not in ring
        assert ring.node(18).successor == 99
        assert ring.node(99).predecessor == 18
        result = ring.lookup(30, start=1)
        assert result.owned if hasattr(result, "owned") else result.owner == 99


class TestLookupStatistics:
    def test_healthy_ring_statistics(self):
        import math

        rng = np.random.default_rng(4)
        ids = sorted(int(i) for i in rng.choice(2**18, size=256, replace=False))
        ring = ChordRing.build(ids, bits=18)
        stats = ring.lookup_statistics(samples=150, rng=5)
        assert stats.accuracy == 1.0
        assert stats.failed == 0
        assert stats.mean_hops <= 1.5 * math.log2(256)
        assert stats.max_hops >= stats.mean_hops

    def test_deterministic_under_seed(self):
        ring = build_ring([1, 18, 36, 99, 200], bits=8)
        a = ring.lookup_statistics(samples=50, rng=9)
        b = ring.lookup_statistics(samples=50, rng=9)
        assert a == b

    def test_sample_validation(self):
        ring = build_ring([1, 2], bits=8)
        with pytest.raises(ConfigurationError):
            ring.lookup_statistics(samples=0)


class TestValidationAndLimits:
    def test_bad_successor_list_length(self):
        with pytest.raises(ConfigurationError):
            ChordRing(successor_list_length=0)

    def test_stabilize_requires_positive_rounds(self):
        ring = build_ring([1, 2], bits=8)
        with pytest.raises(ConfigurationError):
            ring.stabilize(rounds=0)

    def test_unknown_node_access(self):
        ring = build_ring([1], bits=8)
        with pytest.raises(RoutingError):
            ring.node(99)


@settings(max_examples=30, deadline=None)
@given(
    data=st.data(),
    size=st.integers(min_value=2, max_value=40),
)
def test_property_lookup_always_matches_oracle(data, size):
    ids = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=2**12 - 1),
            min_size=size,
            max_size=size,
            unique=True,
        )
    )
    ring = ChordRing.build(ids, bits=12)
    key = data.draw(st.integers(min_value=0, max_value=2**12 - 1))
    start = data.draw(st.sampled_from(ids))
    result = ring.lookup(key, start)
    assert result.succeeded
    assert result.owner == ring.find_successor(key)
