"""Object views vs struct-of-arrays columns: one state, two faces.

Since the struct-of-arrays refactor every :class:`OverlayNode` is a thin
view over :class:`~repro.overlay.arrays.OverlayStore` columns, and the
fast-path encoder borrows those columns directly. These are the property
tests guarding that contract: random mutation storms driven through the
*object* API must be visible — exactly — through the columns, counters,
and the array encoder, and column-side bulk writes must be visible
through the object views. The encoder itself is pinned bit-identical to
the original object-walking oracle.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SOSArchitecture
from repro.overlay.arrays import (
    HEALTH_COMPROMISED,
    HEALTH_CRASHED,
    HEALTH_GOOD,
    OverlayStore,
)
from repro.overlay.node import NodeHealth
from repro.perf.fastsim import (
    SlotIndex,
    _encode_deployment_objects,
    encode_deployment,
)
from repro.sos.deployment import SOSDeployment
from repro.utils.seeding import make_rng


def deployment(seed=17, nodes=300, sos=40):
    arch = SOSArchitecture(
        layers=3,
        mapping="one-to-half",
        total_overlay_nodes=nodes,
        sos_nodes=sos,
        filters=4,
    )
    return SOSDeployment.deploy(arch, rng=seed)


def brute_force_counts(dep):
    """Recount bad/crashed per layer by walking every node object."""
    layers = dep.architecture.layers + 1
    bad = {layer: 0 for layer in range(1, layers + 1)}
    crashed = dict(bad)
    for layer in range(1, layers + 1):
        for node_id in dep.layer_members(layer):
            node = dep.resolve(node_id)
            bad[layer] += int(node.is_bad)
            crashed[layer] += int(node.is_crashed)
    return bad, crashed


class TestMutationStormCoherence:
    """Random object-API churn never desynchronizes columns or counters."""

    MUTATIONS = ("compromise", "congest", "crash", "restore", "recover")

    @pytest.mark.parametrize("seed", range(5))
    def test_object_writes_visible_in_columns(self, seed):
        dep = deployment(seed=seed)
        rng = make_rng(1000 + seed)
        members = dep.sos_member_ids()
        for round_index in range(20):
            for node_id in rng.choice(members, size=12, replace=False):
                node = dep.resolve(int(node_id))
                action = self.MUTATIONS[int(rng.integers(len(self.MUTATIONS)))]
                getattr(node, action)()
            # Column truth equals object truth, node by node.
            for node_id in members:
                node = dep.resolve(node_id)
                store = node._store
                assert store.get_health(node._row) == int(
                    store.health[node._row]
                )
                assert node.is_bad == (
                    int(store.health[node._row]) != HEALTH_GOOD
                )
            # Incremental counters equal the brute-force recount.
            bad, crashed = brute_force_counts(dep)
            assert dep.bad_counts() == bad
            assert dep.crashed_counts() == crashed

    def test_column_writes_visible_in_objects(self):
        dep = deployment()
        store = dep.network.store
        victims = dep.member_array(1)[:5]
        store.set_health_many(store.rows_of(victims), HEALTH_CRASHED)
        for node_id in victims:
            node = dep.resolve(int(node_id))
            assert node.health is NodeHealth.CRASHED
            assert node.is_crashed
        assert dep.crashed_counts()[1] == 5
        # And back: restore through the object API drains the counter.
        for node_id in victims:
            assert dep.resolve(int(node_id)).restore()
        assert dep.crashed_counts()[1] == 0

    def test_counter_recompute_is_idempotent(self):
        dep = deployment()
        store = dep.network.store
        dep.resolve(dep.sos_member_ids()[0]).compromise()
        before = (
            store._bad_per_layer.copy(),
            store._crashed_per_layer.copy(),
        )
        store.recompute_counters()
        assert np.array_equal(store._bad_per_layer, before[0])
        assert np.array_equal(store._crashed_per_layer, before[1])


class TestNeighborTableCoherence:
    """Compact neighbor storage behaves like the per-node tuples."""

    def test_object_and_matrix_reads_agree(self):
        dep = deployment()
        store = dep.network.store
        for layer in range(1, dep.architecture.layers):
            rows = dep.member_rows(layer)
            lens = store.neighbor_len[rows]
            width = int(lens.max(initial=0))
            matrix = store.neighbor_matrix(rows, width)
            for position, node_id in enumerate(dep.member_array(layer)):
                node = dep.resolve(int(node_id))
                row = matrix[position]
                assert tuple(row[row >= 0].tolist()) == node.neighbors

    def test_rows_without_tables_hit_the_sentinel(self):
        store = OverlayStore([5, 6, 7])
        store.set_neighbors(1, (6, 7))
        matrix = store.neighbor_matrix(np.asarray([0, 1, 2]), 2)
        assert matrix.tolist() == [[-1, -1], [6, 7], [-1, -1]]
        assert store.neighbors_of(0) == ()
        assert store.neighbors_of(1) == (6, 7)

    def test_rewrite_shrinks_and_pads(self):
        store = OverlayStore([1, 2])
        store.set_neighbors(0, (9, 8, 7))
        store.set_neighbors(0, (4,))
        assert store.neighbors_of(0) == (4,)
        assert store.neighbor_matrix(np.asarray([0]), 3).tolist() == [
            [4, -1, -1]
        ]

    def test_width_beyond_storage_raises(self):
        from repro.errors import ConfigurationError

        store = OverlayStore([1])
        store.set_neighbors(0, (2,))
        with pytest.raises(ConfigurationError):
            store.neighbor_matrix(np.asarray([0]), 9)

    def test_reset_roles_releases_tables(self):
        store = OverlayStore(list(range(10)))
        for row in range(10):
            store.set_neighbors(row, (row + 1,))
        store.reset_roles()
        assert all(store.neighbors_of(row) == () for row in range(10))
        # Released compact rows are reused, not leaked: re-wiring the
        # same population must not grow the table.
        capacity = store._nbr_table.shape[0]
        for row in range(10):
            store.set_neighbors(row, (row + 2,))
        assert store._nbr_table.shape[0] == capacity

    def test_epoch_bumps_invalidate_cached_structure(self):
        dep = deployment()
        first = encode_deployment(dep)
        assert encode_deployment(dep).node_ids is first.node_ids
        node = dep.resolve(dep.layer_members(1)[0])
        node.set_neighbors(node.neighbors)
        assert encode_deployment(dep).node_ids is not first.node_ids


class TestEncoderBitIdentity:
    """Column-borrowing encoder == original object-walking oracle."""

    @pytest.mark.parametrize("seed", range(8))
    def test_encodings_identical(self, seed):
        dep = deployment(seed=seed)
        # Mixed damage so is_bad is non-trivial.
        rng = make_rng(seed)
        for node_id in rng.choice(dep.sos_member_ids(), size=10, replace=False):
            node = dep.resolve(int(node_id))
            (node.compromise if rng.random() < 0.5 else node.congest)()
        fast = encode_deployment(dep)
        oracle = _encode_deployment_objects(dep)
        assert fast.layers == oracle.layers
        assert np.array_equal(fast.node_ids, oracle.node_ids)
        assert np.array_equal(fast.layer_of, oracle.layer_of)
        assert np.array_equal(fast.local_of, oracle.local_of)
        assert np.array_equal(fast.is_bad, oracle.is_bad)
        assert set(fast.members) == set(oracle.members)
        for layer in fast.members:
            assert np.array_equal(fast.members[layer], oracle.members[layer])
        assert set(fast.neighbors) == set(oracle.neighbors)
        for layer in fast.neighbors:
            assert np.array_equal(
                fast.neighbors[layer], oracle.neighbors[layer]
            )
        for node_id in fast.node_ids[:25]:
            assert fast.slot_of[int(node_id)] == oracle.slot_of[int(node_id)]


class TestSlotIndex:
    def test_dict_like_reads(self):
        index = SlotIndex(np.asarray([30, 10, 20], dtype=np.int64))
        assert 10 in index and 30 in index
        assert 11 not in index
        assert index[30] == 0 and index[10] == 1 and index[20] == 2
        with pytest.raises(KeyError):
            index[99]

    def test_vectorized_lookup_matches_scalar(self):
        ids = np.asarray([7, 3, 11, 5], dtype=np.int64)
        index = SlotIndex(ids)
        wanted = np.asarray([[5, 3], [7, 11]], dtype=np.int64)
        slots = index.lookup(wanted)
        assert slots.shape == wanted.shape
        for row in range(2):
            for col in range(2):
                assert slots[row, col] == index[int(wanted[row, col])]
        with pytest.raises(KeyError):
            index.lookup(np.asarray([3, 4], dtype=np.int64))
