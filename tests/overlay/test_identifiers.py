"""Tests for the m-bit identifier space."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.overlay.identifiers import IdentifierSpace


class TestConstruction:
    def test_size(self):
        assert IdentifierSpace(8).size == 256

    def test_rejects_zero_bits(self):
        with pytest.raises(ConfigurationError):
            IdentifierSpace(0)

    def test_rejects_oversized_bits(self):
        with pytest.raises(ConfigurationError):
            IdentifierSpace(200)

    def test_rejects_bool(self):
        with pytest.raises(ConfigurationError):
            IdentifierSpace(True)  # type: ignore[arg-type]


class TestHashing:
    def test_deterministic(self):
        space = IdentifierSpace(16)
        assert space.hash_key("target") == space.hash_key("target")

    def test_within_ring(self):
        space = IdentifierSpace(8)
        for key in ("a", "b", "target:1", "x" * 100):
            assert 0 <= space.hash_key(key) < 256

    def test_different_keys_usually_differ(self):
        space = IdentifierSpace(32)
        values = {space.hash_key(f"key-{i}") for i in range(100)}
        assert len(values) == 100


class TestValidation:
    def test_contains(self):
        space = IdentifierSpace(4)
        assert space.contains(0)
        assert space.contains(15)
        assert not space.contains(16)
        assert not space.contains(-1)
        assert not space.contains("3")  # type: ignore[arg-type]

    def test_validate_passthrough(self):
        assert IdentifierSpace(4).validate(7) == 7

    def test_validate_rejects(self):
        with pytest.raises(ConfigurationError):
            IdentifierSpace(4).validate(16)


class TestIntervals:
    def test_distance_wraps(self):
        space = IdentifierSpace(4)  # ring of 16
        assert space.distance(14, 2) == 4
        assert space.distance(2, 14) == 12
        assert space.distance(5, 5) == 0

    def test_open_interval_simple(self):
        space = IdentifierSpace(4)
        assert space.in_open_interval(5, 3, 8)
        assert not space.in_open_interval(3, 3, 8)
        assert not space.in_open_interval(8, 3, 8)

    def test_open_interval_wrapping(self):
        space = IdentifierSpace(4)
        assert space.in_open_interval(15, 14, 2)
        assert space.in_open_interval(1, 14, 2)
        assert not space.in_open_interval(5, 14, 2)

    def test_open_interval_degenerate(self):
        space = IdentifierSpace(4)
        # (x, x) covers the whole ring minus x.
        assert space.in_open_interval(5, 3, 3)
        assert not space.in_open_interval(3, 3, 3)

    def test_half_open_includes_end(self):
        space = IdentifierSpace(4)
        assert space.in_half_open_interval(8, 3, 8)
        assert not space.in_half_open_interval(3, 3, 8)

    def test_half_open_degenerate_covers_ring(self):
        space = IdentifierSpace(4)
        assert space.in_half_open_interval(11, 6, 6)
        assert space.in_half_open_interval(6, 6, 6)


class TestFingerStarts:
    def test_powers_of_two(self):
        space = IdentifierSpace(8)
        assert [space.finger_start(10, i) for i in range(4)] == [11, 12, 14, 18]

    def test_wraps(self):
        space = IdentifierSpace(4)
        assert space.finger_start(15, 1) == 1

    def test_index_bounds(self):
        space = IdentifierSpace(4)
        with pytest.raises(ConfigurationError):
            space.finger_start(0, 4)
        with pytest.raises(ConfigurationError):
            space.finger_start(0, -1)


@given(
    bits=st.integers(min_value=2, max_value=16),
    value=st.integers(min_value=0),
    start=st.integers(min_value=0),
    end=st.integers(min_value=0),
)
def test_property_half_open_is_open_plus_endpoint(bits, value, start, end):
    space = IdentifierSpace(bits)
    value, start, end = value % space.size, start % space.size, end % space.size
    half_open = space.in_half_open_interval(value, start, end)
    open_ = space.in_open_interval(value, start, end)
    if value == end:
        assert half_open
    elif start != end:
        assert half_open == open_


@given(
    bits=st.integers(min_value=2, max_value=16),
    a=st.integers(min_value=0),
    b=st.integers(min_value=0),
)
def test_property_distance_antisymmetry(bits, a, b):
    space = IdentifierSpace(bits)
    a, b = a % space.size, b % space.size
    if a != b:
        assert space.distance(a, b) + space.distance(b, a) == space.size
    else:
        assert space.distance(a, b) == 0
