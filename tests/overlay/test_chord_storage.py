"""Tests for Chord key-value storage with successor-list replication."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, RoutingError
from repro.overlay.chord import ChordRing


@pytest.fixture
def ring():
    rng = np.random.default_rng(5)
    ids = sorted(int(i) for i in rng.choice(2**16, size=40, replace=False))
    return ChordRing.build(ids, bits=16)


class TestPutGet:
    def test_round_trip(self, ring):
        holders = ring.put(1234, "servlet-A")
        assert ring.get(1234) == "servlet-A"
        assert len(holders) == ChordRing.DEFAULT_REPLICAS

    def test_owner_holds_copy(self, ring):
        holders = ring.put(1234, "v")
        assert holders[0] == ring.find_successor(1234)

    def test_replicas_are_ring_successors(self, ring):
        holders = ring.put(1234, "v", replicas=3)
        live = ring.live_node_ids
        start = live.index(holders[0])
        expected = [live[(start + offset) % len(live)] for offset in range(3)]
        assert holders == expected

    def test_string_key_helpers(self, ring):
        ring.put_key("target:hospital", 42)
        assert ring.get_key("target:hospital") == 42

    def test_get_from_any_start(self, ring):
        ring.put(777, "v")
        for start in ring.live_node_ids[:8]:
            assert ring.get(777, start=start) == "v"

    def test_missing_key_raises(self, ring):
        with pytest.raises(RoutingError, match="no surviving replica"):
            ring.get(4242)

    def test_overwrite(self, ring):
        ring.put(9, "old")
        ring.put(9, "new")
        assert ring.get(9) == "new"

    def test_replica_cap_on_tiny_rings(self):
        ring = ChordRing.build([1, 200], bits=16)
        holders = ring.put(50, "v", replicas=5)
        assert sorted(holders) == [1, 200]

    def test_invalid_replicas(self, ring):
        with pytest.raises(ConfigurationError):
            ring.put(1, "v", replicas=0)
        with pytest.raises(ConfigurationError):
            ring.maintain_replicas(replicas=0)


class TestFailureSurvival:
    def test_value_survives_owner_crash(self, ring):
        ring.put(1234, "v", replicas=3)
        owner = ring.find_successor(1234)
        ring.fail(owner)
        assert ring.get(1234) == "v"

    def test_value_survives_two_crashes_with_three_replicas(self, ring):
        holders = ring.put(1234, "v", replicas=3)
        ring.fail(holders[0])
        ring.fail(holders[1])
        assert ring.get(1234) == "v"

    def test_maintain_replicas_restores_factor(self, ring):
        holders = ring.put(1234, "v", replicas=3)
        ring.fail(holders[0])
        assert ring.replica_count(1234) == 2
        copies = ring.maintain_replicas(replicas=3)
        assert copies >= 1
        assert ring.replica_count(1234) == 3
        # The new owner is now among the holders.
        new_owner = ring.find_successor(1234)
        assert 1234 in ring.node(new_owner).store

    def test_maintain_removes_over_replication(self, ring):
        ring.put(1234, "v", replicas=3)
        # Manually over-replicate on an unrelated node.
        outsider = [
            n for n in ring.live_node_ids if 1234 not in ring.node(n).store
        ][0]
        ring.node(outsider).store[1234] = "v"
        ring.maintain_replicas(replicas=3)
        assert ring.replica_count(1234) == 3
        assert 1234 not in ring.node(outsider).store

    def test_churn_cycle_preserves_all_keys(self, ring):
        rng = np.random.default_rng(9)
        keys = [int(k) for k in rng.integers(0, 2**16, size=20)]
        for key in keys:
            ring.put(key, f"value-{key}", replicas=3)
        for _ in range(3):
            victim = ring.live_node_ids[int(rng.integers(0, len(ring)))]
            if len(ring) > 5:
                ring.fail(victim)
            ring.maintain_replicas(replicas=3)
        for key in keys:
            assert ring.get(key) == f"value-{key}"
