"""Tests for OverlayNode and OverlayNetwork."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, RoutingError
from repro.overlay.network import OverlayNetwork
from repro.overlay.node import NodeHealth, OverlayNode


class TestNodeHealth:
    def test_good_is_not_bad(self):
        assert not NodeHealth.GOOD.is_bad

    def test_compromised_and_congested_are_bad(self):
        assert NodeHealth.COMPROMISED.is_bad
        assert NodeHealth.CONGESTED.is_bad


class TestOverlayNode:
    def test_defaults(self):
        node = OverlayNode(node_id=5, address="node-5")
        assert node.is_good
        assert not node.is_sos
        assert node.neighbors == ()

    def test_sos_enrollment(self):
        node = OverlayNode(node_id=5, address="node-5", sos_layer=2)
        assert node.is_sos

    def test_compromise_discloses_neighbors(self):
        node = OverlayNode(node_id=5, address="n", neighbors=(1, 2, 3))
        disclosed = node.compromise()
        assert disclosed == frozenset({1, 2, 3})
        assert node.health is NodeHealth.COMPROMISED
        assert node.is_bad

    def test_congest(self):
        node = OverlayNode(node_id=5, address="n")
        node.congest()
        assert node.health is NodeHealth.CONGESTED

    def test_congest_does_not_downgrade_compromised(self):
        node = OverlayNode(node_id=5, address="n")
        node.compromise()
        node.congest()
        assert node.health is NodeHealth.COMPROMISED

    def test_recover(self):
        node = OverlayNode(node_id=5, address="n")
        node.congest()
        node.recover()
        assert node.is_good

    def test_set_neighbors_coerces_tuple(self):
        node = OverlayNode(node_id=5, address="n")
        node.set_neighbors([9, 8])
        assert node.neighbors == (9, 8)

    def test_rejects_negative_id(self):
        with pytest.raises(ConfigurationError):
            OverlayNode(node_id=-1, address="n")

    def test_rejects_bad_layer(self):
        with pytest.raises(ConfigurationError):
            OverlayNode(node_id=1, address="n", sos_layer=0)


class TestOverlayNetwork:
    def test_population_size(self):
        assert len(OverlayNetwork(250, rng=1)) == 250

    def test_unique_identifiers(self):
        network = OverlayNetwork(500, rng=1)
        assert len(set(network.node_ids)) == 500

    def test_deterministic_given_seed(self):
        assert OverlayNetwork(100, rng=3).node_ids == OverlayNetwork(100, rng=3).node_ids

    def test_dense_ring_uses_permutation(self):
        network = OverlayNetwork(200, bits=8, rng=1)
        assert len(set(network.node_ids)) == 200

    def test_ring_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            OverlayNetwork(300, bits=8)

    def test_get_unknown_raises(self):
        network = OverlayNetwork(10, rng=1)
        missing = next(i for i in range(2**32) if i not in network)
        with pytest.raises(RoutingError):
            network.get(missing)

    def test_layer_views(self):
        network = OverlayNetwork(20, rng=1)
        nodes = list(network)
        nodes[0].sos_layer = 1
        nodes[1].sos_layer = 1
        nodes[2].sos_layer = 2
        assert len(network.sos_nodes) == 3
        assert len(network.layer_nodes(1)) == 2
        assert len(network.plain_nodes) == 17

    def test_health_census(self):
        network = OverlayNetwork(10, rng=1)
        nodes = list(network)
        nodes[0].congest()
        nodes[1].compromise()
        census = network.health_census()
        assert census[NodeHealth.CONGESTED] == 1
        assert census[NodeHealth.COMPROMISED] == 1
        assert census[NodeHealth.GOOD] == 8
        assert len(network.bad_nodes()) == 2
        assert len(network.good_nodes()) == 8

    def test_reset_health(self):
        network = OverlayNetwork(10, rng=1)
        for node in network:
            node.congest()
        network.reset_health()
        assert len(network.good_nodes()) == 10

    def test_reset_roles(self):
        network = OverlayNetwork(10, rng=1)
        for node in network:
            node.sos_layer = 1
            node.set_neighbors((1,))
        network.reset_roles()
        assert network.sos_nodes == []

    def test_random_sample_distinct(self):
        network = OverlayNetwork(50, rng=1)
        sample = network.random_nodes(20, rng=2)
        assert len({node.node_id for node in sample}) == 20

    def test_random_sample_respects_exclusions(self):
        network = OverlayNetwork(50, rng=1)
        excluded = network.node_ids[:40]
        sample = network.random_nodes(10, rng=2, exclude=excluded)
        assert all(node.node_id not in set(excluded) for node in sample)

    def test_random_sample_pool_exhaustion(self):
        network = OverlayNetwork(5, rng=1)
        with pytest.raises(ConfigurationError):
            network.random_nodes(6)

    def test_rejects_bad_size(self):
        with pytest.raises(ConfigurationError):
            OverlayNetwork(0)
