"""Tests for the underlay topology substrate."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError, RoutingError
from repro.overlay.topology import UnderlayTopology


@pytest.fixture
def topology():
    return UnderlayTopology(routers=80, model="waxman", rng=7)


class TestConstruction:
    def test_connected_waxman(self, topology):
        assert topology.routers == 80
        assert topology.is_connected()

    def test_connected_barabasi(self):
        topo = UnderlayTopology(routers=80, model="barabasi-albert", rng=7)
        assert topo.is_connected()
        assert topo.links >= 79

    def test_links_have_positive_latency(self, topology):
        assert topology.mean_link_latency > 0
        for _, _, data in topology.graph.edges(data=True):
            assert data["latency"] > 0

    def test_deterministic_under_seed(self):
        a = UnderlayTopology(routers=50, rng=3)
        b = UnderlayTopology(routers=50, rng=3)
        assert sorted(a.graph.edges) == sorted(b.graph.edges)

    def test_unknown_model_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown underlay model"):
            UnderlayTopology(routers=10, model="smallworld")

    def test_too_few_routers_rejected(self):
        with pytest.raises(ConfigurationError):
            UnderlayTopology(routers=1)


class TestAttachment:
    def test_attach_and_resolve(self, topology):
        topology.attach_overlay_nodes([100, 200, 300])
        for overlay_id in (100, 200, 300):
            assert topology.router_of(overlay_id) in topology.graph

    def test_unattached_rejected(self, topology):
        with pytest.raises(RoutingError, match="not attached"):
            topology.router_of(999)


class TestLatency:
    def test_self_hop_is_free(self, topology):
        topology.attach_overlay_nodes([1])
        assert topology.overlay_hop_latency(1, 1) == 0.0

    def test_triangle_inequality_via_dijkstra(self, topology):
        routers = list(topology.graph.nodes)
        a, b, c = routers[0], routers[10], routers[20]
        assert topology.router_latency(a, c) <= (
            topology.router_latency(a, b) + topology.router_latency(b, c) + 1e-9
        )

    def test_symmetry(self, topology):
        routers = list(topology.graph.nodes)
        a, b = routers[3], routers[40]
        assert topology.router_latency(a, b) == pytest.approx(
            topology.router_latency(b, a)
        )

    def test_path_latency_sums_hops(self, topology):
        topology.attach_overlay_nodes([1, 2, 3])
        total = topology.path_latency([1, 2, 3])
        assert total == pytest.approx(
            topology.overlay_hop_latency(1, 2) + topology.overlay_hop_latency(2, 3)
        )

    def test_unknown_router_rejected(self, topology):
        with pytest.raises(RoutingError):
            topology.router_latency(0, 10_000)


class TestLinkFailures:
    def test_fail_link_removes_edge(self, topology):
        u, v = next(iter(topology.graph.edges))
        topology.fail_link(u, v)
        assert not topology.graph.has_edge(u, v)

    def test_fail_missing_link_rejected(self, topology):
        with pytest.raises(RoutingError):
            topology.fail_link(0, 0)

    def test_failures_never_shorten_paths(self):
        topo = UnderlayTopology(routers=60, rng=5)
        routers = list(topo.graph.nodes)
        pairs = [(routers[i], routers[-i - 1]) for i in range(5)]
        before = [topo.router_latency(a, b) for a, b in pairs]
        topo.fail_random_links(10)
        after = [topo.router_latency(a, b) for a, b in pairs]
        for b, a in zip(before, after):
            assert a >= b - 1e-9

    def test_massive_failure_partitions(self):
        topo = UnderlayTopology(routers=60, rng=5)
        overlay_ids = list(range(20))
        topo.attach_overlay_nodes(overlay_ids)
        assert topo.partition_fraction(overlay_ids) == 0.0
        topo.fail_random_links(int(topo.links * 0.8))
        assert topo.partition_fraction(overlay_ids) > 0.0

    def test_partitioned_hop_is_infinite(self):
        topo = UnderlayTopology(routers=20, rng=5)
        overlay_ids = list(range(10))
        topo.attach_overlay_nodes(overlay_ids)
        topo.fail_random_links(topo.links - 1)
        latencies = [
            topo.overlay_hop_latency(a, b)
            for a in overlay_ids
            for b in overlay_ids
            if a != b
        ]
        assert any(math.isinf(v) for v in latencies)

    def test_cannot_cut_more_links_than_exist(self, topology):
        with pytest.raises(ConfigurationError):
            topology.fail_random_links(topology.links + 1)

    def test_single_node_partition_fraction_zero(self, topology):
        topology.attach_overlay_nodes([5])
        assert topology.partition_fraction([5]) == 0.0
