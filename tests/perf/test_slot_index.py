"""SlotIndex edge cases and the arrays-only zero-client engine path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SOSArchitecture
from repro.errors import SimulationError
from repro.perf.fastsim import SlotIndex, encode_deployment, run_fast
from repro.simulation.packet_sim import PacketSimConfig, flood_layer
from repro.sos.deployment import SOSDeployment


class TestSlotIndex:
    def test_round_trips_ids_to_slots(self):
        ids = np.array([42, 7, 99, 13], dtype=np.int64)
        index = SlotIndex(ids)
        assert len(index) == 4
        for slot, node_id in enumerate(ids.tolist()):
            assert node_id in index
            assert index[node_id] == slot
        np.testing.assert_array_equal(
            index.lookup(np.array([99, 7])), [2, 1]
        )

    def test_empty_deployment(self):
        index = SlotIndex(np.empty(0, dtype=np.int64))
        assert len(index) == 0
        assert 5 not in index
        with pytest.raises(KeyError):
            index[5]
        empty = index.lookup(np.empty(0, dtype=np.int64))
        assert empty.shape == (0,)
        with pytest.raises(KeyError):
            index.lookup(np.array([5], dtype=np.int64))

    def test_duplicate_ids_rejected(self):
        with pytest.raises(SimulationError, match="duplicate node id 7"):
            SlotIndex(np.array([3, 7, 11, 7], dtype=np.int64))

    def test_duplicate_ids_rejected_in_wide_fallback(self):
        huge = 2**80
        with pytest.raises(SimulationError, match="duplicate node id"):
            SlotIndex(np.array([huge, 5, huge], dtype=object))

    def test_ids_wider_than_int64_fall_back(self):
        # Raw hash-space names (e.g. 160-bit Chord ids) overflow int64;
        # the index must degrade to dict semantics, not wrap or raise.
        ids = np.array([2**70, 3, 2**64 + 1], dtype=object)
        index = SlotIndex(ids)
        assert len(index) == 3
        assert index[2**70] == 0
        assert index[2**64 + 1] == 2
        assert 2**70 in index
        assert 2**71 not in index
        with pytest.raises(KeyError):
            index[12]
        np.testing.assert_array_equal(
            index.lookup(np.array([3, 2**70], dtype=object)), [1, 0]
        )
        with pytest.raises(KeyError):
            index.lookup(np.array([2**70, 999], dtype=object))

    def test_uint64_above_int64_max_falls_back(self):
        ids = np.array([np.iinfo(np.int64).max + 10, 4], dtype=np.uint64)
        index = SlotIndex(ids)
        assert index[int(np.iinfo(np.int64).max) + 10] == 0
        assert index[4] == 1

    def test_lookup_preserves_shape(self):
        index = SlotIndex(np.array([10, 20, 30], dtype=np.int64))
        grid = np.array([[30, 10], [20, 20]], dtype=np.int64)
        np.testing.assert_array_equal(
            index.lookup(grid), [[2, 0], [1, 1]]
        )


class TestZeroClientArraysRun:
    def _deployment(self):
        arch = SOSArchitecture(
            layers=3,
            mapping="one-to-half",
            total_overlay_nodes=300,
            sos_nodes=24,
            filters=4,
        )
        return SOSDeployment.deploy(arch, rng=5)

    @pytest.mark.parametrize("tier", ["scalar", "numpy", "compiled"])
    def test_zero_clients_no_contacts(self, tier):
        dep = self._deployment()
        arrays = encode_deployment(dep)
        config = PacketSimConfig(
            duration=10.0, warmup=2.0, clients=0, client_rate=1.0, tier=tier
        )
        report = run_fast(
            None, config, rng=9, client_contacts=[], arrays=arrays
        )
        assert report.sent == 0
        assert report.delivered == 0
        assert report.latency_count == 0

    def test_zero_clients_flooded_still_congests(self):
        dep = self._deployment()
        targets = flood_layer(dep, layer=1, fraction=0.5, rng=2)
        arrays = encode_deployment(dep)
        config = PacketSimConfig(
            duration=20.0, warmup=2.0, clients=0, client_rate=1.0,
            flood_rate=150.0,
        )
        report = run_fast(
            None, config, rng=9, flood_targets=targets,
            client_contacts=[], arrays=arrays,
        )
        assert report.sent == 0
        assert report.attack_packets_absorbed > 0
