"""Fast packet engine vs event-driven oracle.

Two tiers of fidelity, mirroring the contract in
:mod:`repro.perf.fastsim`:

* both engines consume the same per-source RNG sub-streams, so the
  injection schedules (``sent``, ``attack_packets_absorbed``) are
  *bit-identical* on every matched seed, and any run in which no
  packet drops — the degenerate single-packet scenario included —
  yields a report that is identical field for field;
* flooded scenarios are *statistically equivalent* on matched seed
  sets — delivery ratio, per-layer drop mass, and mean latency agree
  within confidence-interval-scale bounds, because the fast path
  approximates next-hop congestion from timelines rather than the
  exact per-packet interleaving.
"""

from __future__ import annotations

import dataclasses
import math

import pytest

from repro.core import SOSArchitecture
from repro.errors import SimulationError
from repro.perf.fastsim import (
    mean_delivery_ratio,
    run_packet_replicas,
)
from repro.simulation.packet_sim import (
    PacketLevelSimulation,
    PacketSimConfig,
    flood_layer,
)
from repro.sos.deployment import SOSDeployment


def deployment(seed=11):
    arch = SOSArchitecture(
        layers=3,
        mapping="one-to-half",
        total_overlay_nodes=400,
        sos_nodes=30,
        filters=4,
    )
    return SOSDeployment.deploy(arch, rng=seed)


def run_both(config, seed, targets=None):
    dep = deployment()
    event = PacketLevelSimulation(dep, config, rng=seed).run(
        flood_targets=targets, fast=False
    )
    fast = PacketLevelSimulation(dep, config, rng=seed).run(
        flood_targets=targets, fast=True
    )
    return event, fast


class TestDegenerateBitIdentity:
    # At most one packet is ever in flight, so RNG consumption order
    # cannot matter: the reports must be equal field for field.
    CONFIG = PacketSimConfig(
        duration=8.0, warmup=5.0, clients=1, client_rate=0.4
    )

    @pytest.mark.parametrize("seed", range(30))
    def test_single_packet_reports_identical(self, seed):
        event, fast = run_both(self.CONFIG, seed)
        assert dataclasses.asdict(event) == dataclasses.asdict(fast)

    def test_single_packet_with_flood_identical(self):
        dep = deployment()
        targets = flood_layer(dep, layer=1, fraction=0.5, rng=3)
        for seed in range(10):
            event = PacketLevelSimulation(dep, self.CONFIG, rng=seed).run(
                flood_targets=targets, fast=False
            )
            fast = PacketLevelSimulation(dep, self.CONFIG, rng=seed).run(
                flood_targets=targets, fast=True
            )
            assert event.sent == fast.sent
            assert event.attack_packets_absorbed == fast.attack_packets_absorbed
            assert event.delivered == fast.delivered


class TestStatisticalEquivalence:
    CONFIG = PacketSimConfig(
        duration=12.0, warmup=2.0, clients=6, client_rate=2.0
    )
    SEEDS = range(40)

    @staticmethod
    def _mean_and_sem(values):
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / max(1, len(values) - 1)
        return mean, math.sqrt(var / len(values))

    def test_healthy_runs_match_exactly(self):
        # With no flood nothing ever drops, and a no-drop run is
        # bit-identical by contract: routing choices cannot affect any
        # report field when every packet survives every hop.
        for seed in (0, 1, 2):
            event, fast = run_both(self.CONFIG, seed)
            assert event.delivery_ratio == 1.0
            assert dataclasses.asdict(event) == dataclasses.asdict(fast)

    def test_flooded_delivery_ratio_within_ci(self):
        dep = deployment()
        targets = flood_layer(dep, layer=1, fraction=0.5, rng=3)
        event_ratios, fast_ratios = [], []
        for seed in self.SEEDS:
            event = PacketLevelSimulation(dep, self.CONFIG, rng=seed).run(
                flood_targets=targets, fast=False
            )
            fast = PacketLevelSimulation(dep, self.CONFIG, rng=seed).run(
                flood_targets=targets, fast=True
            )
            event_ratios.append(event.delivery_ratio)
            fast_ratios.append(fast.delivery_ratio)
        event_mean, event_sem = self._mean_and_sem(event_ratios)
        fast_mean, fast_sem = self._mean_and_sem(fast_ratios)
        # Matched seed sets: means must sit within a 3-sigma band of the
        # combined standard error.
        band = 3.0 * math.sqrt(event_sem**2 + fast_sem**2) + 1e-9
        assert abs(event_mean - fast_mean) <= band

    def test_flooded_drop_structure_matches(self):
        dep = deployment()
        targets = flood_layer(dep, layer=1, fraction=0.5, rng=3)
        event_total = {}
        fast_total = {}
        for seed in range(10):
            event = PacketLevelSimulation(dep, self.CONFIG, rng=seed).run(
                flood_targets=targets, fast=False
            )
            fast = PacketLevelSimulation(dep, self.CONFIG, rng=seed).run(
                flood_targets=targets, fast=True
            )
            for layer, count in event.drops_per_layer.items():
                event_total[layer] = event_total.get(layer, 0) + count
            for layer, count in fast.drops_per_layer.items():
                fast_total[layer] = fast_total.get(layer, 0) + count
            assert event.bottleneck_layer() == fast.bottleneck_layer()
        # Both engines concentrate drops at the flooded entry layer.
        assert max(event_total, key=event_total.get) == 1
        assert max(fast_total, key=fast_total.get) == 1

    def test_congested_node_sets_agree(self):
        dep = deployment()
        targets = flood_layer(dep, layer=1, fraction=0.5, rng=3)
        event, fast = run_both(self.CONFIG, 0, targets=targets)
        # Flooded nodes saturate under either engine.
        assert set(targets) <= set(event.congested_nodes)
        assert set(targets) <= set(fast.congested_nodes)


class TestReplicaDispatcher:
    CONFIG = PacketSimConfig(
        duration=10.0, warmup=2.0, clients=4, client_rate=2.0
    )
    ARCH = SOSArchitecture(
        layers=3,
        mapping="one-to-half",
        total_overlay_nodes=400,
        sos_nodes=30,
        filters=4,
    )

    def test_serial_and_parallel_bit_identical(self):
        kwargs = dict(
            flood_layer_index=1, flood_fraction=0.5, seed=123, fast=True
        )
        serial = run_packet_replicas(
            self.ARCH, self.CONFIG, replicas=4, workers=1, **kwargs
        )
        parallel = run_packet_replicas(
            self.ARCH, self.CONFIG, replicas=4, workers=2, **kwargs
        )
        assert len(serial) == len(parallel) == 4
        for a, b in zip(serial, parallel):
            assert dataclasses.asdict(a) == dataclasses.asdict(b)

    def test_mean_delivery_ratio_helper(self):
        reports = run_packet_replicas(
            self.ARCH, self.CONFIG, replicas=3, seed=5, workers=1
        )
        value = mean_delivery_ratio(reports)
        assert value == pytest.approx(
            sum(r.delivery_ratio for r in reports) / 3
        )
        with pytest.raises(SimulationError):
            mean_delivery_ratio([])

    def test_event_engine_replicas_supported(self):
        fast = run_packet_replicas(
            self.ARCH, self.CONFIG, replicas=2, seed=9, workers=1, fast=True
        )
        event = run_packet_replicas(
            self.ARCH, self.CONFIG, replicas=2, seed=9, workers=1, fast=False
        )
        # Same deployments, no flood: both deliver everything.
        assert all(r.delivery_ratio == 1.0 for r in fast)
        assert all(r.delivery_ratio == 1.0 for r in event)
        assert [r.sent for r in fast] == [r.sent for r in event]
