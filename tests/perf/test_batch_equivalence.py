"""Batch-vs-scalar equivalence: the vectorized kernels against the oracle.

The scalar analytical kernels in ``repro.core`` stay authoritative; the
numpy batch kernels in ``repro.perf.batch`` must agree with them to
within 1e-12 on every grid point (they typically agree bit-for-bit — the
batch code replicates the scalar operation order).
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import (
    OneBurstAttack,
    SOSArchitecture,
    SuccessiveAttack,
    evaluate,
)
from repro.core.probability import all_bad_probability, hop_success_probability
from repro.errors import AnalysisError, ExperimentError
from repro.perf import (
    all_bad_probability_batch,
    evaluate_batch,
    hop_success_probability_batch,
)
from tests.conftest import architectures_grid, attacks_grid

TOLERANCE = 1e-12


class TestAllBadKernel:
    @given(
        x=st.floats(min_value=1.0, max_value=1e6),
        y=st.floats(min_value=-10.0, max_value=1.2e6),
        z=st.integers(min_value=0, max_value=64),
    )
    def test_matches_scalar(self, x, y, z):
        if z > x:
            return
        batch = all_bad_probability_batch([x], [y], [z])
        assert abs(float(batch[0]) - all_bad_probability(x, y, z)) <= TOLERANCE

    def test_broadcasts(self):
        x = np.full((3, 4), 100.0)
        y = np.linspace(0.0, 50.0, 4)
        batch = all_bad_probability_batch(x, y, 5)
        assert batch.shape == (3, 4)
        for column in range(4):
            expected = all_bad_probability(100.0, float(y[column]), 5)
            assert abs(float(batch[0, column]) - expected) <= TOLERANCE

    def test_hop_success_matches_scalar(self):
        batch = hop_success_probability_batch([50.0, 50.0], [10.0, 49.0], [3, 3])
        for index, (s, m) in enumerate(((10.0, 3), (49.0, 3))):
            expected = hop_success_probability(50.0, s, m)
            assert abs(float(batch[index]) - expected) <= TOLERANCE

    @pytest.mark.parametrize(
        "x, y, z",
        [
            ([0.0], [1.0], [1]),       # non-positive population
            ([-3.0], [1.0], [1]),
            ([float("nan")], [1.0], [1]),
            ([10.0], [1.0], [-1]),     # negative sample
            ([10.0], [1.0], [1.5]),    # non-integral sample
            ([10.0], [1.0], [11]),     # sample exceeds population
        ],
    )
    def test_rejects_invalid_inputs(self, x, y, z):
        with pytest.raises(AnalysisError):
            all_bad_probability_batch(x, y, z)


class TestEvaluateBatch:
    def test_full_grid_matches_scalar_oracle(self):
        architectures, attacks = [], []
        for architecture in architectures_grid():
            for attack in attacks_grid():
                architectures.append(architecture)
                attacks.append(attack)
        batch = evaluate_batch(architectures, attacks)
        assert batch.shape == (len(architectures),)
        for index, (architecture, attack) in enumerate(zip(architectures, attacks)):
            scalar = evaluate(architecture, attack).p_s
            assert abs(float(batch[index]) - scalar) <= TOLERANCE, (
                f"{architecture.describe()} / {attack!r}: "
                f"batch {float(batch[index])!r} != scalar {scalar!r}"
            )

    def test_empty_batch(self):
        assert evaluate_batch([], []).shape == (0,)

    def test_length_mismatch_raises(self):
        arch = SOSArchitecture(layers=2, mapping="one-to-two")
        with pytest.raises(ExperimentError, match="equal lengths"):
            evaluate_batch([arch, arch], [OneBurstAttack()])

    def test_infeasible_budget_falls_back_to_scalar_error(self):
        arch = SOSArchitecture(layers=2, mapping="one-to-two")
        huge = OneBurstAttack(break_in_budget=arch.total_overlay_nodes + 1)
        scalar_error = None
        try:
            evaluate(arch, huge)
        except Exception as exc:  # noqa: BLE001 — capturing the oracle error
            scalar_error = exc
        assert scalar_error is not None
        with pytest.raises(type(scalar_error)):
            evaluate_batch([arch], [huge])

    def test_attack_subclass_uses_scalar_path(self):
        @dataclasses.dataclass(frozen=True)
        class TaggedBurst(OneBurstAttack):
            pass

        arch = SOSArchitecture(layers=3, mapping="one-to-half")
        attack = TaggedBurst(break_in_budget=100, congestion_budget=1000)
        batch = evaluate_batch([arch], [attack])
        assert float(batch[0]) == evaluate(arch, attack).p_s

    def test_mixed_models_and_layer_counts(self):
        architectures = [
            SOSArchitecture(layers=1, mapping="one-to-one"),
            SOSArchitecture(layers=5, mapping="one-to-five"),
            SOSArchitecture(layers=3, mapping="one-to-half"),
        ]
        attacks = [
            SuccessiveAttack(rounds=4, prior_knowledge=0.3),
            OneBurstAttack(break_in_budget=500, congestion_budget=3000),
            SuccessiveAttack(break_in_budget=2000, congestion_budget=100),
        ]
        batch = evaluate_batch(architectures, attacks)
        for index in range(3):
            scalar = evaluate(architectures[index], attacks[index]).p_s
            assert abs(float(batch[index]) - scalar) <= TOLERANCE
