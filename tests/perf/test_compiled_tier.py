"""Engine-level tier contracts: scalar / numpy / compiled equality.

The tier knob (``PacketSimConfig.tier``, ``TrafficMonitor(tier=...)``)
is documented as a pure speed selector: on the same seeds and the same
(possibly churned) deployment, every tier must produce the *same
report* — injection schedules, drop decisions, congested-node sets,
latency statistics, detector flag sequences. These tests run the full
engines at every available tier and require field-for-field equality,
plus the graceful-degradation path when no compiled backend exists.
"""

from __future__ import annotations

import dataclasses
import warnings

import numpy as np
import pytest

from repro.core import SOSArchitecture
from repro.detection.monitor import MonitorConfig, TrafficMonitor
from repro.errors import DetectionError
from repro.overlay.arrays import HEALTH_COMPROMISED, HEALTH_CRASHED
from repro.perf import compiled
from repro.perf.compiled import (
    CompiledTierUnavailableWarning,
    available_tiers,
    compiled_backend,
    resolve_tier,
)
from repro.perf.fastsim import run_fast, run_packet_replicas
from repro.simulation.packet_sim import PacketSimConfig, flood_layer
from repro.sos.deployment import SOSDeployment


def deployment(seed=11, nodes=400, sos_nodes=30):
    arch = SOSArchitecture(
        layers=3,
        mapping="one-to-half",
        total_overlay_nodes=nodes,
        sos_nodes=sos_nodes,
        filters=4,
    )
    return SOSDeployment.deploy(arch, rng=seed)


def churn(dep, seed, fraction=0.1):
    """Knock out a random slice of overlay nodes (compromise + crash)."""
    rng = np.random.default_rng(seed)
    store = dep.network.store
    rows = len(store.health)
    hit = rng.choice(rows, size=max(1, int(rows * fraction)), replace=False)
    for index, row in enumerate(hit):
        store.set_health(
            int(row),
            HEALTH_COMPROMISED if index % 2 == 0 else HEALTH_CRASHED,
        )
    return dep


def run_at(tier, seed, *, targets=False, clients=40, dep_seed=11,
           churn_seed=None):
    dep = deployment(dep_seed)
    if churn_seed is not None:
        churn(dep, churn_seed)
    flood = (
        flood_layer(dep, layer=1, fraction=0.5, rng=3) if targets else None
    )
    config = PacketSimConfig(
        duration=20.0,
        warmup=5.0,
        clients=clients,
        client_rate=0.8,
        flood_rate=120.0,
        tier=tier,
    )
    return run_fast(dep, config, rng=seed, flood_targets=flood)


class TestPacketEngineTierEquality:
    @pytest.mark.parametrize("seed", range(5))
    def test_no_drop_runs_identical(self, seed):
        reports = [
            dataclasses.asdict(run_at(tier, seed))
            for tier in available_tiers()
        ]
        for other in reports[1:]:
            assert other == reports[0]

    @pytest.mark.parametrize("seed", range(5))
    def test_flooded_churned_runs_identical(self, seed):
        reports = {
            tier: dataclasses.asdict(
                run_at(tier, seed, targets=True, churn_seed=seed + 50)
            )
            for tier in available_tiers()
        }
        baseline = reports.pop("numpy")
        assert baseline["sent"] > 0
        for tier, report in reports.items():
            assert report == baseline, f"tier {tier!r} diverged"

    def test_zero_clients_identical(self):
        reports = [
            dataclasses.asdict(
                run_at(tier, 0, targets=True, clients=0)
            )
            for tier in available_tiers()
        ]
        assert reports[0]["sent"] == 0
        for other in reports[1:]:
            assert other == reports[0]

    @pytest.mark.skipif(
        compiled_backend() is None,
        reason="no compiled backend available",
    )
    def test_replica_sweep_tier_identical(self):
        arch = SOSArchitecture(
            layers=3, mapping="one-to-half", total_overlay_nodes=400,
            sos_nodes=30, filters=4,
        )
        results = {}
        for tier in ("numpy", "compiled"):
            config = PacketSimConfig(
                duration=15.0, warmup=5.0, clients=30, client_rate=0.8,
                flood_rate=100.0, tier=tier,
            )
            reports = run_packet_replicas(
                arch, config, replicas=3, flood_layer_index=1,
                flood_fraction=0.5, seed=17, workers=1,
            )
            results[tier] = [dataclasses.asdict(r) for r in reports]
        assert results["numpy"] == results["compiled"]


def _monitor_stream(seed, nodes=40, offers=4000, horizon=40.0):
    rng = np.random.default_rng(seed)
    node_ids = rng.integers(0, nodes, size=offers).astype(np.int64)
    times = np.sort(rng.random(offers) * horizon)
    accepted = rng.random(offers) < 0.9
    # Step up load on a subset mid-run so some detectors actually fire.
    late = times > horizon / 2.0
    surge = node_ids % 3 == 0
    extra = late & surge
    node_ids = np.concatenate([node_ids, np.repeat(node_ids[extra], 2)])
    times = np.concatenate([times, np.repeat(times[extra], 2)])
    accepted = np.concatenate(
        [accepted, np.ones(int(extra.sum()) * 2, dtype=bool)]
    )
    return node_ids, times, accepted


class TestMonitorTierEquality:
    @pytest.mark.parametrize("method", ["cusum", "ewma"])
    @pytest.mark.parametrize("seed", range(4))
    def test_flag_sequences_identical(self, method, seed):
        # EWMA smooths the surge away at the default h=8; a lower
        # threshold keeps both detectors firing on this workload.
        config = MonitorConfig(
            bin_width=0.5, warmup_bins=2, baseline_bins=6, method=method,
            threshold=8.0 if method == "cusum" else 2.0,
        )
        stream = _monitor_stream(seed)
        outcomes = {}
        for tier in available_tiers():
            monitor = TrafficMonitor(config, tier=tier)
            monitor.observe_batch(*stream)
            outcomes[tier] = (
                monitor.detection_bins(),
                monitor.flagged_nodes(),
            )
        baseline_bins, baseline_flagged = outcomes.pop("scalar")
        assert any(
            value is not None for value in baseline_bins.values()
        ), "workload produced no detections — test is vacuous"
        for tier, (bins, flagged) in outcomes.items():
            assert bins == baseline_bins, f"tier {tier!r} diverged"
            assert flagged == baseline_flagged

    def test_batched_agrees_with_per_node_scan(self):
        config = MonitorConfig(bin_width=0.5, warmup_bins=2, baseline_bins=6)
        monitor = TrafficMonitor(config, tier="numpy")
        monitor.observe_batch(*_monitor_stream(99))
        batched = monitor.detection_bins()
        for node_id, bin_index in batched.items():
            assert monitor.detection_bin(node_id) == bin_index

    def test_invalid_tier_rejected(self):
        with pytest.raises(DetectionError):
            TrafficMonitor(MonitorConfig(), tier="turbo")


class TestDegradation:
    """tier='compiled' with no backend: warn once, run numpy, same bits."""

    @pytest.fixture()
    def no_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_COMPILED_BACKEND", "none")
        compiled._reset_for_tests()
        yield
        monkeypatch.delenv("REPRO_COMPILED_BACKEND", raising=False)
        compiled._reset_for_tests()

    def test_warns_once_and_degrades(self, no_backend):
        assert available_tiers() == ("scalar", "numpy")
        with pytest.warns(CompiledTierUnavailableWarning):
            assert resolve_tier("compiled") == "numpy"
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_tier("compiled") == "numpy"  # silent now

    def test_compiled_request_matches_numpy_report(self, no_backend):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", CompiledTierUnavailableWarning)
            degraded = run_at("compiled", 2, targets=True)
        expected = run_at("numpy", 2, targets=True)
        assert dataclasses.asdict(degraded) == dataclasses.asdict(expected)

    def test_forced_backend_env_respected(self, monkeypatch):
        monkeypatch.setenv("REPRO_COMPILED_BACKEND", "cc")
        compiled._reset_for_tests()
        try:
            backend = compiled_backend()
            assert backend in ("cc", None)  # None: no C toolchain here
        finally:
            monkeypatch.delenv("REPRO_COMPILED_BACKEND", raising=False)
            compiled._reset_for_tests()
