"""Shared-deployment replica sharding over ``multiprocessing.shared_memory``.

``run_packet_replicas(..., deployment=...)`` runs every replica over one
pre-encoded deployment instead of deploying per replica; across worker
processes the encoding travels as a single shared-memory segment mapped
read-only. The contracts under test: worker-count invariance (reports
are bit-identical for any ``workers`` value, shared segment or not),
agreement between the shared path and per-replica fresh deployments
given identical deployment state, and the validation surface.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core import SOSArchitecture
from repro.errors import SimulationError
from repro.perf.fastsim import run_packet_replicas
from repro.simulation.packet_sim import PacketSimConfig
from repro.sos.deployment import SOSDeployment

ARCH = SOSArchitecture(
    layers=3,
    mapping="one-to-half",
    total_overlay_nodes=400,
    sos_nodes=30,
    filters=4,
)
CONFIG = PacketSimConfig(duration=10.0, warmup=2.0, clients=4, client_rate=2.0)


def shared_deployment(seed=11):
    return SOSDeployment.deploy(ARCH, rng=seed)


class TestWorkerInvariance:
    def test_serial_and_parallel_bit_identical(self):
        dep = shared_deployment()
        kwargs = dict(
            flood_layer_index=1,
            flood_fraction=0.5,
            seed=123,
            fast=True,
            deployment=dep,
        )
        serial = run_packet_replicas(
            ARCH, CONFIG, replicas=4, workers=1, **kwargs
        )
        parallel = run_packet_replicas(
            ARCH, CONFIG, replicas=4, workers=3, **kwargs
        )
        assert len(serial) == len(parallel) == 4
        for a, b in zip(serial, parallel):
            assert dataclasses.asdict(a) == dataclasses.asdict(b)

    def test_replicas_differ_from_each_other(self):
        # One shared deployment, distinct replica streams: flood targets
        # and client draws vary, so flooded replicas are not clones.
        reports = run_packet_replicas(
            ARCH,
            CONFIG,
            replicas=4,
            workers=1,
            flood_layer_index=1,
            flood_fraction=0.5,
            seed=7,
            deployment=shared_deployment(),
        )
        assert len({report.delivery_ratio for report in reports}) > 1


class TestSharedStateSemantics:
    def test_health_snapshot_is_honored(self):
        # Crashing the whole first layer before sharing must collapse
        # delivery in every replica: the shared is_bad snapshot carries
        # the damage, with no flood needed.
        dep = shared_deployment()
        for node_id in dep.layer_members(1):
            dep.resolve(node_id).crash()
        reports = run_packet_replicas(
            ARCH, CONFIG, replicas=2, workers=1, seed=3, deployment=dep
        )
        assert all(report.delivery_ratio == 0.0 for report in reports)

    def test_healthy_shared_deployment_delivers_everything(self):
        reports = run_packet_replicas(
            ARCH, CONFIG, replicas=3, workers=1, seed=5,
            deployment=shared_deployment(),
        )
        assert all(report.delivery_ratio == 1.0 for report in reports)
        assert all(report.sent > 0 for report in reports)


class TestValidation:
    def test_shared_mode_requires_fast_engine(self):
        with pytest.raises(SimulationError):
            run_packet_replicas(
                ARCH,
                CONFIG,
                replicas=2,
                fast=False,
                deployment=shared_deployment(),
            )

    def test_architecture_mismatch_rejected(self):
        other = SOSArchitecture(
            layers=3,
            mapping="one-to-half",
            total_overlay_nodes=200,
            sos_nodes=24,
            filters=4,
        )
        dep = SOSDeployment.deploy(other, rng=1)
        with pytest.raises(SimulationError):
            run_packet_replicas(ARCH, CONFIG, replicas=2, deployment=dep)
