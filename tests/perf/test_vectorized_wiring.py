"""The sweep/design-space/figure layers must give identical results
through the vectorized path and the scalar oracle."""

from __future__ import annotations

import math

from repro.core import OneBurstAttack, SOSArchitecture, SuccessiveAttack
from repro.core.design_space import enumerate_designs, evaluate_designs
from repro.experiments.sweep import architecture_sweep, attack_sweep, grid_sweep

TOLERANCE = 1e-12

ARCH = SOSArchitecture(layers=4, mapping="one-to-two")
SUCCESSIVE = SuccessiveAttack(
    break_in_budget=200, congestion_budget=2000, rounds=3, prior_knowledge=0.2
)


def _assert_close(vector_values, scalar_values):
    assert len(vector_values) == len(scalar_values)
    for vector_value, scalar_value in zip(vector_values, scalar_values):
        if math.isnan(scalar_value):
            assert math.isnan(vector_value)
        else:
            assert abs(vector_value - scalar_value) <= TOLERANCE


class TestSweepEquivalence:
    def test_attack_sweep(self):
        values = [0, 100, 500, 1000, 2000]
        fast = attack_sweep(ARCH, SUCCESSIVE, "break_in_budget", values)
        slow = attack_sweep(
            ARCH, SUCCESSIVE, "break_in_budget", values, vectorized=False
        )
        _assert_close(fast.p_s, slow.p_s)

    def test_architecture_sweep(self):
        values = [1, 2, 3, 5, 8]
        fast = architecture_sweep(ARCH, SUCCESSIVE, "layers", values)
        slow = architecture_sweep(
            ARCH, SUCCESSIVE, "layers", values, vectorized=False
        )
        _assert_close(fast.p_s, slow.p_s)

    def test_grid_sweep(self):
        burst = OneBurstAttack(break_in_budget=200, congestion_budget=2000)
        fast = grid_sweep(
            ARCH, burst, "layers", [1, 3, 5], "congestion_budget",
            [0, 2000, 6000],
        )
        slow = grid_sweep(
            ARCH, burst, "layers", [1, 3, 5], "congestion_budget",
            [0, 2000, 6000], vectorized=False,
        )
        assert fast.row_values == slow.row_values
        assert fast.column_values == slow.column_values
        for fast_row, slow_row in zip(fast.p_s, slow.p_s):
            _assert_close(fast_row, slow_row)


class TestDesignSpaceEquivalence:
    def test_evaluate_designs(self):
        designs = enumerate_designs(layers=range(1, 5))
        scenarios = {
            "burst": OneBurstAttack(break_in_budget=200, congestion_budget=2000),
            "successive": SUCCESSIVE,
        }
        fast = evaluate_designs(designs, scenarios, aggregate="min")
        slow = evaluate_designs(
            designs, scenarios, aggregate="min", vectorized=False
        )
        assert [score.label for score in fast] == [score.label for score in slow]
        for fast_score, slow_score in zip(fast, slow):
            assert abs(fast_score.aggregate - slow_score.aggregate) <= TOLERANCE
            for name in scenarios:
                assert (
                    abs(
                        fast_score.per_scenario[name]
                        - slow_score.per_scenario[name]
                    )
                    <= TOLERANCE
                )
