"""Kernel-level bit-identity: compiled backends vs the numpy oracles.

Every compiled kernel (token-bucket Lindley replay, congestion
timelines, fused congestion-aware routing, Welford fold, CUSUM/EWMA
scan) must reproduce its interpreter-tier oracle *exactly* — same
accept/drop decisions, same flags, same IEEE doubles — because the
compiled tier is documented as a pure speed knob. These tests replay
randomized workloads through both implementations and require equality,
not closeness.

Skipped wholesale when no compiled backend (numba or the bundled C
kernels) is usable in this environment; `tests/perf/test_compiled_tier.py`
covers the degradation path itself.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.perf.compiled import (
    CongestionTable,
    _detect_bins_numpy,
    compiled_backend,
    get_kernels,
)
from repro.perf.fastsim import (
    _congested_at,
    _congestion_timelines,
    _grouped_bucket_scan,
    _route_uniform,
    _scalar_bucket_scan,
)

pytestmark = pytest.mark.skipif(
    compiled_backend() is None,
    reason="no compiled backend (numba or cc) available",
)


@pytest.fixture(scope="module")
def kernels():
    kernel_set = get_kernels("compiled")
    assert kernel_set is not None
    return kernel_set


def _random_events(rng, m, n, horizon=50.0):
    """Flat (slots, times) event arrays with hot and cold slots mixed."""
    # Zipf-ish slot choice so some buckets saturate (run-skip path) while
    # others stay in the closed-form all-accept regime.
    weights = 1.0 / np.arange(1, m + 1)
    weights /= weights.sum()
    slots = rng.choice(m, size=n, p=weights).astype(np.int64)
    times = rng.uniform(0.0, horizon, size=n)
    return slots, np.sort(times)


class TestBucketScan:
    @pytest.mark.parametrize("seed", range(25))
    def test_matches_numpy_oracle(self, kernels, seed):
        rng = np.random.default_rng(seed)
        m = int(rng.integers(1, 40))
        n = int(rng.integers(1, 400))
        capacity = float(rng.uniform(0.2, 20.0))
        burst = float(np.ceil(rng.uniform(1.0, 12.0)))
        slots, times = _random_events(rng, m, n)
        if seed % 3 == 0:  # accept must align with *input* order
            perm = rng.permutation(n)
            slots, times = slots[perm], times[perm]
        expected = _grouped_bucket_scan(slots, times, capacity, burst)
        got = kernels.bucket_scan(slots, times, m, capacity, burst)
        for ours, theirs in zip(got, expected):
            np.testing.assert_array_equal(ours, theirs)

    @pytest.mark.parametrize("seed", range(10))
    def test_scalar_tier_agrees(self, seed):
        rng = np.random.default_rng(1000 + seed)
        m = int(rng.integers(1, 20))
        n = int(rng.integers(1, 200))
        capacity = float(rng.uniform(0.2, 10.0))
        burst = float(np.ceil(rng.uniform(1.0, 8.0)))
        slots, times = _random_events(rng, m, n)
        expected = _grouped_bucket_scan(slots, times, capacity, burst)
        got = _scalar_bucket_scan(slots, times, capacity, burst)
        for ours, theirs in zip(got, expected):
            np.testing.assert_array_equal(ours, theirs)

    def test_empty_events(self, kernels):
        slots = np.zeros(0, dtype=np.int64)
        times = np.zeros(0, dtype=np.float64)
        accept, unique_slots, accepted, dropped = kernels.bucket_scan(
            slots, times, 5, 1.0, 3.0
        )
        assert len(accept) == 0
        assert len(unique_slots) == 0
        assert len(accepted) == 0
        assert len(dropped) == 0


class TestTimelineTable:
    @pytest.mark.parametrize("seed", range(20))
    def test_matches_dict_timelines(self, kernels, seed):
        rng = np.random.default_rng(200 + seed)
        m = int(rng.integers(1, 30))
        n = int(rng.integers(1, 300))
        capacity = float(rng.uniform(0.2, 5.0))
        burst = float(np.ceil(rng.uniform(1.0, 6.0)))
        slots, times = _random_events(rng, m, n)
        table = kernels.timeline_table(slots, times, m, capacity, burst)
        timelines = _congestion_timelines(slots, times, capacity, burst)
        assert table.offsets.shape == (m + 1,)
        assert int(table.offsets[-1]) == n
        for slot in range(m):
            lo, hi = int(table.offsets[slot]), int(table.offsets[slot + 1])
            if slot not in timelines:
                assert lo == hi
                continue
            node_times, node_flags = timelines[slot]
            np.testing.assert_array_equal(table.times[lo:hi], node_times)
            np.testing.assert_array_equal(
                table.flags[lo:hi].astype(bool), node_flags
            )

    def test_empty_is_empty(self, kernels):
        table = kernels.timeline_table(
            np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.float64),
            7, 1.0, 2.0,
        )
        assert int(table.offsets[-1]) == 0
        assert len(table.times) == 0


class TestRoute:
    @pytest.mark.parametrize("seed", range(25))
    def test_matches_two_step_numpy(self, kernels, seed):
        rng = np.random.default_rng(300 + seed)
        m = int(rng.integers(2, 40))
        rows = int(rng.integers(1, 120))
        cols = int(rng.integers(1, 8))
        capacity = float(rng.uniform(0.2, 3.0))
        burst = float(np.ceil(rng.uniform(1.0, 4.0)))
        slots, times = _random_events(rng, m, int(rng.integers(0, 250)))
        table = kernels.timeline_table(slots, times, m, capacity, burst)
        timelines = _congestion_timelines(slots, times, capacity, burst)

        u = rng.random(rows)
        nbr = rng.integers(0, m, size=(rows, cols)).astype(np.int64)
        healthy = rng.random((rows, cols)) < 0.8
        decision_t = rng.uniform(0.0, 60.0, size=rows)
        if seed % 2 == 0:
            # The hot engine path: nondecreasing decision times trigger
            # the marching-cursor fast path; odd seeds keep the
            # binary-search fallback honest.
            decision_t = np.sort(decision_t)

        congested = _congested_at(timelines, nbr, decision_t)
        live = healthy & ~congested
        exp_routable, exp_chosen = _route_uniform(u, nbr, live)
        got_routable, got_chosen = kernels.route(
            u, nbr, healthy.astype(np.uint8), decision_t, table
        )
        np.testing.assert_array_equal(got_routable, exp_routable)
        np.testing.assert_array_equal(
            got_chosen[got_routable], exp_chosen[exp_routable]
        )

    def test_no_events_all_healthy(self, kernels):
        table = CongestionTable.empty(4)
        u = np.array([0.0, 0.5, 0.999])
        nbr = np.array([[0, 1], [2, 3], [1, 2]], dtype=np.int64)
        healthy = np.ones((3, 2), dtype=np.uint8)
        decision_t = np.array([1.0, 2.0, 3.0])
        routable, chosen = kernels.route(u, nbr, healthy, decision_t, table)
        assert routable.all()
        np.testing.assert_array_equal(chosen, [0, 3, 2])

    def test_unroutable_rows_flagged(self, kernels):
        table = CongestionTable.empty(3)
        u = np.array([0.3])
        nbr = np.array([[0, 1, 2]], dtype=np.int64)
        healthy = np.zeros((1, 3), dtype=np.uint8)
        decision_t = np.array([5.0])
        routable, _ = kernels.route(u, nbr, healthy, decision_t, table)
        assert not routable.any()


class TestWelford:
    @pytest.mark.parametrize("seed", range(15))
    def test_matches_streaming_fold(self, kernels, seed):
        rng = np.random.default_rng(400 + seed)
        values = rng.uniform(0.0, 10.0, size=int(rng.integers(0, 500)))
        count, mean, m2, maxv = (
            int(rng.integers(0, 5)),
            float(rng.uniform(0.0, 5.0)),
            float(rng.uniform(0.0, 2.0)),
            float(rng.uniform(0.0, 8.0)),
        )
        if count == 0:
            mean, m2 = 0.0, 0.0
        exp_count, exp_mean, exp_m2, exp_max = count, mean, m2, maxv
        for value in values.tolist():
            exp_count += 1
            delta = value - exp_mean
            exp_mean += delta / exp_count
            exp_m2 += delta * (value - exp_mean)
            if value > exp_max:
                exp_max = value
        got = kernels.welford(values, count, mean, m2, maxv)
        assert got == (exp_count, exp_mean, exp_m2, exp_max)


class TestDetect:
    @pytest.mark.parametrize("method", ["cusum", "ewma"])
    @pytest.mark.parametrize("seed", range(10))
    def test_matches_numpy_scan(self, kernels, method, seed):
        rng = np.random.default_rng(500 + seed)
        rows = int(rng.integers(1, 50))
        bins = int(rng.integers(1, 60))
        base_end = int(rng.integers(0, bins))
        series = rng.poisson(8.0, size=(rows, bins)).astype(np.float64)
        # Inject a step on half the rows so both outcomes occur.
        series[::2, bins // 2:] += rng.uniform(5.0, 30.0)
        means = rng.uniform(2.0, 12.0, size=rows)
        sigmas = rng.uniform(0.5, 4.0, size=rows)
        threshold = float(rng.uniform(1.0, 8.0))
        drift = float(rng.uniform(0.0, 1.5))
        alpha = float(rng.uniform(0.05, 0.9))
        expected = _detect_bins_numpy(
            series, means, sigmas, base_end, method, threshold, drift, alpha
        )
        got = kernels.detect_bins(
            series, means, sigmas, base_end, method, threshold, drift, alpha
        )
        np.testing.assert_array_equal(got, expected)
        assert (expected >= 0).any() or rows < 3  # workload sanity
