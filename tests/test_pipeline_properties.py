"""Property tests over the full executable pipeline.

Hypothesis draws deployment/attack configurations and checks the
end-to-end invariants that no unit test pins individually: attacker
budgets are respected on real node sets, outcome accounting matches the
network census, every disclosed identity really is an SOS node, and the
protocol's forwarding success never exceeds reachability.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.attacks import IntelligentAttacker
from repro.core import SOSArchitecture, SuccessiveAttack
from repro.errors import ConfigurationError
from repro.sos import SOSDeployment, SOSProtocol


@st.composite
def scenario(draw):
    layers = draw(st.integers(min_value=1, max_value=5))
    mapping = draw(
        st.sampled_from(["one-to-one", "one-to-two", "one-to-five", "one-to-half"])
    )
    sos_nodes = draw(st.integers(min_value=max(12, 4 * layers), max_value=60))
    total = draw(st.integers(min_value=200, max_value=800))
    try:
        architecture = SOSArchitecture(
            layers=layers,
            mapping=mapping,
            total_overlay_nodes=max(total, sos_nodes * 4),
            sos_nodes=sos_nodes,
            filters=draw(st.integers(min_value=1, max_value=8)),
        )
    except ConfigurationError:
        return None
    attack = SuccessiveAttack(
        break_in_budget=draw(st.integers(min_value=0, max_value=150)),
        congestion_budget=draw(st.integers(min_value=0, max_value=300)),
        break_in_success=draw(st.sampled_from([0.0, 0.25, 0.5, 1.0])),
        rounds=draw(st.integers(min_value=1, max_value=4)),
        prior_knowledge=draw(st.sampled_from([0.0, 0.2, 0.6])),
    )
    seed = draw(st.integers(min_value=0, max_value=2**16))
    return architecture, attack, seed


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(data=scenario())
def test_executed_attack_invariants(data):
    if data is None:
        return
    architecture, attack, seed = data
    deployment = SOSDeployment.deploy(architecture, rng=seed)
    outcome = IntelligentAttacker().execute(deployment, attack, rng=seed + 1)

    # Budget discipline on real sets.
    assert outcome.break_in_attempts <= round(attack.n_t)
    assert outcome.congestion_spent <= round(attack.n_c)

    # Outcome accounting equals the deployment's own census.
    assert outcome.bad_per_layer() == deployment.bad_counts()

    # Everything the attacker disclosed really is an SOS node or filter.
    sos_ids = {node.node_id for node in deployment.network.sos_nodes}
    assert outcome.knowledge.disclosed <= sos_ids
    filter_ids = set(deployment.filters.filter_ids)
    assert outcome.knowledge.disclosed_filters <= filter_ids

    # Broken nodes never also counted congested.
    for layer, broken in outcome.broken_per_layer.items():
        members = deployment.layer_members(layer)
        recount = sum(
            1
            for node_id in members
            if deployment.resolve(node_id).health.value == "compromised"
        )
        assert recount == broken

    # Forwarding success implies reachability on the damaged system.
    protocol = SOSProtocol(deployment)
    rng = np.random.default_rng(seed + 2)
    for _ in range(5):
        contacts = deployment.sample_client_contacts(rng)
        delivered = protocol.send("c", "t", contacts=contacts, rng=rng).delivered
        if delivered:
            assert protocol.path_exists(contacts)
