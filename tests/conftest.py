"""Shared fixtures and strategy helpers for the test suite."""

from __future__ import annotations

import pytest
from hypothesis import settings

from repro.core import (
    OneBurstAttack,
    SOSArchitecture,
    SuccessiveAttack,
)

# Deterministic property testing: the suite is a reproduction record, so
# the same run must produce the same verdict everywhere.
settings.register_profile("repro", derandomize=True, deadline=None)
settings.load_profile("repro")

#: Paper-default parameter points reused across many tests.
PAPER_N = 10_000
PAPER_SOS_NODES = 100
PAPER_FILTERS = 10

MAPPINGS = ["one-to-one", "one-to-two", "one-to-five", "one-to-half", "one-to-all"]


@pytest.fixture
def paper_architecture():
    """A representative paper configuration: L=3, even, one-to-half."""
    return SOSArchitecture(layers=3, mapping="one-to-half")


@pytest.fixture
def paper_one_burst():
    """Default moderate one-burst attack from Fig. 4."""
    return OneBurstAttack(break_in_budget=200, congestion_budget=2000)


@pytest.fixture
def paper_successive():
    """Default successive attack from §3.2.3."""
    return SuccessiveAttack()


def architectures_grid():
    """A small but diverse grid of architectures for exhaustive checks."""
    grid = []
    for layers in (1, 2, 3, 5, 8):
        for mapping in ("one-to-one", "one-to-five", "one-to-half", "one-to-all"):
            grid.append(SOSArchitecture(layers=layers, mapping=mapping))
    for dist in ("even", "increasing", "decreasing"):
        grid.append(SOSArchitecture(layers=4, mapping="one-to-two", distribution=dist))
    return grid


def attacks_grid():
    """A diverse grid of attacks spanning both models and all regimes."""
    grid = [
        OneBurstAttack(break_in_budget=0, congestion_budget=0),
        OneBurstAttack(break_in_budget=0, congestion_budget=2000),
        OneBurstAttack(break_in_budget=0, congestion_budget=6000),
        OneBurstAttack(break_in_budget=200, congestion_budget=2000),
        OneBurstAttack(break_in_budget=2000, congestion_budget=2000),
        OneBurstAttack(break_in_budget=2000, congestion_budget=10),
        SuccessiveAttack(),
        SuccessiveAttack(rounds=1, prior_knowledge=0.0),
        SuccessiveAttack(rounds=5, prior_knowledge=0.5),
        SuccessiveAttack(break_in_budget=0, congestion_budget=500),
        SuccessiveAttack(break_in_budget=5000, congestion_budget=100, rounds=2),
    ]
    return grid
