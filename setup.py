"""Setuptools shim.

This offline environment has no ``wheel`` package, so PEP 660 editable
installs cannot build; with this shim ``pip install -e . --no-build-isolation``
falls back to the legacy ``setup.py develop`` path, which works offline.
All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
