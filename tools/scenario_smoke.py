#!/usr/bin/env python
"""Scenario-zoo smoke harness: every committed campaign, both engines.

Runs each zoo scenario through the detection→repair loop on the
vectorized fast engine AND the event-driven oracle engine, asserts the
cross-engine contract (identical per-phase sent counts, absorbed attack
packets, and flagged sets — the engines consume one precompiled
injection schedule), and writes the delivery × detection-quality matrix
as JSON. Exits non-zero on any contract violation, any failed run, or a
blown wall-clock budget::

    PYTHONPATH=src python tools/scenario_smoke.py --quick --budget 300 \
        --output scenario-smoke.json

CI runs exactly that (the ``scenario-smoke`` job) and uploads the matrix
as an artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Dict, List

from repro.scenarios.runner import run_scenario
from repro.scenarios.zoo import list_scenarios


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="2 repair phases per campaign instead of 3",
    )
    parser.add_argument(
        "--budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="fail if the whole sweep exceeds this wall-clock budget",
    )
    parser.add_argument(
        "--output",
        default="scenario-smoke.json",
        metavar="PATH",
        help="where to write the matrix JSON (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    phases = 2 if args.quick else 3
    names = list_scenarios()
    if not names:
        print("no zoo scenarios found", file=sys.stderr)
        return 1

    started = time.perf_counter()
    matrix: List[Dict[str, Any]] = []
    violations: List[str] = []
    for name in names:
        row: Dict[str, Any] = {"scenario": name}
        for mode in ("none", "detected"):
            fast = run_scenario(name, mode=mode, phases=phases, engine="fast")
            event = run_scenario(
                name, mode=mode, phases=phases, engine="event"
            )
            identical = (
                fast.sent_per_phase == event.sent_per_phase
                and fast.attack_packets_per_phase
                == event.attack_packets_per_phase
                and fast.flagged_per_phase == event.flagged_per_phase
            )
            if not identical:
                violations.append(
                    f"{name} [{mode}]: fast and event engines disagree "
                    f"(sent {fast.sent_per_phase} vs {event.sent_per_phase}, "
                    f"attack {fast.attack_packets_per_phase} vs "
                    f"{event.attack_packets_per_phase})"
                )
            row[mode] = {
                "fast": fast.to_dict(),
                "event": event.to_dict(),
                "cross_engine_identical": identical,
            }
            print(
                f"{name:22s} {mode:8s} delivery={fast.final_delivery:.4f} "
                f"precision={fast.precision:.2f} recall={fast.recall:.2f} "
                f"cross-engine={'OK' if identical else 'MISMATCH'}"
            )
        matrix.append(row)
    elapsed = time.perf_counter() - started

    payload = {
        "phases": phases,
        "elapsed_seconds": elapsed,
        "scenarios": matrix,
        "violations": violations,
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.output} ({elapsed:.1f}s for {len(names)} scenarios)")

    if violations:
        for message in violations:
            print(f"VIOLATION: {message}", file=sys.stderr)
        return 1
    if args.budget is not None and elapsed > args.budget:
        print(
            f"budget blown: {elapsed:.1f}s > {args.budget:.1f}s",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
