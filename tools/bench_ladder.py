#!/usr/bin/env python3
"""Run the hot-path benchmarks at every available kernel tier.

The perf ladder measures the same four workloads the pytest-benchmark
suite tracks — the 1000-client flooded packet run, 10k Chord lookups,
change-point detection over a large monitor, and the 100k-node scale
run — once per tier (``scalar`` | ``numpy`` | ``compiled``), verifies
that the tiers produce identical results where bit-identity is
promised, and prints a tier x speedup table.

Usage::

    python tools/bench_ladder.py                 # print the table
    python tools/bench_ladder.py --output .bench_ladder.json
    python tools/bench_ladder.py --quick         # 1 round per cell (CI smoke)
    python tools/bench_ladder.py --require-compiled  # fail if degraded

``tools/bench_snapshot.py --ladder .bench_ladder.json`` merges the
report into the next ``BENCH_<n>.json`` as its ``tiers`` block, and
``tools/bench_compare.py`` gates per-tier regressions from there (so a
compiled-tier regression cannot hide behind a numpy improvement).

Chord lookups have no compiled kernel; the ladder maps its natural
implementation pair (per-key ``lookup`` loop vs ``lookup_batch``) onto
the ``scalar``/``numpy`` rungs and reports the ``compiled`` cell as
absent rather than silently re-timing numpy.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

import numpy as np

from repro.core import SOSArchitecture
from repro.detection.monitor import MonitorConfig, TrafficMonitor
from repro.overlay.chord import ChordRing
from repro.perf.compiled import TIERS, available_tiers, compiled_backend
from repro.perf.fastsim import encode_deployment, run_fast
from repro.simulation.packet_sim import PacketSimConfig, flood_layer
from repro.sos.deployment import SOSDeployment

LADDER_VERSION = 1

#: Default timing rounds per (benchmark, tier) cell; best-of is kept.
ROUNDS = 3


# ----------------------------------------------------------------------
# Benchmark definitions
# ----------------------------------------------------------------------
# Each benchmark prepares shared state once, then exposes one callable
# per supported tier returning a comparable result fingerprint; the
# ladder times the callable and asserts fingerprints agree across tiers.


def _prepare_flooded(
    clients: int,
    nodes: int,
    sos_nodes: int,
    filters: int,
    duration: float,
    flood_rate: float = 500.0,
) -> Dict[str, Any]:
    arch = SOSArchitecture(
        layers=3,
        mapping="one-to-half",
        total_overlay_nodes=nodes,
        sos_nodes=sos_nodes,
        filters=filters,
    )
    deployment = SOSDeployment.deploy(arch, rng=7)
    targets = flood_layer(deployment, layer=1, fraction=0.5, rng=2)
    arrays = encode_deployment(deployment)
    contact_rng = np.random.default_rng(123)
    contacts = [
        deployment.sample_client_contacts(contact_rng)
        for _ in range(clients)
    ]
    return {
        "arrays": arrays,
        "targets": targets,
        "contacts": contacts,
        "clients": clients,
        "duration": duration,
        "flood_rate": flood_rate,
    }


def _run_flooded(state: Dict[str, Any], tier: str) -> Tuple[Any, ...]:
    config = PacketSimConfig(
        duration=state["duration"],
        warmup=min(5.0, state["duration"] / 4.0),
        clients=state["clients"],
        client_rate=1.0,
        flood_rate=state["flood_rate"],
        tier=tier,
    )
    report = run_fast(
        None,
        config,
        rng=1,
        flood_targets=state["targets"],
        client_contacts=state["contacts"],
        arrays=state["arrays"],
    )
    return (
        report.sent,
        report.delivered,
        report.dropped_at_congested,
        report.dropped_no_neighbor,
        report.attack_packets_absorbed,
        report.latency_count,
        report.latency_mean,
        report.latency_m2,
        report.max_latency,
        tuple(report.congested_nodes),
    )


def _prepare_chord(bits: int, nodes: int, queries: int) -> Dict[str, Any]:
    rng = np.random.default_rng(11)
    ids = sorted(
        int(i) for i in rng.choice(2**bits, size=nodes, replace=False)
    )
    ring = ChordRing.build(ids, bits=bits)
    query_rng = np.random.default_rng(12)
    keys = [int(k) for k in query_rng.integers(0, 2**bits, size=queries)]
    starts = [
        int(s) for s in query_rng.choice(ring.live_node_ids, size=queries)
    ]
    return {"ring": ring, "keys": keys, "starts": starts}


def _run_chord_loop(state: Dict[str, Any]) -> Tuple[Any, ...]:
    ring = state["ring"]
    return tuple(
        ring.lookup(key, start).owner
        for key, start in zip(state["keys"], state["starts"])
    )


def _run_chord_batch(state: Dict[str, Any]) -> Tuple[Any, ...]:
    ring = state["ring"]
    batch = ring.lookup_batch(state["keys"], state["starts"])
    return tuple(int(owner) for owner in batch.owners)


def _prepare_detection(nodes: int, offers: int) -> Dict[str, Any]:
    rng = np.random.default_rng(3)
    node_ids = rng.integers(0, nodes, size=offers).astype(np.int64)
    times = np.sort(rng.random(offers) * 50.0).astype(np.float64)
    # Load jump after t=25 on half the nodes, so the detectors have
    # crossings to find rather than scanning flat series.
    attacked = node_ids % 2 == 0
    late = times > 25.0
    extra_nodes = node_ids[attacked & late]
    extra_times = times[attacked & late]
    node_ids = np.concatenate([node_ids, np.repeat(extra_nodes, 3)])
    times = np.concatenate([times, np.repeat(extra_times, 3)])
    accepted = np.ones(len(node_ids), dtype=bool)
    config = MonitorConfig(bin_width=0.5, warmup_bins=2, baseline_bins=8)
    return {
        "nodes": node_ids,
        "times": times,
        "accepted": accepted,
        "config": config,
    }


def _run_detection(state: Dict[str, Any], tier: str) -> Tuple[Any, ...]:
    monitor = TrafficMonitor(state["config"], tier=tier)
    monitor.observe_batch(state["nodes"], state["times"], state["accepted"])
    bins = monitor.detection_bins()
    return tuple(sorted(bins.items()))


def build_benchmarks(quick: bool) -> List[Dict[str, Any]]:
    """The ladder's benchmark matrix (prepared lazily, in order)."""
    flooded = dict(clients=1000, nodes=2000, sos_nodes=120, filters=8,
                   duration=50.0)
    scale = dict(clients=200, nodes=100_000, sos_nodes=3_000, filters=8,
                 duration=6.0, flood_rate=200.0)
    chord = dict(bits=24, nodes=2000, queries=2_000 if quick else 10_000)
    detection = dict(nodes=1_000, offers=50_000 if quick else 400_000)
    if quick:
        flooded.update(clients=200, nodes=500, sos_nodes=60, duration=20.0)
        scale.update(nodes=10_000, sos_nodes=600)
    return [
        {
            "name": "flooded_packet_1000c" if not quick
            else "flooded_packet_quick",
            "prepare": lambda: _prepare_flooded(**flooded),
            "tiers": {
                tier: (lambda state, tier=tier: _run_flooded(state, tier))
                for tier in TIERS
            },
            "identical": True,
        },
        {
            "name": "chord_10k_lookup",
            "prepare": lambda: _prepare_chord(**chord),
            "tiers": {
                "scalar": _run_chord_loop,
                "numpy": _run_chord_batch,
            },
            "identical": True,
        },
        {
            "name": "detection_flagging",
            "prepare": lambda: _prepare_detection(**detection),
            "tiers": {
                tier: (lambda state, tier=tier: _run_detection(state, tier))
                for tier in TIERS
            },
            "identical": True,
        },
        {
            "name": "scale_100k_flooded" if not quick else "scale_quick",
            "prepare": lambda: _prepare_flooded(**scale),
            "tiers": {
                tier: (lambda state, tier=tier: _run_flooded(state, tier))
                for tier in TIERS
            },
            "identical": True,
        },
    ]


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------


def _time_best(
    fn: Callable[[Dict[str, Any]], Tuple[Any, ...]],
    state: Dict[str, Any],
    rounds: int,
) -> Tuple[float, Tuple[Any, ...]]:
    best = float("inf")
    result: Tuple[Any, ...] = ()
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn(state)
        best = min(best, time.perf_counter() - start)
    return best, result


def run_ladder(rounds: int, quick: bool) -> Dict[str, Any]:
    tiers_here = available_tiers()
    report: Dict[str, Any] = {
        "version": LADDER_VERSION,
        "available": list(tiers_here),
        "backend": compiled_backend(),
        "rounds": rounds,
        "benchmarks": {},
    }
    for bench in build_benchmarks(quick):
        state = bench["prepare"]()
        cells: Dict[str, Any] = {}
        fingerprints: Dict[str, Tuple[Any, ...]] = {}
        for tier in TIERS:
            runner = bench["tiers"].get(tier)
            if runner is None or tier not in tiers_here:
                continue
            seconds, fingerprint = _time_best(runner, state, rounds)
            cells[tier] = {"mean": seconds, "rounds": rounds}
            fingerprints[tier] = fingerprint
        if bench["identical"] and len(set(fingerprints.values())) > 1:
            raise AssertionError(
                f"{bench['name']}: tiers disagree on results — "
                "bit-identity contract violated"
            )
        baseline = cells.get("numpy")
        if baseline is not None:
            speedups = {
                tier: baseline["mean"] / cell["mean"]
                for tier, cell in cells.items()
                if tier != "numpy" and cell["mean"] > 0.0
            }
        else:
            speedups = {}
        report["benchmarks"][bench["name"]] = {
            "tiers": cells,
            "speedup_vs_numpy": speedups,
        }
    return report


def format_table(report: Dict[str, Any]) -> str:
    names = list(report["benchmarks"])
    width = max(len(name) for name in names) if names else 9
    lines = [
        "tier backend: "
        + (report["backend"] or "none (compiled tier unavailable)"),
        f"{'benchmark'.ljust(width)}  "
        + "".join(f"{tier:>12}" for tier in TIERS)
        + f"{'compiled/numpy':>16}",
    ]
    for name in names:
        entry = report["benchmarks"][name]
        row = name.ljust(width) + "  "
        for tier in TIERS:
            cell = entry["tiers"].get(tier)
            row += (
                f"{cell['mean'] * 1e3:10.1f}ms" if cell else f"{'-':>12}"
            )
        speedup = entry["speedup_vs_numpy"].get("compiled")
        row += f"{speedup:15.2f}x" if speedup is not None else f"{'-':>16}"
        lines.append(row)
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark hot paths at every available kernel tier"
    )
    parser.add_argument(
        "--output",
        default=None,
        help="write the ladder report JSON here (merged into BENCH_<n>."
        "json by tools/bench_snapshot.py --ladder)",
    )
    parser.add_argument(
        "--rounds",
        type=int,
        default=ROUNDS,
        help=f"timing rounds per cell, best-of kept (default: {ROUNDS})",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shrink workloads to smoke-test scale (CI)",
    )
    parser.add_argument(
        "--require-compiled",
        action="store_true",
        help="exit non-zero when no compiled backend is available",
    )
    args = parser.parse_args(argv)

    if args.require_compiled and compiled_backend() is None:
        print(
            "bench-ladder: no compiled backend (numba missing and no "
            "working C compiler) but --require-compiled was set",
            file=sys.stderr,
        )
        return 1

    rounds = 1 if args.quick and args.rounds == ROUNDS else args.rounds
    report = run_ladder(rounds, args.quick)
    print(format_table(report))
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"bench-ladder: wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
