#!/usr/bin/env python3
"""Compare two ``BENCH_<n>.json`` snapshots and fail on regressions.

Usage::

    python tools/bench_compare.py BENCH_1.json BENCH_2.json
    python tools/bench_compare.py            # auto: two newest snapshots
    python tools/bench_compare.py --against 1   # newest vs BENCH_1.json

A benchmark regresses when ``new_mean / base_mean`` exceeds
``1 + threshold`` (default threshold 0.2, i.e. >20% slower). The exit
code is non-zero when any benchmark regresses, which is what `make
bench-compare` and future CI gates key on. Benchmarks present in only
one snapshot are reported but never fatal — suites are allowed to grow.

Snapshots carrying a ``tiers`` block (the ``tools/bench_ladder.py``
report embedded by ``bench_snapshot.py --ladder``) are additionally
compared per tier: each ladder cell becomes a ``name[tier]`` row under
the same threshold, so a compiled-tier regression is gated on its own
and cannot hide behind an improvement in the numpy tier of the same
benchmark.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from bench_snapshot import existing_snapshots


def load_snapshot(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        snapshot = json.load(handle)
    if "benchmarks" not in snapshot:
        raise ValueError(f"{path} is not a bench snapshot (no 'benchmarks')")
    return snapshot


def compare(base: dict, new: dict, threshold: float) -> List[dict]:
    """Per-benchmark comparison rows for benchmarks present in both."""
    rows = []
    for name in sorted(set(base["benchmarks"]) & set(new["benchmarks"])):
        base_mean = float(base["benchmarks"][name]["mean"])
        new_mean = float(new["benchmarks"][name]["mean"])
        ratio = new_mean / base_mean if base_mean > 0.0 else float("inf")
        rows.append(
            {
                "name": name,
                "base_mean": base_mean,
                "new_mean": new_mean,
                "ratio": ratio,
                "regressed": ratio > 1.0 + threshold,
                # Memory is report-only context: it never regresses a run
                # (peak RSS is a session high-water mark, so ordering
                # effects would make a gate on it meaningless).
                "base_rss_kb": _peak_rss(base["benchmarks"][name]),
                "new_rss_kb": _peak_rss(new["benchmarks"][name]),
            }
        )
    rows.extend(compare_tiers(base, new, threshold))
    return rows


def _tier_means(snapshot: dict) -> dict:
    """Flatten a snapshot's ladder block into ``{"name[tier]": mean}``.

    Snapshots without a ``tiers`` block (pre-ladder trajectory) flatten
    to ``{}``, so comparing old-vs-new stays a plain timing diff.
    """
    means = {}
    ladder = snapshot.get("tiers") or {}
    for name, record in ladder.get("benchmarks", {}).items():
        for tier, cell in record.get("tiers", {}).items():
            means[f"{name}[{tier}]"] = float(cell["mean"])
    return means


def compare_tiers(base: dict, new: dict, threshold: float) -> List[dict]:
    """Per-tier ladder rows, gated under the same threshold.

    Each (benchmark, tier) cell present in both snapshots' ladder blocks
    becomes its own row, so a compiled-tier regression fails the gate
    even when the numpy tier of the same benchmark improved. Cells
    present in only one snapshot (tier newly available, or backend
    missing on this machine) are skipped — availability is an
    environment fact, not a regression.
    """
    base_means = _tier_means(base)
    new_means = _tier_means(new)
    rows = []
    for name in sorted(set(base_means) & set(new_means)):
        base_mean = base_means[name]
        new_mean = new_means[name]
        ratio = new_mean / base_mean if base_mean > 0.0 else float("inf")
        rows.append(
            {
                "name": name,
                "base_mean": base_mean,
                "new_mean": new_mean,
                "ratio": ratio,
                "regressed": ratio > 1.0 + threshold,
                "base_rss_kb": None,
                "new_rss_kb": None,
            }
        )
    return rows


def _peak_rss(record: dict) -> Optional[int]:
    memory = record.get("memory", {})
    value = memory.get("peak_rss_kb")
    return int(value) if value is not None else None


def _format_rss(kb: Optional[int]) -> str:
    if kb is None:
        return "      - "
    if kb < 1024:
        return f"{kb:6d}kB"
    return f"{kb / 1024:6.0f}MB"


def _format_seconds(value: float) -> str:
    if value < 1e-3:
        return f"{value * 1e6:8.1f}us"
    if value < 1.0:
        return f"{value * 1e3:8.2f}ms"
    return f"{value:8.3f}s "


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Diff two BENCH_<n>.json snapshots; exit 1 on regression"
    )
    parser.add_argument(
        "snapshots",
        nargs="*",
        help="base and new snapshot paths (default: two newest in --root)",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repository root to search for BENCH_<n>.json (default: cwd)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.2,
        help="fractional slowdown tolerated before failing (default: 0.2)",
    )
    parser.add_argument(
        "--against",
        type=int,
        default=None,
        metavar="N",
        help="compare the newest snapshot against BENCH_<N>.json instead "
        "of the second-newest",
    )
    args = parser.parse_args(argv)

    if args.against is not None and args.snapshots:
        parser.error("--against replaces explicit snapshot paths; pass one "
                     "or the other")
        return 2  # unreachable; parser.error exits

    if len(args.snapshots) == 2:
        base_path, new_path = args.snapshots
    elif args.against is not None:
        base_path = os.path.join(args.root, f"BENCH_{args.against}.json")
        snapshots = existing_snapshots(args.root)
        if not os.path.exists(base_path):
            print(
                f"bench-compare: no {base_path} to compare against",
                file=sys.stderr,
            )
            return 2
        if not snapshots or snapshots[-1] == base_path:
            print(
                f"bench-compare: no snapshot newer than {base_path}",
                file=sys.stderr,
            )
            return 2
        new_path = snapshots[-1]
    elif not args.snapshots:
        snapshots = existing_snapshots(args.root)
        if len(snapshots) < 2:
            # A fresh clone or a new branch has no trajectory yet; that is
            # a clean no-op, not a failure — CI must stay green until a
            # baseline exists (`make bench-save` creates one).
            print(
                "bench-compare: no baseline snapshot found "
                f"({len(snapshots)} BENCH_<n>.json in {args.root}, need 2); "
                "nothing to compare — run `make bench-save` to record one"
            )
            return 0
        base_path, new_path = snapshots[-2], snapshots[-1]
    else:
        parser.error("pass exactly two snapshot paths, or none for auto mode")
        return 2  # unreachable; parser.error exits

    try:
        base = load_snapshot(base_path)
        new = load_snapshot(new_path)
    except (OSError, json.JSONDecodeError, ValueError) as exc:
        print(f"bench-compare: {exc}", file=sys.stderr)
        return 2

    rows = compare(base, new, args.threshold)
    if not rows:
        print("bench-compare: snapshots share no benchmarks", file=sys.stderr)
        return 2

    print(f"base: {base_path}\nnew:  {new_path}\n")
    width = max(len(row["name"]) for row in rows)
    show_memory = any(
        row["base_rss_kb"] is not None or row["new_rss_kb"] is not None
        for row in rows
    )
    memory_header = "  {:>8}  {:>8}".format("rss", "rss'") if show_memory else ""
    print(
        f"{'benchmark'.ljust(width)}  {'base':>10}  {'new':>10}  ratio"
        f"{memory_header}"
    )
    for row in rows:
        flag = "  << REGRESSION" if row["regressed"] else ""
        memory = (
            f"  {_format_rss(row['base_rss_kb'])}  "
            f"{_format_rss(row['new_rss_kb'])}"
            if show_memory
            else ""
        )
        print(
            f"{row['name'].ljust(width)}  "
            f"{_format_seconds(row['base_mean'])}  "
            f"{_format_seconds(row['new_mean'])}  "
            f"{row['ratio']:5.2f}x{memory}{flag}"
        )

    only_base = sorted(set(base["benchmarks"]) - set(new["benchmarks"]))
    only_new = sorted(set(new["benchmarks"]) - set(base["benchmarks"]))
    for name in only_base:
        print(f"removed: {name}")
    for name in only_new:
        print(f"added:   {name}")

    regressions = [row for row in rows if row["regressed"]]
    if regressions:
        print(
            f"\nbench-compare: {len(regressions)} regression(s) beyond "
            f"{args.threshold:.0%} threshold"
        )
        return 1
    print(f"\nbench-compare: OK ({len(rows)} benchmarks within threshold)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
