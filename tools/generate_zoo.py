#!/usr/bin/env python
"""Regenerate the committed scenario zoo from its in-code definitions.

The zoo files under ``src/repro/scenarios/zoo/`` are the exact
``ScenarioSpec.to_json()`` output of the specs defined here — run this
after changing the DSL or the curated campaigns, then refresh the golden
copies the tests compare against::

    PYTHONPATH=src python tools/generate_zoo.py

The golden files in ``tests/scenarios/golden/`` are byte-for-byte copies
of the zoo; the test suite fails if either side drifts.
"""

from __future__ import annotations

import pathlib
import shutil
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.scenarios import (  # noqa: E402
    ArchitectureSpec,
    BenignSurge,
    BotnetWave,
    PhaseSpec,
    PulsingFlood,
    ScenarioSpec,
    SimSpec,
    TargetedLowRate,
)
from repro.scenarios.zoo import ZOO_DIR  # noqa: E402

GOLDEN_DIR = (
    pathlib.Path(__file__).resolve().parents[1]
    / "tests"
    / "scenarios"
    / "golden"
)

#: Shared deployment for every zoo campaign: small enough that the
#: event-driven oracle engine replays each scenario in seconds, large
#: enough that per-layer floods leave healthy siblings to route around.
ZOO_ARCH = ArchitectureSpec(
    layers=3,
    mapping="one-to-two",
    overlay_nodes=400,
    sos_nodes=36,
    filters=4,
)

ZOO_SIM = SimSpec(
    duration=16.0,
    warmup=2.0,
    clients=6,
    client_rate=2.0,
    node_capacity=50.0,
    hop_latency=0.05,
)


def build_zoo() -> list[ScenarioSpec]:
    return [
        ScenarioSpec(
            name="pulsing-shrew",
            description=(
                "Shrew-style on/off flood against half of layer 1: full "
                "rate during each duty window, silence between pulses."
            ),
            seed=101,
            architecture=ZOO_ARCH,
            sim=ZOO_SIM,
            phases=(
                PhaseSpec("baseline", 0.0, 5.0),
                PhaseSpec(
                    "pulse",
                    5.0,
                    11.0,
                    vectors=(
                        PulsingFlood(
                            layer=1,
                            fraction=0.5,
                            rate=350.0,
                            period=2.0,
                            duty=0.5,
                        ),
                    ),
                ),
            ),
        ),
        ScenarioSpec(
            name="botnet-recruitment",
            description=(
                "Mirai-style wave: bots join at a recruitment rate, each "
                "flooding its layer-1 target until its lifetime expires."
            ),
            seed=211,
            architecture=ZOO_ARCH,
            sim=ZOO_SIM,
            phases=(
                PhaseSpec("quiet", 0.0, 4.0),
                PhaseSpec(
                    "wave",
                    4.0,
                    12.0,
                    vectors=(
                        BotnetWave(
                            layer=1,
                            fraction=0.5,
                            bots=40,
                            rate_per_bot=25.0,
                            recruit_rate=6.0,
                            mean_lifetime=8.0,
                        ),
                    ),
                ),
            ),
        ),
        ScenarioSpec(
            name="stealth-lowrate",
            description=(
                "Targeted low-rate DoS: a handful of beacon relays "
                "receive a steady drip just above their service rate."
            ),
            seed=307,
            architecture=ZOO_ARCH,
            sim=ZOO_SIM,
            phases=(
                PhaseSpec("quiet", 0.0, 4.0),
                PhaseSpec(
                    "drip",
                    4.0,
                    12.0,
                    vectors=(
                        TargetedLowRate(layer=2, count=3, rate=120.0),
                    ),
                ),
            ),
        ),
        ScenarioSpec(
            name="flash-crowd",
            description=(
                "Benign-only false-positive stress: a legitimate flash "
                "crowd ramps in with no attack anywhere."
            ),
            seed=401,
            architecture=ZOO_ARCH,
            sim=ZOO_SIM,
            phases=(
                PhaseSpec("normal", 0.0, 5.0),
                PhaseSpec(
                    "surge",
                    5.0,
                    11.0,
                    vectors=(
                        BenignSurge(clients=20, rate=4.0, ramp=3.0),
                    ),
                ),
            ),
        ),
        ScenarioSpec(
            name="combined-assault",
            description=(
                "Mixed campaign: pulsing flood on layer 1, low-rate drip "
                "on layer 2, and a benign flash crowd arriving at once."
            ),
            seed=503,
            architecture=ZOO_ARCH,
            sim=ZOO_SIM,
            phases=(
                PhaseSpec("calm", 0.0, 4.0),
                PhaseSpec(
                    "assault",
                    4.0,
                    12.0,
                    vectors=(
                        PulsingFlood(
                            layer=1,
                            fraction=0.4,
                            rate=300.0,
                            period=2.0,
                            duty=0.5,
                        ),
                        TargetedLowRate(layer=2, count=2, rate=110.0),
                        BenignSurge(clients=12, rate=3.0, ramp=2.0),
                    ),
                ),
            ),
        ),
        ScenarioSpec(
            name="escalating-waves",
            description=(
                "Three-act escalation: a low-rate probe, then a pulsing "
                "flood, then a botnet wave stacked on a deeper drip."
            ),
            seed=601,
            architecture=ZOO_ARCH,
            sim=ZOO_SIM,
            phases=(
                PhaseSpec(
                    "probe",
                    0.0,
                    4.0,
                    vectors=(
                        TargetedLowRate(layer=1, count=1, rate=60.0),
                    ),
                ),
                PhaseSpec(
                    "surge",
                    4.0,
                    5.0,
                    vectors=(
                        PulsingFlood(
                            layer=1,
                            fraction=0.4,
                            rate=320.0,
                            period=2.0,
                            duty=0.5,
                        ),
                    ),
                ),
                PhaseSpec(
                    "crescendo",
                    9.0,
                    7.0,
                    vectors=(
                        BotnetWave(
                            layer=1,
                            fraction=0.4,
                            bots=30,
                            rate_per_bot=20.0,
                            recruit_rate=8.0,
                            mean_lifetime=6.0,
                        ),
                        TargetedLowRate(layer=3, count=2, rate=100.0),
                    ),
                ),
            ),
        ),
    ]


def main() -> int:
    ZOO_DIR.mkdir(parents=True, exist_ok=True)
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for spec in build_zoo():
        path = ZOO_DIR / f"{spec.name}.json"
        path.write_text(spec.to_json() + "\n")
        shutil.copyfile(path, GOLDEN_DIR / path.name)
        print(f"wrote {path.relative_to(pathlib.Path.cwd())}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
