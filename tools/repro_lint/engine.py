"""Rule engine: findings, severities, suppressions, and file traversal.

The engine is deliberately small: a :class:`Rule` walks one parsed module
and yields :class:`Finding` objects; the engine filters them through inline
suppression comments and aggregates across files. Rules never import the
code under analysis — everything is syntactic, so the linter runs on any
tree (including files with missing optional dependencies).

Suppression syntax (documented in ``docs/STATIC_ANALYSIS.md``)::

    value = compute()  # repro-lint: disable=float-equality  -- why it is safe
    # repro-lint: disable=bare-assert
    next_line_is_exempt()

A suppression comment on its own line applies to the *next* line; appended
to a code line it applies to that line. ``disable=all`` disables every rule
for the affected line.
"""

from __future__ import annotations

import ast
import dataclasses
import enum
import re
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Sequence, Set, Tuple, Union

PathLike = Union[str, Path]

# Rule list ends at the first token that is not `rule[, rule...]`, so a
# trailing justification (`-- why`) is not swallowed into the rule ids.
_SUPPRESSION_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_-]+(?:\s*,\s*[A-Za-z0-9_-]+)*)"
)
_COMMENT_ONLY_RE = re.compile(r"^\s*#")


class Severity(enum.IntEnum):
    """Finding severity; ``ERROR`` findings drive a non-zero exit code."""

    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:
        return self.name.lower()


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule_id: str
    severity: Severity
    path: str
    line: int
    column: int
    message: str

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule_id,
            "severity": str(self.severity),
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
        }

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.column}: "
            f"{self.rule_id} [{self.severity}] {self.message}"
        )

    @property
    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.column, self.rule_id)


class Suppressions:
    """Inline ``# repro-lint: disable=...`` comments for one file."""

    def __init__(self, source: str) -> None:
        self._by_line: Dict[int, Set[str]] = {}
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _SUPPRESSION_RE.search(text)
            if not match:
                continue
            rules = {
                token.strip()
                for token in match.group(1).split(",")
                if token.strip()
            }
            # A comment-only line shields the line below it; an end-of-line
            # comment shields its own line.
            target = lineno + 1 if _COMMENT_ONLY_RE.match(text) else lineno
            self._by_line.setdefault(target, set()).update(rules)

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        rules = self._by_line.get(line)
        if not rules:
            return False
        return "all" in rules or rule_id in rules

    @property
    def count(self) -> int:
        return len(self._by_line)


@dataclasses.dataclass
class LintContext:
    """Everything a rule needs to analyse one module."""

    path: Path
    source: str
    tree: ast.Module

    @property
    def display_path(self) -> str:
        return str(self.path)

    def in_src(self) -> bool:
        """True when the file lives under a ``src`` directory (library code)."""
        return "src" in self.path.parts

    def is_seeding_module(self) -> bool:
        """True for ``repro/utils/seeding.py`` — the one sanctioned RNG home."""
        parts = self.path.parts
        return parts[-3:] == ("repro", "utils", "seeding.py")


class Rule:
    """Base class for lint rules.

    Subclasses set ``id``, ``severity``, ``description`` and implement
    :meth:`check`. Override :meth:`applies_to` for path-scoped rules
    (e.g. ``bare-assert`` only polices library code under ``src/``).
    """

    id: str = ""
    severity: Severity = Severity.ERROR
    description: str = ""

    def applies_to(self, context: LintContext) -> bool:
        return True

    def check(self, context: LintContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, context: LintContext, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule_id=self.id,
            severity=self.severity,
            path=context.display_path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


@dataclasses.dataclass
class FileReport:
    """Lint outcome for one file: active findings plus suppression stats."""

    path: str
    findings: List[Finding]
    suppressed: List[Finding]
    parse_error: bool = False


def lint_source(
    source: str, path: PathLike, rules: Sequence[Rule]
) -> FileReport:
    """Lint one module's source text with ``rules``."""
    path = Path(path)
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        finding = Finding(
            rule_id="parse-error",
            severity=Severity.ERROR,
            path=str(path),
            line=exc.lineno or 1,
            column=(exc.offset or 0) + 1,
            message=f"could not parse file: {exc.msg}",
        )
        return FileReport(
            path=str(path), findings=[finding], suppressed=[], parse_error=True
        )

    context = LintContext(path=path, source=source, tree=tree)
    suppressions = Suppressions(source)
    active: List[Finding] = []
    suppressed: List[Finding] = []
    for rule in rules:
        if not rule.applies_to(context):
            continue
        for finding in rule.check(context):
            if suppressions.is_suppressed(finding.rule_id, finding.line):
                suppressed.append(finding)
            else:
                active.append(finding)
    active.sort(key=lambda f: f.sort_key)
    suppressed.sort(key=lambda f: f.sort_key)
    return FileReport(path=str(path), findings=active, suppressed=suppressed)


def lint_file(path: PathLike, rules: Sequence[Rule]) -> FileReport:
    """Lint one file on disk."""
    path = Path(path)
    return lint_source(path.read_text(encoding="utf-8"), path, rules)


def iter_python_files(paths: Iterable[PathLike]) -> Iterator[Path]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` list."""
    seen: Set[Path] = set()
    collected: List[Path] = []
    for raw in paths:
        path = Path(raw)
        candidates = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                collected.append(candidate)
    return iter(sorted(collected))


def lint_paths(
    paths: Iterable[PathLike], rules: Sequence[Rule]
) -> List[FileReport]:
    """Lint every ``.py`` file under ``paths``; missing files raise ``OSError``."""
    return [lint_file(path, rules) for path in iter_python_files(paths)]
