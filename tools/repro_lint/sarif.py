"""SARIF 2.1.0 emitter: repro-lint findings as code-scanning results.

The SARIF log carries the full rule catalogue (statement rules and
project passes) in ``tool.driver.rules`` so code-scanning UIs can show
the rule description next to each annotation, and one ``result`` per
active finding. Baselined findings are emitted with
``baselineState: "unchanged"`` so they stay visible without failing the
gate; new findings carry ``baselineState: "new"`` when a baseline is in
force.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from repro_lint.engine import Finding, Severity

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {Severity.WARNING: "warning", Severity.ERROR: "error"}


def _rule_descriptor(rule_id: str, severity: Severity, description: str) -> Dict:
    return {
        "id": rule_id,
        "shortDescription": {"text": description.split(":")[0].strip() or rule_id},
        "fullDescription": {"text": description},
        "defaultConfiguration": {"level": _LEVELS.get(severity, "warning")},
        "helpUri": "docs/STATIC_ANALYSIS.md",
    }


def _artifact_uri(path: str) -> str:
    p = Path(path)
    if p.is_absolute():
        try:
            p = p.relative_to(Path.cwd())
        except ValueError:
            pass
    return p.as_posix()


def _result(
    finding: Finding,
    rule_index: Dict[str, int],
    baseline_state: Optional[str],
    fingerprint: Optional[str],
) -> Dict:
    result: Dict = {
        "ruleId": finding.rule_id,
        "level": _LEVELS.get(finding.severity, "warning"),
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": _artifact_uri(finding.path),
                        "uriBaseId": "%SRCROOT%",
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.column,
                    },
                }
            }
        ],
    }
    if finding.rule_id in rule_index:
        result["ruleIndex"] = rule_index[finding.rule_id]
    if fingerprint is not None:
        result["partialFingerprints"] = {"reproLint/v1": fingerprint}
    if baseline_state is not None:
        result["baselineState"] = baseline_state
    return result


def render_sarif(
    findings: Sequence[Finding],
    catalogue: Iterable,
    fingerprints: Optional[Dict[Finding, str]] = None,
    baselined: Optional[Iterable[Finding]] = None,
) -> str:
    """Serialize ``findings`` (active) plus ``baselined`` as a SARIF log.

    ``catalogue`` is any iterable of objects with ``id`` / ``severity`` /
    ``description`` attributes (rules and passes both qualify).
    """
    rules: List[Dict] = []
    rule_index: Dict[str, int] = {}
    for entry in catalogue:
        if entry.id in rule_index:
            continue
        rule_index[entry.id] = len(rules)
        rules.append(_rule_descriptor(entry.id, entry.severity, entry.description))

    fingerprints = fingerprints or {}
    baselined = list(baselined or [])
    has_baseline = bool(baselined) or any(
        f in fingerprints for f in findings
    )

    results = [
        _result(
            finding,
            rule_index,
            "new" if has_baseline else None,
            fingerprints.get(finding),
        )
        for finding in findings
    ]
    results.extend(
        _result(finding, rule_index, "unchanged", fingerprints.get(finding))
        for finding in baselined
    )

    log = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "docs/STATIC_ANALYSIS.md",
                        "rules": rules,
                    }
                },
                "columnKind": "utf16CodeUnits",
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2, sort_keys=True)
