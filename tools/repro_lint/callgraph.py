"""Project-wide module index and call graph for flow-aware passes.

The statement-level rules in :mod:`repro_lint.rules` see one module at a
time; the passes in :mod:`repro_lint.passes` need to answer questions
like *"is this ``time.sleep`` transitively reachable from an ``async
def`` in ``repro.service`` without an executor hop?"* — which requires
resolving imports across the whole ``src/repro`` tree and knowing, for
every call site, what it targets and whether it crosses a concurrency
boundary.

The graph is deliberately syntactic and conservative:

* **module names** come from the path (everything after the last ``src``
  segment); files outside a ``src`` tree are indexed by stem;
* **imports** are resolved project-wide (``import a.b``, ``from a import
  b``, aliases, relative imports);
* **receiver types** are inferred only where it is safe: ``x = Cls(...)``
  locals, ``self.attr = Cls(...)`` assignments in ``__init__``, and
  parameter annotations;
* **boundaries** mark call sites whose function-valued arguments run on
  another thread or process (``run_in_executor``, ``asyncio.to_thread``,
  ``executor.submit``, ``Process(target=...)``): traversals must not
  walk through them, which is exactly what makes worker-side code
  invisible to the event-loop reachability pass.

Nothing here imports the code under analysis.
"""

from __future__ import annotations

import ast
import dataclasses
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple, Union

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Call-site attribute names whose callable arguments execute on another
#: thread; reachability passes stop at these edges.
EXECUTOR_METHODS = frozenset({"run_in_executor", "submit", "apply_async"})

#: Callables that hand work to another thread without a receiver object.
EXECUTOR_FUNCTIONS = frozenset({"asyncio.to_thread", "to_thread"})

#: Constructor names that spawn a separate OS process (``target=`` runs
#: there, not on the caller's loop).
PROCESS_FACTORIES = frozenset({"Process", "Pool", "ProcessPoolExecutor"})

#: Decorator names that compile the function body to machine code
#: (numba's jit family). A jitted body is a *compiled boundary*: the
#: Python-hygiene passes must not look inside, because the lowered code
#: cannot call the sanctioned helpers they would demand (a kernel can't
#: reach ``repro.utils.seeding`` or the engine's sim-time — its callers
#: own those contracts and hand plain arrays across the boundary).
COMPILED_DECORATORS = frozenset(
    {"njit", "jit", "vectorize", "guvectorize", "cfunc"}
)


def dotted_name(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` attribute/name chains; ``None`` for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def is_compiled_decorator(node: ast.AST) -> bool:
    """True when ``node`` (a decorator expression) jit-compiles the body.

    Matches the numba jit family both bare (``@njit``, ``@njit(cache=
    True)``) and qualified (``@numba.njit``, ``@numba.core.decorators.
    jit``): any dotted decorator rooted at ``numba``, or whose last
    segment is one of :data:`COMPILED_DECORATORS`. Syntactic on purpose
    — fixture/vendored code may alias numba in ways import resolution
    cannot see, and a false "compiled" mark only silences hygiene passes
    on code CPython never executes anyway.
    """
    if isinstance(node, ast.Call):
        node = node.func
    name = dotted_name(node)
    if name is None:
        return False
    if name == "numba" or name.startswith("numba."):
        return True
    return name.rsplit(".", 1)[-1] in COMPILED_DECORATORS


def module_name_for(path: Path) -> Tuple[str, bool]:
    """Dotted module name for ``path`` and whether it is a package.

    Everything after the *last* ``src`` path segment becomes the module
    path (``src/repro/service/pool.py`` -> ``repro.service.pool``); files
    outside a ``src`` tree are indexed by stem alone. ``__init__.py``
    maps to its package name.
    """
    parts = list(path.parts)
    if "src" in parts:
        start = len(parts) - 1 - parts[::-1].index("src") + 1
        tail = parts[start:]
    else:
        tail = [parts[-1]]
    if not tail:
        return path.stem, False
    tail = list(tail)
    tail[-1] = Path(tail[-1]).stem
    if tail[-1] == "__init__":
        tail = tail[:-1] or [path.parent.name]
        return ".".join(tail), True
    return ".".join(tail), False


@dataclasses.dataclass
class CallSite:
    """One ``ast.Call`` inside a function body."""

    node: ast.Call
    #: The dotted callee as written (``loop.run_in_executor``), if any.
    raw_name: Optional[str]
    #: Fully-qualified target after import/receiver resolution, if known.
    resolved: Optional[str] = None
    #: ``"executor"`` / ``"process"`` when callable arguments escape the
    #: caller's thread of control; ``None`` for ordinary calls.
    boundary: Optional[str] = None

    @property
    def lineno(self) -> int:
        return self.node.lineno

    def target(self) -> Optional[str]:
        """Best name for classification: resolved if known, else raw."""
        return self.resolved or self.raw_name


@dataclasses.dataclass
class FunctionInfo:
    """One function/method with its outgoing call sites."""

    qualname: str
    module: "ModuleInfo"
    name: str
    node: FunctionNode
    is_async: bool
    class_name: Optional[str] = None
    #: Body is jit-compiled (numba decorator on it or on an enclosing
    #: def): a compiled boundary the Python-hygiene passes stop at.
    is_compiled: bool = False
    calls: List[CallSite] = dataclasses.field(default_factory=list)
    #: Immediate nested function definitions (local-name -> qualname).
    locals_functions: Dict[str, str] = dataclasses.field(default_factory=dict)

    @property
    def path(self) -> Path:
        return self.module.path


@dataclasses.dataclass
class ModuleInfo:
    """Everything the graph knows about one parsed module."""

    name: str
    path: Path
    tree: ast.Module
    is_package: bool = False
    #: Local binding -> fully-qualified prefix (import table).
    imports: Dict[str, str] = dataclasses.field(default_factory=dict)
    #: Top-level class names defined here.
    classes: Set[str] = dataclasses.field(default_factory=set)
    #: Top-level function names defined here.
    top_functions: Set[str] = dataclasses.field(default_factory=set)
    #: ``Class.attr`` -> fully-qualified class of ``self.attr`` values.
    attr_types: Dict[str, str] = dataclasses.field(default_factory=dict)


class ProjectGraph:
    """Module index + resolved call graph over a set of parsed files."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        #: Fully-qualified class name -> set of method names.
        self.class_methods: Dict[str, Set[str]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, files: Iterable[Tuple[Path, ast.Module]]) -> "ProjectGraph":
        """Index ``(path, tree)`` pairs and resolve every call site."""
        graph = cls()
        for path, tree in files:
            graph._index_module(path, tree)
        for module in graph.modules.values():
            graph._collect_attr_types(module)
        for function in list(graph.functions.values()):
            graph._resolve_calls(function)
        return graph

    def _index_module(self, path: Path, tree: ast.Module) -> None:
        name, is_package = module_name_for(path)
        module = ModuleInfo(name=name, path=path, tree=tree,
                            is_package=is_package)
        self.modules[name] = module
        self._collect_imports(module)
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                module.top_functions.add(node.name)
                self._index_function(module, node, class_name=None)
            elif isinstance(node, ast.ClassDef):
                module.classes.add(node.name)
                fq_class = f"{module.name}.{node.name}"
                methods = self.class_methods.setdefault(fq_class, set())
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        methods.add(item.name)
                        self._index_function(module, item, class_name=node.name)

    def _index_function(
        self,
        module: ModuleInfo,
        node: FunctionNode,
        class_name: Optional[str],
        parent: Optional[FunctionInfo] = None,
    ) -> FunctionInfo:
        if parent is not None:
            qualname = f"{parent.qualname}.<locals>.{node.name}"
        elif class_name is not None:
            qualname = f"{module.name}.{class_name}.{node.name}"
        else:
            qualname = f"{module.name}.{node.name}"
        info = FunctionInfo(
            qualname=qualname,
            module=module,
            name=node.name,
            node=node,
            is_async=isinstance(node, ast.AsyncFunctionDef),
            class_name=class_name,
            # Nested defs inherit the mark: numba lowers closures with
            # their enclosing jitted function.
            is_compiled=(parent is not None and parent.is_compiled)
            or any(is_compiled_decorator(d) for d in node.decorator_list),
        )
        self.functions[qualname] = info
        # Index nested defs so helper-indirection is still traversable.
        for child in iter_body_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested = self._index_function(
                    module, child, class_name=class_name, parent=info
                )
                info.locals_functions[child.name] = nested.qualname
        return info

    def _collect_imports(self, module: ModuleInfo) -> None:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    if item.asname:
                        module.imports[item.asname] = item.name
                    else:
                        head = item.name.split(".")[0]
                        module.imports[head] = head
            elif isinstance(node, ast.ImportFrom):
                base = self._import_base(module, node)
                if base is None:
                    continue
                for item in node.names:
                    if item.name == "*":
                        continue
                    binding = item.asname or item.name
                    module.imports[binding] = f"{base}.{item.name}"

    def _import_base(
        self, module: ModuleInfo, node: ast.ImportFrom
    ) -> Optional[str]:
        if node.level == 0:
            return node.module
        parts = module.name.split(".")
        if not module.is_package:
            parts = parts[:-1]
        drop = node.level - 1
        if drop:
            parts = parts[:-drop] if drop <= len(parts) else []
        base = ".".join(parts)
        if node.module:
            base = f"{base}.{node.module}" if base else node.module
        return base or None

    def _collect_attr_types(self, module: ModuleInfo) -> None:
        """Infer ``self.attr`` classes from ``__init__`` assignments."""
        for class_name in module.classes:
            init = self.functions.get(f"{module.name}.{class_name}.__init__")
            if init is None:
                continue
            for stmt in ast.walk(init.node):
                if not isinstance(stmt, ast.Assign):
                    continue
                if not isinstance(stmt.value, ast.Call):
                    continue
                fq_class = self._resolve_class(module, stmt.value.func)
                if fq_class is None:
                    continue
                for target in stmt.targets:
                    name = dotted_name(target)
                    if name and name.startswith("self."):
                        attr = name[len("self."):]
                        if "." not in attr:
                            module.attr_types[f"{class_name}.{attr}"] = fq_class

    def _resolve_class(
        self, module: ModuleInfo, func: ast.AST
    ) -> Optional[str]:
        """Fully-qualified class name if ``func`` constructs a known class."""
        name = dotted_name(func)
        if name is None:
            return None
        resolved = self._resolve_name(module, name)
        if resolved is None:
            return None
        if resolved in self.class_methods:
            return resolved
        return None

    def _resolve_name(
        self, module: ModuleInfo, name: str
    ) -> Optional[str]:
        """Resolve a dotted usage through the module's import table."""
        head, _, rest = name.partition(".")
        target = module.imports.get(head)
        if target is not None:
            return f"{target}.{rest}" if rest else target
        if head in module.top_functions or head in module.classes:
            local = f"{module.name}.{head}"
            return f"{local}.{rest}" if rest else local
        return None

    # ------------------------------------------------------------------
    # Call-site resolution
    # ------------------------------------------------------------------
    def _resolve_calls(self, function: FunctionInfo) -> None:
        module = function.module
        local_types = infer_local_types(function, self, module)
        for node in iter_body_nodes(function.node):
            for call in iter_calls_shallow(node):
                site = CallSite(node=call, raw_name=dotted_name(call.func))
                site.boundary = classify_boundary(site.raw_name, call)
                site.resolved = self._resolve_call_target(
                    function, module, call, site.raw_name, local_types
                )
                function.calls.append(site)

    def _resolve_call_target(
        self,
        function: FunctionInfo,
        module: ModuleInfo,
        call: ast.Call,
        raw: Optional[str],
        local_types: Dict[str, str],
    ) -> Optional[str]:
        if raw is None:
            return None
        head, _, rest = raw.partition(".")
        # Nested function defined inside this (or an enclosing) function.
        if not rest and raw in function.locals_functions:
            return function.locals_functions[raw]
        # self.method() / self.attr.method()
        if head == "self" and function.class_name is not None:
            fq_class = f"{module.name}.{function.class_name}"
            if "." not in rest:
                if rest in self.class_methods.get(fq_class, ()):
                    return f"{fq_class}.{rest}"
                return None
            attr, _, method = rest.partition(".")
            attr_class = module.attr_types.get(f"{function.class_name}.{attr}")
            if attr_class is not None and "." not in method:
                if method in self.class_methods.get(attr_class, ()):
                    return f"{attr_class}.{method}"
            return None
        # x.method() where x was assigned a known class instance.
        if rest and head in local_types:
            fq_class = local_types[head]
            if "." not in rest and rest in self.class_methods.get(fq_class, ()):
                return f"{fq_class}.{rest}"
            return None
        resolved = self._resolve_name(module, raw)
        if resolved is not None:
            # Calling a class means running its constructor.
            if resolved in self.class_methods:
                methods = self.class_methods[resolved]
                if "__init__" in methods:
                    return f"{resolved}.__init__"
            return resolved
        return None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def function(self, qualname: str) -> Optional[FunctionInfo]:
        return self.functions.get(qualname)

    def async_functions(self) -> Iterator[FunctionInfo]:
        for info in self.functions.values():
            if info.is_async:
                yield info

    def resolve_to_function(self, target: Optional[str]) -> Optional[FunctionInfo]:
        """Map a resolved call target to a project function, if any.

        Calling a class traverses into both ``__init__`` and (for
        dataclasses) ``__post_init__`` — handled by the caller via
        :meth:`constructor_parts`.
        """
        if target is None:
            return None
        return self.functions.get(target)

    def constructor_parts(self, target: str) -> List[FunctionInfo]:
        """``__init__``/``__post_init__`` bodies run by constructing a class."""
        parts: List[FunctionInfo] = []
        if target.endswith(".__init__"):
            base = target[: -len(".__init__")]
            post = self.functions.get(f"{base}.__post_init__")
            if post is not None:
                parts.append(post)
        return parts


# ----------------------------------------------------------------------
# AST helpers shared with the dataflow layer
# ----------------------------------------------------------------------


def iter_body_nodes(function: FunctionNode) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested defs/lambdas.

    Calls inside a nested ``def`` or ``lambda`` execute when *that*
    callable runs, not when the enclosing function does; collecting them
    here would make ``run_in_executor(..., lambda: blocking())`` look
    like an event-loop stall.
    """
    stack: List[ast.AST] = []
    for stmt in function.body:
        stack.append(stmt)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        for child in ast.iter_child_nodes(node):
            stack.append(child)


def iter_calls_shallow(node: ast.AST) -> Iterator[ast.Call]:
    """Yield ``node`` itself when it is a Call (companion to
    :func:`iter_body_nodes`, which already walks shallowly)."""
    if isinstance(node, ast.Call):
        yield node


def classify_boundary(
    raw_name: Optional[str], call: ast.Call
) -> Optional[str]:
    """Boundary kind for one call site, or ``None``.

    ``"executor"`` — callable args run on a thread (sanctioned hop for
    blocking work); ``"process"`` — callable args run in another OS
    process (also where RNG streams must be spawned, not shared).
    """
    if raw_name is None:
        return None
    last = raw_name.rsplit(".", 1)[-1]
    if last in EXECUTOR_METHODS:
        return "executor"
    if raw_name in EXECUTOR_FUNCTIONS or last == "to_thread":
        return "executor"
    if last in PROCESS_FACTORIES:
        return "process"
    return None


def infer_local_types(
    function: FunctionInfo,
    graph: ProjectGraph,
    module: ModuleInfo,
) -> Dict[str, str]:
    """Map local variable names to fully-qualified classes where obvious.

    Sources: ``x = Cls(...)`` assignments and parameter annotations that
    name a project class. Intentionally flow-insensitive — good enough
    for method resolution in a linter.
    """
    types: Dict[str, str] = {}
    args = function.node.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        if arg.annotation is None:
            continue
        annotation = dotted_name(arg.annotation)
        if annotation is None:
            continue
        resolved = graph._resolve_name(module, annotation)
        if resolved in graph.class_methods:
            types[arg.arg] = resolved
    for node in iter_body_nodes(function.node):
        if not isinstance(node, ast.Assign) or not isinstance(
            node.value, ast.Call
        ):
            continue
        fq_class = graph._resolve_class(module, node.value.func)
        if fq_class is None:
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                types[target.id] = fq_class
    return types
