"""Intraprocedural dataflow over RNG values (Generators, SeedSequences).

The bit-identity contracts (same seed -> same estimates across engines,
worker counts, and crash/resume) hold only while every
:class:`numpy.random.Generator` is consumed by exactly one logical
stream owner. Three ways a function can silently break that, all
detectable without executing anything:

* a generator is **handed to a worker/checkpoint boundary** (``submit``,
  ``Process(...)``, ``run_in_executor``) and then drawn from again
  locally — parent and worker now consume one stream in racy order;
* the **same generator is handed off twice** (or once per loop
  iteration) — two workers share a stream;
* a generator is **drawn from inside iteration over a set** (hash-seed
  dependent order) or an unsorted dict view — the draw sequence depends
  on interpreter state, not on the seed.

The tracker is a linear, source-ordered scan per function: events are
``create`` / ``handoff`` / ``draw`` with the enclosing loop stack
recorded, and the rule passes interpret the event stream. Deliberately
intraprocedural — cross-function stream ownership is enforced
dynamically by the checkpoint/resume property tests; this catches the
single-function mistakes those tests can only catch probabilistically.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro_lint.callgraph import (
    FunctionInfo,
    FunctionNode,
    classify_boundary,
    dotted_name,
)

#: Call names (last dotted segment) whose result is a Generator stream.
GENERATOR_FACTORIES = frozenset(
    {"default_rng", "make_rng", "Generator", "RandomState", "generator"}
)

#: Generator methods that consume stream state. ``spawn`` is excluded —
#: spawning children is the sanctioned way to fork a stream.
DRAW_METHODS = frozenset(
    {
        "random",
        "standard_normal",
        "standard_exponential",
        "standard_gamma",
        "normal",
        "uniform",
        "integers",
        "choice",
        "shuffle",
        "permutation",
        "permuted",
        "exponential",
        "poisson",
        "binomial",
        "geometric",
        "multinomial",
        "multivariate_normal",
        "beta",
        "gamma",
        "lognormal",
        "triangular",
        "bytes",
        "bit_generator",
    }
)

#: Receiver name segments treated as generator-like even without a local
#: creation site (``self._rng.choice(...)``, a bare ``rng`` parameter).
RNG_NAME_HINTS = ("rng", "random_state")


@dataclasses.dataclass(frozen=True)
class RngEvent:
    """One generator-relevant action, in source order."""

    kind: str  # "create" | "handoff" | "draw"
    var: str
    node: ast.AST
    #: ids of the loops enclosing the event (innermost last).
    loops: Tuple[int, ...]
    #: For handoffs: the boundary kind; for creates: the seed form.
    detail: Optional[str] = None


def is_rng_like_name(name: str) -> bool:
    """Heuristic: does a dotted receiver look like an RNG stream?"""
    last = name.rsplit(".", 1)[-1].lower()
    return any(hint in last for hint in RNG_NAME_HINTS)


def annotated_generator_params(function: FunctionNode) -> Set[str]:
    """Parameter names whose annotation names a ``Generator``."""
    names: Set[str] = set()
    args = function.args
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        if arg.annotation is None:
            continue
        annotation = dotted_name(arg.annotation)
        if annotation is not None and annotation.endswith("Generator"):
            names.add(arg.arg)
    return names


class RngTracker(ast.NodeVisitor):
    """Collect :class:`RngEvent` streams for one function body."""

    def __init__(self, function: FunctionNode) -> None:
        self.generators: Set[str] = set(annotated_generator_params(function))
        self.events: List[RngEvent] = []
        self._loop_stack: List[int] = []
        self._loop_counter = 0
        #: var -> loop stack at creation (missing for parameters).
        self.created_in: Dict[str, Tuple[int, ...]] = {}
        for stmt in function.body:
            self.visit(stmt)

    # -- scope/loop management -----------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass  # nested defs have their own tracker

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass

    def _visit_loop(self, node: ast.AST) -> None:
        self._loop_counter += 1
        self._loop_stack.append(self._loop_counter)
        for child in ast.iter_child_nodes(node):
            self.visit(child)
        self._loop_stack.pop()

    def visit_For(self, node: ast.For) -> None:
        self.visit(node.iter)
        self._loop_counter += 1
        self._loop_stack.append(self._loop_counter)
        for stmt in [*node.body, *node.orelse]:
            self.visit(stmt)
        self._loop_stack.pop()

    def visit_While(self, node: ast.While) -> None:
        self.visit(node.test)
        self._loop_counter += 1
        self._loop_stack.append(self._loop_counter)
        for stmt in [*node.body, *node.orelse]:
            self.visit(stmt)
        self._loop_stack.pop()

    # -- events ----------------------------------------------------------
    def _record(
        self, kind: str, var: str, node: ast.AST, detail: Optional[str] = None
    ) -> None:
        self.events.append(
            RngEvent(
                kind=kind,
                var=var,
                node=node,
                loops=tuple(self._loop_stack),
                detail=detail,
            )
        )

    def visit_Assign(self, node: ast.Assign) -> None:
        self.visit(node.value)
        creation = _generator_creation(node.value)
        for target in node.targets:
            if not isinstance(target, ast.Name):
                continue
            if creation is not None:
                self.generators.add(target.id)
                self.created_in[target.id] = tuple(self._loop_stack)
                self._record("create", target.id, node.value, detail=creation)
            elif (
                isinstance(node.value, ast.Name)
                and node.value.id in self.generators
            ):
                self.generators.add(target.id)  # alias

    def visit_Call(self, node: ast.Call) -> None:
        raw = dotted_name(node.func)
        boundary = classify_boundary(raw, node)
        if boundary is None and raw is not None and "checkpoint" in raw.lower():
            boundary = "checkpoint"
        if boundary is not None:
            for arg in [*node.args, *[kw.value for kw in node.keywords]]:
                if isinstance(arg, ast.Name) and arg.id in self.generators:
                    self._record("handoff", arg.id, node, detail=boundary)
        elif raw is not None and "." in raw:
            receiver, _, method = raw.rpartition(".")
            if method in DRAW_METHODS and (
                receiver in self.generators or is_rng_like_name(receiver)
            ):
                self._record("draw", receiver, node)
        for child in ast.iter_child_nodes(node):
            self.visit(child)


def _generator_creation(value: ast.expr) -> Optional[str]:
    """If ``value`` constructs a Generator, describe the seed form.

    Returns ``"raw-int"`` for integer-literal seeds, ``"derived"`` for
    everything else (spawned SeedSequence, variable, ``make_rng``), and
    ``None`` when the expression is not a generator factory call.
    """
    if not isinstance(value, ast.Call):
        return None
    name = dotted_name(value.func)
    if name is None:
        return None
    last = name.rsplit(".", 1)[-1]
    if last not in GENERATOR_FACTORIES:
        return None
    if last in ("default_rng", "Generator", "RandomState"):
        if value.args and isinstance(value.args[0], ast.Constant) and isinstance(
            value.args[0].value, int
        ):
            return "raw-int"
        for keyword in value.keywords:
            if (
                keyword.arg == "seed"
                and isinstance(keyword.value, ast.Constant)
                and isinstance(keyword.value.value, int)
            ):
                return "raw-int"
    return "derived"


def track_function(function: FunctionInfo) -> RngTracker:
    """Run the tracker over one indexed function."""
    return RngTracker(function.node)


# ----------------------------------------------------------------------
# Unordered-iteration support
# ----------------------------------------------------------------------


def unordered_iterable(node: ast.expr) -> Optional[str]:
    """Classify a ``for``-loop iterable as hash/insertion-order dependent.

    Returns ``"set"`` for set displays/comprehensions/``set()`` calls,
    ``"dict-view"`` for unsorted ``.keys()/.values()/.items()``, and
    ``None`` for anything wrapped in ``sorted(...)`` or not obviously
    unordered.
    """
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name in ("set", "frozenset"):
            return "set"
        if name is not None and name.rsplit(".", 1)[-1] in (
            "keys",
            "values",
            "items",
        ):
            return "dict-view"
        if name in ("union", "intersection", "difference"):
            return "set"
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub)
    ):
        left = unordered_iterable(node.left)
        right = unordered_iterable(node.right)
        if left == "set" or right == "set":
            return "set"
    return None


def draws_in_loop(
    loop: ast.For, generators: Set[str]
) -> Iterator[ast.Call]:
    """RNG draws lexically inside ``loop``'s body (not nested defs)."""
    stack: List[ast.AST] = [*loop.body, *loop.orelse]
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Call):
            raw = dotted_name(node.func)
            if raw is not None and "." in raw:
                receiver, _, method = raw.rpartition(".")
                if method in DRAW_METHODS and (
                    receiver in generators or is_rng_like_name(receiver)
                ):
                    yield node
        for child in ast.iter_child_nodes(node):
            stack.append(child)
