"""Orchestration: parse once, run statement rules + project passes.

``lint_source``/``lint_paths`` in :mod:`repro_lint.engine` stay the
single-module API (rules only); :func:`analyze_paths` is the full
pipeline the CLI uses — every file is parsed exactly once, the parsed
modules feed both the per-file rules and the
:class:`~repro_lint.callgraph.ProjectGraph` the passes walk, and pass
findings are routed back through each file's inline suppressions.
"""

from __future__ import annotations

import ast
import dataclasses
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from repro_lint.callgraph import ProjectGraph
from repro_lint.engine import (
    FileReport,
    PathLike,
    Rule,
    Suppressions,
    iter_python_files,
    lint_source,
)
from repro_lint.passes import ProjectPass


@dataclasses.dataclass
class AnalysisResult:
    """Everything one analyzer run produced."""

    reports: List[FileReport]
    #: display path -> source text (baseline fingerprints need line text).
    sources: Dict[str, str]

    @property
    def findings(self) -> List:
        return [f for report in self.reports for f in report.findings]


def analyze_paths(
    paths: Iterable[PathLike],
    rules: Sequence[Rule],
    passes: Sequence[ProjectPass] = (),
) -> AnalysisResult:
    """Run ``rules`` per file and ``passes`` project-wide over ``paths``."""
    sources: Dict[str, str] = {}
    reports: Dict[str, FileReport] = {}
    suppressions: Dict[str, Suppressions] = {}
    parsed = []

    for path in iter_python_files(paths):
        source = Path(path).read_text(encoding="utf-8")
        report = lint_source(source, path, rules)
        sources[report.path] = source
        reports[report.path] = report
        if not report.parse_error:
            suppressions[report.path] = Suppressions(source)
            # lint_source already parsed successfully; parse again is
            # avoided by rebuilding from the context lint_source used —
            # cheaper to reparse than to change the public signature.
            import ast

            parsed.append((Path(path), ast.parse(source)))

    if passes and parsed:
        graph = ProjectGraph.build(parsed)
        for project_pass in passes:
            for finding in project_pass.run(graph):
                report = reports.get(finding.path)
                if report is None:  # pass emitted for an unscanned file
                    continue
                shield = suppressions.get(finding.path)
                if shield is not None and shield.is_suppressed(
                    finding.rule_id, finding.line
                ):
                    report.suppressed.append(finding)
                else:
                    report.findings.append(finding)

    ordered = [reports[key] for key in sorted(reports)]
    for report in ordered:
        report.findings.sort(key=lambda f: f.sort_key)
        report.suppressed.sort(key=lambda f: f.sort_key)
    return AnalysisResult(reports=ordered, sources=sources)


def relint_with(
    result: AnalysisResult, severity_overrides: Optional[Dict[str, str]]
) -> AnalysisResult:
    """Apply config severity overrides (``"off"`` filtered upstream)."""
    if not severity_overrides:
        return result
    from repro_lint.engine import Severity

    remap = {
        rule_id: Severity[value.upper()]
        for rule_id, value in severity_overrides.items()
        if value.lower() in ("warning", "error")
    }
    if not remap:
        return result
    for report in result.reports:
        report.findings = [
            dataclasses.replace(f, severity=remap[f.rule_id])
            if f.rule_id in remap
            else f
            for f in report.findings
        ]
    return result
