"""RNG discipline: every random draw must come from a seeded, local stream.

PR 1's checkpoint/resume machinery is bit-identical only when all
randomness flows through :mod:`repro.utils.seeding` — explicit
:class:`numpy.random.Generator` streams fanned out of one
``SeedSequence``. Three ways to break that discipline, all flagged here:

* the stdlib :mod:`random` module (hidden global state, not seedable per
  component);
* ``numpy.random.default_rng()`` with no seed argument, or any legacy
  ``numpy.random.*`` global-state function (``seed``, ``rand``, ...);
* a ``Generator`` constructed at import time and stored in a module
  global (shared mutable state that couples unrelated call sites).

``repro/utils/seeding.py`` itself is exempt — it is the sanctioned home
for ``default_rng`` and ``SeedSequence`` plumbing.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional

from repro_lint.engine import Finding, LintContext, Rule, Severity

#: ``numpy.random`` attributes that operate on the hidden global RandomState.
LEGACY_GLOBAL_STATE = frozenset(
    {
        "seed",
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "choice",
        "shuffle",
        "permutation",
        "uniform",
        "normal",
        "exponential",
        "poisson",
        "binomial",
        "get_state",
        "set_state",
    }
)

#: Call names whose result is an RNG stream; storing one in a module
#: global couples every importer to shared mutable state.
GENERATOR_FACTORIES = frozenset(
    {"default_rng", "make_rng", "Generator", "RandomState"}
)


def dotted_name(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` attribute/name chains; ``None`` for anything else."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class RngDisciplineRule(Rule):
    id = "rng-discipline"
    severity = Severity.ERROR
    description = (
        "randomness must flow through repro.utils.seeding: no stdlib "
        "`random`, no unseeded/legacy numpy.random, no module-global "
        "Generator objects"
    )

    def applies_to(self, context: LintContext) -> bool:
        return not context.is_seeding_module()

    def check(self, context: LintContext) -> Iterator[Finding]:
        aliases = self._module_aliases(context.tree)
        yield from self._check_imports(context)
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(context, node, aliases)
        yield from self._check_module_globals(context)

    def _module_aliases(self, tree: ast.Module) -> Dict[str, str]:
        """Map local alias -> imported module path for numpy/random imports."""
        aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    if item.name in ("random", "numpy", "numpy.random"):
                        aliases[item.asname or item.name.split(".")[0]] = item.name
            elif isinstance(node, ast.ImportFrom) and node.module == "numpy":
                for item in node.names:
                    if item.name == "random":
                        aliases[item.asname or "random"] = "numpy.random"
        return aliases

    def _check_imports(self, context: LintContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    if item.name == "random":
                        yield self.finding(
                            context,
                            node,
                            "stdlib `random` has hidden global state; use "
                            "repro.utils.seeding.make_rng and pass the "
                            "Generator explicitly",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" and node.level == 0:
                    yield self.finding(
                        context,
                        node,
                        "importing from stdlib `random` bypasses seeded "
                        "streams; use repro.utils.seeding",
                    )

    def _resolve(self, name: str, aliases: Dict[str, str]) -> Optional[str]:
        """Resolve a dotted usage like ``np.random.rand`` to its module path."""
        head, _, rest = name.partition(".")
        module = aliases.get(head)
        if module is None:
            return None
        return f"{module}.{rest}" if rest else module

    def _check_call(
        self, context: LintContext, node: ast.Call, aliases: Dict[str, str]
    ) -> Iterator[Finding]:
        name = dotted_name(node.func)
        if name is None:
            return
        resolved = self._resolve(name, aliases)
        if resolved is None:
            return
        if resolved.startswith("random."):
            yield self.finding(
                context,
                node,
                f"call to stdlib `{resolved}` draws from hidden global "
                "state; thread a seeded numpy Generator instead",
            )
            return
        if not resolved.startswith("numpy.random."):
            return
        attr = resolved[len("numpy.random."):]
        if attr == "default_rng":
            if self._is_unseeded(node):
                yield self.finding(
                    context,
                    node,
                    "unseeded numpy.random.default_rng() is "
                    "non-reproducible; pass a seed/SeedSequence or use "
                    "repro.utils.seeding.make_rng",
                )
        elif attr in LEGACY_GLOBAL_STATE:
            yield self.finding(
                context,
                node,
                f"legacy numpy.random.{attr} uses the global RandomState; "
                "use a seeded Generator from repro.utils.seeding",
            )

    @staticmethod
    def _is_unseeded(call: ast.Call) -> bool:
        if call.keywords:
            return all(
                keyword.arg == "seed"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is None
                for keyword in call.keywords
            )
        if not call.args:
            return True
        first = call.args[0]
        return isinstance(first, ast.Constant) and first.value is None

    def _check_module_globals(self, context: LintContext) -> Iterator[Finding]:
        for node in context.tree.body:
            targets: list = []
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign):
                targets, value = [node.target], node.value
                annotation = dotted_name(node.annotation)
                if annotation is not None and annotation.endswith("Generator"):
                    yield self.finding(
                        context,
                        node,
                        "Generator annotated at module scope: RNG streams "
                        "must be created per component, not shared globals",
                    )
                    continue
            if value is None or not isinstance(value, ast.Call):
                continue
            name = dotted_name(value.func)
            if name is not None and name.split(".")[-1] in GENERATOR_FACTORIES:
                names = ", ".join(
                    dotted_name(t) or "<target>" for t in targets
                )
                yield self.finding(
                    context,
                    node,
                    f"RNG stream `{names}` stored in a module global; "
                    "construct Generators inside the component that uses "
                    "them (repro.utils.seeding)",
                )
