"""Float equality: ``==``/``!=`` against float literals is almost always
a latent bug in numerical code — products of probabilities drift, and a
comparison that held on one platform silently flips on another.

The rule flags comparisons where any operand is a float literal (or a
``float(...)`` / ``math.``-constant expression). Intentional *sentinel*
comparisons — e.g. testing a value the code itself clamped to exactly
``0.0`` — stay, with an inline suppression and a justifying comment::

    if base == 0.0:  # repro-lint: disable=float-equality -- clamped above

Everything else should use ``math.isclose`` or a boundary guard
(``<= 0.0``, ``>= 1.0``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro_lint.engine import Finding, LintContext, Rule, Severity

_MATH_CONSTANTS = frozenset({"math.inf", "math.nan", "math.pi", "math.e", "math.tau"})


def _is_float_expression(node: ast.expr) -> bool:
    """Syntactic check: is this operand certainly a float?"""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_float_expression(node.operand)
    if isinstance(node, ast.Call):
        func = node.func
        return isinstance(func, ast.Name) and func.id == "float"
    if isinstance(node, ast.Attribute):
        value = node.value
        if isinstance(value, ast.Name):
            return f"{value.id}.{node.attr}" in _MATH_CONSTANTS
    return False


class FloatEqualityRule(Rule):
    id = "float-equality"
    severity = Severity.ERROR
    description = (
        "== / != against a float literal; use math.isclose, a boundary "
        "guard, or suppress with a comment for intentional sentinels"
    )

    def check(self, context: LintContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_float_expression(left) or _is_float_expression(right):
                    symbol = "==" if isinstance(op, ast.Eq) else "!="
                    yield self.finding(
                        context,
                        node,
                        f"float `{symbol}` comparison; floating products "
                        "drift — use math.isclose or an explicit boundary "
                        "guard (or suppress a justified sentinel compare)",
                    )
                    break
