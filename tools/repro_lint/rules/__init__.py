"""Rule registry.

Adding a rule: subclass :class:`repro_lint.engine.Rule` in a module under
this package, then append an instance to :data:`ALL_RULES`. Every rule
needs at least one positive and one negative test in
``tests/tools/test_repro_lint.py``; see ``docs/STATIC_ANALYSIS.md``.
"""

from __future__ import annotations

from typing import Dict, List

from repro_lint.engine import Rule
from repro_lint.rules.asserts import BareAssertRule
from repro_lint.rules.defaults import MutableDefaultRule
from repro_lint.rules.floats import FloatEqualityRule
from repro_lint.rules.probability import ProbabilityHygieneRule
from repro_lint.rules.rng import RngDisciplineRule

ALL_RULES: List[Rule] = [
    RngDisciplineRule(),
    FloatEqualityRule(),
    ProbabilityHygieneRule(),
    BareAssertRule(),
    MutableDefaultRule(),
]

_BY_ID: Dict[str, Rule] = {rule.id: rule for rule in ALL_RULES}


def rule_by_id(rule_id: str) -> Rule:
    """Look a rule up by its identifier; raises ``KeyError`` if unknown."""
    return _BY_ID[rule_id]


__all__ = [
    "ALL_RULES",
    "rule_by_id",
    "BareAssertRule",
    "FloatEqualityRule",
    "MutableDefaultRule",
    "ProbabilityHygieneRule",
    "RngDisciplineRule",
]
