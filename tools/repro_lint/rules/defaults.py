"""Mutable default arguments.

A mutable default (``def f(x, acc=[])``) is evaluated once at definition
time and shared across calls — state leaks between invocations. Use
``None`` plus an in-body default instead.
"""

from __future__ import annotations

import ast
from typing import Iterator, Union

from repro_lint.engine import Finding, LintContext, Rule, Severity

_MUTABLE_LITERALS = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.DictComp,
    ast.SetComp,
)
_MUTABLE_CALLS = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "Counter", "deque"}
)

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda]


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", "")
        return name in _MUTABLE_CALLS
    return False


class MutableDefaultRule(Rule):
    id = "mutable-default"
    severity = Severity.ERROR
    description = (
        "mutable default argument is shared across calls; default to None "
        "and construct inside the function"
    )

    def check(self, context: LintContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_mutable_default(default):
                    label = getattr(node, "name", "<lambda>")
                    yield self.finding(
                        context,
                        default,
                        f"mutable default in `{label}` is evaluated once "
                        "and shared across calls; use None and build the "
                        "container in the body",
                    )
