"""Probability hygiene: probability-valued functions must be guarded.

Every quantity the model derives from Eq. 1 is a probability; a single
unguarded return of ``1.02`` propagates through ``P_S = prod_i P_i`` and
invalidates whole figures. Library functions whose *name* declares them a
probability (``*_probability``, ``probability_*``, ``*_prob``) must prove
their range discipline in one of three ways:

* a contract decorator from :mod:`repro.contracts`
  (``@returns_probability``, ``@ensures``, ...);
* a call to :func:`repro.utils.validation.check_probability` (or its
  array counterpart ``check_probabilities``);
* a call to :func:`repro.core.probability.clamp` (the continuous-extension
  clamp used throughout the analytical core).

Validator/factory functions (``check_*``, ``requires_*``, ``returns_*``)
are exempt — they *are* the guards. The rule is scoped to ``src/``:
example and benchmark scripts consume guarded library values.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Union

from repro_lint.engine import Finding, LintContext, Rule, Severity
from repro_lint.rules.rng import dotted_name

_PROBABILITY_NAME = re.compile(r"(^|_)(probabilit(y|ies)|prob)($|_)")
# Validators/factories ARE the guards; is_/has_ functions are boolean
# predicates about probabilities, not probability-valued.
_EXEMPT_PREFIXES = (
    "check_",
    "requires_",
    "returns_",
    "_check_",
    "is_",
    "_is_",
    "has_",
    "_has_",
)

#: Decorators that establish a range contract.
CONTRACT_DECORATORS = frozenset(
    {
        "returns_probability",
        "requires_probability",
        "requires_fraction",
        "requires_non_negative",
        "ensures",
    }
)

#: In-body calls that establish range discipline.
GUARD_CALLS = frozenset({"check_probability", "check_probabilities", "clamp"})

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _last_segment(name: str) -> str:
    return name.rsplit(".", 1)[-1]


def _has_contract_decorator(node: FunctionNode) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = dotted_name(target)
        if name is not None and _last_segment(name) in CONTRACT_DECORATORS:
            return True
    return False


def _calls_guard(node: FunctionNode) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            name = dotted_name(child.func)
            if name is not None and _last_segment(name) in GUARD_CALLS:
                return True
    return False


class ProbabilityHygieneRule(Rule):
    id = "probability-hygiene"
    severity = Severity.ERROR
    description = (
        "probability-named functions in src/ must carry a repro.contracts "
        "decorator or route through check_probability/clamp"
    )

    def applies_to(self, context: LintContext) -> bool:
        return context.in_src()

    def check(self, context: LintContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _PROBABILITY_NAME.search(node.name):
                continue
            if node.name.startswith(_EXEMPT_PREFIXES):
                continue
            if _has_contract_decorator(node) or _calls_guard(node):
                continue
            yield self.finding(
                context,
                node,
                f"`{node.name}` is probability-named but carries no range "
                "guard; decorate with @repro.contracts.returns_probability "
                "or route the result through check_probability/clamp",
            )
