"""Bare ``assert`` in library code.

``python -O`` strips assert statements, so an invariant guarded by one
silently stops being checked in optimised deployments. Library code under
``src/`` must raise a :class:`repro.errors.ReproError` subclass instead;
tests and benchmarks (where pytest rewrites asserts) are exempt by path.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro_lint.engine import Finding, LintContext, Rule, Severity


class BareAssertRule(Rule):
    id = "bare-assert"
    severity = Severity.ERROR
    description = (
        "assert in src/ vanishes under `python -O`; raise a ReproError "
        "subclass (ConfigurationError, AnalysisError, ...) instead"
    )

    def applies_to(self, context: LintContext) -> bool:
        return context.in_src()

    def check(self, context: LintContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Assert):
                yield self.finding(
                    context,
                    node,
                    "bare assert is stripped by `python -O`; raise a "
                    "repro.errors.ReproError subclass so the invariant "
                    "survives optimised runs",
                )
