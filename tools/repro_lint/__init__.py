"""repro-lint: flow-aware correctness analyzer for the SOS reproduction.

The analytical model's guarantees only hold under invariants that generic
linters do not know about: probabilities must stay in ``[0, 1]``, every
random draw must come from an explicitly seeded stream (checkpoint/resume
is bit-identical only under that discipline), the evaluation service must
never block its event loop, and simulation results must be functions of
the seed — not of the wall clock or the hash seed. This package encodes
those invariants in two layers:

* **statement rules** (:mod:`repro_lint.rules`) walk one module at a
  time — RNG discipline, float equality, probability hygiene, bare
  asserts, mutable defaults;
* **project passes** (:mod:`repro_lint.passes`) walk a project-wide call
  graph (:mod:`repro_lint.callgraph`) and an intraprocedural RNG
  dataflow (:mod:`repro_lint.dataflow`) — async-safety reachability,
  generator handoff/reuse, unordered-iteration draws, wall-clock reads.

Usage::

    PYTHONPATH=tools python -m repro_lint src benchmarks examples
    tools/repro-lint --format sarif src > repro-lint.sarif
    tools/repro-lint --write-baseline src   # ratify current findings

See ``docs/STATIC_ANALYSIS.md`` for the rule catalogue, baseline
workflow, and suppression syntax (``# repro-lint: disable=RULE -- why``).
"""

from __future__ import annotations

from repro_lint.analysis import AnalysisResult, analyze_paths
from repro_lint.callgraph import ProjectGraph
from repro_lint.engine import (
    Finding,
    LintContext,
    Rule,
    Severity,
    lint_file,
    lint_paths,
    lint_source,
)
from repro_lint.passes import ALL_PASSES, ProjectPass, pass_by_id
from repro_lint.rules import ALL_RULES, rule_by_id

__version__ = "2.0.0"

__all__ = [
    "ALL_PASSES",
    "ALL_RULES",
    "AnalysisResult",
    "Finding",
    "LintContext",
    "ProjectGraph",
    "ProjectPass",
    "Rule",
    "Severity",
    "analyze_paths",
    "lint_file",
    "lint_paths",
    "lint_source",
    "pass_by_id",
    "rule_by_id",
    "__version__",
]
