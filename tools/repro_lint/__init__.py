"""repro-lint: AST-based correctness linter for the SOS reproduction.

The analytical model's guarantees only hold under invariants that generic
linters do not know about: probabilities must stay in ``[0, 1]``, every
random draw must come from an explicitly seeded stream (checkpoint/resume
is bit-identical only under that discipline), and invariants must survive
``python -O``. This package encodes those invariants as AST rules.

Usage::

    PYTHONPATH=tools python -m repro_lint src benchmarks examples
    tools/repro-lint --format json src

See ``docs/STATIC_ANALYSIS.md`` for the rule catalogue and suppression
syntax (``# repro-lint: disable=RULE``).
"""

from __future__ import annotations

from repro_lint.engine import (
    Finding,
    LintContext,
    Rule,
    Severity,
    lint_file,
    lint_paths,
    lint_source,
)
from repro_lint.rules import ALL_RULES, rule_by_id

__version__ = "1.0.0"

__all__ = [
    "ALL_RULES",
    "Finding",
    "LintContext",
    "Rule",
    "Severity",
    "lint_file",
    "lint_paths",
    "lint_source",
    "rule_by_id",
    "__version__",
]
