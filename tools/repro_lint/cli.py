"""Command-line interface for repro-lint.

Exit codes (stable, for CI):

* ``0`` — no findings (suppressed findings do not fail the run);
* ``1`` — at least one error-severity finding (or any finding with
  ``--strict-warnings``);
* ``2`` — usage error: unknown rule id, unreadable path.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro_lint.engine import FileReport, Rule, Severity, lint_paths
from repro_lint.rules import ALL_RULES

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based correctness linter for the SOS reproduction: RNG "
            "discipline, float equality, probability hygiene, bare asserts, "
            "mutable defaults."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also report findings silenced by inline suppressions",
    )
    parser.add_argument(
        "--strict-warnings",
        action="store_true",
        help="exit non-zero on warning-severity findings too",
    )
    return parser


def select_rules(
    select: Optional[str], ignore: Optional[str]
) -> List[Rule]:
    known = {rule.id: rule for rule in ALL_RULES}
    chosen = list(ALL_RULES)
    if select:
        wanted = [token.strip() for token in select.split(",") if token.strip()]
        for rule_id in wanted:
            if rule_id not in known:
                raise KeyError(rule_id)
        chosen = [rule for rule in chosen if rule.id in wanted]
    if ignore:
        dropped = {token.strip() for token in ignore.split(",") if token.strip()}
        for rule_id in dropped:
            if rule_id not in known:
                raise KeyError(rule_id)
        chosen = [rule for rule in chosen if rule.id not in dropped]
    return chosen


def render_text(
    reports: Sequence[FileReport], show_suppressed: bool
) -> str:
    lines: List[str] = []
    findings = 0
    suppressed = 0
    for report in reports:
        for finding in report.findings:
            lines.append(finding.render())
            findings += 1
        suppressed += len(report.suppressed)
        if show_suppressed:
            for finding in report.suppressed:
                lines.append(f"{finding.render()} (suppressed)")
    noun = "finding" if findings == 1 else "findings"
    lines.append(
        f"repro-lint: {findings} {noun} in {len(reports)} files "
        f"({suppressed} suppressed)"
    )
    return "\n".join(lines)


def render_json(
    reports: Sequence[FileReport], show_suppressed: bool
) -> str:
    payload = {
        "files": len(reports),
        "findings": [
            finding.as_dict()
            for report in reports
            for finding in report.findings
        ],
        "suppressed_count": sum(len(r.suppressed) for r in reports),
    }
    if show_suppressed:
        payload["suppressed"] = [
            finding.as_dict()
            for report in reports
            for finding in report.suppressed
        ]
    return json.dumps(payload, indent=2, sort_keys=True)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.id} [{rule.severity}] {rule.description}")
        return EXIT_CLEAN

    try:
        rules = select_rules(options.select, options.ignore)
    except KeyError as exc:
        print(f"repro-lint: unknown rule id {exc.args[0]!r}", file=sys.stderr)
        return EXIT_USAGE

    try:
        reports = lint_paths(options.paths, rules)
    except OSError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return EXIT_USAGE

    if options.format == "json":
        print(render_json(reports, options.show_suppressed))
    else:
        print(render_text(reports, options.show_suppressed))

    threshold = (
        Severity.WARNING if options.strict_warnings else Severity.ERROR
    )
    failing = any(
        finding.severity >= threshold
        for report in reports
        for finding in report.findings
    )
    return EXIT_FINDINGS if failing else EXIT_CLEAN


if __name__ == "__main__":
    sys.exit(main())
