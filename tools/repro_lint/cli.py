"""Command-line interface for repro-lint.

Exit codes (stable, for CI):

* ``0`` — no *new* findings (suppressed and baselined findings do not
  fail the run);
* ``1`` — at least one new error-severity finding (or any new finding
  with ``--strict-warnings``);
* ``2`` — usage error: unknown rule id, unreadable path.

Statement rules run per file; flow-aware project passes (call graph +
dataflow) run over all files together and are on by default
(``--no-passes`` restricts the run to statement rules). ``--select`` /
``--ignore`` address rules and passes uniformly by id.

Baseline workflow: ``--write-baseline`` ratifies the current findings
into ``.repro-lint-baseline.json``; subsequent runs fail only on
findings absent from that file. ``--no-baseline`` compares against
nothing (every finding counts), which is what the repository gate uses —
the committed baseline is empty and must stay empty.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro_lint.analysis import AnalysisResult, analyze_paths, relint_with
from repro_lint.baseline import (
    DEFAULT_BASELINE,
    Baseline,
    compute_fingerprints,
    split_by_baseline,
    write_baseline,
)
from repro_lint.config import LintConfig, load_config
from repro_lint.engine import FileReport, Finding, Rule, Severity
from repro_lint.passes import ALL_PASSES, ProjectPass
from repro_lint.rules import ALL_RULES
from repro_lint.sarif import render_sarif

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Flow-aware correctness analyzer for the SOS reproduction: "
            "statement rules (RNG discipline, float equality, probability "
            "hygiene, bare asserts, mutable defaults) plus call-graph "
            "passes (async-safety, RNG dataflow, wall-clock determinism)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule/pass ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        help="comma-separated rule/pass ids to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule and pass catalogue and exit",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also report findings silenced by inline suppressions",
    )
    parser.add_argument(
        "--strict-warnings",
        action="store_true",
        help="exit non-zero on warning-severity findings too",
    )
    parser.add_argument(
        "--no-passes",
        action="store_true",
        help="run statement rules only (skip call-graph/dataflow passes)",
    )
    parser.add_argument(
        "--config",
        metavar="PYPROJECT",
        help="pyproject.toml to read [tool.repro-lint] from "
        "(default: ./pyproject.toml)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help=f"baseline file of ratified findings (default: "
        f"{DEFAULT_BASELINE} when present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file: every finding counts",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="ratify the current findings into the baseline file and exit 0",
    )
    return parser


def select_checks(
    select: Optional[str],
    ignore: Optional[str],
    disabled: frozenset = frozenset(),
) -> Tuple[List[Rule], List[ProjectPass]]:
    """Partition ``--select``/``--ignore`` ids over rules and passes."""
    known = {rule.id for rule in ALL_RULES} | {p.id for p in ALL_PASSES}
    rules = list(ALL_RULES)
    passes = list(ALL_PASSES)
    if select:
        wanted = [token.strip() for token in select.split(",") if token.strip()]
        for rule_id in wanted:
            if rule_id not in known:
                raise KeyError(rule_id)
        rules = [rule for rule in rules if rule.id in wanted]
        passes = [p for p in passes if p.id in wanted]
    if ignore:
        dropped = {token.strip() for token in ignore.split(",") if token.strip()}
        for rule_id in dropped:
            if rule_id not in known:
                raise KeyError(rule_id)
        rules = [rule for rule in rules if rule.id not in dropped]
        passes = [p for p in passes if p.id not in dropped]
    if disabled:
        rules = [rule for rule in rules if rule.id not in disabled]
        passes = [p for p in passes if p.id not in disabled]
    return rules, passes


def render_text(
    reports: Sequence[FileReport],
    show_suppressed: bool,
    baselined: Sequence[Finding] = (),
) -> str:
    lines: List[str] = []
    findings = 0
    suppressed = 0
    for report in reports:
        for finding in report.findings:
            lines.append(finding.render())
            findings += 1
        suppressed += len(report.suppressed)
        if show_suppressed:
            for finding in report.suppressed:
                lines.append(f"{finding.render()} (suppressed)")
    noun = "finding" if findings == 1 else "findings"
    lines.append(
        f"repro-lint: {findings} {noun} in {len(reports)} files "
        f"({suppressed} suppressed)"
    )
    if baselined:
        lines.append(
            f"repro-lint: {len(baselined)} baselined finding(s) not "
            "counted (see the baseline file)"
        )
    return "\n".join(lines)


def render_json(
    reports: Sequence[FileReport],
    show_suppressed: bool,
    baselined: Sequence[Finding] = (),
) -> str:
    payload = {
        "files": len(reports),
        "findings": [
            finding.as_dict()
            for report in reports
            for finding in report.findings
        ],
        "suppressed_count": sum(len(r.suppressed) for r in reports),
    }
    if baselined:
        payload["baselined_count"] = len(baselined)
    if show_suppressed:
        payload["suppressed"] = [
            finding.as_dict()
            for report in reports
            for finding in report.suppressed
        ]
    return json.dumps(payload, indent=2, sort_keys=True)


def _baseline_path(
    options: argparse.Namespace, config: LintConfig
) -> Optional[Path]:
    """The baseline file in force for this run, if any."""
    if options.no_baseline and not options.write_baseline:
        return None
    if options.baseline:
        return Path(options.baseline)
    if config.baseline:
        return Path(config.baseline)
    default = Path(DEFAULT_BASELINE)
    if options.write_baseline or default.exists():
        return default
    return None


def _apply_baseline(
    result: AnalysisResult, baseline: Baseline
) -> List[Finding]:
    """Move baselined findings out of the reports; return them."""
    fingerprints = compute_fingerprints(result.findings, result.sources)
    ratified: List[Finding] = []
    for report in result.reports:
        new, old = split_by_baseline(report.findings, fingerprints, baseline)
        report.findings = new
        ratified.extend(old)
    return ratified


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)
    config = load_config(Path(options.config) if options.config else None)

    if options.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.id} [{rule.severity}] {rule.description}")
        for project_pass in ALL_PASSES:
            print(
                f"{project_pass.id} [{project_pass.severity}] (pass) "
                f"{project_pass.description}"
            )
        return EXIT_CLEAN

    try:
        rules, passes = select_checks(
            options.select, options.ignore, config.disabled_ids()
        )
    except KeyError as exc:
        print(f"repro-lint: unknown rule id {exc.args[0]!r}", file=sys.stderr)
        return EXIT_USAGE
    if options.no_passes:
        passes = []

    try:
        result = analyze_paths(options.paths, rules, passes)
    except OSError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return EXIT_USAGE
    relint_with(result, config.overrides())

    baseline_file = _baseline_path(options, config)

    if options.write_baseline:
        if baseline_file is None:  # unreachable, but keep the gate explicit
            print("repro-lint: no baseline path to write", file=sys.stderr)
            return EXIT_USAGE
        fingerprints = compute_fingerprints(result.findings, result.sources)
        count = write_baseline(baseline_file, result.findings, fingerprints)
        print(
            f"repro-lint: wrote {count} finding(s) to {baseline_file}"
        )
        return EXIT_CLEAN

    baselined: List[Finding] = []
    if baseline_file is not None and baseline_file.exists():
        baseline = Baseline.load(baseline_file)
        if baseline.entries:
            baselined = _apply_baseline(result, baseline)

    if options.format == "json":
        print(render_json(result.reports, options.show_suppressed, baselined))
    elif options.format == "sarif":
        fingerprints = compute_fingerprints(
            [*result.findings, *baselined], result.sources
        )
        print(
            render_sarif(
                result.findings,
                [*ALL_RULES, *ALL_PASSES],
                fingerprints=fingerprints if baselined else None,
                baselined=baselined,
            )
        )
    else:
        print(render_text(result.reports, options.show_suppressed, baselined))

    threshold = (
        Severity.WARNING if options.strict_warnings else Severity.ERROR
    )
    failing = any(
        finding.severity >= threshold
        for report in result.reports
        for finding in report.findings
    )
    return EXIT_FINDINGS if failing else EXIT_CLEAN


if __name__ == "__main__":
    sys.exit(main())
