"""Baseline workflow: gate on regressions, not on pre-existing findings.

A committed ``.repro-lint-baseline.json`` records fingerprints of known
findings; runs exit non-zero only for findings *not* in the baseline, so
a new rule can land with its legacy findings ratified while every new
violation still fails CI. Regenerate with ``repro-lint
--write-baseline`` (``make lint-baseline``).

Fingerprints must survive unrelated edits, so they hash the finding's
rule id, file path, and the *text* of the flagged line (plus an
occurrence counter for duplicate lines) — never the line number. Moving
a finding without changing its line keeps it baselined; editing the
flagged line retires the entry (stale entries are reported so the
baseline never rots silently).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro_lint.engine import Finding

BASELINE_VERSION = 1
DEFAULT_BASELINE = ".repro-lint-baseline.json"


def _normalize_path(path: str) -> str:
    """Repo-relative posix path so fingerprints match across machines."""
    p = Path(path)
    if p.is_absolute():
        try:
            p = p.relative_to(Path.cwd())
        except ValueError:
            pass
    return p.as_posix()


def compute_fingerprints(
    findings: Iterable[Finding], sources: Dict[str, str]
) -> Dict[Finding, str]:
    """Stable fingerprint per finding (line-number independent)."""
    lines_by_path: Dict[str, List[str]] = {}
    occurrence: Dict[Tuple[str, str, str], int] = {}
    fingerprints: Dict[Finding, str] = {}
    for finding in sorted(findings, key=lambda f: f.sort_key):
        path = _normalize_path(finding.path)
        if finding.path not in lines_by_path:
            lines_by_path[finding.path] = sources.get(
                finding.path, ""
            ).splitlines()
        lines = lines_by_path[finding.path]
        text = (
            lines[finding.line - 1].strip()
            if 0 < finding.line <= len(lines)
            else ""
        )
        key = (finding.rule_id, path, text)
        index = occurrence.get(key, 0)
        occurrence[key] = index + 1
        digest = hashlib.sha256(
            f"{finding.rule_id}::{path}::{text}::{index}".encode("utf-8")
        ).hexdigest()[:20]
        fingerprints[finding] = digest
    return fingerprints


@dataclasses.dataclass
class Baseline:
    """The committed set of ratified findings."""

    path: Optional[Path]
    entries: Dict[str, Dict[str, object]]

    @classmethod
    def load(cls, path: Optional[Path]) -> "Baseline":
        if path is None or not Path(path).exists():
            return cls(path=Path(path) if path else None, entries={})
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        entries = payload.get("findings", {})
        if isinstance(entries, list):  # tolerate list-shaped files
            entries = {e["fingerprint"]: e for e in entries}
        return cls(path=Path(path), entries=dict(entries))

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self.entries

    def stale(self, seen: Iterable[str]) -> List[str]:
        """Baseline entries no longer produced by the analyzer."""
        seen_set = set(seen)
        return sorted(fp for fp in self.entries if fp not in seen_set)


def split_by_baseline(
    findings: Iterable[Finding],
    fingerprints: Dict[Finding, str],
    baseline: Baseline,
) -> Tuple[List[Finding], List[Finding]]:
    """``(new, baselined)`` partition of ``findings``."""
    new: List[Finding] = []
    old: List[Finding] = []
    for finding in findings:
        if fingerprints.get(finding) in baseline:
            old.append(finding)
        else:
            new.append(finding)
    return new, old


def write_baseline(
    path: Path,
    findings: Iterable[Finding],
    fingerprints: Dict[Finding, str],
) -> int:
    """Serialize the current findings as the new baseline; returns count."""
    entries = {
        fingerprints[finding]: {
            "rule": finding.rule_id,
            "path": _normalize_path(finding.path),
            "line": finding.line,
            "message": finding.message,
        }
        for finding in findings
        if finding in fingerprints
    }
    payload = {
        "version": BASELINE_VERSION,
        "tool": "repro-lint",
        "findings": dict(sorted(entries.items())),
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return len(entries)
