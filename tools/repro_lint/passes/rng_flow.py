"""rng-flow: dataflow rules over Generator/SeedSequence values.

Three rules share one intraprocedural tracker
(:mod:`repro_lint.dataflow`); each guards a different way a single
function can break the bit-identity contract:

* ``rng-boundary-reuse`` — a stream is consumed after (or handed off
  more than once across) a worker/checkpoint boundary;
* ``rng-raw-seed`` — a Generator is built from a raw integer literal
  instead of a spawned ``SeedSequence`` (streams seeded ``1, 2, 3...``
  are not statistically independent, and hand-allocated seed ranges
  collide the moment two components pick the same constants);
* ``rng-unordered-iter`` — a draw happens inside iteration over a set
  (hash-seed-dependent order) or an unsorted dict view, so the draw
  sequence depends on interpreter state rather than the seed.

All three apply to library code under ``src/`` only; the sanctioned
seeding module is exempt from ``rng-raw-seed``, as are jit-compiled
bodies (``FunctionInfo.is_compiled``) — a numba kernel cannot call the
seeding helpers across the compiled boundary, and the streams it uses
are seeded by its (lint-checked) Python callers.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional

from repro_lint.callgraph import FunctionInfo, ProjectGraph
from repro_lint.dataflow import (
    RngEvent,
    RngTracker,
    draws_in_loop,
    track_function,
    unordered_iterable,
)
from repro_lint.engine import Finding, Severity
from repro_lint.passes import ProjectPass


def _in_scope(function: FunctionInfo) -> bool:
    parts = function.path.parts
    return "src" in parts


def _is_seeding_module(function: FunctionInfo) -> bool:
    return function.path.parts[-3:] == ("repro", "utils", "seeding.py")


class RngBoundaryReusePass(ProjectPass):
    id = "rng-boundary-reuse"
    severity = Severity.ERROR
    description = (
        "a Generator handed to a worker/checkpoint boundary must not be "
        "consumed again (or handed off repeatedly): spawn child streams "
        "instead of sharing one"
    )

    def run(self, graph: ProjectGraph) -> Iterator[Finding]:
        for function in graph.functions.values():
            if not _in_scope(function):
                continue
            tracker = track_function(function)
            yield from self._check(function, tracker)

    def _check(
        self, function: FunctionInfo, tracker: RngTracker
    ) -> Iterator[Finding]:
        path = str(function.path)
        first_handoff: Dict[str, RngEvent] = {}
        for event in tracker.events:
            if event.kind == "handoff":
                previous = first_handoff.get(event.var)
                if previous is not None:
                    yield self.finding(
                        path,
                        event.node,
                        f"generator `{event.var}` handed to a second "
                        f"{event.detail} boundary (first at line "
                        f"{previous.node.lineno}): two workers would share "
                        "one stream — spawn a child SeedSequence per "
                        "handoff",
                    )
                    continue
                first_handoff[event.var] = event
                created = tracker.created_in.get(event.var)
                if created is not None and len(event.loops) > len(created):
                    yield self.finding(
                        path,
                        event.node,
                        f"generator `{event.var}` (created outside the "
                        f"loop) is handed to a {event.detail} boundary on "
                        "every iteration: each submission shares the same "
                        "stream — spawn a child stream per iteration",
                    )
            elif event.kind == "draw" and event.var in first_handoff:
                handoff = first_handoff[event.var]
                yield self.finding(
                    path,
                    event.node,
                    f"generator `{event.var}` consumed after being handed "
                    f"to a {handoff.detail} boundary at line "
                    f"{handoff.node.lineno}: parent and worker now draw "
                    "from one stream in racy order — spawn a child stream "
                    "for the worker",
                )


class RngRawSeedPass(ProjectPass):
    id = "rng-raw-seed"
    severity = Severity.WARNING
    description = (
        "library Generators must derive from a spawned SeedSequence "
        "(repro.utils.seeding), not a raw integer literal"
    )

    def run(self, graph: ProjectGraph) -> Iterator[Finding]:
        for function in graph.functions.values():
            if not _in_scope(function) or _is_seeding_module(function):
                continue
            if function.is_compiled:
                continue
            tracker = track_function(function)
            for event in tracker.events:
                if event.kind == "create" and event.detail == "raw-int":
                    yield self.finding(
                        str(function.path),
                        event.node,
                        f"generator `{event.var}` seeded with a raw integer "
                        "literal: derive it from a spawned SeedSequence "
                        "(repro.utils.seeding.make_rng / "
                        "SeedSequenceFactory) so streams stay independent",
                    )


class RngUnorderedIterPass(ProjectPass):
    id = "rng-unordered-iter"
    severity = Severity.ERROR
    description = (
        "no RNG draw inside iteration over a set or unsorted dict view: "
        "the draw order would depend on hash/insertion state, silently "
        "breaking bit-identity"
    )

    def run(self, graph: ProjectGraph) -> Iterator[Finding]:
        for function in graph.functions.values():
            if not _in_scope(function):
                continue
            tracker = track_function(function)
            yield from self._check(function, tracker)

    def _check(
        self, function: FunctionInfo, tracker: RngTracker
    ) -> Iterator[Finding]:
        path = str(function.path)
        for loop in self._loops(function.node):
            kind = unordered_iterable(loop.iter)
            if kind is None:
                continue
            noun = (
                "a set (hash-seed-dependent order)"
                if kind == "set"
                else "an unsorted dict view"
            )
            for draw in draws_in_loop(loop, tracker.generators):
                yield self.finding(
                    path,
                    draw,
                    f"RNG draw inside iteration over {noun}: wrap the "
                    "iterable in sorted(...) so the draw sequence depends "
                    "only on the seed",
                )

    @staticmethod
    def _loops(node: ast.AST) -> List[ast.For]:
        loops: List[ast.For] = []
        stack: List[ast.AST] = list(ast.iter_child_nodes(node))
        while stack:
            child = stack.pop()
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            if isinstance(child, ast.For):
                loops.append(child)
            stack.extend(ast.iter_child_nodes(child))
        return loops
