"""wallclock: no wall-clock reads in simulation/detection/perf hot paths.

Simulated time, detection windows, and benchmark identities must be
functions of the seed and the event schedule, never of when the run
happened to execute. ``time.time`` / ``datetime.now`` in those packages
couples results to the host clock (and to NTP steps mid-run);
``time.monotonic`` is the sanctioned interval clock and the engines'
sim-time is the sanctioned timestamp source.

Service/tooling code is out of scope — deadlines and SLO reports are
*supposed* to read real clocks. Jit-compiled bodies (``@numba.njit``
and friends, see ``FunctionInfo.is_compiled``) are a compiled boundary:
whatever such a kernel spells as ``time.*`` is lowered by numba, not
executed by CPython, and its determinism contract is enforced at the
call boundary (bit-identity property tests), so the pass skips them.
"""

from __future__ import annotations

from typing import Iterator

from repro_lint.callgraph import ProjectGraph
from repro_lint.engine import Finding, Severity
from repro_lint.passes import ProjectPass, module_segments

#: Resolved call targets that read the wall clock.
WALLCLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.ctime",
        "time.localtime",
        "time.gmtime",
        "time.strftime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "datetime.now",
        "datetime.utcnow",
        "date.today",
    }
)


class WallclockPass(ProjectPass):
    id = "wallclock"
    severity = Severity.ERROR
    description = (
        "simulation/detection/perf code must not read the wall clock "
        "(time.time, datetime.now): use time.monotonic for intervals or "
        "the engine's sim-time for timestamps"
    )

    #: Module segments whose code is deterministic-by-contract.
    scope = frozenset({"simulation", "detection", "perf"})

    def run(self, graph: ProjectGraph) -> Iterator[Finding]:
        for function in graph.functions.values():
            if not self.scope & set(module_segments(function.module.name)):
                continue
            if function.is_compiled:
                continue
            for site in function.calls:
                target = site.target()
                if target is None:
                    continue
                if target in WALLCLOCK_CALLS:
                    yield self.finding(
                        str(function.path),
                        site.node,
                        f"wall-clock read `{target}` in a deterministic "
                        "package: results must be a function of the seed — "
                        "use time.monotonic for intervals or sim-time for "
                        "timestamps",
                    )
