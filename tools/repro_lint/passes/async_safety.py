"""async-blocking: no blocking call reachable from a service coroutine.

The service's availability story (never block the event loop; shed,
degrade, or hand off instead) is enforced dynamically by the chaos
harness's heartbeat SLO. This pass is its static twin: starting from
every ``async def`` in a ``service`` module, walk the resolved call
graph — through sync helpers, ``self.method`` dispatch, and awaited
coroutines, but **not** through executor/process boundaries
(``run_in_executor``, ``asyncio.to_thread``, ``submit``,
``Process(target=...)``) — and flag any call that parks the thread:
``time.sleep``, ``subprocess``, sync socket/HTTP IO, ``Future.result()``
/ ``Process.join()``, or a direct ``MonteCarloEstimator.estimate`` (a
CPU-bound campaign on the loop is a stall as surely as a sleep; it is
exactly the cheap-request-wedges-the-relay failure mode of the Tor DoS
literature).

Findings anchor at the blocking call site (one per site, however many
coroutines reach it) so a single suppression or fix covers every path;
the message carries one example chain from coroutine to stall.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro_lint.callgraph import CallSite, FunctionInfo, ProjectGraph
from repro_lint.engine import Finding, Severity
from repro_lint.passes import ProjectPass, module_segments

#: Dotted-name prefixes that block the calling thread outright.
BLOCKING_PREFIXES = (
    "subprocess.",
    "urllib.request.",
    "requests.",
    "http.client.",
)

#: Exact dotted names that block the calling thread.
BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "os.system",
        "os.popen",
        "os.wait",
        "os.waitpid",
        "socket.create_connection",
        "socket.getaddrinfo",
        "socket.gethostbyname",
        "subprocess.run",
    }
)

#: Project calls that are CPU-bound stalls when run on the event loop.
BLOCKING_SUFFIXES = ("MonteCarloEstimator.estimate",)


def _is_blocking_join(raw: str, call: ast.Call) -> bool:
    """``proc.join()`` / ``thread.join(timeout=...)`` but not ``str.join``.

    String joins take one iterable argument; thread/process joins take
    nothing or a numeric/``timeout=`` budget. Receivers that are string
    literals are never flagged.
    """
    if not raw.endswith(".join"):
        return False
    if call.keywords:
        return all(kw.arg == "timeout" for kw in call.keywords) and not call.args
    if not call.args:
        return True
    if len(call.args) == 1:
        arg = call.args[0]
        return isinstance(arg, ast.Constant) and isinstance(
            arg.value, (int, float)
        )
    return False


def _is_blocking_result(raw: str, call: ast.Call) -> bool:
    """Zero-argument ``.result()`` — a concurrent.futures wait."""
    return raw.endswith(".result") and not call.args and not call.keywords


def blocking_reason(site: CallSite) -> Optional[str]:
    """Why this call site blocks the loop, or ``None``."""
    target = site.target()
    if target is None:
        return None
    if target in BLOCKING_CALLS:
        return f"`{target}` parks the thread"
    for prefix in BLOCKING_PREFIXES:
        if target.startswith(prefix):
            return f"`{target}` does synchronous IO"
    for suffix in BLOCKING_SUFFIXES:
        if target.endswith(suffix):
            return (
                "`MonteCarloEstimator.estimate` is a CPU-bound campaign; "
                "on the event loop it stalls every other request"
            )
    raw = site.raw_name
    if raw is not None:
        if _is_blocking_join(raw, site.node):
            return f"`{raw}()` waits for a thread/process"
        if _is_blocking_result(raw, site.node):
            return f"`{raw}()` waits for a future"
    if target == "open" or target.endswith(".open"):
        if target in ("open", "io.open"):
            return "`open` does synchronous file IO"
    return None


class AsyncBlockingPass(ProjectPass):
    id = "async-blocking"
    severity = Severity.ERROR
    description = (
        "no blocking call (time.sleep, subprocess, sync IO, .result()/"
        ".join(), direct MonteCarloEstimator.estimate) may be reachable "
        "from an async def in a service module without an executor hop"
    )

    #: Module segments that put a module's coroutines in scope.
    scope = frozenset({"service"})

    def run(self, graph: ProjectGraph) -> Iterator[Finding]:
        # site id -> (finding node, chain, reason); one finding per site.
        found: Dict[Tuple[str, int, int], Tuple[FunctionInfo, CallSite, List[str], str]] = {}
        for entry in graph.async_functions():
            if not self.scope & set(module_segments(entry.module.name)):
                continue
            self._walk(graph, entry, found)
        for function, site, chain, reason in found.values():
            rendered = " -> ".join(chain)
            yield self.finding(
                str(function.path),
                site.node,
                f"{reason}; reachable from async `{rendered}` without an "
                "executor hop — use await loop.run_in_executor(...) or "
                "asyncio.to_thread(...)",
            )

    def _walk(
        self,
        graph: ProjectGraph,
        entry: FunctionInfo,
        found: Dict[Tuple[str, int, int], Tuple[FunctionInfo, CallSite, List[str], str]],
    ) -> None:
        # BFS with parent chains; visited per entry keeps chains short.
        queue: List[Tuple[FunctionInfo, Tuple[str, ...]]] = [
            (entry, (entry.qualname,))
        ]
        visited = {entry.qualname}
        while queue:
            function, chain = queue.pop(0)
            for site in function.calls:
                if site.boundary is not None:
                    continue  # sanctioned hop: nothing past it runs here
                reason = blocking_reason(site)
                if reason is not None:
                    key = (
                        str(function.path),
                        site.node.lineno,
                        site.node.col_offset,
                    )
                    if key not in found or len(chain) < len(found[key][2]):
                        short = [q.rsplit(".", 1)[-1] for q in chain]
                        found[key] = (function, site, short, reason)
                    continue
                callee = graph.resolve_to_function(site.resolved)
                if callee is None or callee.qualname in visited:
                    continue
                visited.add(callee.qualname)
                queue.append((callee, chain + (callee.qualname,)))
                if site.resolved is not None:
                    for part in graph.constructor_parts(site.resolved):
                        if part.qualname not in visited:
                            visited.add(part.qualname)
                            queue.append((part, chain + (part.qualname,)))
