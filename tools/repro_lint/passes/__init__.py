"""Project-level analysis passes (call graph / dataflow backed).

A :class:`ProjectPass` is the multi-file counterpart of
:class:`repro_lint.engine.Rule`: it sees the whole
:class:`~repro_lint.callgraph.ProjectGraph` instead of one module, so it
can follow calls across imports. Findings flow through the same per-file
suppression and baseline machinery as statement-level rules.

Adding a pass: subclass :class:`ProjectPass` in a module under this
package, append an instance to :data:`ALL_PASSES`, and add at least one
seeded true positive and one guarded false positive to the fixture
corpus under ``tests/tools/fixtures/``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List

from repro_lint.callgraph import ProjectGraph
from repro_lint.engine import Finding, Severity


class ProjectPass:
    """Base class for flow-aware passes over the project graph."""

    id: str = ""
    severity: Severity = Severity.ERROR
    description: str = ""

    def run(self, graph: ProjectGraph) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, path: str, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule_id=self.id,
            severity=self.severity,
            path=path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


def module_segments(module_name: str) -> List[str]:
    return module_name.split(".")


from repro_lint.passes.async_safety import AsyncBlockingPass  # noqa: E402
from repro_lint.passes.determinism import WallclockPass  # noqa: E402
from repro_lint.passes.rng_flow import (  # noqa: E402
    RngBoundaryReusePass,
    RngRawSeedPass,
    RngUnorderedIterPass,
)

ALL_PASSES: List[ProjectPass] = [
    AsyncBlockingPass(),
    RngBoundaryReusePass(),
    RngRawSeedPass(),
    RngUnorderedIterPass(),
    WallclockPass(),
]

_BY_ID: Dict[str, ProjectPass] = {p.id: p for p in ALL_PASSES}


def pass_by_id(pass_id: str) -> ProjectPass:
    """Look a pass up by its identifier; raises ``KeyError`` if unknown."""
    return _BY_ID[pass_id]


__all__ = [
    "ALL_PASSES",
    "AsyncBlockingPass",
    "ProjectPass",
    "RngBoundaryReusePass",
    "RngRawSeedPass",
    "RngUnorderedIterPass",
    "WallclockPass",
    "module_segments",
    "pass_by_id",
]
