"""``[tool.repro-lint]`` configuration from pyproject.toml.

Recognised keys::

    [tool.repro-lint]
    baseline = ".repro-lint-baseline.json"

    [tool.repro-lint.severity]
    rng-raw-seed = "warning"   # or "error", or "off" to disable the rule

Severity overrides apply to statement rules and project passes alike;
``"off"`` removes the rule from the run entirely (its suppressions
become unnecessary but stay harmless). Parsing uses :mod:`tomllib`
(3.11+); on older interpreters, or when the file is missing or
malformed, the config silently degrades to defaults so the linter never
fails because of its own configuration plumbing.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Dict, Optional

VALID_SEVERITIES = ("off", "warning", "error")


@dataclasses.dataclass
class LintConfig:
    """Parsed ``[tool.repro-lint]`` settings (all optional)."""

    baseline: Optional[str] = None
    #: rule/pass id -> "off" | "warning" | "error"
    severity: Dict[str, str] = dataclasses.field(default_factory=dict)
    source: Optional[Path] = None

    def disabled_ids(self) -> frozenset:
        return frozenset(
            rule_id
            for rule_id, level in self.severity.items()
            if level == "off"
        )

    def overrides(self) -> Dict[str, str]:
        return {
            rule_id: level
            for rule_id, level in self.severity.items()
            if level in ("warning", "error")
        }


def load_config(path: Optional[Path] = None) -> LintConfig:
    """Read ``[tool.repro-lint]`` from ``path`` (default: ./pyproject.toml)."""
    candidate = Path(path) if path is not None else Path("pyproject.toml")
    if not candidate.is_file():
        return LintConfig()
    try:
        import tomllib
    except ImportError:  # pre-3.11 interpreter: degrade to defaults
        return LintConfig()
    try:
        with candidate.open("rb") as handle:
            payload = tomllib.load(handle)
    except (OSError, ValueError):
        return LintConfig()
    section = payload.get("tool", {}).get("repro-lint", {})
    if not isinstance(section, dict):
        return LintConfig(source=candidate)
    baseline = section.get("baseline")
    severity_raw = section.get("severity", {})
    severity: Dict[str, str] = {}
    if isinstance(severity_raw, dict):
        for rule_id, level in severity_raw.items():
            if isinstance(level, str) and level.lower() in VALID_SEVERITIES:
                severity[str(rule_id)] = level.lower()
    return LintConfig(
        baseline=baseline if isinstance(baseline, str) else None,
        severity=severity,
        source=candidate,
    )
