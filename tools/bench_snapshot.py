#!/usr/bin/env python3
"""Normalize a raw pytest-benchmark JSON dump into a ``BENCH_<n>.json``
snapshot at the repository root.

Usage::

    pytest benchmarks/ --benchmark-only --benchmark-json=.bench_raw.json
    python tools/bench_ladder.py --output .bench_ladder.json   # optional
    python tools/bench_snapshot.py .bench_raw.json --ladder .bench_ladder.json

The snapshot keeps only what trajectory comparisons need — per-benchmark
timing statistics plus enough machine context to judge comparability —
so diffs between snapshots stay readable. ``tools/bench_compare.py``
consumes two snapshots and fails on regressions. Numbering is automatic:
the next free ``BENCH_<n>.json`` in the repo root (override with
``--output``).
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from typing import List, Optional

SNAPSHOT_VERSION = 1
SNAPSHOT_PATTERN = re.compile(r"^BENCH_(\d+)\.json$")

#: machine_info keys copied into the snapshot (comparability context).
MACHINE_KEYS = ("node", "processor", "machine", "python_version", "cpu")

#: per-benchmark stats copied into the snapshot.
STAT_KEYS = ("mean", "stddev", "median", "min", "max", "rounds", "iterations")

#: extra_info memory counters copied into the snapshot (report-only —
#: ``bench_compare`` prints them but the regression gate ignores them).
MEMORY_KEYS = ("peak_rss_kb", "rss_kb")


def existing_snapshots(root: str) -> List[str]:
    """``BENCH_<n>.json`` files under ``root``, sorted by ``n``."""
    found = []
    for name in os.listdir(root):
        match = SNAPSHOT_PATTERN.match(name)
        if match:
            found.append((int(match.group(1)), os.path.join(root, name)))
    return [path for _, path in sorted(found)]


def next_snapshot_path(root: str) -> str:
    numbers = [0]
    for name in os.listdir(root):
        match = SNAPSHOT_PATTERN.match(name)
        if match:
            numbers.append(int(match.group(1)))
    return os.path.join(root, f"BENCH_{max(numbers) + 1}.json")


def normalize(raw: dict, ladder: Optional[dict] = None) -> dict:
    """Reduce a pytest-benchmark report to the snapshot schema.

    ``ladder`` is an optional ``tools/bench_ladder.py`` report; when
    given it is embedded verbatim as the snapshot's ``tiers`` block so
    ``bench_compare`` can gate per-tier regressions alongside the
    pytest-benchmark rows.
    """
    machine_info = raw.get("machine_info", {})
    machine = {
        key: machine_info[key] for key in MACHINE_KEYS if key in machine_info
    }
    benchmarks = {}
    for entry in raw.get("benchmarks", []):
        stats = entry.get("stats", {})
        record = {key: stats[key] for key in STAT_KEYS if key in stats}
        extra = entry.get("extra_info", {})
        memory = {key: extra[key] for key in MEMORY_KEYS if key in extra}
        if memory:
            record["memory"] = memory
        benchmarks[entry["fullname"]] = record
    if not benchmarks:
        raise ValueError("raw report contains no benchmarks")
    snapshot = {
        "version": SNAPSHOT_VERSION,
        "source": "pytest-benchmark",
        "datetime": raw.get("datetime"),
        "machine_info": machine,
        "benchmarks": benchmarks,
    }
    if ladder is not None:
        if "benchmarks" not in ladder:
            raise ValueError("ladder report has no 'benchmarks' block")
        snapshot["tiers"] = ladder
    return snapshot


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Normalize pytest-benchmark JSON into BENCH_<n>.json"
    )
    parser.add_argument("raw", help="raw --benchmark-json output file")
    parser.add_argument(
        "--root",
        default=".",
        help="repository root holding BENCH_<n>.json files (default: cwd)",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="explicit snapshot path (default: next free BENCH_<n>.json)",
    )
    parser.add_argument(
        "--ladder",
        default=None,
        help="bench_ladder.py report to embed as the snapshot's "
        "'tiers' block",
    )
    args = parser.parse_args(argv)

    try:
        with open(args.raw, "r", encoding="utf-8") as handle:
            raw = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"bench-snapshot: cannot read {args.raw}: {exc}", file=sys.stderr)
        return 2
    ladder = None
    if args.ladder is not None:
        try:
            with open(args.ladder, "r", encoding="utf-8") as handle:
                ladder = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            print(
                f"bench-snapshot: cannot read {args.ladder}: {exc}",
                file=sys.stderr,
            )
            return 2
    try:
        snapshot = normalize(raw, ladder=ladder)
    except (KeyError, ValueError) as exc:
        print(f"bench-snapshot: malformed report: {exc}", file=sys.stderr)
        return 2

    output = args.output or next_snapshot_path(args.root)
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(
        f"bench-snapshot: wrote {output} "
        f"({len(snapshot['benchmarks'])} benchmarks)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
