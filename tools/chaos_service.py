#!/usr/bin/env python
"""Chaos-test the evaluation service and emit a committed SLO report.

The drill runs everything in one process so it can reach past the HTTP
surface for fault injection (worker PIDs, latency hooks) while still
driving all *traffic* through the real TCP stack:

1. compute the campaign answer **undisturbed** (same payload, in
   process) — the bit-identity baseline;
2. boot the HTTP service on an ephemeral port;
3. submit the campaign, then drive a ramp/hold/spike eval load;
4. meanwhile: SIGKILL every live worker (twice), and inject worker-side
   latency for a window mid-run;
5. assert the robustness contract:
   * **zero 5xx** across the load (sheds are 429 — the design working,
     not an error),
   * the chaos-ridden campaign's aggregates are **bit-identical** to the
     undisturbed baseline (checkpoint resume correctness),
   * **no request outlives its deadline** plus the kill grace and a
     scheduling slack,
   * ``/readyz`` returns 200 again within the recovery window;
6. write the SLO report (throughput, p50/p95/p99, error/shed rate) in
   the repo's ``BENCH_*.json`` style.

Exit status 0 iff every assertion holds — CI runs this as the
``service-smoke`` job.

Usage::

    PYTHONPATH=src python tools/chaos_service.py --output SLO_1.json
    PYTHONPATH=src python tools/chaos_service.py --quick   # fast CI drill
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import sys
import tempfile
import time
from typing import Any, Dict, List, Optional

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro.service import (  # noqa: E402 — after sys.path setup
    HttpServer,
    ServiceConfig,
    SOSEvaluationService,
    hold,
    http_request,
    ramp,
    run_load,
    slo_report,
    spike,
)
from repro.service.jobs import execute_job  # noqa: E402

#: Architecture/attack under test: the paper's baseline 3-layer SOS
#: deployment facing a one-burst attacker.
ARCHITECTURE = {
    "layers": 3,
    "mapping": "one-to-two",
    "total_overlay_nodes": 300,
    "sos_nodes": 30,
}
ATTACK = {"kind": "one-burst", "break_in_budget": 20, "congestion_budget": 50}

#: Small payload variations for the eval load; cycling through them
#: exercises both cache hits (repeats) and misses (distinct keys).
EVAL_VARIANTS = [10, 20, 30, 40, 50, 30, 20, 10]


def campaign_payload(args: argparse.Namespace) -> Dict[str, Any]:
    return {
        "architecture": dict(ARCHITECTURE),
        "attack": dict(ATTACK),
        "trials": args.trials,
        "clients_per_trial": args.clients_per_trial,
        "seed": args.seed,
        "checkpoint_every": args.checkpoint_every,
    }


def eval_factory(deadline_ms: float):
    def factory(index: int) -> Dict[str, Any]:
        body = {
            "architecture": dict(ARCHITECTURE),
            "attack": dict(ATTACK),
            "deadline_ms": deadline_ms,
        }
        body["architecture"]["sos_nodes"] = EVAL_VARIANTS[
            index % len(EVAL_VARIANTS)
        ]
        return body

    return factory


async def _kill_workers_mid_campaign(
    service: SOSEvaluationService,
    campaign_id: str,
    kills: int,
    kill_gap: float,
    events: List[Dict[str, Any]],
) -> int:
    """SIGKILL every live worker once the campaign is running.

    Killing the whole pool guarantees the campaign worker dies mid-job;
    the supervisor + re-dispatch path must resume it from its
    checkpoint.
    """
    killed = 0
    for _ in range(200):
        record = service._campaigns.get(campaign_id)
        if record is not None and record["status"] == "running":
            break
        await asyncio.sleep(0.05)
    for round_index in range(kills):
        pids = list(service.pool.worker_pids)
        for pid in pids:
            try:
                os.kill(pid, signal.SIGKILL)
                killed += 1
            except (ProcessLookupError, PermissionError):
                pass
        events.append(
            {
                "t": time.monotonic(),
                "event": "kill_workers",
                "round": round_index,
                "pids": pids,
            }
        )
        await asyncio.sleep(kill_gap)
    return killed


async def _latency_window(
    service: SOSEvaluationService,
    delay: float,
    latency_ms: float,
    duration: float,
    events: List[Dict[str, Any]],
) -> None:
    await asyncio.sleep(delay)
    service.set_chaos(latency_ms=latency_ms)
    events.append(
        {"t": time.monotonic(), "event": "latency_on", "ms": latency_ms}
    )
    await asyncio.sleep(duration)
    service.set_chaos()
    events.append({"t": time.monotonic(), "event": "latency_off"})


async def _await_campaign(
    port: int, campaign_id: str, timeout: float
) -> Optional[Dict[str, Any]]:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _status, _headers, body = await http_request(
            "127.0.0.1", port, "GET", f"/campaign/{campaign_id}"
        )
        if body.get("status") in ("completed", "failed", "timeout", "shed",
                                  "cancelled"):
            return body
        await asyncio.sleep(0.2)
    return None


async def _await_ready(port: int, timeout: float) -> float:
    """Seconds until /readyz returns 200 (or -1 on timeout)."""
    started = time.monotonic()
    while time.monotonic() - started < timeout:
        try:
            status, _headers, _body = await http_request(
                "127.0.0.1", port, "GET", "/readyz", timeout=5.0
            )
        except (OSError, asyncio.TimeoutError):
            status = 0
        if status == 200:
            return time.monotonic() - started
        await asyncio.sleep(0.25)
    return -1.0


async def drill(args: argparse.Namespace) -> Dict[str, Any]:
    failures: List[str] = []
    events: List[Dict[str, Any]] = []

    # ------------------------------------------------------------------
    # 1. Undisturbed baseline (same config the service will use).
    # ------------------------------------------------------------------
    payload = campaign_payload(args)
    with tempfile.TemporaryDirectory() as tmp:
        baseline_started = time.monotonic()
        baseline = execute_job(
            "campaign", payload,
            checkpoint_path=os.path.join(tmp, "baseline.json"),
        )
        baseline_seconds = time.monotonic() - baseline_started

    # ------------------------------------------------------------------
    # 2-4. Boot, load, chaos.
    # ------------------------------------------------------------------
    with tempfile.TemporaryDirectory() as spool:
        config = ServiceConfig(
            workers=args.workers,
            queue_capacity=args.queue_capacity,
            spool_dir=spool,
            seed=args.seed,
        )
        server = HttpServer(SOSEvaluationService(config))
        async with server:
            port = server.port
            service = server.service

            _status, _headers, submitted = await http_request(
                "127.0.0.1", port, "POST", "/campaign", body=payload
            )
            campaign_id = submitted.get("campaign_id")
            if not campaign_id:
                failures.append(f"campaign submission failed: {submitted}")
                return {"failures": failures}

            phases = [
                ramp(args.ramp_seconds, to_rps=args.hold_rps),
                hold(args.hold_seconds, rps=args.hold_rps),
                spike(args.spike_seconds, rps=args.spike_rps),
                hold(args.ramp_seconds, rps=args.hold_rps / 2),
            ]
            chaos_tasks = [
                asyncio.ensure_future(
                    _kill_workers_mid_campaign(
                        service, campaign_id, args.kills, args.kill_gap, events
                    )
                ),
                asyncio.ensure_future(
                    _latency_window(
                        service,
                        delay=args.ramp_seconds + 0.5,
                        latency_ms=args.latency_ms,
                        duration=args.latency_seconds,
                        events=events,
                    )
                ),
            ]
            records = await run_load(
                "127.0.0.1",
                port,
                phases,
                eval_factory(args.deadline_ms),
                timeout=args.deadline_ms / 1000.0 + 10.0,
            )
            workers_killed = await chaos_tasks[0]
            await chaos_tasks[1]

            campaign = await _await_campaign(
                port, campaign_id, timeout=args.campaign_timeout
            )
            ready_after = await _await_ready(port, timeout=10.0)
            _status, _headers, metrics = await http_request(
                "127.0.0.1", port, "GET", "/metrics"
            )

    # ------------------------------------------------------------------
    # 5. Assertions.
    # ------------------------------------------------------------------
    statuses: Dict[str, int] = {}
    for record in records:
        key = str(record.status) if record.status else "transport_error"
        statuses[key] = statuses.get(key, 0) + 1
    bad = {
        key: count
        for key, count in statuses.items()
        if key == "transport_error" or key.startswith("5")
    }
    if bad:
        failures.append(f"load saw 5xx/transport errors: {bad}")

    bit_identical = False
    restarts = 0
    if campaign is None:
        failures.append("campaign did not finish within the drill window")
    elif campaign.get("status") != "completed":
        failures.append(
            f"campaign ended {campaign.get('status')!r}: "
            f"{campaign.get('error')}"
        )
    else:
        restarts = int(campaign.get("worker_restarts", 0))
        bit_identical = campaign.get("result") == baseline
        if not bit_identical:
            failures.append(
                "campaign aggregates diverged from the undisturbed baseline: "
                f"{campaign.get('result')} != {baseline}"
            )

    latency_budget = args.deadline_ms / 1000.0 + config.deadline_grace + 2.0
    worst = max((record.latency for record in records), default=0.0)
    if worst > latency_budget:
        failures.append(
            f"a request took {worst:.2f}s, past deadline+grace+slack "
            f"({latency_budget:.2f}s)"
        )

    if ready_after < 0:
        failures.append("/readyz never recovered after the chaos window")

    if workers_killed == 0:
        failures.append("chaos killed no workers (drill did not bite)")

    # ------------------------------------------------------------------
    # 6. Report.
    # ------------------------------------------------------------------
    report = slo_report(
        records,
        phases,
        extra={
            "benchmark": "chaos_service",
            "config": {
                "workers": args.workers,
                "queue_capacity": args.queue_capacity,
                "deadline_ms": args.deadline_ms,
                "trials": args.trials,
                "clients_per_trial": args.clients_per_trial,
                "seed": args.seed,
                "checkpoint_every": args.checkpoint_every,
            },
            "chaos": {
                "workers_killed": workers_killed,
                "kill_rounds": args.kills,
                "latency_injected_ms": args.latency_ms,
                "latency_window_seconds": args.latency_seconds,
            },
            "campaign": {
                "status": (campaign or {}).get("status"),
                "worker_restarts": restarts,
                "bit_identical_to_baseline": bit_identical,
                "undisturbed_seconds": baseline_seconds,
            },
            "recovery": {"readyz_seconds": ready_after},
            "pool": metrics.get("pool", {}),
            "breaker": metrics.get("breaker", {}),
            "queue": metrics.get("queue", {}),
            "assertions": {
                "passed": not failures,
                "failures": failures,
            },
        },
    )
    return report


def parse_args(argv: Optional[List[str]] = None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--queue-capacity", type=int, default=64)
    parser.add_argument("--trials", type=int, default=96,
                        help="campaign Monte-Carlo trials")
    parser.add_argument("--clients-per-trial", type=int, default=8)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--checkpoint-every", type=int, default=4)
    parser.add_argument("--deadline-ms", type=float, default=10_000.0,
                        help="per-eval-request deadline")
    parser.add_argument("--hold-rps", type=float, default=8.0)
    parser.add_argument("--spike-rps", type=float, default=30.0)
    parser.add_argument("--ramp-seconds", type=float, default=2.0)
    parser.add_argument("--hold-seconds", type=float, default=6.0)
    parser.add_argument("--spike-seconds", type=float, default=2.0)
    parser.add_argument("--kills", type=int, default=2,
                        help="rounds of kill-every-worker")
    parser.add_argument("--kill-gap", type=float, default=1.5)
    parser.add_argument("--latency-ms", type=float, default=100.0)
    parser.add_argument("--latency-seconds", type=float, default=2.0)
    parser.add_argument("--campaign-timeout", type=float, default=300.0)
    parser.add_argument("--output", default=None,
                        help="write the SLO report JSON here")
    parser.add_argument("--quick", action="store_true",
                        help="shrink the drill for CI smoke runs")
    args = parser.parse_args(argv)
    if args.quick:
        args.trials = min(args.trials, 48)
        args.hold_seconds = min(args.hold_seconds, 4.0)
        args.hold_rps = min(args.hold_rps, 6.0)
        args.spike_rps = min(args.spike_rps, 20.0)
    return args


def main(argv: Optional[List[str]] = None) -> int:
    args = parse_args(argv)
    report = asyncio.run(drill(args))
    assertions = report.get("assertions", {"passed": False,
                                           "failures": ["drill aborted"]})
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"chaos-service: report written to {args.output}")
    slo = report.get("slo", {})
    print(
        "chaos-service: "
        f"requests={report.get('requests', {}).get('total', 0)} "
        f"throughput={slo.get('throughput_rps', 0):.1f}rps "
        f"p50={slo.get('p50_ms', 0):.0f}ms "
        f"p99={slo.get('p99_ms', 0):.0f}ms "
        f"error_rate={slo.get('error_rate', 0):.3f} "
        f"shed_rate={slo.get('shed_rate', 0):.3f}"
    )
    campaign = report.get("campaign", {})
    print(
        "chaos-service: campaign "
        f"status={campaign.get('status')} "
        f"restarts={campaign.get('worker_restarts')} "
        f"bit_identical={campaign.get('bit_identical_to_baseline')}"
    )
    if assertions["passed"]:
        print("chaos-service: PASS — all robustness assertions held")
        return 0
    for failure in assertions["failures"]:
        print(f"chaos-service: FAIL — {failure}")
    return 1


if __name__ == "__main__":
    sys.exit(main())
