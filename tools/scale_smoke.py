#!/usr/bin/env python3
"""Scale smoke test: large-N flooded fastsim + batched Chord lookups.

Deploys one SOS instance over an ``--nodes``-node overlay (default 10⁵),
floods a fraction of layer 1, runs the vectorized packet engine over the
struct-of-arrays encoding, then pushes ``--lookups`` batched Chord
lookups (default 10⁴) through the deployment's ring — all under one
wall-clock budget. Per-phase timings and the process memory high-water
mark land in a JSON artifact (CI uploads it from the ``bench-smoke``
job), so the scale path the array core exists for is exercised on every
PR, not just when someone remembers to run a million-node experiment.

Usage::

    PYTHONPATH=src python tools/scale_smoke.py --output scale-smoke.json
    PYTHONPATH=src python tools/scale_smoke.py --nodes 1000000 --budget 900

Exit status is non-zero when the wall budget is exceeded (or a phase
fails), which is what the CI step keys on.
"""

from __future__ import annotations

import argparse
import json
import resource
import sys
import time
from typing import List, Optional


def peak_rss_kb() -> int:
    """Process peak resident set in kB (Linux ``ru_maxrss`` unit)."""
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def run_scale_smoke(
    nodes: int,
    sos_nodes: int,
    lookups: int,
    clients: int,
    flood_fraction: float,
    seed: int,
) -> dict:
    """Run the deploy → flooded fastsim → Chord phases; returns the report."""
    import numpy as np

    from repro.core import SOSArchitecture
    from repro.perf.fastsim import encode_deployment, run_fast
    from repro.simulation.packet_sim import PacketSimConfig, flood_layer
    from repro.sos.deployment import SOSDeployment
    from repro.utils.seeding import make_rng

    rng = make_rng(seed)
    phases: dict = {}

    start = time.perf_counter()
    architecture = SOSArchitecture(
        layers=3,
        mapping="one-to-half",
        total_overlay_nodes=nodes,
        sos_nodes=sos_nodes,
    )
    deployment = SOSDeployment.deploy(architecture, rng=rng)
    phases["deploy"] = {
        "seconds": time.perf_counter() - start,
        "nodes": nodes,
        "sos_nodes": sos_nodes,
    }

    start = time.perf_counter()
    arrays = encode_deployment(deployment)
    phases["encode"] = {
        "seconds": time.perf_counter() - start,
        "slots": int(len(arrays.node_ids)),
    }

    config = PacketSimConfig(
        clients=clients,
        duration=6.0,
        warmup=1.0,
        flood_start=2.0,
        client_rate=5.0,
        flood_rate=200.0,
    )
    start = time.perf_counter()
    targets = flood_layer(deployment, 1, flood_fraction, rng=rng)
    report = run_fast(deployment, config, rng=rng, flood_targets=targets)
    phases["flooded_fastsim"] = {
        "seconds": time.perf_counter() - start,
        "flood_targets": len(targets),
        "sent": report.sent,
        "delivered": report.delivered,
        "delivery_ratio": report.delivery_ratio,
        "attack_packets_absorbed": report.attack_packets_absorbed,
    }

    start = time.perf_counter()
    ring = deployment.chord
    live = np.asarray(ring.live_node_ids, dtype=np.int64)
    keys = rng.integers(0, ring.space.size, size=lookups)
    starts = live[rng.integers(0, len(live), size=lookups)]
    batch = ring.lookup_batch([int(k) for k in keys], [int(s) for s in starts])
    phases["chord_lookup_batch"] = {
        "seconds": time.perf_counter() - start,
        "lookups": lookups,
        "succeeded": int(batch.succeeded.sum()),
        "mean_hops": float(batch.hops.mean()),
    }

    return {"phases": phases}


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Large-N flooded fastsim + Chord smoke under a wall budget"
    )
    parser.add_argument("--nodes", type=int, default=100_000)
    parser.add_argument("--sos-nodes", type=int, default=3_000)
    parser.add_argument("--lookups", type=int, default=10_000)
    parser.add_argument("--clients", type=int, default=200)
    parser.add_argument("--flood-fraction", type=float, default=0.25)
    parser.add_argument("--seed", type=int, default=20040326)
    parser.add_argument(
        "--budget",
        type=float,
        default=300.0,
        help="wall-clock budget in seconds (exceeding it fails the run)",
    )
    parser.add_argument("--output", default=None, help="JSON artifact path")
    args = parser.parse_args(argv)

    wall_start = time.perf_counter()
    result = run_scale_smoke(
        nodes=args.nodes,
        sos_nodes=args.sos_nodes,
        lookups=args.lookups,
        clients=args.clients,
        flood_fraction=args.flood_fraction,
        seed=args.seed,
    )
    elapsed = time.perf_counter() - wall_start
    result.update(
        {
            "nodes": args.nodes,
            "sos_nodes": args.sos_nodes,
            "wall_seconds": elapsed,
            "budget_seconds": args.budget,
            "peak_rss_kb": peak_rss_kb(),
            "within_budget": elapsed <= args.budget,
        }
    )

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(result, handle, indent=2, sort_keys=True)
            handle.write("\n")

    for name, phase in result["phases"].items():
        print(f"scale-smoke: {name}: {phase['seconds']:.2f}s")
    print(
        f"scale-smoke: N={args.nodes} wall={elapsed:.1f}s "
        f"(budget {args.budget:.0f}s) peak_rss={peak_rss_kb() / 1024:.0f}MB"
    )
    if not result["within_budget"]:
        print("scale-smoke: FAILED — wall budget exceeded", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
