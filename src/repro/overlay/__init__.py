"""Overlay substrate: identifier space, node population, and Chord DHT."""

from repro.overlay.chord import (
    DEFAULT_SUCCESSOR_LIST,
    ChordNode,
    ChordRing,
    LookupResult,
)
from repro.overlay.identifiers import DEFAULT_ID_BITS, IdentifierSpace
from repro.overlay.network import OverlayNetwork
from repro.overlay.node import NodeHealth, OverlayNode

__all__ = [
    "DEFAULT_ID_BITS",
    "DEFAULT_SUCCESSOR_LIST",
    "ChordNode",
    "ChordRing",
    "LookupResult",
    "IdentifierSpace",
    "OverlayNetwork",
    "NodeHealth",
    "OverlayNode",
]
