"""Overlay node model.

An :class:`OverlayNode` is one of the ``N`` hosts in the overlay population.
A subset of them is enrolled into the SOS system and given a role
(:class:`~repro.sos.roles.Role`); the rest are plain overlay members the SOS
nodes hide among. Nodes track their *health* — the attack simulator marks
them compromised (broken into) or congested — and their SOS neighbor table
(identities of next-layer nodes), which is exactly what a successful
break-in disclosed to the attacker.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import FrozenSet, Optional, Tuple

from repro.errors import ConfigurationError


class NodeHealth(str, enum.Enum):
    """Health of an overlay node under attack and benign churn.

    ``GOOD`` nodes route normally. ``COMPROMISED`` nodes were broken into
    (the attacker read their neighbor table; they no longer route).
    ``CONGESTED`` nodes are flooded and drop everything. Both compromised
    and congested nodes are *bad* in the paper's terminology.
    ``CRASHED`` nodes suffered a benign failure (process crash, host
    reboot, partition) independent of the attack; they drop traffic like
    congested nodes but disclose nothing, and benign recovery restores
    them without re-keying.
    """

    GOOD = "good"
    COMPROMISED = "compromised"
    CONGESTED = "congested"
    CRASHED = "crashed"

    @property
    def is_bad(self) -> bool:
        return self is not NodeHealth.GOOD


@dataclasses.dataclass
class OverlayNode:
    """A host in the overlay population.

    Attributes
    ----------
    node_id:
        Position on the identifier ring (unique within a network).
    address:
        Human-readable address, e.g. ``"node-417"``.
    sos_layer:
        1-based SOS layer this node serves in, or ``None`` for plain overlay
        members. The filter ring uses layer ``L+1``.
    neighbors:
        Identifiers of this node's next-layer SOS neighbors (its routing
        table toward the target) — the secret a break-in discloses.
    health:
        Current health; see :class:`NodeHealth`.
    """

    node_id: int
    address: str
    sos_layer: Optional[int] = None
    neighbors: Tuple[int, ...] = ()
    health: NodeHealth = NodeHealth.GOOD

    def __post_init__(self) -> None:
        if not isinstance(self.node_id, int) or isinstance(self.node_id, bool):
            raise ConfigurationError(f"node_id must be an int, got {self.node_id!r}")
        if self.node_id < 0:
            raise ConfigurationError(f"node_id must be >= 0, got {self.node_id}")
        if self.sos_layer is not None and self.sos_layer < 1:
            raise ConfigurationError(
                f"sos_layer must be >= 1 or None, got {self.sos_layer}"
            )

    @property
    def is_sos(self) -> bool:
        """True when the node is enrolled in the SOS system."""
        return self.sos_layer is not None

    @property
    def is_good(self) -> bool:
        """True when the node can still route traffic."""
        return self.health is NodeHealth.GOOD

    @property
    def is_bad(self) -> bool:
        """True when broken-into or congested (cannot route)."""
        return self.health.is_bad

    def compromise(self) -> FrozenSet[int]:
        """Break into the node; returns the disclosed neighbor identifiers.

        Compromising is idempotent; a congested node can still be broken
        into (the attacker would not bother, but the model allows it).
        """
        self.health = NodeHealth.COMPROMISED
        return frozenset(self.neighbors)

    @property
    def is_crashed(self) -> bool:
        """True when the node is down due to benign failure, not attack."""
        return self.health is NodeHealth.CRASHED

    def congest(self) -> None:
        """Flood the node. Compromised nodes stay compromised (the paper's
        attacker never wastes congestion resources on nodes it owns)."""
        if self.health is NodeHealth.COMPROMISED:
            return
        self.health = NodeHealth.CONGESTED

    def crash(self) -> bool:
        """Benign failure: a GOOD node goes down without disclosing anything.

        Compromised and congested nodes are already unroutable, so a crash
        on them is absorbed (returns False); the fault injector uses the
        return value to decide whether a recovery needs scheduling.
        """
        if self.health is not NodeHealth.GOOD:
            return False
        self.health = NodeHealth.CRASHED
        return True

    def restore(self) -> bool:
        """Benign recovery: undo a crash, never attack damage.

        Returns True when the node actually came back; repairing
        compromised or congested nodes is the defender's job
        (:meth:`recover`), because it implies re-keying.
        """
        if self.health is not NodeHealth.CRASHED:
            return False
        self.health = NodeHealth.GOOD
        return True

    def recover(self) -> None:
        """Restore the node to good health (used by repair experiments)."""
        self.health = NodeHealth.GOOD

    def set_neighbors(self, neighbors: Tuple[int, ...]) -> None:
        """Install the SOS next-layer neighbor table."""
        self.neighbors = tuple(neighbors)
