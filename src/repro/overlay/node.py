"""Overlay node model.

An :class:`OverlayNode` is one of the ``N`` hosts in the overlay population.
A subset of them is enrolled into the SOS system and given a role
(:class:`~repro.sos.roles.Role`); the rest are plain overlay members the SOS
nodes hide among. Nodes track their *health* — the attack simulator marks
them compromised (broken into) or congested — and their SOS neighbor table
(identities of next-layer nodes), which is exactly what a successful
break-in disclosed to the attacker.

Since the struct-of-arrays refactor an :class:`OverlayNode` is a thin
*view*: its state lives in an :class:`~repro.overlay.arrays.OverlayStore`
column set and every property read/write goes straight to the columns, so
object-API consumers and array-path consumers always see the same state.
Standalone construction (``OverlayNode(node_id=5, address="n")``) still
works — it allocates a private single-row store.
"""

from __future__ import annotations

import enum
from typing import FrozenSet, Optional, Tuple

from repro.errors import ConfigurationError
from repro.overlay import arrays as _arrays


class NodeHealth(str, enum.Enum):
    """Health of an overlay node under attack and benign churn.

    ``GOOD`` nodes route normally. ``COMPROMISED`` nodes were broken into
    (the attacker read their neighbor table; they no longer route).
    ``CONGESTED`` nodes are flooded and drop everything. Both compromised
    and congested nodes are *bad* in the paper's terminology.
    ``CRASHED`` nodes suffered a benign failure (process crash, host
    reboot, partition) independent of the attack; they drop traffic like
    congested nodes but disclose nothing, and benign recovery restores
    them without re-keying.
    """

    GOOD = "good"
    COMPROMISED = "compromised"
    CONGESTED = "congested"
    CRASHED = "crashed"

    @property
    def is_bad(self) -> bool:
        return self is not NodeHealth.GOOD


#: Enum ↔ int8 column code translation (declaration order == code order).
_HEALTH_BY_CODE: Tuple[NodeHealth, ...] = (
    NodeHealth.GOOD,
    NodeHealth.COMPROMISED,
    NodeHealth.CONGESTED,
    NodeHealth.CRASHED,
)
_CODE_BY_HEALTH = {health: code for code, health in enumerate(_HEALTH_BY_CODE)}


class OverlayNode:
    """A host in the overlay population (view over store columns).

    Attributes
    ----------
    node_id:
        Position on the identifier ring (unique within a network).
    address:
        Human-readable address, e.g. ``"node-417"``.
    sos_layer:
        1-based SOS layer this node serves in, or ``None`` for plain overlay
        members. The filter ring uses layer ``L+1``.
    neighbors:
        Identifiers of this node's next-layer SOS neighbors (its routing
        table toward the target) — the secret a break-in discloses.
    health:
        Current health; see :class:`NodeHealth`.
    """

    __slots__ = ("_store", "_row", "node_id", "address")

    def __init__(
        self,
        node_id: int,
        address: str,
        sos_layer: Optional[int] = None,
        neighbors: Tuple[int, ...] = (),
        health: NodeHealth = NodeHealth.GOOD,
    ) -> None:
        self._validate(node_id, sos_layer)
        store = _arrays.OverlayStore([node_id])
        object.__setattr__(self, "_store", store)
        object.__setattr__(self, "_row", 0)
        object.__setattr__(self, "node_id", node_id)
        object.__setattr__(self, "address", address)
        if sos_layer is not None:
            store.set_layer(0, sos_layer)
        if neighbors:
            store.set_neighbors(0, tuple(neighbors))
        if health is not NodeHealth.GOOD:
            store.set_health(0, _CODE_BY_HEALTH[health])

    @staticmethod
    def _validate(node_id: int, sos_layer: Optional[int]) -> None:
        if not isinstance(node_id, int) or isinstance(node_id, bool):
            raise ConfigurationError(f"node_id must be an int, got {node_id!r}")
        if node_id < 0:
            raise ConfigurationError(f"node_id must be >= 0, got {node_id}")
        if sos_layer is not None and sos_layer < 1:
            raise ConfigurationError(
                f"sos_layer must be >= 1 or None, got {sos_layer}"
            )

    @classmethod
    def _from_store(
        cls, store: "_arrays.OverlayStore", row: int, address: str
    ) -> "OverlayNode":
        """Wrap an existing store row (no validation — store rows are valid)."""
        node = cls.__new__(cls)
        object.__setattr__(node, "_store", store)
        object.__setattr__(node, "_row", row)
        object.__setattr__(node, "node_id", int(store.ids[row]))
        object.__setattr__(node, "address", address)
        return node

    def __setattr__(self, name: str, value: object) -> None:
        # node_id/address are fixed at construction; sos_layer/neighbors/
        # health route through the property setters below.
        if name in ("node_id", "address"):
            raise AttributeError(f"{name} is read-only on overlay node views")
        object.__setattr__(self, name, value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OverlayNode(node_id={self.node_id}, address={self.address!r}, "
            f"sos_layer={self.sos_layer}, neighbors={self.neighbors}, "
            f"health={self.health!r})"
        )

    # ------------------------------------------------------------------
    # Column-backed attributes
    # ------------------------------------------------------------------
    @property
    def sos_layer(self) -> Optional[int]:
        layer = self._store.get_layer(self._row)
        return layer if layer != _arrays.NO_LAYER else None

    @sos_layer.setter
    def sos_layer(self, value: Optional[int]) -> None:
        if value is not None and value < 1:
            raise ConfigurationError(f"sos_layer must be >= 1 or None, got {value}")
        self._store.set_layer(
            self._row, _arrays.NO_LAYER if value is None else int(value)
        )

    @property
    def neighbors(self) -> Tuple[int, ...]:
        return self._store.neighbors_of(self._row)

    @neighbors.setter
    def neighbors(self, value: Tuple[int, ...]) -> None:
        self._store.set_neighbors(self._row, tuple(value))

    @property
    def health(self) -> NodeHealth:
        return _HEALTH_BY_CODE[self._store.get_health(self._row)]

    @health.setter
    def health(self, value: NodeHealth) -> None:
        self._store.set_health(self._row, _CODE_BY_HEALTH[value])

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    @property
    def is_sos(self) -> bool:
        """True when the node is enrolled in the SOS system."""
        return self._store.get_layer(self._row) != _arrays.NO_LAYER

    @property
    def is_good(self) -> bool:
        """True when the node can still route traffic."""
        return self._store.get_health(self._row) == _arrays.HEALTH_GOOD

    @property
    def is_bad(self) -> bool:
        """True when broken-into or congested (cannot route)."""
        return self._store.get_health(self._row) != _arrays.HEALTH_GOOD

    @property
    def is_crashed(self) -> bool:
        """True when the node is down due to benign failure, not attack."""
        return self._store.get_health(self._row) == _arrays.HEALTH_CRASHED

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------
    def compromise(self) -> FrozenSet[int]:
        """Break into the node; returns the disclosed neighbor identifiers.

        Compromising is idempotent; a congested node can still be broken
        into (the attacker would not bother, but the model allows it).
        """
        self._store.set_health(self._row, _arrays.HEALTH_COMPROMISED)
        return frozenset(self.neighbors)

    def congest(self) -> None:
        """Flood the node. Compromised nodes stay compromised (the paper's
        attacker never wastes congestion resources on nodes it owns)."""
        if self._store.get_health(self._row) == _arrays.HEALTH_COMPROMISED:
            return
        self._store.set_health(self._row, _arrays.HEALTH_CONGESTED)

    def crash(self) -> bool:
        """Benign failure: a GOOD node goes down without disclosing anything.

        Compromised and congested nodes are already unroutable, so a crash
        on them is absorbed (returns False); the fault injector uses the
        return value to decide whether a recovery needs scheduling.
        """
        if self._store.get_health(self._row) != _arrays.HEALTH_GOOD:
            return False
        self._store.set_health(self._row, _arrays.HEALTH_CRASHED)
        return True

    def restore(self) -> bool:
        """Benign recovery: undo a crash, never attack damage.

        Returns True when the node actually came back; repairing
        compromised or congested nodes is the defender's job
        (:meth:`recover`), because it implies re-keying.
        """
        if self._store.get_health(self._row) != _arrays.HEALTH_CRASHED:
            return False
        self._store.set_health(self._row, _arrays.HEALTH_GOOD)
        return True

    def recover(self) -> None:
        """Restore the node to good health (used by repair experiments)."""
        self._store.set_health(self._row, _arrays.HEALTH_GOOD)

    def set_neighbors(self, neighbors: Tuple[int, ...]) -> None:
        """Install the SOS next-layer neighbor table."""
        self._store.set_neighbors(self._row, tuple(neighbors))
