"""Identifier space for the overlay: an m-bit ring with consistent hashing.

SOS routes through a Chord ring (paper §2, ref [2]); Chord places nodes and
keys on a circular identifier space of size ``2**bits`` using a cryptographic
hash. This module provides the hashing and the modular-interval arithmetic
every Chord operation relies on.
"""

from __future__ import annotations

import hashlib

from repro.errors import ConfigurationError

#: Default identifier width. 32 bits is ample for simulated overlays of
#: tens of thousands of nodes while keeping identifiers readable.
DEFAULT_ID_BITS = 32


class IdentifierSpace:
    """An ``m``-bit circular identifier space with SHA-1 based hashing.

    Examples
    --------
    >>> space = IdentifierSpace(8)
    >>> space.size
    256
    >>> space.contains(space.hash_key("target:example"))
    True
    """

    def __init__(self, bits: int = DEFAULT_ID_BITS) -> None:
        if not isinstance(bits, int) or isinstance(bits, bool):
            raise ConfigurationError(f"bits must be an integer, got {bits!r}")
        if not 1 <= bits <= 160:
            raise ConfigurationError(f"bits must be in [1, 160], got {bits}")
        self.bits = bits
        self.size = 1 << bits

    def hash_key(self, key: str) -> int:
        """Map an arbitrary string key onto the ring (consistent hashing)."""
        digest = hashlib.sha1(key.encode("utf-8")).digest()
        return int.from_bytes(digest, "big") % self.size

    def contains(self, identifier: int) -> bool:
        """True when ``identifier`` is a valid point on this ring."""
        return isinstance(identifier, int) and 0 <= identifier < self.size

    def validate(self, identifier: int) -> int:
        """Return ``identifier`` or raise if it is outside the ring."""
        if not self.contains(identifier):
            raise ConfigurationError(
                f"identifier {identifier!r} outside ring of size {self.size}"
            )
        return identifier

    def distance(self, start: int, end: int) -> int:
        """Clockwise distance from ``start`` to ``end``."""
        return (end - start) % self.size

    def in_open_interval(self, value: int, start: int, end: int) -> bool:
        """True when ``value`` lies in the clockwise-open interval
        ``(start, end)`` on the ring.

        The interval wraps; when ``start == end`` it covers the whole ring
        minus the endpoint (Chord's convention for a single-node ring).
        """
        if start == end:
            return value != start
        return self.distance(start, value) > 0 and self.distance(
            start, value
        ) < self.distance(start, end)

    def in_half_open_interval(self, value: int, start: int, end: int) -> bool:
        """True when ``value`` lies in the clockwise interval ``(start, end]``.

        This is the successor-ownership test: the node with identifier
        ``end`` owns exactly the keys in ``(predecessor, end]``.
        """
        if start == end:
            return True
        return 0 < self.distance(start, value) <= self.distance(start, end)

    def finger_start(self, node_id: int, index: int) -> int:
        """Start of the ``index``-th finger interval: ``node + 2**index``."""
        if not 0 <= index < self.bits:
            raise ConfigurationError(
                f"finger index {index} out of range [0, {self.bits})"
            )
        return (node_id + (1 << index)) % self.size
