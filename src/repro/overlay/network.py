"""The overlay network: a population of ``N`` nodes on an identifier ring.

:class:`OverlayNetwork` owns the node population that both the SOS
deployment (:mod:`repro.sos.deployment`) and the attacker
(:mod:`repro.attacks`) operate on. It provides O(1) lookup by identifier,
random sampling, health bookkeeping, and per-layer views.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.errors import ConfigurationError, RoutingError
from repro.overlay.identifiers import DEFAULT_ID_BITS, IdentifierSpace
from repro.overlay.node import NodeHealth, OverlayNode
from repro.utils.seeding import SeedLike, make_rng


class OverlayNetwork:
    """A population of overlay nodes with unique ring identifiers.

    Parameters
    ----------
    size:
        Number of nodes (``N`` in the paper).
    bits:
        Identifier-ring width; must satisfy ``2**bits >= size``.
    rng:
        Seed or generator controlling identifier placement.

    Examples
    --------
    >>> network = OverlayNetwork(100, rng=7)
    >>> len(network)
    100
    >>> node = network.random_nodes(1)[0]
    >>> network.get(node.node_id) is node
    True
    """

    def __init__(
        self,
        size: int,
        bits: int = DEFAULT_ID_BITS,
        rng: SeedLike = None,
    ) -> None:
        if not isinstance(size, int) or isinstance(size, bool) or size < 1:
            raise ConfigurationError(f"size must be a positive int, got {size!r}")
        self.space = IdentifierSpace(bits)
        if self.space.size < size:
            raise ConfigurationError(
                f"ring of size {self.space.size} cannot hold {size} unique nodes"
            )
        self._rng = make_rng(rng)
        self._nodes: Dict[int, OverlayNode] = {}
        identifiers = self._draw_unique_identifiers(size)
        for index, node_id in enumerate(identifiers):
            node = OverlayNode(node_id=node_id, address=f"node-{index}")
            self._nodes[node_id] = node

    def _draw_unique_identifiers(self, count: int) -> List[int]:
        """Draw ``count`` distinct ring positions uniformly at random."""
        if count > self.space.size // 2:
            # Dense ring: permute the whole space (only feasible for small
            # test rings).
            return [int(i) for i in self._rng.permutation(self.space.size)[:count]]
        identifiers: set = set()
        while len(identifiers) < count:
            needed = count - len(identifiers)
            draws = self._rng.integers(0, self.space.size, size=needed * 2)
            for draw in draws:
                identifiers.add(int(draw))
                if len(identifiers) == count:
                    break
        return sorted(identifiers)

    # ------------------------------------------------------------------
    # Lookup and iteration
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self):
        return iter(self._nodes.values())

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._nodes

    @property
    def node_ids(self) -> List[int]:
        """All identifiers, sorted clockwise from 0."""
        return sorted(self._nodes)

    def get(self, node_id: int) -> OverlayNode:
        """Return the node with ``node_id`` or raise :class:`RoutingError`."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise RoutingError(f"no node with identifier {node_id}") from None

    def nodes(self, ids: Iterable[int]) -> List[OverlayNode]:
        """Resolve many identifiers at once."""
        return [self.get(node_id) for node_id in ids]

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def sos_nodes(self) -> List[OverlayNode]:
        """Nodes enrolled in the SOS system."""
        return [node for node in self if node.is_sos]

    @property
    def plain_nodes(self) -> List[OverlayNode]:
        """Nodes not enrolled in the SOS system."""
        return [node for node in self if not node.is_sos]

    def layer_nodes(self, layer: int) -> List[OverlayNode]:
        """SOS nodes serving in 1-based ``layer``."""
        return [node for node in self if node.sos_layer == layer]

    def good_nodes(self) -> List[OverlayNode]:
        return [node for node in self if node.is_good]

    def bad_nodes(self) -> List[OverlayNode]:
        return [node for node in self if node.is_bad]

    def health_census(self) -> Dict[NodeHealth, int]:
        """Counts of nodes per health state."""
        census = {health: 0 for health in NodeHealth}
        for node in self:
            census[node.health] += 1
        return census

    # ------------------------------------------------------------------
    # Sampling and mutation
    # ------------------------------------------------------------------
    def random_nodes(
        self,
        count: int,
        rng: SeedLike = None,
        exclude: Optional[Sequence[int]] = None,
    ) -> List[OverlayNode]:
        """Sample ``count`` distinct nodes uniformly at random.

        ``exclude`` removes identifiers from the candidate pool; asking for
        more nodes than remain raises :class:`ConfigurationError`.
        """
        generator = self._rng if rng is None else make_rng(rng)
        excluded = set(exclude or ())
        pool = [node_id for node_id in self._nodes if node_id not in excluded]
        if count > len(pool):
            raise ConfigurationError(
                f"cannot sample {count} nodes from a pool of {len(pool)}"
            )
        chosen = generator.choice(len(pool), size=count, replace=False)
        return [self._nodes[pool[int(i)]] for i in chosen]

    def reset_health(self) -> None:
        """Restore every node to GOOD (fresh trial in Monte Carlo runs)."""
        for node in self:
            node.recover()

    def reset_roles(self) -> None:
        """Clear SOS enrollment (layer + neighbor tables) on every node."""
        for node in self:
            node.sos_layer = None
            node.neighbors = ()
