"""The overlay network: a population of ``N`` nodes on an identifier ring.

:class:`OverlayNetwork` owns the node population that both the SOS
deployment (:mod:`repro.sos.deployment`) and the attacker
(:mod:`repro.attacks`) operate on. It provides O(1) lookup by identifier,
random sampling, health bookkeeping, and per-layer views.

State lives in an :class:`~repro.overlay.arrays.OverlayStore` (contiguous
numpy columns); the :class:`~repro.overlay.node.OverlayNode` objects this
class hands out are lazily-created cached views over those columns, so a
million-node network costs a few flat arrays, not a million Python
objects, while the object API keeps working unchanged.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError, RoutingError
from repro.overlay.arrays import OverlayStore
from repro.overlay.identifiers import DEFAULT_ID_BITS, IdentifierSpace
from repro.overlay.node import _HEALTH_BY_CODE, NodeHealth, OverlayNode
from repro.utils.seeding import SeedLike, make_rng


class OverlayNetwork:
    """A population of overlay nodes with unique ring identifiers.

    Parameters
    ----------
    size:
        Number of nodes (``N`` in the paper).
    bits:
        Identifier-ring width; must satisfy ``2**bits >= size``.
    rng:
        Seed or generator controlling identifier placement.

    Examples
    --------
    >>> network = OverlayNetwork(100, rng=7)
    >>> len(network)
    100
    >>> node = network.random_nodes(1)[0]
    >>> network.get(node.node_id) is node
    True
    """

    def __init__(
        self,
        size: int,
        bits: int = DEFAULT_ID_BITS,
        rng: SeedLike = None,
    ) -> None:
        if not isinstance(size, int) or isinstance(size, bool) or size < 1:
            raise ConfigurationError(f"size must be a positive int, got {size!r}")
        self.space = IdentifierSpace(bits)
        if self.space.size < size:
            raise ConfigurationError(
                f"ring of size {self.space.size} cannot hold {size} unique nodes"
            )
        self._rng = make_rng(rng)
        identifiers = self._draw_unique_identifiers(size)
        #: Columnar node state; creation order == address index order.
        self.store = OverlayStore(identifiers)
        self._views: Dict[int, OverlayNode] = {}

    def _draw_unique_identifiers(self, count: int) -> np.ndarray:
        """Draw ``count`` distinct ring positions uniformly at random.

        RNG-stream compatible with the historical scalar loop: the dense
        path takes the head of one whole-space permutation; the sparse
        path consumes the same ``integers`` blocks and keeps first
        occurrences until ``count`` distinct values exist, exactly like
        the old add-to-a-set-with-early-break loop.
        """
        if count > self.space.size // 2:
            # Dense ring: permute the whole space (only feasible for small
            # test rings).
            return self._rng.permutation(self.space.size)[:count].astype(np.int64)
        seen = np.empty(0, dtype=np.int64)
        while len(seen) < count:
            needed = count - len(seen)
            draws = self._rng.integers(
                0, self.space.size, size=needed * 2, dtype=np.int64
            )
            merged = np.concatenate([seen, draws])
            # Stable first-occurrence dedupe, then keep the first `count`
            # distinct values in draw order — identical to the scalar
            # loop's early break mid-block.
            _, first = np.unique(merged, return_index=True)
            keep = np.sort(first)[:count]
            seen = merged[keep]
        return np.sort(seen)

    # ------------------------------------------------------------------
    # Lookup and iteration
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.store)

    def __iter__(self) -> Iterator[OverlayNode]:
        # Creation order, like the historical insertion-ordered dict.
        for row in range(len(self.store)):
            yield self._view(row)

    def __contains__(self, node_id: int) -> bool:
        return self.store.row_of(node_id) >= 0

    def _view(self, row: int) -> OverlayNode:
        node_id = int(self.store.ids[row])
        view = self._views.get(node_id)
        if view is None:
            view = OverlayNode._from_store(self.store, row, f"node-{row}")
            self._views[node_id] = view
        return view

    @property
    def node_ids(self) -> List[int]:
        """All identifiers, sorted clockwise from 0."""
        return self.store.sorted_ids.tolist()

    def get(self, node_id: int) -> OverlayNode:
        """Return the node with ``node_id`` or raise :class:`RoutingError`."""
        view = self._views.get(node_id)
        if view is not None:
            return view
        row = self.store.row_of(node_id)
        if row < 0:
            raise RoutingError(f"no node with identifier {node_id}")
        return self._view(row)

    def nodes(self, ids: Iterable[int]) -> List[OverlayNode]:
        """Resolve many identifiers at once."""
        return [self.get(node_id) for node_id in ids]

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def _views_where(self, mask: np.ndarray) -> List[OverlayNode]:
        return [self._view(int(row)) for row in np.flatnonzero(mask)]

    @property
    def sos_nodes(self) -> List[OverlayNode]:
        """Nodes enrolled in the SOS system."""
        return self._views_where(self.store.layer != 0)

    @property
    def plain_nodes(self) -> List[OverlayNode]:
        """Nodes not enrolled in the SOS system."""
        return self._views_where(self.store.layer == 0)

    def layer_nodes(self, layer: int) -> List[OverlayNode]:
        """SOS nodes serving in 1-based ``layer``."""
        return self._views_where(self.store.layer == layer)

    def good_nodes(self) -> List[OverlayNode]:
        return self._views_where(self.store.health == 0)

    def bad_nodes(self) -> List[OverlayNode]:
        return self._views_where(self.store.health != 0)

    def health_census(self) -> Dict[NodeHealth, int]:
        """Counts of nodes per health state."""
        counts = self.store.census()
        return {
            health: int(counts[code])
            for code, health in enumerate(_HEALTH_BY_CODE)
        }

    # ------------------------------------------------------------------
    # Sampling and mutation
    # ------------------------------------------------------------------
    def random_nodes(
        self,
        count: int,
        rng: SeedLike = None,
        exclude: Optional[Sequence[int]] = None,
    ) -> List[OverlayNode]:
        """Sample ``count`` distinct nodes uniformly at random.

        ``exclude`` removes identifiers from the candidate pool; asking for
        more nodes than remain raises :class:`ConfigurationError`.
        """
        generator = self._rng if rng is None else make_rng(rng)
        if exclude:
            excluded = np.asarray(sorted(set(exclude)), dtype=np.int64)
            keep = ~np.isin(self.store.ids, excluded)
            pool_rows = np.flatnonzero(keep)
        else:
            pool_rows = np.arange(len(self.store))
        if count > len(pool_rows):
            raise ConfigurationError(
                f"cannot sample {count} nodes from a pool of {len(pool_rows)}"
            )
        chosen = generator.choice(len(pool_rows), size=count, replace=False)
        return [self._view(int(pool_rows[int(i)])) for i in chosen]

    def reset_health(self) -> None:
        """Restore every node to GOOD (fresh trial in Monte Carlo runs)."""
        self.store.reset_health()

    def reset_roles(self) -> None:
        """Clear SOS enrollment (layer + neighbor tables) on every node."""
        self.store.reset_roles()
