"""Chord distributed hash table (Stoica et al., SIGCOMM 2001).

SOS routes messages to beacons and secret servlets over Chord (paper §2):
the beacon for a target is the Chord node owning ``hash(target)``. This
module implements the full protocol at simulation level — every node keeps
a finger table, predecessor pointer, and successor list, and lookups hop
through fingers exactly as the distributed protocol would, including
failure handling via successor lists.

Supported operations:

* bulk :meth:`ChordRing.build` with exact routing state;
* incremental :meth:`ChordRing.join` followed by :meth:`ChordRing.stabilize`
  rounds (``stabilize``/``notify``/``fix_fingers`` from the paper's Fig. 6);
* node failure (:meth:`ChordRing.fail`) and graceful departure
  (:meth:`ChordRing.leave`), with lookups routing around dead nodes;
* iterative :meth:`ChordRing.lookup` returning the full hop path, so tests
  can assert the O(log N) bound.
"""

from __future__ import annotations

import dataclasses
from bisect import bisect_left, bisect_right, insort
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError, RoutingError
from repro.overlay.identifiers import DEFAULT_ID_BITS, IdentifierSpace

#: Default successor-list length; Chord recommends O(log N), and 8 covers
#: the simulated ring sizes used here.
DEFAULT_SUCCESSOR_LIST = 8


@dataclasses.dataclass
class ChordNode:
    """Routing state of one Chord participant."""

    node_id: int
    fingers: List[int] = dataclasses.field(default_factory=list)
    successor_list: List[int] = dataclasses.field(default_factory=list)
    predecessor: Optional[int] = None
    alive: bool = True
    store: Dict[int, object] = dataclasses.field(default_factory=dict)

    @property
    def successor(self) -> int:
        """First live entry of the successor list (primary successor)."""
        if not self.successor_list:
            return self.node_id
        return self.successor_list[0]


@dataclasses.dataclass(frozen=True)
class LookupResult:
    """Outcome of an iterative Chord lookup."""

    key: int
    owner: Optional[int]
    path: Tuple[int, ...]
    succeeded: bool

    @property
    def hops(self) -> int:
        """Number of forwarding hops (path length minus the origin)."""
        return max(0, len(self.path) - 1)


class ChordRing:
    """A simulated Chord ring.

    Examples
    --------
    >>> ring = ChordRing.build([1, 18, 36, 99, 200], bits=8)
    >>> ring.find_successor(37)
    99
    >>> result = ring.lookup(37, start=1)
    >>> result.owner
    99
    """

    def __init__(
        self,
        bits: int = DEFAULT_ID_BITS,
        successor_list_length: int = DEFAULT_SUCCESSOR_LIST,
    ) -> None:
        if successor_list_length < 1:
            raise ConfigurationError("successor_list_length must be >= 1")
        self.space = IdentifierSpace(bits)
        self.successor_list_length = successor_list_length
        self._nodes: Dict[int, ChordNode] = {}
        self._alive_sorted: List[int] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        node_ids: List[int],
        bits: int = DEFAULT_ID_BITS,
        successor_list_length: int = DEFAULT_SUCCESSOR_LIST,
    ) -> "ChordRing":
        """Build a ring with exact routing state for ``node_ids``."""
        ring = cls(bits=bits, successor_list_length=successor_list_length)
        if not node_ids:
            raise ConfigurationError("cannot build an empty ring")
        unique = set()
        for node_id in node_ids:
            ring.space.validate(node_id)
            if node_id in unique:
                raise ConfigurationError(f"duplicate node id {node_id}")
            unique.add(node_id)
        ring._alive_sorted = sorted(unique)
        for node_id in ring._alive_sorted:
            ring._nodes[node_id] = ChordNode(node_id=node_id)
        ring.rebuild_routing_state()
        return ring

    def rebuild_routing_state(self) -> None:
        """Recompute exact fingers, successor lists, and predecessors for
        every live node (an omniscient stabilization)."""
        for node_id in self._alive_sorted:
            node = self._nodes[node_id]
            node.fingers = [
                self._ideal_successor(self.space.finger_start(node_id, i))
                for i in range(self.space.bits)
            ]
            node.successor_list = self._ideal_successor_list(node_id)
            node.predecessor = self._ideal_predecessor(node_id)

    # ------------------------------------------------------------------
    # Oracle views (ground truth over live nodes)
    # ------------------------------------------------------------------
    def _ideal_successor(self, key: int) -> int:
        """The live node owning ``key`` (first node at or after it)."""
        if not self._alive_sorted:
            raise RoutingError("ring has no live nodes")
        index = bisect_left(self._alive_sorted, key)
        if index == len(self._alive_sorted):
            index = 0
        return self._alive_sorted[index]

    def _ideal_predecessor(self, node_id: int) -> int:
        index = bisect_left(self._alive_sorted, node_id)
        return self._alive_sorted[index - 1]

    def _ideal_successor_list(self, node_id: int) -> List[int]:
        ring = self._alive_sorted
        index = bisect_right(ring, node_id)
        length = min(self.successor_list_length, max(1, len(ring) - 1) if len(ring) > 1 else 1)
        result = []
        for offset in range(length):
            result.append(ring[(index + offset) % len(ring)])
        return result

    def find_successor(self, key: int) -> int:
        """Ground-truth owner of ``key`` among live nodes."""
        self.space.validate(key)
        return self._ideal_successor(key)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._alive_sorted)

    def __contains__(self, node_id: int) -> bool:
        node = self._nodes.get(node_id)
        return node is not None and node.alive

    @property
    def live_node_ids(self) -> List[int]:
        return list(self._alive_sorted)

    def node(self, node_id: int) -> ChordNode:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise RoutingError(f"unknown chord node {node_id}") from None

    def join(self, node_id: int) -> None:
        """Add a node with only its successor pointer set (Chord join).

        The new node learns its successor via a lookup through an existing
        member; fingers, predecessor, and successor list converge through
        subsequent :meth:`stabilize` rounds.
        """
        self.space.validate(node_id)
        if node_id in self._nodes and self._nodes[node_id].alive:
            raise ConfigurationError(f"node {node_id} already in the ring")
        node = ChordNode(node_id=node_id)
        if self._alive_sorted:
            successor = self._ideal_successor(node_id)
            node.successor_list = [successor]
            node.fingers = [successor] * self.space.bits
        else:
            node.successor_list = [node_id]
            node.fingers = [node_id] * self.space.bits
        node.predecessor = None
        self._nodes[node_id] = node
        insort(self._alive_sorted, node_id)

    def fail(self, node_id: int) -> None:
        """Crash-fail a node: it disappears without notifying anyone.

        Other nodes' routing state still references it until stabilization
        (or :meth:`rebuild_routing_state`) repairs the ring; lookups route
        around it via successor lists in the meantime.
        """
        node = self.node(node_id)
        if not node.alive:
            return
        node.alive = False
        index = bisect_left(self._alive_sorted, node_id)
        if index < len(self._alive_sorted) and self._alive_sorted[index] == node_id:
            self._alive_sorted.pop(index)
        if not self._alive_sorted:
            raise RoutingError("last live node failed; ring is empty")

    def leave(self, node_id: int) -> None:
        """Graceful departure: hand pointers over before going away."""
        node = self.node(node_id)
        if not node.alive:
            return
        predecessor_id = self._ideal_predecessor(node_id)
        successor_id = self._ideal_successor((node_id + 1) % self.space.size)
        self.fail(node_id)
        if predecessor_id != node_id:
            predecessor = self._nodes[predecessor_id]
            predecessor.successor_list = self._ideal_successor_list(predecessor_id)
        if successor_id != node_id:
            successor = self._nodes[successor_id]
            if successor.predecessor == node_id:
                successor.predecessor = predecessor_id if predecessor_id != node_id else None

    # ------------------------------------------------------------------
    # Stabilization protocol (Chord Fig. 6)
    # ------------------------------------------------------------------
    def stabilize(self, rounds: int = 1) -> None:
        """Run ``rounds`` of stabilize/notify/fix_fingers on every live node."""
        if rounds < 1:
            raise ConfigurationError("rounds must be >= 1")
        for _ in range(rounds):
            for node_id in list(self._alive_sorted):
                node = self._nodes[node_id]
                if node.alive:
                    self._stabilize_node(node)
            for node_id in list(self._alive_sorted):
                node = self._nodes[node_id]
                if node.alive:
                    self._fix_fingers(node)
                    self._refresh_successor_list(node)

    def _first_live_successor(self, node: ChordNode) -> int:
        """First live entry in the successor list, pruning dead ones."""
        for candidate in node.successor_list:
            if candidate in self:
                return candidate
        # Whole list dead: fall back to any live finger, then to self.
        for candidate in node.fingers:
            if candidate in self:
                return candidate
        return node.node_id

    def _stabilize_node(self, node: ChordNode) -> None:
        successor_id = self._first_live_successor(node)
        successor = self._nodes[successor_id]
        candidate = successor.predecessor
        if (
            candidate is not None
            and candidate in self
            and self.space.in_open_interval(candidate, node.node_id, successor_id)
        ):
            successor_id = candidate
            successor = self._nodes[successor_id]
        if successor_id == node.node_id and len(self._alive_sorted) > 1:
            # Pointing at ourselves on a multi-node ring: adopt any live node.
            successor_id = self._ideal_successor((node.node_id + 1) % self.space.size)
            successor = self._nodes[successor_id]
        node.successor_list = [successor_id] + [
            s for s in node.successor_list if s != successor_id
        ]
        node.successor_list = node.successor_list[: self.successor_list_length]
        # notify(successor, node)
        if (
            successor.predecessor is None
            or successor.predecessor not in self
            or self.space.in_open_interval(
                node.node_id, successor.predecessor, successor_id
            )
        ):
            if successor_id != node.node_id:
                successor.predecessor = node.node_id

    def _fix_fingers(self, node: ChordNode) -> None:
        node.fingers = [
            self._lookup_internal(self.space.finger_start(node.node_id, i), node.node_id)
            or node.successor
            for i in range(self.space.bits)
        ]

    def _refresh_successor_list(self, node: ChordNode) -> None:
        chain = []
        current = self._first_live_successor(node)
        for _ in range(self.successor_list_length):
            if current == node.node_id and chain:
                break
            chain.append(current)
            current = self._first_live_successor(self._nodes[current])
            if current in chain:
                break
        node.successor_list = chain or [node.node_id]

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def _closest_preceding_node(self, node: ChordNode, key: int) -> int:
        for finger in reversed(node.fingers):
            if finger in self and self.space.in_open_interval(
                finger, node.node_id, key
            ):
                return finger
        for candidate in node.successor_list:
            if candidate in self and self.space.in_open_interval(
                candidate, node.node_id, key
            ):
                return candidate
        return node.node_id

    def _lookup_internal(self, key: int, start: int) -> Optional[int]:
        result = self.lookup(key, start)
        return result.owner if result.succeeded else None

    def lookup(self, key: int, start: int) -> LookupResult:
        """Iteratively resolve the owner of ``key`` starting at ``start``.

        Follows fingers exactly as a distributed Chord lookup would: at each
        step the current node either answers (its live successor owns the
        key) or forwards to the closest preceding live finger. Dead next
        hops are skipped via successor lists. Gives up (``succeeded=False``)
        after ``2 * bits + len(ring)`` hops, which only happens on heavily
        corrupted routing state.
        """
        self.space.validate(key)
        if start not in self:
            raise RoutingError(f"lookup must start at a live node, got {start}")
        path = [start]
        current = self._nodes[start]
        max_hops = 2 * self.space.bits + len(self._alive_sorted)
        for _ in range(max_hops):
            successor_id = self._first_live_successor(current)
            if successor_id == current.node_id and len(self._alive_sorted) == 1:
                return LookupResult(key, current.node_id, tuple(path), True)
            if self.space.in_half_open_interval(key, current.node_id, successor_id):
                path.append(successor_id)
                return LookupResult(key, successor_id, tuple(path), True)
            next_id = self._closest_preceding_node(current, key)
            if next_id == current.node_id:
                next_id = successor_id
            if next_id == current.node_id:
                break
            path.append(next_id)
            current = self._nodes[next_id]
        return LookupResult(key, None, tuple(path), False)

    def lookup_key(self, key_string: str, start: int) -> LookupResult:
        """Hash ``key_string`` onto the ring and resolve its owner."""
        return self.lookup(self.space.hash_key(key_string), start)

    # ------------------------------------------------------------------
    # Key-value storage with successor-list replication
    # ------------------------------------------------------------------
    # SOS beacons keep state in the DHT (the target -> servlet binding);
    # Chord replicates each key on the owner and its next live successors
    # so the binding survives owner failures until re-replication runs.

    DEFAULT_REPLICAS = 3

    def _replica_nodes(self, key: int, replicas: int) -> List[int]:
        """The owner of ``key`` plus its next ``replicas - 1`` live
        successors (ring order, distinct)."""
        owner = self._ideal_successor(key)
        nodes = [owner]
        index = bisect_right(self._alive_sorted, owner) % max(
            1, len(self._alive_sorted)
        )
        while len(nodes) < min(replicas, len(self._alive_sorted)):
            candidate = self._alive_sorted[index % len(self._alive_sorted)]
            index += 1
            if candidate not in nodes:
                nodes.append(candidate)
        return nodes

    def put(
        self, key: int, value: object, replicas: int = DEFAULT_REPLICAS
    ) -> List[int]:
        """Store ``value`` under ``key`` on the owner and its replicas.

        Returns the node identifiers holding a copy.
        """
        if replicas < 1:
            raise ConfigurationError("replicas must be >= 1")
        self.space.validate(key)
        holders = self._replica_nodes(key, replicas)
        for node_id in holders:
            self._nodes[node_id].store[key] = value
        return holders

    def put_key(
        self, key_string: str, value: object, replicas: int = DEFAULT_REPLICAS
    ) -> List[int]:
        """Hash ``key_string`` and store under the resulting identifier."""
        return self.put(self.space.hash_key(key_string), value, replicas)

    def get(self, key: int, start: Optional[int] = None) -> object:
        """Retrieve the value for ``key``, surviving owner failures.

        Routes to the owner via :meth:`lookup`; when the owner has no copy
        (e.g. it took over the range after a crash and re-replication has
        not run yet), its successor list is consulted for a surviving
        replica. Raises :class:`RoutingError` when no copy is found.
        """
        self.space.validate(key)
        if start is None:
            start = self._alive_sorted[0]
        result = self.lookup(key, start)
        if not result.succeeded or result.owner is None:
            raise RoutingError(f"lookup for key {key} failed")
        owner = self._nodes[result.owner]
        if key in owner.store:
            return owner.store[key]
        for candidate in owner.successor_list:
            if candidate in self and key in self._nodes[candidate].store:
                return self._nodes[candidate].store[key]
        # Last resort: any live replica (models a directory-wide search).
        for node_id in self._alive_sorted:
            if key in self._nodes[node_id].store:
                return self._nodes[node_id].store[key]
        raise RoutingError(f"no surviving replica for key {key}")

    def get_key(self, key_string: str, start: Optional[int] = None) -> object:
        """Hash ``key_string`` and retrieve the stored value."""
        return self.get(self.space.hash_key(key_string), start)

    def maintain_replicas(self, replicas: int = DEFAULT_REPLICAS) -> int:
        """Restore the replication factor after churn.

        For every stored key, copies the value onto missing replica nodes
        and drops copies from nodes outside the replica set. Returns the
        number of copy operations performed.
        """
        if replicas < 1:
            raise ConfigurationError("replicas must be >= 1")
        # Collect the surviving copies.
        values: Dict[int, object] = {}
        holders: Dict[int, List[int]] = {}
        for node_id in self._alive_sorted:
            for key, value in self._nodes[node_id].store.items():
                values[key] = value
                holders.setdefault(key, []).append(node_id)
        copies = 0
        for key, value in values.items():
            desired = set(self._replica_nodes(key, replicas))
            current = set(holders.get(key, ()))
            for node_id in desired - current:
                self._nodes[node_id].store[key] = value
                copies += 1
            for node_id in current - desired:
                del self._nodes[node_id].store[key]
        return copies

    def replica_count(self, key: int) -> int:
        """Number of live nodes currently holding ``key``."""
        return sum(
            1
            for node_id in self._alive_sorted
            if key in self._nodes[node_id].store
        )

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def lookup_statistics(self, samples: int = 200, rng=None) -> "LookupStatistics":
        """Sample random lookups and summarize hop counts and correctness.

        Used by operational dashboards and tests asserting the O(log N)
        bound; lookups start at uniformly random live nodes with uniformly
        random keys.
        """
        import numpy as np

        if samples < 1:
            raise ConfigurationError("samples must be >= 1")
        generator = np.random.default_rng(rng) if not isinstance(
            rng, np.random.Generator
        ) else rng
        hops: List[int] = []
        correct = 0
        failed = 0
        live = self._alive_sorted
        for _ in range(samples):
            key = int(generator.integers(0, self.space.size))
            start = live[int(generator.integers(0, len(live)))]
            result = self.lookup(key, start)
            if not result.succeeded:
                failed += 1
                continue
            if result.owner == self.find_successor(key):
                correct += 1
                hops.append(result.hops)
        return LookupStatistics(
            samples=samples,
            correct=correct,
            failed=failed,
            mean_hops=sum(hops) / len(hops) if hops else float("nan"),
            max_hops=max(hops) if hops else 0,
        )


@dataclasses.dataclass(frozen=True)
class LookupStatistics:
    """Aggregate outcome of sampled Chord lookups."""

    samples: int
    correct: int
    failed: int
    mean_hops: float
    max_hops: int

    @property
    def accuracy(self) -> float:
        return self.correct / self.samples
