"""Chord distributed hash table (Stoica et al., SIGCOMM 2001).

SOS routes messages to beacons and secret servlets over Chord (paper §2):
the beacon for a target is the Chord node owning ``hash(target)``. This
module implements the full protocol at simulation level — every node keeps
a finger table, predecessor pointer, and successor list, and lookups hop
through fingers exactly as the distributed protocol would, including
failure handling via successor lists.

Routing state is columnar: one sorted identifier array plus ``(n, bits)``
finger, ``(n, W)`` successor, predecessor, and liveness columns per ring
(wide rings, ``bits > 62``, use object-dtype columns holding Python ints).
:class:`ChordNode` objects are cached views whose list-valued properties
materialize lazily from the columns, so the scalar protocol code reads
unchanged while :meth:`ChordRing.rebuild_routing_state` and
:meth:`ChordRing.lookup_batch` write/read the columns directly with no
per-node Python loops.

Supported operations:

* bulk :meth:`ChordRing.build` with exact routing state;
* incremental :meth:`ChordRing.join` followed by :meth:`ChordRing.stabilize`
  rounds (``stabilize``/``notify``/``fix_fingers`` from the paper's Fig. 6);
* node failure (:meth:`ChordRing.fail`) and graceful departure
  (:meth:`ChordRing.leave`), with lookups routing around dead nodes;
* iterative :meth:`ChordRing.lookup` returning the full hop path, so tests
  can assert the O(log N) bound.
"""

from __future__ import annotations

import dataclasses
from bisect import bisect_left, bisect_right, insort
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError, RoutingError
from repro.overlay.identifiers import DEFAULT_ID_BITS, IdentifierSpace

#: Default successor-list length; Chord recommends O(log N), and 8 covers
#: the simulated ring sizes used here.
DEFAULT_SUCCESSOR_LIST = 8

#: Widest ring whose identifiers (and their pairwise differences) fit in
#: int64; wider rings fall back to the scalar per-lookup path.
_VECTOR_BITS_LIMIT = 62


class _RoutingColumns:
    """The flat-array routing state of one ring.

    Rows are sorted by identifier and include dead nodes (live nodes'
    stale pointers may still reference them). ``epoch`` is bumped on
    every mutation; views and the batch-lookup cache key on it.
    """

    __slots__ = (
        "dtype",
        "bits",
        "ids",
        "alive",
        "fingers",
        "fingers_set",
        "succ",
        "succ_len",
        "pred",
        "epoch",
    )

    def __init__(self, bits: int, succ_width: int) -> None:
        self.bits = bits
        self.dtype: object = object if bits > _VECTOR_BITS_LIMIT else np.int64
        self.ids = np.empty(0, dtype=self.dtype)
        self.alive = np.empty(0, dtype=bool)
        self.fingers = np.full((0, bits), -1, dtype=self.dtype)
        self.fingers_set = np.empty(0, dtype=bool)
        self.succ = np.full((0, succ_width), -1, dtype=self.dtype)
        self.succ_len = np.empty(0, dtype=np.int32)
        self.pred = np.empty(0, dtype=self.dtype)
        self.epoch = 0

    def __len__(self) -> int:
        return len(self.ids)

    def row_of(self, node_id: int) -> int:
        index = int(np.searchsorted(self.ids, node_id))
        if index < len(self.ids) and self.ids[index] == node_id:
            return index
        return -1

    def install(self, sorted_ids: Sequence[int]) -> None:
        """Bulk-install a fresh (all-live, no routing state) population."""
        n = len(sorted_ids)
        self.ids = np.asarray(sorted_ids, dtype=self.dtype)
        self.alive = np.ones(n, dtype=bool)
        self.fingers = np.full((n, self.bits), -1, dtype=self.dtype)
        self.fingers_set = np.zeros(n, dtype=bool)
        self.succ = np.full((n, self.succ.shape[1]), -1, dtype=self.dtype)
        self.succ_len = np.zeros(n, dtype=np.int32)
        self.pred = np.full(n, -1, dtype=self.dtype)
        self.epoch += 1

    def insert(self, node_id: int) -> int:
        """Insert a new (live, blank) row, keeping ids sorted."""
        pos = int(np.searchsorted(self.ids, node_id))
        self.ids = np.insert(self.ids, pos, node_id)
        self.alive = np.insert(self.alive, pos, True)
        blank = np.full(self.bits, -1, dtype=self.dtype)
        self.fingers = np.insert(self.fingers, pos, blank, axis=0)
        self.fingers_set = np.insert(self.fingers_set, pos, False)
        blank_s = np.full(self.succ.shape[1], -1, dtype=self.dtype)
        self.succ = np.insert(self.succ, pos, blank_s, axis=0)
        self.succ_len = np.insert(self.succ_len, pos, 0)
        self.pred = np.insert(self.pred, pos, -1)
        self.epoch += 1
        return pos

    def ensure_succ_width(self, width: int) -> None:
        if width > self.succ.shape[1]:
            grown = np.full((len(self.ids), width), -1, dtype=self.dtype)
            grown[:, : self.succ.shape[1]] = self.succ
            self.succ = grown

    def set_fingers(self, row: int, values: Sequence[int]) -> None:
        if len(values) == 0:
            self.fingers[row, :] = -1
            self.fingers_set[row] = False
        else:
            if len(values) != self.bits:
                raise ConfigurationError(
                    f"finger table must have {self.bits} entries, "
                    f"got {len(values)}"
                )
            self.fingers[row, :] = np.asarray(values, dtype=self.dtype)
            self.fingers_set[row] = True
        self.epoch += 1

    def set_successor_list(self, row: int, values: Sequence[int]) -> None:
        self.ensure_succ_width(len(values))
        count = len(values)
        if count:
            self.succ[row, :count] = np.asarray(values, dtype=self.dtype)
        self.succ[row, count:] = -1
        self.succ_len[row] = count
        self.epoch += 1


class ChordNode:
    """Routing state of one Chord participant (view over ring columns).

    List-valued properties (``fingers``, ``successor_list``) materialize
    from the columns lazily and are cached until the ring's next
    mutation, so the scalar protocol/lookup code pays the column read
    once per (node, epoch) rather than per access.
    """

    __slots__ = (
        "_cols",
        "_kv",
        "node_id",
        "_row",
        "_epoch",
        "_fingers_cache",
        "_succ_cache",
    )

    def __init__(
        self,
        node_id: int,
        cols: Optional[_RoutingColumns] = None,
        kv: Optional[Dict[int, Dict[int, object]]] = None,
    ) -> None:
        if cols is None:
            # Standalone node (no ring): private single-row columns.
            cols = _RoutingColumns(DEFAULT_ID_BITS, DEFAULT_SUCCESSOR_LIST)
            cols.install([node_id])
        self._cols = cols
        self._kv = kv if kv is not None else {}
        self.node_id = node_id
        self._row = -1
        self._epoch = -1
        self._fingers_cache: Optional[List[int]] = None
        self._succ_cache: Optional[List[int]] = None

    def _sync(self) -> int:
        cols = self._cols
        if self._epoch != cols.epoch:
            self._row = cols.row_of(self.node_id)
            self._fingers_cache = None
            self._succ_cache = None
            self._epoch = cols.epoch
        return self._row

    # -- column-backed attributes --------------------------------------
    @property
    def fingers(self) -> List[int]:
        row = self._sync()
        if self._fingers_cache is None:
            if self._cols.fingers_set[row]:
                self._fingers_cache = self._cols.fingers[row].tolist()
            else:
                self._fingers_cache = []
        return self._fingers_cache

    @fingers.setter
    def fingers(self, values: Sequence[int]) -> None:
        row = self._sync()
        self._cols.set_fingers(row, list(values))

    @property
    def successor_list(self) -> List[int]:
        row = self._sync()
        if self._succ_cache is None:
            count = int(self._cols.succ_len[row])
            self._succ_cache = self._cols.succ[row, :count].tolist()
        return self._succ_cache

    @successor_list.setter
    def successor_list(self, values: Sequence[int]) -> None:
        row = self._sync()
        self._cols.set_successor_list(row, list(values))

    @property
    def predecessor(self) -> Optional[int]:
        row = self._sync()
        value = self._cols.pred[row]
        return None if value == -1 else int(value)

    @predecessor.setter
    def predecessor(self, value: Optional[int]) -> None:
        row = self._sync()
        self._cols.pred[row] = -1 if value is None else value
        self._cols.epoch += 1

    @property
    def alive(self) -> bool:
        row = self._sync()
        return bool(self._cols.alive[row])

    @alive.setter
    def alive(self, value: bool) -> None:
        row = self._sync()
        self._cols.alive[row] = bool(value)
        self._cols.epoch += 1

    @property
    def store(self) -> Dict[int, object]:
        """Key-value replica storage hosted on this node."""
        existing = self._kv.get(self.node_id)
        if existing is None:
            existing = {}
            self._kv[self.node_id] = existing
        return existing

    @property
    def successor(self) -> int:
        """First live entry of the successor list (primary successor)."""
        successors = self.successor_list
        if not successors:
            return self.node_id
        return successors[0]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ChordNode(node_id={self.node_id}, fingers={self.fingers}, "
            f"successor_list={self.successor_list}, "
            f"predecessor={self.predecessor}, alive={self.alive})"
        )


@dataclasses.dataclass(frozen=True)
class BatchLookupResult:
    """Outcome of a batched Chord lookup (one row per query).

    ``owners[i]`` is -1 when query ``i`` failed; ``hops[i]`` counts
    forwarding hops exactly as :attr:`LookupResult.hops` does.
    """

    owners: np.ndarray
    hops: np.ndarray
    succeeded: np.ndarray

    def __len__(self) -> int:
        return len(self.owners)

    @property
    def success_rate(self) -> float:
        if len(self.owners) == 0:
            return 0.0
        return float(self.succeeded.mean())


@dataclasses.dataclass(frozen=True)
class LookupResult:
    """Outcome of an iterative Chord lookup."""

    key: int
    owner: Optional[int]
    path: Tuple[int, ...]
    succeeded: bool

    @property
    def hops(self) -> int:
        """Number of forwarding hops (path length minus the origin)."""
        return max(0, len(self.path) - 1)


class ChordRing:
    """A simulated Chord ring.

    Examples
    --------
    >>> ring = ChordRing.build([1, 18, 36, 99, 200], bits=8)
    >>> ring.find_successor(37)
    99
    >>> result = ring.lookup(37, start=1)
    >>> result.owner
    99
    """

    def __init__(
        self,
        bits: int = DEFAULT_ID_BITS,
        successor_list_length: int = DEFAULT_SUCCESSOR_LIST,
    ) -> None:
        if successor_list_length < 1:
            raise ConfigurationError("successor_list_length must be >= 1")
        self.space = IdentifierSpace(bits)
        self.successor_list_length = successor_list_length
        self._cols = _RoutingColumns(bits, successor_list_length)
        self._kv: Dict[int, Dict[int, object]] = {}
        self._views: Dict[int, ChordNode] = {}
        self._alive_sorted: List[int] = []
        #: Same membership as _alive_sorted; O(1) liveness tests keep the
        #: scalar lookup path as fast as the old per-node dict.
        self._alive_set: set = set()
        self._batch_cache: Optional[Tuple[int, Dict[str, object]]] = None

    @property
    def _routing_epoch(self) -> int:
        """Mutation counter keying the batch cache and view caches."""
        return self._cols.epoch

    def _invalidate_batch_cache(self) -> None:
        self._cols.epoch += 1

    def _node_view(self, node_id: int) -> ChordNode:
        view = self._views.get(node_id)
        if view is None:
            view = ChordNode(node_id, cols=self._cols, kv=self._kv)
            self._views[node_id] = view
        return view

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        node_ids: Sequence[int],
        bits: int = DEFAULT_ID_BITS,
        successor_list_length: int = DEFAULT_SUCCESSOR_LIST,
    ) -> "ChordRing":
        """Build a ring with exact routing state for ``node_ids``."""
        ring = cls(bits=bits, successor_list_length=successor_list_length)
        if len(node_ids) == 0:
            raise ConfigurationError("cannot build an empty ring")
        if (
            isinstance(node_ids, np.ndarray)
            and node_ids.dtype.kind == "i"
            and bits <= _VECTOR_BITS_LIMIT
        ):
            # Array fast path: vectorized validation for large rings.
            ids = np.sort(node_ids.astype(np.int64))
            if bool((ids < 0).any()) or bool((ids >= ring.space.size).any()):
                bad = int(ids[0]) if ids[0] < 0 else int(ids[-1])
                ring.space.validate(bad)
            if bool((ids[1:] == ids[:-1]).any()):
                dupe = int(ids[1:][ids[1:] == ids[:-1]][0])
                raise ConfigurationError(f"duplicate node id {dupe}")
            ring._alive_sorted = ids.tolist()
        else:
            unique = set()
            for node_id in node_ids:
                ring.space.validate(node_id)
                if node_id in unique:
                    raise ConfigurationError(f"duplicate node id {node_id}")
                unique.add(node_id)
            ring._alive_sorted = sorted(unique)
        ring._alive_set = set(ring._alive_sorted)
        ring._cols.install(ring._alive_sorted)
        ring.rebuild_routing_state()
        return ring

    def rebuild_routing_state(self) -> None:
        """Recompute exact fingers, successor lists, and predecessors for
        every live node (an omniscient stabilization).

        Vectorized: finger starts for all (node, index) pairs are one
        modular broadcast, owners one ``searchsorted`` over the sorted
        live ring, successor lists one roll of ring offsets — written
        straight into the routing columns (no per-node Python lists, the
        step that used to dominate memory and time on large rings).
        Rings wider than int64 fall back to the per-node scalar path,
        which also serves as the equivalence oracle in tests.
        """
        self._invalidate_batch_cache()
        ring = self._alive_sorted
        n = len(ring)
        if n == 0:
            return
        if self.space.bits > _VECTOR_BITS_LIMIT:
            self._rebuild_routing_state_scalar()
            return
        cols = self._cols
        ids = np.asarray(ring, dtype=np.int64)
        powers = np.int64(1) << np.arange(self.space.bits, dtype=np.int64)
        starts = (ids[:, None] + powers[None, :]) % np.int64(self.space.size)
        finger_idx = np.searchsorted(ids, starts, side="left") % n
        finger_rows = ids[finger_idx]
        length = min(self.successor_list_length, n - 1) if n > 1 else 1
        succ_idx = (np.arange(n)[:, None] + 1 + np.arange(length)[None, :]) % n
        succ_rows = ids[succ_idx]
        predecessors = np.roll(ids, 1)
        cols.ensure_succ_width(length)
        if len(cols) == n:
            # Every row is live: whole-column writes.
            cols.fingers[:, :] = finger_rows
            cols.fingers_set[:] = True
            cols.succ[:, :length] = succ_rows
            cols.succ[:, length:] = -1
            cols.succ_len[:] = length
            cols.pred[:] = predecessors
        else:
            rows = np.searchsorted(cols.ids, ids)
            cols.fingers[rows] = finger_rows
            cols.fingers_set[rows] = True
            cols.succ[rows, :length] = succ_rows
            cols.succ[rows, length:] = -1
            cols.succ_len[rows] = length
            cols.pred[rows] = predecessors
        cols.epoch += 1
        if len(cols) == n:
            # No dead entries linger, so rebuild's own arrays are exactly
            # the encoding _batch_state would recompute: prime the cache.
            self._prime_batch_cache(ids, finger_rows, finger_idx, succ_rows, succ_idx)

    def _prime_batch_cache(
        self,
        ids: np.ndarray,
        finger_rows: np.ndarray,
        finger_idx: np.ndarray,
        succ_rows: np.ndarray,
        succ_idx: np.ndarray,
    ) -> None:
        """Assemble the batch-lookup cache from rebuild's index matrices."""
        n, bits = finger_rows.shape
        size = np.int64(self.space.size)
        dist_f = (finger_rows - ids[:, None]) % size
        dist_f = np.where(dist_f == 0, size, dist_f)
        dist_s = (succ_rows - ids[:, None]) % size
        dist_s = np.where(dist_s == 0, size, dist_s)
        state: Dict[str, object] = {
            "all_ids": ids,
            "alive": np.ones(n, dtype=bool),
            "finger_ids": finger_rows,
            "finger_alive_of": np.ones((n, bits), dtype=bool),
            "succ_ids": succ_rows,
            "succ_alive_of": np.ones(succ_rows.shape, dtype=bool),
            "n_live": n,
            "clean": True,
            "dist_f": dist_f,
            "dist_f_rev": np.ascontiguousarray(dist_f[:, ::-1]),
            "finger_pos": finger_idx,
            "dist_s": dist_s,
            "succ_pos": succ_idx,
            "succ0_id": succ_rows[:, 0].copy(),
            "succ0_pos": succ_idx[:, 0].copy(),
            "dist0": (succ_rows[:, 0] - ids) % size,
        }
        self._batch_cache = (self._routing_epoch, state)

    def _rebuild_routing_state_scalar(self) -> None:
        """Per-node bisect path; oracle for the vectorized rebuild."""
        self._invalidate_batch_cache()
        for node_id in self._alive_sorted:
            node = self._node_view(node_id)
            node.fingers = [
                self._ideal_successor(self.space.finger_start(node_id, i))
                for i in range(self.space.bits)
            ]
            node.successor_list = self._ideal_successor_list(node_id)
            node.predecessor = self._ideal_predecessor(node_id)

    # ------------------------------------------------------------------
    # Oracle views (ground truth over live nodes)
    # ------------------------------------------------------------------
    def _ideal_successor(self, key: int) -> int:
        """The live node owning ``key`` (first node at or after it)."""
        if not self._alive_sorted:
            raise RoutingError("ring has no live nodes")
        index = bisect_left(self._alive_sorted, key)
        if index == len(self._alive_sorted):
            index = 0
        return self._alive_sorted[index]

    def _ideal_predecessor(self, node_id: int) -> int:
        index = bisect_left(self._alive_sorted, node_id)
        return self._alive_sorted[index - 1]

    def _ideal_successor_list(self, node_id: int) -> List[int]:
        ring = self._alive_sorted
        index = bisect_right(ring, node_id)
        length = min(self.successor_list_length, max(1, len(ring) - 1) if len(ring) > 1 else 1)
        result = []
        for offset in range(length):
            result.append(ring[(index + offset) % len(ring)])
        return result

    def find_successor(self, key: int) -> int:
        """Ground-truth owner of ``key`` among live nodes."""
        self.space.validate(key)
        return self._ideal_successor(key)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._alive_sorted)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._alive_set

    @property
    def live_node_ids(self) -> List[int]:
        return list(self._alive_sorted)

    @property
    def known_node_ids(self) -> List[int]:
        """Every identifier the ring has seen, dead nodes included."""
        return self._cols.ids.tolist()

    def node(self, node_id: int) -> ChordNode:
        if self._cols.row_of(node_id) < 0:
            raise RoutingError(f"unknown chord node {node_id}")
        return self._node_view(node_id)

    def join(self, node_id: int) -> None:
        """Add a node with only its successor pointer set (Chord join).

        The new node learns its successor via a lookup through an existing
        member; fingers, predecessor, and successor list converge through
        subsequent :meth:`stabilize` rounds.
        """
        self.space.validate(node_id)
        row = self._cols.row_of(node_id)
        if row >= 0 and bool(self._cols.alive[row]):
            raise ConfigurationError(f"node {node_id} already in the ring")
        self._invalidate_batch_cache()
        if row < 0:
            self._cols.insert(node_id)
        else:
            # Dead node rejoining: fresh state, fresh storage.
            self._cols.alive[row] = True
            self._kv.pop(node_id, None)
            self._cols.epoch += 1
        node = self._node_view(node_id)
        if self._alive_sorted:
            successor = self._ideal_successor(node_id)
            node.successor_list = [successor]
            node.fingers = [successor] * self.space.bits
        else:
            node.successor_list = [node_id]
            node.fingers = [node_id] * self.space.bits
        node.predecessor = None
        insort(self._alive_sorted, node_id)
        self._alive_set.add(node_id)

    def fail(self, node_id: int) -> None:
        """Crash-fail a node: it disappears without notifying anyone.

        Other nodes' routing state still references it until stabilization
        (or :meth:`rebuild_routing_state`) repairs the ring; lookups route
        around it via successor lists in the meantime.
        """
        node = self.node(node_id)
        if not node.alive:
            return
        self._invalidate_batch_cache()
        node.alive = False
        index = bisect_left(self._alive_sorted, node_id)
        if index < len(self._alive_sorted) and self._alive_sorted[index] == node_id:
            self._alive_sorted.pop(index)
        self._alive_set.discard(node_id)
        if not self._alive_sorted:
            raise RoutingError("last live node failed; ring is empty")

    def leave(self, node_id: int) -> None:
        """Graceful departure: hand pointers over before going away."""
        node = self.node(node_id)
        if not node.alive:
            return
        self._invalidate_batch_cache()
        predecessor_id = self._ideal_predecessor(node_id)
        successor_id = self._ideal_successor((node_id + 1) % self.space.size)
        self.fail(node_id)
        if predecessor_id != node_id:
            predecessor = self._node_view(predecessor_id)
            predecessor.successor_list = self._ideal_successor_list(predecessor_id)
        if successor_id != node_id:
            successor = self._node_view(successor_id)
            if successor.predecessor == node_id:
                successor.predecessor = predecessor_id if predecessor_id != node_id else None

    # ------------------------------------------------------------------
    # Stabilization protocol (Chord Fig. 6)
    # ------------------------------------------------------------------
    def stabilize(self, rounds: int = 1) -> None:
        """Run ``rounds`` of stabilize/notify/fix_fingers on every live node."""
        if rounds < 1:
            raise ConfigurationError("rounds must be >= 1")
        self._invalidate_batch_cache()
        for _ in range(rounds):
            for node_id in list(self._alive_sorted):
                node = self._node_view(node_id)
                if node.alive:
                    self._stabilize_node(node)
            for node_id in list(self._alive_sorted):
                node = self._node_view(node_id)
                if node.alive:
                    self._fix_fingers(node)
                    self._refresh_successor_list(node)

    def _first_live_successor(self, node: ChordNode) -> int:
        """First live entry in the successor list, pruning dead ones."""
        for candidate in node.successor_list:
            if candidate in self:
                return candidate
        # Whole list dead: fall back to any live finger, then to self.
        for candidate in node.fingers:
            if candidate in self:
                return candidate
        return node.node_id

    def _stabilize_node(self, node: ChordNode) -> None:
        successor_id = self._first_live_successor(node)
        successor = self._node_view(successor_id)
        candidate = successor.predecessor
        if (
            candidate is not None
            and candidate in self
            and self.space.in_open_interval(candidate, node.node_id, successor_id)
        ):
            successor_id = candidate
            successor = self._node_view(successor_id)
        if successor_id == node.node_id and len(self._alive_sorted) > 1:
            # Pointing at ourselves on a multi-node ring: adopt any live node.
            successor_id = self._ideal_successor((node.node_id + 1) % self.space.size)
            successor = self._node_view(successor_id)
        node.successor_list = ([successor_id] + [
            s for s in node.successor_list if s != successor_id
        ])[: self.successor_list_length]
        # notify(successor, node)
        if (
            successor.predecessor is None
            or successor.predecessor not in self
            or self.space.in_open_interval(
                node.node_id, successor.predecessor, successor_id
            )
        ):
            if successor_id != node.node_id:
                successor.predecessor = node.node_id

    def _fix_fingers(self, node: ChordNode) -> None:
        node.fingers = [
            self._lookup_internal(self.space.finger_start(node.node_id, i), node.node_id)
            or node.successor
            for i in range(self.space.bits)
        ]

    def _refresh_successor_list(self, node: ChordNode) -> None:
        chain = []
        current = self._first_live_successor(node)
        for _ in range(self.successor_list_length):
            if current == node.node_id and chain:
                break
            chain.append(current)
            current = self._first_live_successor(self._node_view(current))
            if current in chain:
                break
        node.successor_list = chain or [node.node_id]

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def _closest_preceding_node(self, node: ChordNode, key: int) -> int:
        for finger in reversed(node.fingers):
            if finger in self and self.space.in_open_interval(
                finger, node.node_id, key
            ):
                return finger
        for candidate in node.successor_list:
            if candidate in self and self.space.in_open_interval(
                candidate, node.node_id, key
            ):
                return candidate
        return node.node_id

    def _lookup_internal(self, key: int, start: int) -> Optional[int]:
        result = self.lookup(key, start)
        return result.owner if result.succeeded else None

    def lookup(self, key: int, start: int) -> LookupResult:
        """Iteratively resolve the owner of ``key`` starting at ``start``.

        Follows fingers exactly as a distributed Chord lookup would: at each
        step the current node either answers (its live successor owns the
        key) or forwards to the closest preceding live finger. Dead next
        hops are skipped via successor lists. Gives up (``succeeded=False``)
        after ``2 * bits + len(ring)`` hops, which only happens on heavily
        corrupted routing state.
        """
        self.space.validate(key)
        if start not in self:
            raise RoutingError(f"lookup must start at a live node, got {start}")
        path = [start]
        current = self._node_view(start)
        max_hops = 2 * self.space.bits + len(self._alive_sorted)
        for _ in range(max_hops):
            successor_id = self._first_live_successor(current)
            if successor_id == current.node_id and len(self._alive_sorted) == 1:
                return LookupResult(key, current.node_id, tuple(path), True)
            if self.space.in_half_open_interval(key, current.node_id, successor_id):
                path.append(successor_id)
                return LookupResult(key, successor_id, tuple(path), True)
            next_id = self._closest_preceding_node(current, key)
            if next_id == current.node_id:
                next_id = successor_id
            if next_id == current.node_id:
                break
            path.append(next_id)
            current = self._node_view(next_id)
        return LookupResult(key, None, tuple(path), False)

    def lookup_key(self, key_string: str, start: int) -> LookupResult:
        """Hash ``key_string`` onto the ring and resolve its owner."""
        return self.lookup(self.space.hash_key(key_string), start)

    def lookup_batch(
        self,
        keys: Sequence[int],
        starts: Union[int, Sequence[int]],
    ) -> BatchLookupResult:
        """Resolve many lookups at once, hop-for-hop like :meth:`lookup`.

        All queries advance together in hop-synchronous numpy batches:
        per hop, one gather of every query's finger row and successor
        row, vectorized modular-interval tests, and one mask update.
        Per-query :meth:`lookup` is the oracle — owners, hop counts, and
        success flags match it exactly (property-tested over random
        rings with failures). ``starts`` may be a scalar (broadcast) or
        one start per key. Rings wider than int64 fall back to looping
        :meth:`lookup`.

        Examples
        --------
        >>> ring = ChordRing.build([1, 18, 36, 99, 200], bits=8)
        >>> batch = ring.lookup_batch([37, 210], starts=[1, 99])
        >>> batch.owners.tolist()
        [99, 1]
        >>> batch.succeeded.tolist()
        [True, True]
        >>> int(batch.hops[0]) == ring.lookup(37, start=1).hops
        True
        """
        if self.space.bits > _VECTOR_BITS_LIMIT:
            return self._lookup_batch_scalar(keys, starts)
        try:
            key_arr = np.asarray(keys, dtype=np.int64).ravel()
        except (OverflowError, TypeError, ValueError):
            key_arr = np.asarray(
                [self.space.validate(int(key)) for key in keys],
                dtype=np.int64,
            )
        out_of_range = (key_arr < 0) | (key_arr >= self.space.size)
        if bool(out_of_range.any()):
            self.space.validate(int(key_arr[int(np.argmax(out_of_range))]))
        queries = len(key_arr)
        if isinstance(starts, (int, np.integer)):
            start_arr = np.full(queries, int(starts), dtype=np.int64)
        else:
            start_arr = np.asarray(starts, dtype=np.int64).ravel()
        if len(start_arr) != queries:
            raise ConfigurationError(
                f"got {queries} keys but {len(start_arr)} starts"
            )
        if queries == 0:
            return BatchLookupResult(
                owners=np.empty(0, dtype=np.int64),
                hops=np.empty(0, dtype=np.int64),
                succeeded=np.empty(0, dtype=bool),
            )
        state = self._batch_state()
        all_ids: np.ndarray = state["all_ids"]
        start_pos = np.searchsorted(all_ids, start_arr)
        clipped = np.minimum(start_pos, len(all_ids) - 1)
        live_start = (all_ids[clipped] == start_arr) & state["alive"][clipped]
        if not bool(live_start.all()):
            bad = int(start_arr[int(np.argmax(~live_start))])
            raise RoutingError(f"lookup must start at a live node, got {bad}")
        if state["clean"]:
            return self._lookup_batch_clean(key_arr, start_pos, state)
        return self._lookup_batch_general(key_arr, start_pos, state)

    def _lookup_batch_scalar(
        self,
        keys: Sequence[int],
        starts: Union[int, Sequence[int]],
    ) -> BatchLookupResult:
        """Loop :meth:`lookup` per key (rings wider than int64)."""
        keys_list = [self.space.validate(int(key)) for key in keys]
        if isinstance(starts, (int, np.integer)):
            starts_list = [int(starts)] * len(keys_list)
        else:
            starts_list = [int(start) for start in starts]
        if len(starts_list) != len(keys_list):
            raise ConfigurationError(
                f"got {len(keys_list)} keys but {len(starts_list)} starts"
            )
        for start in starts_list:
            if start not in self:
                raise RoutingError(
                    f"lookup must start at a live node, got {start}"
                )
        results = [
            self.lookup(key, start)
            for key, start in zip(keys_list, starts_list)
        ]
        return BatchLookupResult(
            # Identifiers here exceed int64 by definition (this path only
            # runs for rings wider than the vector limit), so owners stay
            # Python ints in an object array.
            owners=np.asarray(
                [r.owner if r.owner is not None else -1 for r in results],
                dtype=object,
            ),
            hops=np.asarray([r.hops for r in results], dtype=np.int64),
            succeeded=np.asarray([r.succeeded for r in results], dtype=bool),
        )

    def _batch_state(self) -> Dict[str, object]:
        """Encode the routing columns into the batch arrays, cached per epoch.

        Dead nodes are included — live nodes' stale pointers may still
        reference them. Every routing-state mutation (join/fail/leave/
        stabilize/rebuild, and any view-property write) bumps the column
        epoch, invalidating the cache, so repeated batches on an
        unchanged ring skip this setup. Since the columns *are* the
        routing state, assembly is pure array ops — no per-node loops.
        """
        cached = self._batch_cache
        if cached is not None and cached[0] == self._routing_epoch:
            return cached[1]
        cols = self._cols
        size = np.int64(self.space.size)
        all_ids = cols.ids
        alive = cols.alive
        n_all = len(all_ids)
        if bool(cols.fingers_set.all()):
            finger_ids = cols.fingers
        else:
            finger_ids = np.where(
                cols.fingers_set[:, None], cols.fingers, all_ids[:, None]
            )
        finger_pos = np.searchsorted(all_ids, finger_ids)
        max_list = max(int(cols.succ_len.max(initial=0)), 1)
        succ_ids = cols.succ[:, :max_list]
        if succ_ids.shape[1] == 0:
            succ_ids = np.full((n_all, 1), -1, dtype=np.int64)
        succ_valid = succ_ids >= 0
        succ_pos = np.searchsorted(
            all_ids, np.where(succ_valid, succ_ids, all_ids[0])
        )
        state: Dict[str, object] = {
            "all_ids": all_ids,
            "alive": alive,
            "finger_ids": finger_ids,
            "finger_alive_of": alive[finger_pos],
            "succ_ids": succ_ids,
            "succ_alive_of": succ_valid & alive[succ_pos],
            "n_live": len(self._alive_sorted),
            "clean": bool(alive.all()) and bool(succ_valid[:, 0].all()),
        }
        if state["clean"]:
            # Pristine-ring extras: with everyone alive, interval tests
            # reduce to compares on precomputed clockwise distances.
            # Self-pointers get distance ``size`` so the ``d > 0`` leg of
            # ``in_open_interval`` stays implicit in a single compare.
            dist_f = (finger_ids - all_ids[:, None]) % size
            dist_f = np.where(dist_f == 0, size, dist_f)
            state["dist_f"] = dist_f
            # Contiguous reversed copy: the per-hop highest-finger argmax
            # scans left-to-right instead of through a strided view.
            state["dist_f_rev"] = np.ascontiguousarray(dist_f[:, ::-1])
            state["finger_pos"] = finger_pos
            dist_s = (succ_ids - all_ids[:, None]) % size
            state["dist_s"] = np.where(succ_valid & (dist_s != 0), dist_s, size)
            state["succ_pos"] = succ_pos
            state["succ0_id"] = succ_ids[:, 0].copy()
            state["succ0_pos"] = succ_pos[:, 0].copy()
            state["dist0"] = (succ_ids[:, 0] - all_ids) % size
        self._batch_cache = (self._routing_epoch, state)
        return state

    def _lookup_batch_clean(
        self,
        key_arr: np.ndarray,
        start_pos: np.ndarray,
        state: Dict[str, object],
    ) -> BatchLookupResult:
        """Hop loop specialized for rings with no dead nodes.

        With every node alive, ``_first_live_successor`` is always the
        first successor-list entry and the closest-preceding scan needs
        no liveness masks, so each hop costs a few row gathers plus one
        compare over precomputed finger distances. Exact against
        :meth:`lookup` (property-tested alongside the general path).
        """
        size = np.int64(self.space.size)
        all_ids: np.ndarray = state["all_ids"]
        queries = len(key_arr)
        if state["n_live"] == 1:
            # The sole node answers every key without forwarding.
            return BatchLookupResult(
                owners=all_ids[start_pos].copy(),
                hops=np.zeros(queries, dtype=np.int64),
                succeeded=np.ones(queries, dtype=bool),
            )
        dist_f_rev: np.ndarray = state["dist_f_rev"]
        finger_pos: np.ndarray = state["finger_pos"]
        dist_s: np.ndarray = state["dist_s"]
        succ_pos: np.ndarray = state["succ_pos"]
        succ0_id: np.ndarray = state["succ0_id"]
        succ0_pos: np.ndarray = state["succ0_pos"]
        dist0: np.ndarray = state["dist0"]
        bits = self.space.bits

        current = start_pos.copy()
        owners = np.full(queries, -1, dtype=np.int64)
        hops = np.zeros(queries, dtype=np.int64)
        succeeded = np.zeros(queries, dtype=bool)
        active_idx = np.arange(queries)
        max_hops = 2 * bits + int(state["n_live"])

        for _ in range(max_hops):
            if len(active_idx) == 0:
                break
            cur = current[active_idx]
            d_key = (key_arr[active_idx] - all_ids[cur]) % size
            d_succ = dist0[cur]
            # key in (current, successor]; successor == current only on
            # degenerate rings, where the interval is the whole ring.
            owned = (d_succ == 0) | ((d_key > 0) & (d_key <= d_succ))
            done = active_idx[owned]
            owners[done] = succ0_id[cur[owned]]
            hops[done] += 1
            succeeded[done] = True
            forward = ~owned
            active_idx = active_idx[forward]
            if len(active_idx) == 0:
                continue
            cur = cur[forward]
            d_key = d_key[forward]
            # in_open_interval(f, current, key): 0 < d(cur,f) < d(cur,key),
            # widening to the full ring when key == current.
            thresh = np.where(d_key > 0, d_key, size)
            rev_mask = dist_f_rev[cur] < thresh[:, None]
            # Highest qualifying finger, like the reversed scalar scan;
            # gathering the argmax column back doubles as the any-test.
            rev_col = np.argmax(rev_mask, axis=1)
            rows = np.arange(len(cur))
            f_any = rev_mask[rows, rev_col]
            f_col = (bits - 1) - rev_col
            next_pos = np.where(f_any, finger_pos[cur, f_col], succ0_pos[cur])
            miss = np.nonzero(~f_any)[0]
            if len(miss):
                # Scalar fallback order: first successor-list entry in
                # the interval, else the live successor itself.
                s_mask = dist_s[cur[miss]] < thresh[miss, None]
                s_any = s_mask.any(axis=1)
                s_col = np.argmax(s_mask, axis=1)
                next_pos[miss] = np.where(
                    s_any, succ_pos[cur[miss], s_col], next_pos[miss]
                )
            # next == current cannot happen here: the successor fallback
            # differs from current whenever the ownership test failed.
            hops[active_idx] += 1
            current[active_idx] = next_pos
        return BatchLookupResult(owners=owners, hops=hops, succeeded=succeeded)

    def _lookup_batch_general(
        self,
        key_arr: np.ndarray,
        start_pos: np.ndarray,
        state: Dict[str, object],
    ) -> BatchLookupResult:
        """Hop loop handling dead nodes and arbitrary stale pointers."""
        size = np.int64(self.space.size)

        def in_open(value, lo, hi):
            d_value = (value - lo) % size
            return (d_value > 0) & (
                (d_value < (hi - lo) % size) | (lo == hi)
            )

        def in_half_open(value, lo, hi):
            d_value = (value - lo) % size
            return (lo == hi) | ((d_value > 0) & (d_value <= (hi - lo) % size))

        all_ids: np.ndarray = state["all_ids"]
        finger_ids: np.ndarray = state["finger_ids"]
        finger_alive_of: np.ndarray = state["finger_alive_of"]
        succ_ids: np.ndarray = state["succ_ids"]
        succ_alive_of: np.ndarray = state["succ_alive_of"]
        bits = self.space.bits

        queries = len(key_arr)
        current = start_pos.copy()
        owners = np.full(queries, -1, dtype=np.int64)
        hops = np.zeros(queries, dtype=np.int64)
        succeeded = np.zeros(queries, dtype=bool)
        active = np.ones(queries, dtype=bool)
        single_node_ring = int(state["n_live"]) == 1
        max_hops = 2 * bits + int(state["n_live"])

        for _ in range(max_hops):
            if not bool(active.any()):
                break
            q = np.nonzero(active)[0]
            cur = current[q]
            cur_id = all_ids[cur]
            key_q = key_arr[q]

            # _first_live_successor: successor list first, then fingers,
            # then self.
            s_alive = succ_alive_of[cur]
            s_found = s_alive.any(axis=1)
            s_pick = succ_ids[cur, np.argmax(s_alive, axis=1)]
            f_alive = finger_alive_of[cur]
            f_found = f_alive.any(axis=1)
            f_pick = finger_ids[cur, np.argmax(f_alive, axis=1)]
            successor_id = np.where(
                s_found, s_pick, np.where(f_found, f_pick, cur_id)
            )

            # Single-node ring: the sole node answers for every key.
            if single_node_ring:
                trivial = successor_id == cur_id
                done = q[trivial]
                owners[done] = cur_id[trivial]
                succeeded[done] = True
                active[done] = False
                if bool(trivial.all()):
                    continue
                keep = ~trivial
                q = q[keep]
                cur = cur[keep]
                cur_id = cur_id[keep]
                key_q = key_q[keep]
                successor_id = successor_id[keep]
                s_alive = s_alive[keep]
                f_alive = f_alive[keep]

            # Ownership test: key in (current, successor].
            owned = in_half_open(key_q, cur_id, successor_id)
            done = q[owned]
            owners[done] = successor_id[owned]
            hops[done] += 1
            succeeded[done] = True
            active[done] = False
            keep = ~owned
            if not bool(keep.any()):
                continue
            q = q[keep]
            cur = cur[keep]
            cur_id = cur_id[keep]
            key_q = key_q[keep]
            successor_id = successor_id[keep]
            s_alive = s_alive[keep]
            f_alive = f_alive[keep]

            # _closest_preceding_node: highest finger in (current, key),
            # then first successor-list entry in (current, key), else
            # fall through to the live successor.
            f_ids = finger_ids[cur]
            f_mask = f_alive & in_open(f_ids, cur_id[:, None], key_q[:, None])
            f_any = f_mask.any(axis=1)
            f_col = (bits - 1) - np.argmax(f_mask[:, ::-1], axis=1)
            f_next = f_ids[np.arange(len(cur)), f_col]
            s_ids = succ_ids[cur]
            s_mask = s_alive & in_open(s_ids, cur_id[:, None], key_q[:, None])
            s_any = s_mask.any(axis=1)
            s_next = s_ids[np.arange(len(cur)), np.argmax(s_mask, axis=1)]
            next_id = np.where(f_any, f_next, np.where(s_any, s_next, cur_id))
            next_id = np.where(next_id == cur_id, successor_id, next_id)

            stuck = next_id == cur_id
            active[q[stuck]] = False  # failed: owners stay -1
            advance = ~stuck
            moved = q[advance]
            hops[moved] += 1
            current[moved] = np.searchsorted(all_ids, next_id[advance])

        # Queries still active after max_hops failed, like the scalar path.
        return BatchLookupResult(owners=owners, hops=hops, succeeded=succeeded)

    # ------------------------------------------------------------------
    # Key-value storage with successor-list replication
    # ------------------------------------------------------------------
    # SOS beacons keep state in the DHT (the target -> servlet binding);
    # Chord replicates each key on the owner and its next live successors
    # so the binding survives owner failures until re-replication runs.

    DEFAULT_REPLICAS = 3

    def _replica_nodes(self, key: int, replicas: int) -> List[int]:
        """The owner of ``key`` plus its next ``replicas - 1`` live
        successors (ring order, distinct)."""
        owner = self._ideal_successor(key)
        nodes = [owner]
        index = bisect_right(self._alive_sorted, owner) % max(
            1, len(self._alive_sorted)
        )
        while len(nodes) < min(replicas, len(self._alive_sorted)):
            candidate = self._alive_sorted[index % len(self._alive_sorted)]
            index += 1
            if candidate not in nodes:
                nodes.append(candidate)
        return nodes

    def put(
        self, key: int, value: object, replicas: int = DEFAULT_REPLICAS
    ) -> List[int]:
        """Store ``value`` under ``key`` on the owner and its replicas.

        Returns the node identifiers holding a copy.
        """
        if replicas < 1:
            raise ConfigurationError("replicas must be >= 1")
        self.space.validate(key)
        holders = self._replica_nodes(key, replicas)
        for node_id in holders:
            self._kv.setdefault(node_id, {})[key] = value
        return holders

    def put_key(
        self, key_string: str, value: object, replicas: int = DEFAULT_REPLICAS
    ) -> List[int]:
        """Hash ``key_string`` and store under the resulting identifier."""
        return self.put(self.space.hash_key(key_string), value, replicas)

    def get(self, key: int, start: Optional[int] = None) -> object:
        """Retrieve the value for ``key``, surviving owner failures.

        Routes to the owner via :meth:`lookup`; when the owner has no copy
        (e.g. it took over the range after a crash and re-replication has
        not run yet), its successor list is consulted for a surviving
        replica. Raises :class:`RoutingError` when no copy is found.
        """
        self.space.validate(key)
        if start is None:
            start = self._alive_sorted[0]
        result = self.lookup(key, start)
        if not result.succeeded or result.owner is None:
            raise RoutingError(f"lookup for key {key} failed")
        owner_store = self._kv.get(result.owner, {})
        if key in owner_store:
            return owner_store[key]
        for candidate in self._node_view(result.owner).successor_list:
            if candidate in self and key in self._kv.get(candidate, {}):
                return self._kv[candidate][key]
        # Last resort: any live replica (models a directory-wide search).
        for node_id in self._alive_sorted:
            if key in self._kv.get(node_id, {}):
                return self._kv[node_id][key]
        raise RoutingError(f"no surviving replica for key {key}")

    def get_key(self, key_string: str, start: Optional[int] = None) -> object:
        """Hash ``key_string`` and retrieve the stored value."""
        return self.get(self.space.hash_key(key_string), start)

    def maintain_replicas(self, replicas: int = DEFAULT_REPLICAS) -> int:
        """Restore the replication factor after churn.

        For every stored key, copies the value onto missing replica nodes
        and drops copies from nodes outside the replica set. Returns the
        number of copy operations performed.
        """
        if replicas < 1:
            raise ConfigurationError("replicas must be >= 1")
        # Collect the surviving copies.
        values: Dict[int, object] = {}
        holders: Dict[int, List[int]] = {}
        for node_id in self._alive_sorted:
            for key, value in self._kv.get(node_id, {}).items():
                values[key] = value
                holders.setdefault(key, []).append(node_id)
        copies = 0
        for key, value in values.items():
            desired = set(self._replica_nodes(key, replicas))
            current = set(holders.get(key, ()))
            for node_id in desired - current:
                self._kv.setdefault(node_id, {})[key] = value
                copies += 1
            for node_id in current - desired:
                del self._kv[node_id][key]
        return copies

    def replica_count(self, key: int) -> int:
        """Number of live nodes currently holding ``key``."""
        return sum(
            1
            for node_id in self._alive_sorted
            if key in self._kv.get(node_id, {})
        )

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def lookup_statistics(self, samples: int = 200, rng=None) -> "LookupStatistics":
        """Sample random lookups and summarize hop counts and correctness.

        Used by operational dashboards and tests asserting the O(log N)
        bound; lookups start at uniformly random live nodes with uniformly
        random keys.
        """
        if samples < 1:
            raise ConfigurationError("samples must be >= 1")
        generator = np.random.default_rng(rng) if not isinstance(
            rng, np.random.Generator
        ) else rng
        hops: List[int] = []
        correct = 0
        failed = 0
        live = self._alive_sorted
        for _ in range(samples):
            key = int(generator.integers(0, self.space.size))
            start = live[int(generator.integers(0, len(live)))]
            result = self.lookup(key, start)
            if not result.succeeded:
                failed += 1
                continue
            if result.owner == self.find_successor(key):
                correct += 1
                hops.append(result.hops)
        return LookupStatistics(
            samples=samples,
            correct=correct,
            failed=failed,
            mean_hops=sum(hops) / len(hops) if hops else float("nan"),
            max_hops=max(hops) if hops else 0,
        )


@dataclasses.dataclass(frozen=True)
class LookupStatistics:
    """Aggregate outcome of sampled Chord lookups."""

    samples: int
    correct: int
    failed: int
    mean_hops: float
    max_hops: int

    @property
    def accuracy(self) -> float:
        return self.correct / self.samples
