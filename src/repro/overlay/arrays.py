"""Struct-of-arrays backing store for overlay node state.

The object-per-node representation (:class:`~repro.overlay.node.OverlayNode`
instances in dictionaries) caps simulations at the ~10⁴–10⁵ nodes that fit
as Python objects. :class:`OverlayStore` keeps the same state as contiguous
numpy columns — identifiers, health codes, SOS layer codes, and padded
neighbor tables — so a million-node overlay costs tens of megabytes and
every bulk operation (health census, layer membership, reset, per-layer
bad counts) is one vectorized pass. :class:`~repro.overlay.node.OverlayNode`
remains the public API: nodes created by :class:`~repro.overlay.network
.OverlayNetwork` and :class:`~repro.sos.filters.FilterRing` are thin views
whose property reads and writes go straight to these columns, so the object
and array views can never disagree.

The store also maintains **incremental per-layer health counters**: every
health or layer transition adjusts ``bad``/``crashed`` tallies per layer,
so :meth:`~repro.sos.deployment.SOSDeployment.bad_counts` is O(layers)
instead of an O(N) rescan in the detect→repair loop.

The :func:`share_columns` / :func:`attach_columns` helpers at the bottom
serialize a set of named arrays into one ``multiprocessing.shared_memory``
block and reconstruct zero-copy read-only views in worker processes — the
transport :func:`repro.perf.fastsim.run_packet_replicas` uses to shard
replicas without pickling deployments.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "HEALTH_GOOD",
    "HEALTH_COMPROMISED",
    "HEALTH_CONGESTED",
    "HEALTH_CRASHED",
    "OverlayStore",
    "share_columns",
    "attach_columns",
    "SharedColumns",
]

#: Health codes, stable across processes and serializations. Order matches
#: :class:`~repro.overlay.node.NodeHealth` declaration order so a census
#: bincount maps 1:1 onto the enum.
HEALTH_GOOD = 0
HEALTH_COMPROMISED = 1
HEALTH_CONGESTED = 2
HEALTH_CRASHED = 3

#: Layer code for "not enrolled" (``OverlayNode.sos_layer is None``).
NO_LAYER = 0

#: Largest population for which ``row_of`` builds an id→row dict on
#: first use. Scalar lookups dominate the small-N oracle paths (per-hop
#: forwarding, per-node attacks), where the dict restores O(1) hits; at
#: million-node scale the dict would cost hundreds of MB against a
#: vectorized workload that never calls scalar ``row_of``, so large
#: stores stay on the binary search.
_ROW_MAP_MAX = 1 << 17


class OverlayStore:
    """Columnar state for a fixed population of overlay nodes.

    The population (identifier set) is fixed at construction — overlay
    networks and filter rings never grow — which keeps row lookup a
    binary search over one sorted array instead of a per-node dict.

    Columns (all length ``len(store)``, creation order):

    ``ids``
        int64 node identifiers, in creation order (the order the owning
        network enumerated them — **not** necessarily sorted).
    ``health``
        int8 health codes (``HEALTH_*`` above).
    ``layer``
        int32 1-based SOS layer, ``NO_LAYER`` (0) when not enrolled.
    ``neighbor_len``
        int32 per-row valid length of the neighbor table. The tables
        themselves live in a *compact* ``(rows_with_tables, W)`` int64
        matrix reached through a per-row index — in an SOS deployment
        only the enrolled minority carries neighbors, so a million-node
        store must not pay ``N × W`` words for them (read via
        :meth:`neighbors_of` / :meth:`neighbor_matrix`).
    """

    __slots__ = (
        "ids",
        "health",
        "layer",
        "neighbor_len",
        "wiring_epoch",
        "_order",
        "_sorted_ids",
        "_bad_per_layer",
        "_crashed_per_layer",
        "_nbr_index",
        "_nbr_table",
        "_nbr_used",
        "_nbr_tuples",
        "_row_map",
    )

    def __init__(self, ids: Sequence[int]) -> None:
        id_col = np.asarray(ids, dtype=np.int64)
        if id_col.ndim != 1:
            raise ConfigurationError("ids must be one-dimensional")
        n = len(id_col)
        self.ids = id_col
        self.health = np.zeros(n, dtype=np.int8)
        self.layer = np.zeros(n, dtype=np.int32)
        self.neighbor_len = np.zeros(n, dtype=np.int32)
        # Compact neighbor storage: row -> compact table index, with
        # index 0 reserved as the all-empty sentinel.
        self._nbr_index = np.zeros(n, dtype=np.int64)
        self._nbr_table = np.full((1, 0), -1, dtype=np.int64)
        self._nbr_used = 1
        self._nbr_tuples: Dict[int, Tuple[int, ...]] = {}
        self._row_map: Dict[int, int] = {}
        #: Bumped on every wiring mutation (layer assignment, neighbor
        #: table write, role reset) — consumers caching derived encodings
        #: (e.g. the fastsim deployment arrays) key on it.
        self.wiring_epoch = 0
        self._order = np.argsort(id_col, kind="stable")
        self._sorted_ids = id_col[self._order]
        if n and bool((self._sorted_ids[1:] == self._sorted_ids[:-1]).any()):
            raise ConfigurationError("store ids must be unique")
        self._bad_per_layer = np.zeros(1, dtype=np.int64)
        self._crashed_per_layer = np.zeros(1, dtype=np.int64)

    # ------------------------------------------------------------------
    # Row lookup
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.ids)

    def row_of(self, node_id: int) -> int:
        """Row of ``node_id``, or -1 when the identifier is unknown."""
        row_map = self._row_map
        if row_map:
            return row_map.get(node_id, -1)
        if 0 < len(self.ids) <= _ROW_MAP_MAX:
            row_map.update(zip(self.ids.tolist(), range(len(self.ids))))
            return row_map.get(node_id, -1)
        index = int(self._sorted_ids.searchsorted(node_id))
        if (
            index < len(self._sorted_ids)
            and int(self._sorted_ids[index]) == node_id
        ):
            return int(self._order[index])
        return -1

    def rows_of(self, node_ids: Sequence[int]) -> np.ndarray:
        """Rows of many identifiers at once; unknown ids raise."""
        wanted = np.asarray(node_ids, dtype=np.int64)
        index = np.searchsorted(self._sorted_ids, wanted)
        clipped = np.minimum(index, max(len(self._sorted_ids) - 1, 0))
        if len(self._sorted_ids) == 0 or bool(
            (self._sorted_ids[clipped] != wanted).any()
        ):
            raise ConfigurationError("unknown node identifier in rows_of")
        return self._order[clipped]

    @property
    def sorted_ids(self) -> np.ndarray:
        """All identifiers, ascending (shared array — do not mutate)."""
        return self._sorted_ids

    # ------------------------------------------------------------------
    # Health (incremental per-layer counters)
    # ------------------------------------------------------------------
    def _ensure_layer_capacity(self, layer: int) -> None:
        if layer >= len(self._bad_per_layer):
            grow = layer + 1 - len(self._bad_per_layer)
            self._bad_per_layer = np.concatenate(
                [self._bad_per_layer, np.zeros(grow, dtype=np.int64)]
            )
            self._crashed_per_layer = np.concatenate(
                [self._crashed_per_layer, np.zeros(grow, dtype=np.int64)]
            )

    def get_health(self, row: int) -> int:
        return self.health.item(row)

    def set_health(self, row: int, code: int) -> None:
        """Write one health code, keeping per-layer counters exact."""
        old = self.health.item(row)
        if old == code:
            return
        layer = self.layer.item(row)
        if layer >= len(self._bad_per_layer):
            self._ensure_layer_capacity(layer)
        bad_delta = (code != HEALTH_GOOD) - (old != HEALTH_GOOD)
        if bad_delta:
            self._bad_per_layer[layer] += bad_delta
        crash_delta = (code == HEALTH_CRASHED) - (old == HEALTH_CRASHED)
        if crash_delta:
            self._crashed_per_layer[layer] += crash_delta
        self.health[row] = code

    def set_health_many(self, rows: np.ndarray, code: int) -> None:
        """Bulk health write with one counter pass (vectorized churn)."""
        rows = np.asarray(rows, dtype=np.int64)
        if len(rows) == 0:
            return
        old = self.health[rows]
        changed = rows[old != code]
        if len(changed) == 0:
            return
        old = self.health[changed]
        layers = self.layer[changed].astype(np.int64)
        self._ensure_layer_capacity(int(layers.max(initial=0)))
        width = len(self._bad_per_layer)
        bad_delta = (np.int64(code != HEALTH_GOOD) - (old != HEALTH_GOOD)).astype(
            np.int64
        )
        crash_delta = (
            np.int64(code == HEALTH_CRASHED) - (old == HEALTH_CRASHED)
        ).astype(np.int64)
        self._bad_per_layer += np.bincount(
            layers, weights=bad_delta, minlength=width
        ).astype(np.int64)
        self._crashed_per_layer += np.bincount(
            layers, weights=crash_delta, minlength=width
        ).astype(np.int64)
        self.health[changed] = code

    def reset_health(self) -> None:
        """Everyone back to GOOD; counters collapse to zero."""
        self.health[:] = HEALTH_GOOD
        self._bad_per_layer[:] = 0
        self._crashed_per_layer[:] = 0

    def bad_count(self, layer: int) -> int:
        """Nodes of ``layer`` in any non-GOOD state (O(1) via counters)."""
        if layer >= len(self._bad_per_layer):
            return 0
        return int(self._bad_per_layer[layer])

    def crashed_count(self, layer: int) -> int:
        """Benignly crashed nodes of ``layer`` (O(1) via counters)."""
        if layer >= len(self._crashed_per_layer):
            return 0
        return int(self._crashed_per_layer[layer])

    def census(self) -> np.ndarray:
        """Counts per health code (length 4, ``HEALTH_*`` order)."""
        return np.bincount(self.health, minlength=4)

    def recompute_counters(self) -> None:
        """Rebuild the per-layer counters from the columns (bulk ops)."""
        layers = self.layer.astype(np.int64)
        top = int(layers.max(initial=0))
        self._ensure_layer_capacity(top)
        width = len(self._bad_per_layer)
        bad = self.health != HEALTH_GOOD
        crashed = self.health == HEALTH_CRASHED
        self._bad_per_layer = np.bincount(
            layers[bad], minlength=width
        ).astype(np.int64)
        self._crashed_per_layer = np.bincount(
            layers[crashed], minlength=width
        ).astype(np.int64)

    # ------------------------------------------------------------------
    # Roles and wiring
    # ------------------------------------------------------------------
    def get_layer(self, row: int) -> int:
        return self.layer.item(row)

    def set_layer(self, row: int, layer: int) -> None:
        """Move one node between layers, migrating its health tallies."""
        old = int(self.layer[row])
        if old == layer:
            return
        self._ensure_layer_capacity(max(old, layer))
        code = int(self.health[row])
        if code != HEALTH_GOOD:
            self._bad_per_layer[old] -= 1
            self._bad_per_layer[layer] += 1
            if code == HEALTH_CRASHED:
                self._crashed_per_layer[old] -= 1
                self._crashed_per_layer[layer] += 1
        self.layer[row] = layer
        self.wiring_epoch += 1

    def reset_roles(self) -> None:
        """Clear enrollment and neighbor tables on every node."""
        self.layer[:] = NO_LAYER
        self.neighbor_len[:] = 0
        # Release every compact neighbor row for reuse; stale table
        # contents become unreachable once the indices point at the
        # sentinel again.
        self._nbr_index[:] = 0
        self._nbr_used = 1
        self._nbr_tuples.clear()
        self.wiring_epoch += 1
        self.recompute_counters()

    def _ensure_neighbor_width(self, width: int) -> None:
        if width > self._nbr_table.shape[1]:
            grown = np.full(
                (self._nbr_table.shape[0], width), -1, dtype=np.int64
            )
            grown[:, : self._nbr_table.shape[1]] = self._nbr_table
            self._nbr_table = grown

    def set_neighbors(self, row: int, neighbor_ids: Sequence[int]) -> None:
        values = np.asarray(tuple(neighbor_ids), dtype=np.int64)
        self._ensure_neighbor_width(len(values))
        index = int(self._nbr_index[row])
        if index == 0:
            if self._nbr_used == self._nbr_table.shape[0]:
                grown = np.full(
                    (max(8, 2 * self._nbr_used), self._nbr_table.shape[1]),
                    -1,
                    dtype=np.int64,
                )
                grown[: self._nbr_used] = self._nbr_table[: self._nbr_used]
                self._nbr_table = grown
            index = self._nbr_used
            self._nbr_used += 1
            self._nbr_index[row] = index
        self._nbr_table[index, : len(values)] = values
        self._nbr_table[index, len(values):] = -1
        self.neighbor_len[row] = len(values)
        self._nbr_tuples.pop(row, None)
        self.wiring_epoch += 1

    def neighbors_of(self, row: int) -> Tuple[int, ...]:
        cached = self._nbr_tuples.get(row)
        if cached is not None:
            return cached
        count = self.neighbor_len.item(row)
        if count == 0:
            return ()
        index = self._nbr_index.item(row)
        neighbors = tuple(self._nbr_table[index, :count].tolist())
        self._nbr_tuples[row] = neighbors
        return neighbors

    def neighbor_matrix(self, rows: np.ndarray, width: int) -> np.ndarray:
        """Gather the ``(len(rows), width)`` neighbor-id matrix for ``rows``.

        Entries beyond a row's ``neighbor_len`` are -1; rows without a
        neighbor table resolve through the all-empty sentinel. ``width``
        must not exceed the widest table ever set on this store.
        """
        if width > self._nbr_table.shape[1]:
            raise ConfigurationError(
                f"neighbor width {width} exceeds stored tables "
                f"({self._nbr_table.shape[1]})"
            )
        return self._nbr_table[self._nbr_index[rows], :width]


# ----------------------------------------------------------------------
# Shared-memory transport for named column sets
# ----------------------------------------------------------------------


class SharedColumns:
    """A set of named numpy arrays packed into one shared-memory block.

    Created by :func:`share_columns` in the parent; workers call
    :func:`attach_columns` with the ``(name, meta)`` pair to get zero-copy
    **read-only** views over the same physical pages. The parent owns the
    block: call :meth:`close` (and it unlinks) exactly once after every
    worker is done.
    """

    def __init__(self, shm: object, meta: Dict[str, object]) -> None:
        self.shm = shm
        self.meta = meta

    @property
    def name(self) -> str:
        return self.shm.name  # type: ignore[attr-defined]

    def close(self, unlink: bool = True) -> None:
        self.shm.close()  # type: ignore[attr-defined]
        if unlink:
            try:
                self.shm.unlink()  # type: ignore[attr-defined]
            except FileNotFoundError:  # already unlinked (double close)
                pass


def _align(offset: int, alignment: int = 64) -> int:
    return (offset + alignment - 1) // alignment * alignment


def share_columns(named: Dict[str, np.ndarray]) -> SharedColumns:
    """Copy ``named`` arrays into one fresh shared-memory segment.

    Returns a :class:`SharedColumns` whose ``meta`` (a plain picklable
    dict) carries the segment layout; ship ``(columns.name, columns.meta)``
    to workers and rebuild with :func:`attach_columns`.
    """
    from multiprocessing import shared_memory

    layout: List[Tuple[str, str, Tuple[int, ...], int]] = []
    offset = 0
    for key, array in named.items():
        contiguous = np.ascontiguousarray(array)
        offset = _align(offset)
        layout.append((key, contiguous.dtype.str, contiguous.shape, offset))
        offset += contiguous.nbytes
    shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
    for (key, dtype, shape, start), array in zip(layout, named.values()):
        flat = np.ascontiguousarray(array)
        view = np.ndarray(shape, dtype=dtype, buffer=shm.buf, offset=start)
        view[...] = flat
    return SharedColumns(shm, {"layout": layout})


def attach_columns(
    name: str, meta: Dict[str, object]
) -> Tuple[Dict[str, np.ndarray], object]:
    """Attach to a :func:`share_columns` segment; returns ``(arrays, shm)``.

    The arrays are read-only views over the shared pages (zero copies).
    Keep the returned ``shm`` handle alive as long as the arrays are in
    use, then ``close()`` it (never ``unlink`` — the parent owns that).
    """
    from multiprocessing import shared_memory

    # Attaching re-registers the segment with the resource tracker; pool
    # workers are children of the creator, so they share its tracker
    # process and the registration set is idempotent — the creator's
    # ``unlink`` performs the one real unregister. (Unregistering here,
    # the usual bpo-38119 workaround, would *remove* the creator's
    # registration from the shared tracker and make the final unlink
    # complain.)
    shm = shared_memory.SharedMemory(name=name)
    arrays: Dict[str, np.ndarray] = {}
    for key, dtype, shape, start in meta["layout"]:  # type: ignore[index]
        view = np.ndarray(tuple(shape), dtype=dtype, buffer=shm.buf, offset=start)
        view.flags.writeable = False
        arrays[key] = view
    return arrays, shm
