"""Underlay topology: the physical network beneath the overlay.

Overlay hops are not free — each one crosses several underlay links — and
the paper's §5 notes that "attacks on the underlying network are possible,
although hard to analyze." This module provides that substrate:

* :class:`UnderlayTopology` — a connected random graph (Waxman-style
  geometric or Barabási–Albert preferential attachment, via networkx) whose
  vertices are underlay routers with link latencies;
* overlay nodes are attached to random routers; the latency of an overlay
  hop is the shortest-path latency between the two routers;
* link failures (:meth:`UnderlayTopology.fail_link`) partition or lengthen
  paths; :meth:`overlay_hop_latency` returns ``inf`` when the endpoints are
  disconnected, which the latency and routing layers interpret as an
  unusable hop.

Used by the ``ext-underlay`` experiment and the ``underlay_effects``
example to quantify how underlay damage degrades SOS path quality even
when no overlay node is attacked.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx

from repro.errors import ConfigurationError, RoutingError
from repro.utils.seeding import SeedLike, make_rng


class UnderlayTopology:
    """A latency-weighted physical network hosting overlay nodes.

    Parameters
    ----------
    routers:
        Number of underlay routers.
    model:
        ``"waxman"`` (geometric random graph with distance-dependent link
        probability, the classic Internet-topology generator) or
        ``"barabasi-albert"`` (preferential attachment).
    mean_degree:
        Target average router degree (drives the generators' parameters).
    rng:
        Seed or generator.
    """

    def __init__(
        self,
        routers: int = 200,
        model: str = "waxman",
        mean_degree: float = 4.0,
        rng: SeedLike = None,
    ) -> None:
        if routers < 2:
            raise ConfigurationError(f"need at least 2 routers, got {routers}")
        if mean_degree < 2.0:
            raise ConfigurationError("mean_degree must be >= 2 for connectivity")
        self._rng = make_rng(rng)
        self.model = model
        self.graph = self._build_graph(routers, model, mean_degree)
        self._attachments: Dict[int, int] = {}
        self._distance_cache: Optional[Dict[int, Dict[int, float]]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_graph(self, routers: int, model: str, mean_degree: float) -> nx.Graph:
        seed = int(self._rng.integers(0, 2**31))
        if model == "waxman":
            # Waxman link probability is beta * exp(-d / (alpha * L)); with
            # alpha = 0.4 on the unit square the expected exponential factor
            # is ~0.35, so mean degree ~= beta * (n - 1) * 0.35. Solve for
            # beta to hit the requested mean degree.
            beta = min(1.0, mean_degree / (max(1, routers - 1) * 0.35))
            graph = nx.waxman_graph(routers, beta=beta, alpha=0.4, seed=seed)
        elif model == "barabasi-albert":
            m = max(1, int(round(mean_degree / 2)))
            graph = nx.barabasi_albert_graph(routers, m, seed=seed)
        else:
            raise ConfigurationError(
                f"unknown underlay model {model!r}; "
                "expected 'waxman' or 'barabasi-albert'"
            )
        # Force connectivity: chain the components together.
        components = [sorted(c) for c in nx.connected_components(graph)]
        for first, second in zip(components, components[1:]):
            graph.add_edge(first[0], second[0])
        # Latency per link: positional distance when available, else a
        # lognormal-ish draw around 10ms.
        positions = nx.get_node_attributes(graph, "pos")
        for u, v in graph.edges:
            if positions:
                (x1, y1), (x2, y2) = positions[u], positions[v]
                latency = 1.0 + 20.0 * math.hypot(x1 - x2, y1 - y2)
            else:
                latency = float(1.0 + self._rng.exponential(9.0))
            graph.edges[u, v]["latency"] = latency
        return graph

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def routers(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def links(self) -> int:
        return self.graph.number_of_edges()

    @property
    def mean_link_latency(self) -> float:
        latencies = [d["latency"] for _, _, d in self.graph.edges(data=True)]
        return sum(latencies) / len(latencies)

    def is_connected(self) -> bool:
        return nx.is_connected(self.graph)

    # ------------------------------------------------------------------
    # Overlay attachment
    # ------------------------------------------------------------------
    def attach_overlay_nodes(
        self, overlay_ids: Iterable[int], concentration: float = 0.0
    ) -> None:
        """Home each overlay node at a random router.

        ``concentration = 0`` is uniform. Larger values skew the choice
        Zipf-style toward a few "data-center" routers (rank ``r`` gets
        weight ``(r+1)**-concentration`` over a random ranking), modeling
        real deployments where overlay hosts cluster in few facilities.
        """
        if concentration < 0:
            raise ConfigurationError("concentration must be >= 0")
        router_list = list(self.graph.nodes)
        if concentration <= 0.0:
            weights = None
        else:
            order = self._rng.permutation(len(router_list))
            raw = [0.0] * len(router_list)
            for rank, index in enumerate(order):
                raw[int(index)] = (rank + 1.0) ** -concentration
            total = sum(raw)
            weights = [w / total for w in raw]
        for overlay_id in overlay_ids:
            index = int(self._rng.choice(len(router_list), p=weights))
            self._attachments[overlay_id] = router_list[index]
        self._distance_cache = None

    def router_of(self, overlay_id: int) -> int:
        try:
            return self._attachments[overlay_id]
        except KeyError:
            raise RoutingError(
                f"overlay node {overlay_id} is not attached to the underlay"
            ) from None

    # ------------------------------------------------------------------
    # Latency queries
    # ------------------------------------------------------------------
    def _distances_from(self, router: int) -> Dict[int, float]:
        if self._distance_cache is None:
            self._distance_cache = {}
        if router not in self._distance_cache:
            self._distance_cache[router] = nx.single_source_dijkstra_path_length(
                self.graph, router, weight="latency"
            )
        return self._distance_cache[router]

    def router_latency(self, source_router: int, target_router: int) -> float:
        """Shortest-path latency between routers; ``inf`` if disconnected."""
        if source_router not in self.graph or target_router not in self.graph:
            raise RoutingError("unknown router")
        distances = self._distances_from(source_router)
        return distances.get(target_router, math.inf)

    def overlay_hop_latency(self, from_overlay: int, to_overlay: int) -> float:
        """Underlay latency of one overlay hop; ``inf`` when partitioned
        or when either endpoint's home router is out of service."""
        source = self.router_of(from_overlay)
        target = self.router_of(to_overlay)
        if source not in self.graph or target not in self.graph:
            return math.inf
        return self.router_latency(source, target)

    def path_latency(self, overlay_path: List[int]) -> float:
        """Total underlay latency along an overlay hop sequence."""
        total = 0.0
        for a, b in zip(overlay_path, overlay_path[1:]):
            total += self.overlay_hop_latency(a, b)
        return total

    # ------------------------------------------------------------------
    # Underlay attacks
    # ------------------------------------------------------------------
    def fail_link(self, u: int, v: int) -> None:
        """Cut one underlay link (e.g. a cable cut or a saturated trunk)."""
        if not self.graph.has_edge(u, v):
            raise RoutingError(f"no link between routers {u} and {v}")
        self.graph.remove_edge(u, v)
        self._distance_cache = None

    def fail_random_links(self, count: int) -> List[Tuple[int, int]]:
        """Cut ``count`` uniformly random links; returns the cut set."""
        edges = list(self.graph.edges)
        if count > len(edges):
            raise ConfigurationError(
                f"cannot cut {count} of {len(edges)} links"
            )
        chosen = self._rng.choice(len(edges), size=count, replace=False)
        cut = [edges[int(i)] for i in chosen]
        for u, v in cut:
            self.graph.remove_edge(u, v)
        self._distance_cache = None
        return cut

    def fail_router(self, router: int) -> None:
        """Take a whole router (and all its links) out of service.

        Overlay nodes homed there lose connectivity: hops touching them
        report infinite latency. Models a facility outage or a targeted
        attack on a data center.
        """
        if router not in self.graph:
            raise RoutingError(f"unknown router {router}")
        self.graph.remove_node(router)
        self._distance_cache = None

    def fail_busiest_routers(
        self, count: int, overlay_ids: Iterable[int]
    ) -> List[int]:
        """Fail the ``count`` routers hosting the most of ``overlay_ids``.

        The targeted version of a facility outage: the attacker hits the
        data centers where the population visibly concentrates. Returns
        the failed router identifiers.
        """
        if count < 0:
            raise ConfigurationError("count must be >= 0")
        load: Dict[int, int] = {}
        for overlay_id in overlay_ids:
            router = self.router_of(overlay_id)
            load[router] = load.get(router, 0) + 1
        ranked = sorted(load, key=lambda r: (-load[r], r))
        victims = [r for r in ranked[:count] if r in self.graph]
        for router in victims:
            self.graph.remove_node(router)
        self._distance_cache = None
        return victims

    def router_alive(self, router: int) -> bool:
        return router in self.graph

    def partition_fraction(self, overlay_ids: Iterable[int]) -> float:
        """Fraction of overlay-node pairs that are underlay-disconnected."""
        ids = list(overlay_ids)
        if len(ids) < 2:
            return 0.0
        disconnected = 0
        total = 0
        for i, a in enumerate(ids):
            router_a = self.router_of(a)
            distances = (
                self._distances_from(router_a)
                if router_a in self.graph
                else {}
            )
            for b in ids[i + 1 :]:
                total += 1
                if self.router_of(b) not in distances:
                    disconnected += 1
        return disconnected / total
