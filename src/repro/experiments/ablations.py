"""Ablations on the design decisions DESIGN.md calls out.

Not paper figures, but each probes one modeling or architectural choice:

* :func:`ablation_filters` — how the filter-ring size changes ``P_S``
  (the paper fixes 10 filters without justification);
* :func:`ablation_prior_knowledge` — ``P_E`` sweep, isolating the value of
  the attacker's pre-attack intelligence;
* :func:`ablation_breakin_success` — ``P_B`` sweep (hardening nodes);
* :func:`ablation_tradeoff` — the break-in vs congestion Pareto frontier,
  making §5's "clear trade-off" claim concrete.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.architecture import SOSArchitecture
from repro.core.attack_models import OneBurstAttack, SuccessiveAttack
from repro.core.design_space import enumerate_designs, tradeoff_frontier
from repro.core.model import evaluate
from repro.experiments import config
from repro.experiments.result import Claim, FigureResult, non_decreasing, non_increasing

FILTER_SWEEP = (1, 2, 5, 10, 20, 50)
PE_SWEEP = (0.0, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0)
PB_SWEEP = (0.0, 0.1, 0.25, 0.5, 0.75, 1.0)


def _arch(layers: int = 4, mapping: str = "one-to-two", **kwargs) -> SOSArchitecture:
    defaults = dict(
        total_overlay_nodes=config.TOTAL_OVERLAY_NODES,
        sos_nodes=config.SOS_NODES,
        filters=config.FILTERS,
    )
    defaults.update(kwargs)
    return SOSArchitecture(layers=layers, mapping=mapping, **defaults)


def ablation_filters() -> FigureResult:
    """P_S vs filter-ring size under the default successive attack."""
    series: Dict[str, List[float]] = {}
    for mapping in ("one-to-one", "one-to-two", "one-to-five"):
        values = []
        for filters in FILTER_SWEEP:
            arch = _arch(mapping=mapping, filters=filters)
            values.append(evaluate(arch, SuccessiveAttack()).p_s)
        series[mapping] = values
    claims = [
        Claim(
            # Allow 1e-3 slack: each disclosed filter diverts one unit of
            # congestion budget from the overlay, producing a second-order
            # ~1e-4 wiggle in the average-case model.
            "more filters never hurt (one-to-two, within 1e-3)",
            non_decreasing(series["one-to-two"], slack=1e-3),
        ),
        Claim(
            "a single filter is a liability under disclosure-driven attacks "
            "(one-to-two: P_S at 1 filter below P_S at 10 filters)",
            series["one-to-two"][0] <= series["one-to-two"][3] + 1e-9,
        ),
    ]
    return FigureResult(
        figure_id="abl-filters",
        title="Ablation: P_S vs filter-ring size (successive defaults, L=4)",
        x_label="filters",
        x_values=list(FILTER_SWEEP),
        series=series,
        claims=claims,
        notes="The paper fixes 10 filters; the sweep shows the sensitivity.",
    )


def ablation_prior_knowledge() -> FigureResult:
    """P_S vs the attacker's prior knowledge P_E."""
    series: Dict[str, List[float]] = {}
    for mapping in ("one-to-one", "one-to-two", "one-to-five"):
        arch = _arch(mapping=mapping)
        values = [
            evaluate(arch, SuccessiveAttack(prior_knowledge=p_e)).p_s
            for p_e in PE_SWEEP
        ]
        series[mapping] = values
    claims = [
        Claim(
            "more prior knowledge never helps the defender",
            all(non_increasing(v, slack=1e-6) for v in series.values()),
        ),
    ]
    return FigureResult(
        figure_id="abl-prior",
        title="Ablation: P_S vs prior knowledge P_E (successive, L=4)",
        x_label="P_E",
        x_values=list(PE_SWEEP),
        series=series,
        claims=claims,
        notes="P_E seeds round 1 of Algorithm 1 with first-layer identities.",
    )


def ablation_breakin_success() -> FigureResult:
    """P_S vs per-attempt break-in success probability P_B."""
    series: Dict[str, List[float]] = {}
    for mapping in ("one-to-two", "one-to-five"):
        arch = _arch(mapping=mapping)
        values = [
            evaluate(arch, SuccessiveAttack(break_in_success=p_b)).p_s
            for p_b in PB_SWEEP
        ]
        series[mapping] = values
    claims = [
        Claim(
            "hardening nodes (lower P_B) raises P_S",
            all(non_increasing(v, slack=1e-6) for v in series.values()),
        ),
        Claim(
            "with P_B=0 break-ins disclose nothing, so only prior knowledge "
            "and congestion matter (P_S above 0.5 for one-to-two)",
            series["one-to-two"][0] > 0.5,
        ),
    ]
    return FigureResult(
        figure_id="abl-pb",
        title="Ablation: P_S vs break-in success probability P_B (L=4)",
        x_label="P_B",
        x_values=list(PB_SWEEP),
        series=series,
        claims=claims,
        notes="",
    )


def ablation_shared_roles() -> FigureResult:
    """§3.1's refused assumption: shared roles vs dedicated layers."""
    from repro.baselines.shared_roles import shared_vs_dedicated

    nt_sweep = (0, 200, 500, 1000, 2000)
    architecture = _arch(layers=3, mapping="one-to-half")
    shared_values = []
    dedicated_values = []
    for n_t in nt_sweep:
        shared, dedicated = shared_vs_dedicated(
            architecture, OneBurstAttack(break_in_budget=n_t, congestion_budget=2000)
        )
        shared_values.append(shared)
        dedicated_values.append(dedicated)
    shared_congestion, dedicated_congestion = shared_vs_dedicated(
        architecture, OneBurstAttack(break_in_budget=0, congestion_budget=9000)
    )
    series = {
        "shared roles": shared_values,
        "dedicated layers": dedicated_values,
    }
    claims = [
        Claim(
            "shared roles beat dedicated layers under pure heavy congestion "
            f"({shared_congestion:.3f} vs {dedicated_congestion:.3f} at N_C=9000)",
            shared_congestion > dedicated_congestion,
        ),
        Claim(
            "under break-in attacks dedicated layering dominates at every N_T > 0",
            all(
                d >= s - 1e-9
                for s, d in zip(shared_values[1:], dedicated_values[1:])
            ),
        ),
        Claim(
            "shared roles collapse to ~0 at N_T=2000 while dedicated survives",
            shared_values[-1] < 0.01 and dedicated_values[-1] > 0.2,
        ),
    ]
    return FigureResult(
        figure_id="abl-shared",
        title="Ablation: shared roles (original SOS assumption) vs "
        "dedicated layers under break-in",
        x_label="N_T",
        x_values=list(nt_sweep),
        series=series,
        claims=claims,
        notes="L=3, one-to-half, N_C=2000; the reason §3.1 forbids nodes "
        "from serving multiple layers.",
    )


def ablation_schedule_variants(trials: int = 35, seed: int = 17) -> FigureResult:
    """§3.2.1's representativeness claim: quota schedules barely matter."""
    from repro.attacks.variants import compare_schedules

    architecture = _arch(
        layers=3, total_overlay_nodes=1000, sos_nodes=45, filters=5
    )
    attack = SuccessiveAttack(
        break_in_budget=100, congestion_budget=250, rounds=3, prior_knowledge=0.2
    )
    results = compare_schedules(architecture, attack, trials=trials, seed=seed)
    labels = list(results)
    values = list(results.values())
    multi_round = [
        results["even (paper)"],
        results["front-loaded"],
        results["back-loaded"],
    ]
    claims = [
        Claim(
            "multi-round schedules land within a 0.12 band "
            "(the even split is representative)",
            max(multi_round) - min(multi_round) < 0.12,
        ),
        Claim(
            "collapsing to one round forfeits the disclosure cascade "
            "(defender keeps more P_S)",
            results["one-burst limit"] > results["even (paper)"] + 0.05,
        ),
    ]
    return FigureResult(
        figure_id="abl-variants",
        title="Ablation: successive-attack quota schedules (MC)",
        x_label="schedule",
        x_values=list(range(1, len(labels) + 1)),
        series={"client success rate": values},
        claims=claims,
        notes="schedules: "
        + "; ".join(f"{i + 1}={l}" for i, l in enumerate(labels))
        + f". {trials} matched trials each, N=1000 scale.",
    )


def ablation_tradeoff() -> FigureResult:
    """The §5 trade-off: break-in vs congestion resilience frontier."""
    designs = enumerate_designs(
        layers=range(1, 9),
        mappings=("one-to-one", "one-to-two", "one-to-five", "one-to-half", "one-to-all"),
    )
    frontier = tradeoff_frontier(designs)
    labels = [point.label for point in frontier]
    series = {
        "break_in_resilience": [p.break_in_resilience for p in frontier],
        "congestion_resilience": [p.congestion_resilience for p in frontier],
    }
    spans_both = (
        max(series["break_in_resilience"]) > 0.1
        and max(series["congestion_resilience"]) > 0.9
    )
    no_free_lunch = not any(
        p.break_in_resilience > 0.5 and p.congestion_resilience > 0.99
        for p in frontier
    )
    claims = [
        Claim("the frontier spans both resilience axes", spans_both),
        Claim(
            "no design is simultaneously near-perfect on both axes "
            "(the paper's 'clear trade-off')",
            no_free_lunch,
        ),
    ]
    return FigureResult(
        figure_id="abl-tradeoff",
        title="Ablation: break-in vs congestion resilience Pareto frontier",
        x_label="frontier point",
        x_values=list(range(1, len(frontier) + 1)),
        series=series,
        claims=claims,
        notes="points: " + "; ".join(f"{i + 1}={l}" for i, l in enumerate(labels)),
    )
