"""Rendering figure results as terminal tables, plots, and markdown."""

from __future__ import annotations

from typing import List

from repro.experiments.result import FigureResult
from repro.utils.ascii_plot import ascii_plot
from repro.utils.tables import format_table


def render_text(result: FigureResult, plot: bool = True) -> str:
    """Render one figure result as a table (+ optional ASCII plot)."""
    parts: List[str] = [result.title, "=" * len(result.title)]
    parts.append(
        format_table(result.headers(), result.rows(), float_format=".4f")
    )
    if plot and len(result.x_values) > 1:
        try:
            parts.append(
                ascii_plot(
                    list(result.x_values),
                    result.series,
                    title="",
                    xlabel=result.x_label,
                    ylabel="P_S",
                    y_min=0.0,
                    y_max=1.0,
                )
            )
        except ValueError:
            parts.append("(no plottable points)")
    if result.claims:
        parts.append("Paper claims:")
        for claim in result.claims:
            status = "PASS" if claim.holds else "FAIL"
            parts.append(f"  [{status}] {claim.description}")
    if result.warnings:
        parts.append("WARNING — degraded coverage:")
        for warning in result.warnings:
            parts.append(f"  ! {warning}")
    if result.notes:
        parts.append(f"Notes: {result.notes}")
    return "\n".join(parts) + "\n"


def render_markdown(result: FigureResult) -> str:
    """Render one figure result as a markdown section for EXPERIMENTS.md."""
    lines = [f"### {result.figure_id}: {result.title}", ""]
    headers = result.headers()
    lines.append("| " + " | ".join(str(h) for h in headers) + " |")
    lines.append("|" + "---|" * len(headers))
    for row in result.rows():
        cells = [
            f"{cell:.4f}" if isinstance(cell, float) else str(cell) for cell in row
        ]
        lines.append("| " + " | ".join(cells) + " |")
    lines.append("")
    if result.claims:
        lines.append("Paper claims (machine-checked):")
        lines.append("")
        for claim in result.claims:
            mark = "x" if claim.holds else " "
            lines.append(f"- [{mark}] {claim.description}")
        lines.append("")
    if result.warnings:
        lines.append("> **Warning — degraded coverage:**")
        for warning in result.warnings:
            lines.append(f"> - {warning}")
        lines.append("")
    if result.notes:
        lines.append(f"*{result.notes}*")
        lines.append("")
    return "\n".join(lines) + "\n"
