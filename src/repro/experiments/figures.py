"""Registry of every reproducible experiment, keyed by its DESIGN.md id."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import ExperimentError
from repro.experiments.ablations import (
    ablation_breakin_success,
    ablation_filters,
    ablation_prior_knowledge,
    ablation_schedule_variants,
    ablation_shared_roles,
    ablation_tradeoff,
)
from repro.experiments.extensions import (
    extension_game,
    extension_latency,
    extension_monitoring,
    extension_placement,
    extension_priority,
    extension_repair,
    extension_sensitivity,
    extension_underlay,
)
from repro.experiments.baseline_figs import baseline_overlay_size
from repro.experiments.detection_figs import det_ppm, det_sweep, det_traceback
from repro.experiments.fig4 import fig4a, fig4b
from repro.experiments.fig_mc import fig4a_monte_carlo
from repro.experiments.fig_nc import nc_sensitivity, nc_sensitivity_pure_congestion
from repro.experiments.fig6 import fig6a, fig6b
from repro.experiments.fig7 import fig7
from repro.experiments.fig8 import fig8a, fig8b
from repro.experiments.resilience_figs import (
    resilience_churn,
    resilience_detection,
    resilience_flooding,
)
from repro.experiments.result import FigureResult
from repro.experiments.scenario_figs import scenario_zoo
from repro.experiments.validation import validation_figure

FigureFn = Callable[[], FigureResult]

REGISTRY: Dict[str, FigureFn] = {
    "fig4a": fig4a,
    "fig4b": fig4b,
    "fig6a": fig6a,
    "fig6b": fig6b,
    "fig7": fig7,
    "fig8a": fig8a,
    "fig8b": fig8b,
    "val-mc": validation_figure,
    "abl-filters": ablation_filters,
    "abl-prior": ablation_prior_knowledge,
    "abl-pb": ablation_breakin_success,
    "abl-tradeoff": ablation_tradeoff,
    "abl-shared": ablation_shared_roles,
    "abl-variants": ablation_schedule_variants,
    "ext-latency": extension_latency,
    "ext-repair": extension_repair,
    "ext-monitoring": extension_monitoring,
    "ext-underlay": extension_underlay,
    "ext-game": extension_game,
    "ext-priority": extension_priority,
    "ext-placement": extension_placement,
    "ext-sensitivity": extension_sensitivity,
    "fig-nc": nc_sensitivity,
    "fig-nc-pure": nc_sensitivity_pure_congestion,
    "base-n": baseline_overlay_size,
    "fig4a-mc": fig4a_monte_carlo,
    "res-churn": resilience_churn,
    "res-detect": resilience_detection,
    "res-flood": resilience_flooding,
    "det-traceback": det_traceback,
    "det-ppm": det_ppm,
    "det-sweep": det_sweep,
    "scn-zoo": scenario_zoo,
}

#: The figures that appear in the paper itself (vs added validation).
PAPER_FIGURES = ("fig4a", "fig4b", "fig6a", "fig6b", "fig7", "fig8a", "fig8b")


def available() -> List[str]:
    return list(REGISTRY)


def run_figure(figure_id: str, **overrides) -> FigureResult:
    """Regenerate one figure by id.

    ``overrides`` (e.g. ``trials=200, seed=7``) are forwarded to the
    figure function when its signature accepts them and ignored otherwise,
    so callers can rescale every Monte Carlo experiment uniformly.
    """
    import inspect

    try:
        fn = REGISTRY[figure_id]
    except KeyError:
        raise ExperimentError(
            f"unknown figure {figure_id!r}; available: {', '.join(REGISTRY)}"
        ) from None
    if overrides:
        accepted = inspect.signature(fn).parameters
        overrides = {
            key: value for key, value in overrides.items() if key in accepted
        }
    return fn(**overrides)
