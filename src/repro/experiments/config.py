"""Canonical parameter points from the paper's evaluation sections.

Sections 3.1.2 and 3.2.3 fix: ``N = 10000`` overlay nodes, ``n = 100`` SOS
nodes, 10 filters, ``P_B = 0.5``, and (for the successive model)
``N_T = 200``, ``N_C = 2000``, ``R = 3``, ``P_E = 0.2`` with even node
distribution unless a figure varies them explicitly.
"""

from __future__ import annotations

from typing import Tuple

#: System-side defaults (§3.1.2).
TOTAL_OVERLAY_NODES = 10_000
SOS_NODES = 100
FILTERS = 10
BREAK_IN_SUCCESS = 0.5

#: Attack-side defaults for the successive model (§3.2.3).
BREAK_IN_BUDGET = 200
CONGESTION_BUDGET = 2_000
ROUNDS = 3
PRIOR_KNOWLEDGE = 0.2

#: Layer counts swept on the x-axis of Figs. 4 and 6.
LAYER_SWEEP: Tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 8)

#: Mapping degrees used in Fig. 4 (§3.1.2).
FIG4_MAPPINGS: Tuple[str, ...] = ("one-to-one", "one-to-half", "one-to-all")

#: Mapping degrees used in Fig. 6 (§3.2.3 introduces one-to-two/five).
FIG6_MAPPINGS: Tuple[str, ...] = (
    "one-to-one",
    "one-to-two",
    "one-to-five",
    "one-to-half",
    "one-to-all",
)

#: Round counts swept in Fig. 7.
ROUND_SWEEP: Tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 8)

#: Break-in budgets swept in Fig. 8.
BREAK_IN_SWEEP: Tuple[int, ...] = (0, 100, 200, 400, 800, 1600, 3200, 6400)
