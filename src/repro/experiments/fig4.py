"""Figure 4: sensitivity of ``P_S`` to ``L`` and ``m_i`` under the
one-burst attack (§3.1.2).

* Fig. 4(a): pure random congestion (``N_T = 0``) at two intensities
  (``N_C = 2000`` moderate, ``N_C = 6000`` heavy), sweeping the layer count
  for the one-to-one / one-to-half / one-to-all mappings.
* Fig. 4(b): fixed ``N_C = 2000`` with break-in budgets ``N_T = 200`` and
  ``N_T = 2000``.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.architecture import SOSArchitecture
from repro.core.attack_models import OneBurstAttack
from repro.experiments import config
from repro.experiments.result import Claim, FigureResult, dominates, non_increasing
from repro.perf.batch import evaluate_batch


def _sweep_layers(attack: OneBurstAttack, mapping: str) -> List[float]:
    architectures = [
        SOSArchitecture(
            layers=layers,
            mapping=mapping,
            total_overlay_nodes=config.TOTAL_OVERLAY_NODES,
            sos_nodes=config.SOS_NODES,
            filters=config.FILTERS,
        )
        for layers in config.LAYER_SWEEP
    ]
    batch = evaluate_batch(architectures, [attack] * len(architectures))
    return [float(value) for value in batch]


def fig4a() -> FigureResult:
    """Reproduce Fig. 4(a): pure congestion, two intensities."""
    series: Dict[str, List[float]] = {}
    for mapping in config.FIG4_MAPPINGS:
        for n_c in (2000, 6000):
            attack = OneBurstAttack(
                break_in_budget=0,
                congestion_budget=n_c,
                break_in_success=config.BREAK_IN_SUCCESS,
            )
            series[f"{mapping} N_C={n_c}"] = _sweep_layers(attack, mapping)

    claims = [
        Claim(
            "P_S decreases as L grows under pure congestion (one-to-one)",
            non_increasing(series["one-to-one N_C=2000"])
            and non_increasing(series["one-to-one N_C=6000"]),
        ),
        Claim(
            "higher mapping degree raises P_S absent break-ins",
            dominates(series["one-to-half N_C=6000"], series["one-to-one N_C=6000"])
            and dominates(series["one-to-all N_C=6000"], series["one-to-half N_C=6000"]),
        ),
        Claim(
            "heavier congestion (N_C=6000) lowers P_S",
            all(
                dominates(series[f"{m} N_C=2000"], series[f"{m} N_C=6000"])
                for m in config.FIG4_MAPPINGS
            ),
        ),
        Claim(
            "L=1 is the best layer count for pure congestion (one-to-one)",
            max(series["one-to-one N_C=6000"]) == series["one-to-one N_C=6000"][0],
        ),
    ]
    return FigureResult(
        figure_id="fig4a",
        title="Fig. 4(a): P_S vs L under pure congestion (one-burst, N_T=0)",
        x_label="L",
        x_values=list(config.LAYER_SWEEP),
        series=series,
        claims=claims,
        notes="Original SOS fixes L=3 with one-to-all; the sweep shows that "
        "is not optimal even for its own threat model.",
    )


def fig4b() -> FigureResult:
    """Reproduce Fig. 4(b): congestion plus break-in at two budgets."""
    series: Dict[str, List[float]] = {}
    for mapping in config.FIG4_MAPPINGS:
        for n_t in (200, 2000):
            attack = OneBurstAttack(
                break_in_budget=n_t,
                congestion_budget=2000,
                break_in_success=config.BREAK_IN_SUCCESS,
            )
            series[f"{mapping} N_T={n_t}"] = _sweep_layers(attack, mapping)

    claims = [
        Claim(
            "one-to-all collapses to P_S ~ 0 under break-in attacks",
            max(series["one-to-all N_T=200"] + series["one-to-all N_T=2000"]) < 1e-3,
        ),
        Claim(
            "heavier break-in (N_T=2000) lowers P_S",
            all(
                dominates(series[f"{m} N_T=200"], series[f"{m} N_T=2000"])
                for m in config.FIG4_MAPPINGS
            ),
        ),
        Claim(
            "more layers help one-to-half against heavy break-in",
            series["one-to-half N_T=2000"][4] > series["one-to-half N_T=2000"][0],
        ),
        Claim(
            "low mapping degrees dominate one-to-all once break-ins occur",
            dominates(series["one-to-one N_T=2000"], series["one-to-all N_T=2000"]),
        ),
    ]
    return FigureResult(
        figure_id="fig4b",
        title="Fig. 4(b): P_S vs L under break-in + congestion (one-burst)",
        x_label="L",
        x_values=list(config.LAYER_SWEEP),
        series=series,
        claims=claims,
        notes="The effect of the mapping degree reverses once break-ins "
        "disclose neighbor tables.",
    )
