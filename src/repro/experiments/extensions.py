"""Experiments on the paper's §5 open issues, which this library implements:

* :func:`extension_latency` — the timely-delivery trade-off: availability
  vs expected delivery latency across layer counts;
* :func:`extension_repair` — dynamic repair racing the successive attack
  (Monte Carlo; the paper says this needs simulation, so we simulate);
* :func:`extension_monitoring` — the traffic-monitoring attacker's extra
  damage over the baseline intelligent attacker.
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.attacks.monitoring import monitoring_damage_comparison
from repro.core.architecture import SOSArchitecture
from repro.core.attack_models import SuccessiveAttack
from repro.core.latency import latency_availability_tradeoff
from repro.core.model import evaluate
from repro.experiments import config
from repro.experiments.result import Claim, FigureResult, non_decreasing
from repro.repair import RepairPolicy, estimate_ps_with_repair

LATENCY_LAYERS = (1, 2, 3, 4, 5, 6, 7, 8)
REPAIR_SWEEP = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)
OBSERVATION_SWEEP = (0.0, 0.5, 1.0)
LINK_CUT_SWEEP = (0.0, 0.1, 0.2, 0.4, 0.6, 0.8)


def _arch(layers: int = 4, mapping: str = "one-to-two", **kwargs) -> SOSArchitecture:
    defaults = dict(
        total_overlay_nodes=config.TOTAL_OVERLAY_NODES,
        sos_nodes=config.SOS_NODES,
        filters=config.FILTERS,
    )
    defaults.update(kwargs)
    return SOSArchitecture(layers=layers, mapping=mapping, **defaults)


def extension_latency() -> FigureResult:
    """Availability vs expected latency across L (§5 'timely delivery')."""
    attack = SuccessiveAttack(break_in_budget=2000)
    designs = [_arch(layers=layers) for layers in LATENCY_LAYERS]
    points = latency_availability_tradeoff(designs, attack)
    series: Dict[str, List[float]] = {
        "p_s": [p.p_s for p in points],
        "expected_latency": [p.expected_latency for p in points],
        "baseline_latency": [p.baseline_latency for p in points],
    }
    claims = [
        Claim(
            "baseline latency grows linearly with L (L+1 hops)",
            series["baseline_latency"]
            == [float(layers + 1) for layers in LATENCY_LAYERS],
        ),
        Claim(
            "under heavy break-in, deeper layering buys availability "
            "(P_S at L=8 above L=1) at the cost of latency",
            series["p_s"][-1] > series["p_s"][0]
            and series["expected_latency"][-1] > series["expected_latency"][0],
        ),
        Claim(
            "retry overhead stays bounded (< 1 extra hop-equivalent per hop)",
            all(
                expected - baseline < (layers + 1)
                for expected, baseline, layers in zip(
                    series["expected_latency"],
                    series["baseline_latency"],
                    LATENCY_LAYERS,
                )
            ),
        ),
    ]
    return FigureResult(
        figure_id="ext-latency",
        title="Extension (§5): availability vs delivery latency across L",
        x_label="L",
        x_values=list(LATENCY_LAYERS),
        series=series,
        claims=claims,
        notes="Latency in hop-latency units (1.0/hop) plus 0.5 per wasted "
        "probe; heavy break-in attack N_T=2000, one-to-two mapping.",
    )


def extension_repair(trials: int = 40, seed: int = 11) -> FigureResult:
    """P_S vs the defender's detection probability (§5 'dynamic repair')."""
    architecture = _arch()
    attack = SuccessiveAttack(
        break_in_budget=config.BREAK_IN_BUDGET,
        congestion_budget=config.CONGESTION_BUDGET,
        rounds=config.ROUNDS,
        prior_knowledge=config.PRIOR_KNOWLEDGE,
    )
    means = []
    for p in REPAIR_SWEEP:
        estimate = estimate_ps_with_repair(
            architecture,
            attack,
            RepairPolicy(detection_probability=p),
            trials=trials,
            seed=seed,
        )
        means.append(estimate.mean)
    no_repair_analytical = evaluate(architecture, attack).p_s
    series = {
        "repaired_p_s (MC)": means,
        "no-repair analytical": [no_repair_analytical] * len(REPAIR_SWEEP),
    }
    claims = [
        Claim(
            "repair monotonically improves P_S (within MC noise 0.07)",
            non_decreasing(means, slack=0.07),
        ),
        Claim(
            "perfect per-round detection nearly restores full availability",
            means[-1] > 0.9,
        ),
        Claim(
            "repair never falls below the no-repair analytical level - 0.15",
            all(m >= no_repair_analytical - 0.15 for m in means),
        ),
    ]
    return FigureResult(
        figure_id="ext-repair",
        title="Extension (§5): dynamic repair racing the successive attack",
        x_label="detection probability per round",
        x_values=list(REPAIR_SWEEP),
        series=series,
        claims=claims,
        notes=f"{trials} Monte Carlo trials per point; repaired nodes are "
        "re-keyed and re-wired, invalidating attacker knowledge.",
    )


def extension_underlay(trials: int = 8, seed: int = 23) -> FigureResult:
    """Underlay link failures degrading SOS paths (§5 'attacks on the
    underlying network').

    No overlay node is attacked at all: every failure here comes from the
    physical network beneath the overlay. A client route succeeds when
    every overlay hop's endpoints remain underlay-connected.
    """
    import math

    from repro.overlay.topology import UnderlayTopology
    from repro.sos.deployment import SOSDeployment
    from repro.utils.seeding import SeedSequenceFactory

    architecture = _arch(
        layers=3, total_overlay_nodes=1000, sos_nodes=45, filters=5
    )
    factory = SeedSequenceFactory(seed)
    success_by_cut = {cut: [] for cut in LINK_CUT_SWEEP}
    latency_by_cut = {cut: [] for cut in LINK_CUT_SWEEP}
    for _ in range(trials):
        trial_rng = factory.generator()
        deployment = SOSDeployment.deploy(architecture, rng=trial_rng)
        member_ids = [
            node_id
            for layer in range(1, architecture.layers + 2)
            for node_id in deployment.layer_members(layer)
        ]
        for cut in LINK_CUT_SWEEP:
            topology = UnderlayTopology(routers=150, rng=factory.generator())
            topology.attach_overlay_nodes(member_ids)
            if cut > 0:
                topology.fail_random_links(int(cut * topology.links))
            hits = 0
            latencies = []
            probes = 30
            for _ in range(probes):
                path = _sample_overlay_path(deployment, trial_rng)
                latency = topology.path_latency(path)
                if math.isfinite(latency):
                    hits += 1
                    latencies.append(latency)
            success_by_cut[cut].append(hits / probes)
            if latencies:
                latency_by_cut[cut].append(sum(latencies) / len(latencies))
    series = {
        "underlay-connected routes": [
            sum(success_by_cut[cut]) / len(success_by_cut[cut])
            for cut in LINK_CUT_SWEEP
        ],
        "mean path latency (connected)": [
            (sum(latency_by_cut[cut]) / len(latency_by_cut[cut]))
            if latency_by_cut[cut]
            else 0.0
            for cut in LINK_CUT_SWEEP
        ],
    }
    routes = series["underlay-connected routes"]
    latencies = series["mean path latency (connected)"]
    claims = [
        Claim(
            "with an intact underlay every route connects",
            math.isclose(routes[0], 1.0),
        ),
        Claim(
            "link cuts monotonically (within noise 0.05) reduce route availability",
            all(b <= a + 0.05 for a, b in zip(routes, routes[1:])),
        ),
        Claim(
            "surviving routes get slower as cuts force detours "
            "(latency at 40% cuts above intact latency)",
            latencies[3] > latencies[0],
        ),
    ]
    return FigureResult(
        figure_id="ext-underlay",
        title="Extension (§5): underlay link failures vs SOS path quality",
        x_label="fraction of underlay links cut",
        x_values=list(LINK_CUT_SWEEP),
        series=series,
        claims=claims,
        notes="Waxman underlay, 150 routers; overlay hops ride shortest "
        "underlay paths. No overlay node is attacked.",
    )


def _sample_overlay_path(deployment, rng) -> List[int]:
    """One client->filter overlay path through random healthy tables."""
    path: List[int] = []
    contacts = deployment.sample_client_contacts(rng)
    current = contacts[int(rng.integers(0, len(contacts)))]
    path.append(current)
    for _ in range(deployment.architecture.layers):
        neighbors = deployment.resolve(current).neighbors
        current = neighbors[int(rng.integers(0, len(neighbors)))]
        path.append(current)
    return path


def extension_game() -> FigureResult:
    """The adaptive-attacker game: optimal budget splits per design."""
    from repro.core.game import worst_case_attack

    designs = {
        "L=1 one-to-all": _arch(layers=1, mapping="one-to-all"),
        "L=3 one-to-half": _arch(layers=3, mapping="one-to-half"),
        "L=4 one-to-two": _arch(layers=4, mapping="one-to-two"),
        "L=5 one-to-one": _arch(layers=5, mapping="one-to-one"),
    }
    shares = []
    guarantees = []
    fixed_congestion = []
    for design in designs.values():
        result = worst_case_attack(design, budget=2400, exchange_rate=10)
        shares.append(result.worst.break_in_share)
        guarantees.append(result.guaranteed_p_s)
        fixed_congestion.append(result.splits[0].p_s)
    series = {
        "guaranteed P_S (adaptive attacker)": guarantees,
        "P_S vs all-congestion attacker": fixed_congestion,
        "attacker's optimal break-in share": shares,
    }
    labels = list(designs)
    claims = [
        Claim(
            "the adaptive attacker never does worse than all-congestion",
            all(g <= f + 1e-9 for g, f in zip(guarantees, fixed_congestion)),
        ),
        Claim(
            "against one-to-all designs the attacker shifts budget into "
            "break-ins (share above 0) and collapses them",
            shares[0] > 0 and guarantees[0] < 0.01,
        ),
        Claim(
            "the balanced L=4 one-to-two design offers the best guarantee",
            guarantees[2] == max(guarantees),
        ),
    ]
    return FigureResult(
        figure_id="ext-game",
        title="Extension: adaptive attacker budget splits per design",
        x_label="design",
        x_values=list(range(1, len(labels) + 1)),
        series=series,
        claims=claims,
        notes="designs: "
        + "; ".join(f"{i + 1}={l}" for i, l in enumerate(labels))
        + ". Budget 2400 congestion-units; one break-in costs 10.",
    )


def extension_priority(trials: int = 150, seed: int = 29) -> FigureResult:
    """Priority clients (§2): measured delivery advantage under attack."""
    from repro.attacks import IntelligentAttacker
    from repro.sos.deployment import SOSDeployment
    from repro.sos.priority import priority_advantage

    architecture = _arch(
        layers=3, total_overlay_nodes=1000, sos_nodes=45, filters=5
    )
    attack = SuccessiveAttack(
        break_in_budget=80, congestion_budget=300, rounds=3, prior_knowledge=0.3
    )
    multipliers = (1, 2, 3, 5)
    regular_rates = []
    priority_rates = []
    for multiplier in multipliers:
        deployment = SOSDeployment.deploy(architecture, rng=seed)
        IntelligentAttacker().execute(deployment, attack, rng=seed + 1)
        regular, priority = priority_advantage(
            deployment,
            trials=trials,
            contact_multiplier=multiplier,
            provisioned_paths=2,
            seed=seed + 2,
        )
        regular_rates.append(regular)
        priority_rates.append(priority)
    series = {
        "regular clients": regular_rates,
        "priority clients": priority_rates,
    }
    claims = [
        Claim(
            "priority clients deliver at least as often as regular ones",
            all(p >= r - 0.03 for p, r in zip(priority_rates, regular_rates)),
        ),
        Claim(
            "bigger contact boosts help (x5 above x1, within MC noise)",
            priority_rates[-1] >= priority_rates[0] - 0.05,
        ),
    ]
    return FigureResult(
        figure_id="ext-priority",
        title="Extension (§2): priority-client delivery under attack",
        x_label="contact multiplier",
        x_values=list(multipliers),
        series=series,
        claims=claims,
        notes="2 provisioned disjoint paths per priority client; same "
        "attacked deployment measured for both client classes.",
    )


def extension_placement(probes: int = 150, seed: int = 11) -> FigureResult:
    """Underlay-aware placement vs targeted data-center outages."""
    from repro.sos.placement import placement_resilience

    architecture = SOSArchitecture(
        layers=3,
        mapping="one-to-half",
        total_overlay_nodes=400,
        sos_nodes=45,
        filters=5,
    )
    outage_sweep = (0, 1, 2, 4, 8)
    random_rates = []
    diverse_rates = []
    for outages in outage_sweep:
        random_rate, diverse_rate = placement_resilience(
            architecture, outages=outages, probes=probes, seed=seed
        )
        random_rates.append(random_rate)
        diverse_rates.append(diverse_rate)
    series = {
        "random enrollment": random_rates,
        "router-diverse enrollment": diverse_rates,
    }
    claims = [
        Claim(
            "with no outage both placements are fully connected",
            math.isclose(random_rates[0], 1.0)
            and math.isclose(diverse_rates[0], 1.0),
        ),
        Claim(
            "diverse placement dominates random at every outage level",
            all(d >= r - 0.02 for d, r in zip(diverse_rates, random_rates)),
        ),
        Claim(
            "at 2 data-center outages diversity keeps the majority of "
            "routes alive while random placement loses most",
            diverse_rates[2] > 0.6 and random_rates[2] < 0.6,
        ),
    ]
    return FigureResult(
        figure_id="ext-placement",
        title="Extension: underlay-aware placement vs data-center outages",
        x_label="routers taken out",
        x_values=list(outage_sweep),
        series=series,
        claims=claims,
        notes="Overlay hosts cluster Zipf-style (concentration 1.2) on a "
        "120-router Waxman underlay; the attacker fails the busiest "
        "routers. Same topology/outage/probe streams for both placements.",
    )


def extension_sensitivity() -> FigureResult:
    """Tornado: local sensitivity of P_S to every model parameter."""
    from repro.core.sensitivity import sensitivity_profile

    architecture = _arch()
    attack = SuccessiveAttack()
    profile = sensitivity_profile(architecture, attack, rel_step=0.25)
    labels = [entry.parameter for entry in profile]
    deltas = [entry.delta for entry in profile]
    magnitudes = [entry.magnitude for entry in profile]
    by_name = {entry.parameter: entry for entry in profile}
    claims = [
        Claim(
            "every attack-side knob has non-positive effect on P_S",
            all(
                by_name[name].delta <= 1e-9
                for name in labels
                if name.split(" ")[0] in ("N_T", "N_C", "P_B", "P_E", "R")
            ),
        ),
        Claim(
            "growing the overlay population helps the defender",
            by_name["N (overlay population)"].delta > 0,
        ),
        Claim(
            "at the paper's operating point the round count and break-in "
            "success dominate the attacker's marginal options",
            set(labels[:3])
            & {"R (rounds)", "P_B (break-in success)"}
            != set(),
        ),
    ]
    return FigureResult(
        figure_id="ext-sensitivity",
        title="Extension: tornado sensitivity of P_S (L=4, one-to-two, "
        "successive defaults)",
        x_label="rank",
        x_values=list(range(1, len(profile) + 1)),
        series={"delta P_S": deltas, "|delta|": magnitudes},
        claims=claims,
        notes="parameters by rank: "
        + "; ".join(f"{i + 1}={name}" for i, name in enumerate(labels))
        + ". +25% relative perturbations (integers: +1).",
    )


def extension_monitoring(trials: int = 30, seed: int = 13) -> FigureResult:
    """Damage of the traffic-monitoring attacker vs the baseline (§5)."""
    architecture = _arch(
        layers=3, total_overlay_nodes=2000, sos_nodes=60, filters=6
    )
    attack = SuccessiveAttack(
        break_in_budget=100, congestion_budget=400, rounds=3, prior_knowledge=0.2
    )
    baseline_ps: List[float] = []
    monitoring_ps: List[float] = []
    extra_disclosure: List[float] = []
    for observation in OBSERVATION_SWEEP:
        comparison = monitoring_damage_comparison(
            architecture,
            attack,
            observation_probability=observation,
            trials=trials,
            seed=seed,
        )
        baseline_ps.append(comparison.baseline_ps)
        monitoring_ps.append(comparison.monitoring_ps)
        extra_disclosure.append(comparison.extra_disclosure)
    series = {
        "baseline attacker P_S": baseline_ps,
        "monitoring attacker P_S": monitoring_ps,
        "extra identities disclosed": extra_disclosure,
    }
    claims = [
        Claim(
            "with zero observation the attackers coincide (same seeds)",
            abs(monitoring_ps[0] - baseline_ps[0]) < 0.08,
        ),
        Claim(
            "full observation discloses strictly more identities",
            extra_disclosure[-1] > 0,
        ),
        Claim(
            "monitoring lowers P_S relative to the baseline at full "
            "observation (within MC noise)",
            monitoring_ps[-1] <= baseline_ps[-1] + 0.05,
        ),
    ]
    return FigureResult(
        figure_id="ext-monitoring",
        title="Extension (§5): traffic-monitoring attacker vs baseline",
        x_label="observation probability",
        x_values=list(OBSERVATION_SWEEP),
        series=series,
        claims=claims,
        notes="Upstream fan-in of each compromised node is observed with "
        "the given probability; N scaled to 2000 to keep MC affordable.",
    )
