"""Validation experiment: analytical model vs executed Monte Carlo attacks.

Not a paper figure — the paper publishes analysis only and defers
simulation to future work — but the decisive internal check: for a grid of
configurations spanning both attack models, the analytical ``P_S`` must
fall inside (or near) the Monte Carlo confidence interval produced by
actually deploying the overlay, running Algorithm 1 against it, and
forwarding client packets.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple, Union

from repro.core.architecture import SOSArchitecture
from repro.core.attack_models import OneBurstAttack, SuccessiveAttack
from repro.core.model import evaluate
from repro.experiments import config
from repro.experiments.result import Claim, FigureResult
from repro.simulation.monte_carlo import estimate_ps
from repro.simulation.results import PsEstimate

Attack = Union[OneBurstAttack, SuccessiveAttack]


@dataclasses.dataclass(frozen=True)
class ValidationPoint:
    """One configuration compared analytically and by simulation."""

    name: str
    architecture: SOSArchitecture
    attack: Attack
    analytical: float
    simulated: PsEstimate

    @property
    def absolute_error(self) -> float:
        return abs(self.analytical - self.simulated.mean)

    @property
    def agrees(self) -> bool:
        return self.simulated.agrees_with(self.analytical, tolerance=0.12)


def default_grid() -> List[Tuple[str, SOSArchitecture, Attack]]:
    """A grid spanning both attack models and all interesting regimes."""

    def arch(layers: int, mapping: str, total: int = config.TOTAL_OVERLAY_NODES):
        return SOSArchitecture(
            layers=layers,
            mapping=mapping,
            total_overlay_nodes=total,
            sos_nodes=config.SOS_NODES,
            filters=config.FILTERS,
        )

    return [
        ("pure congestion, 1-to-one", arch(3, "one-to-one"), OneBurstAttack(0, 6000)),
        ("pure congestion, 1-to-half", arch(3, "one-to-half"), OneBurstAttack(0, 6000)),
        ("one-burst break-in, 1-to-half", arch(3, "one-to-half"), OneBurstAttack(2000, 2000)),
        ("one-burst break-in, 1-to-one", arch(5, "one-to-one"), OneBurstAttack(2000, 2000)),
        ("successive defaults, 1-to-two", arch(4, "one-to-two"), SuccessiveAttack()),
        ("successive defaults, 1-to-one", arch(3, "one-to-one"), SuccessiveAttack()),
        ("successive heavy, 1-to-one", arch(5, "one-to-one"),
         SuccessiveAttack(break_in_budget=800)),
        ("successive 1-to-five", arch(5, "one-to-five"), SuccessiveAttack()),
    ]


def run_validation(
    trials: int = 80,
    clients_per_trial: int = 4,
    seed: Optional[int] = 2004,
) -> List[ValidationPoint]:
    """Compare analytical vs Monte Carlo over the default grid."""
    points = []
    for name, architecture, attack in default_grid():
        analytical = evaluate(architecture, attack).p_s
        simulated = estimate_ps(
            architecture,
            attack,
            trials=trials,
            clients_per_trial=clients_per_trial,
            seed=seed,
        )
        points.append(
            ValidationPoint(
                name=name,
                architecture=architecture,
                attack=attack,
                analytical=analytical,
                simulated=simulated,
            )
        )
    return points


def validation_figure(
    trials: int = 80, clients_per_trial: int = 4, seed: Optional[int] = 2004
) -> FigureResult:
    """Package the validation run as a FigureResult for the runner."""
    points = run_validation(trials, clients_per_trial, seed)
    series = {
        "analytical": [p.analytical for p in points],
        "monte_carlo": [p.simulated.mean for p in points],
        "mc_ci_low": [p.simulated.ci95[0] for p in points],
        "mc_ci_high": [p.simulated.ci95[1] for p in points],
    }
    mean_error = sum(p.absolute_error for p in points) / len(points)
    claims = [
        Claim(
            f"analytical P_S within MC CI (+0.12 modeling margin) on every "
            f"grid point ({sum(p.agrees for p in points)}/{len(points)})",
            all(p.agrees for p in points),
        ),
        Claim(
            f"mean |analytical - MC| <= 0.10 (measured {mean_error:.3f})",
            mean_error <= 0.10,
        ),
    ]
    return FigureResult(
        figure_id="val-mc",
        title="Validation: average-case analysis vs executed attacks",
        x_label="grid point",
        x_values=list(range(1, len(points) + 1)),
        series=series,
        claims=claims,
        notes="; ".join(f"{i + 1}: {p.name}" for i, p in enumerate(points)),
    )
