"""The scenario-zoo matrix: detection quality × delivery per campaign.

``scn-zoo`` replays every committed zoo scenario (see
:mod:`repro.scenarios.zoo`) through the detection→repair loop twice —
once with repair disabled, once detection-driven — and reports the
resulting delivery ratios next to the detector's precision/recall
against the schedule's ground-truth target set. The claims are
deliberately structural/conservative: repair must never cost delivery,
removing repaired targets can only shrink the attack, and the benign
flash crowd must not degrade delivery at all.

Accepts ``fast=``/``tier=``/``seed=`` (the shared
``repro-experiments --engine/--tier/--seed`` options), so the whole
matrix can be replayed on the event-driven oracle engine.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.result import Claim, FigureResult
from repro.scenarios.runner import ScenarioRunReport, run_scenario
from repro.scenarios.zoo import list_scenarios


def scenario_zoo(
    seed: Optional[int] = None,
    fast: bool = True,
    tier: Optional[str] = None,
    phases: int = 3,
) -> FigureResult:
    """Delivery and detection quality for every committed zoo scenario."""
    engine = "fast" if fast else "event"
    names = list_scenarios()
    none_runs: List[ScenarioRunReport] = []
    detected_runs: List[ScenarioRunReport] = []
    for name in names:
        none_runs.append(
            run_scenario(
                name, mode="none", phases=phases,
                engine=engine, tier=tier, seed=seed,
            )
        )
        detected_runs.append(
            run_scenario(
                name, mode="detected", phases=phases,
                engine=engine, tier=tier, seed=seed,
            )
        )

    series: Dict[str, List[float]] = {
        "final delivery (no repair)": [
            run.final_delivery for run in none_runs
        ],
        "final delivery (detected)": [
            run.final_delivery for run in detected_runs
        ],
        "precision": [run.precision for run in detected_runs],
        "recall": [run.recall for run in detected_runs],
    }

    attacked = [
        index
        for index, run in enumerate(none_runs)
        if run.initial_targets
    ]
    benign = [
        index
        for index, run in enumerate(none_runs)
        if not run.initial_targets
    ]
    claims = [
        Claim(
            "every delivery ratio and quality score lies in [0, 1]",
            all(
                0.0 <= value <= 1.0
                for values in series.values()
                for value in values
            ),
        ),
        Claim(
            "detection-driven repair never ends below the no-repair "
            "delivery (slack 0.02)",
            all(
                detected_runs[i].final_delivery
                >= none_runs[i].final_delivery - 0.02
                for i in range(len(names))
            ),
        ),
        Claim(
            "repair only removes attack traffic: detected-mode campaigns "
            "absorb no more attack packets than no-repair ones (exact)",
            all(
                sum(detected_runs[i].attack_packets_per_phase)
                <= sum(none_runs[i].attack_packets_per_phase)
                for i in range(len(names))
            ),
        ),
        Claim(
            "the detector finds at least half of each attack campaign's "
            "true targets (recall >= 0.5)",
            all(detected_runs[i].recall >= 0.5 for i in attacked),
        ),
        Claim(
            "the benign-only flash crowd keeps delivery >= 0.95 with no "
            "repair at all",
            all(none_runs[i].final_delivery >= 0.95 for i in benign),
        ),
    ]
    resolved_tier = detected_runs[0].tier if detected_runs else "numpy"
    return FigureResult(
        figure_id="scn-zoo",
        title="Scenario zoo: delivery with/without detection-driven "
        "repair, and detector precision/recall per campaign",
        x_label="scenario index",
        x_values=list(range(len(names))),
        series=series,
        claims=claims,
        notes="Scenarios (by index): "
        + "; ".join(f"{i}={name}" for i, name in enumerate(names))
        + f". {phases} repair phases per campaign; seeds are each "
        "spec's committed seed"
        + ("" if seed is None else f" overridden to {seed}")
        + ". Precision/recall measured against the injection schedule's "
        "ground-truth target set (nothing flagged counts as precision "
        "1.0; an attack-free campaign as recall 1.0). "
        f"{'Vectorized fast' if fast else 'Event-driven'} engine, "
        f"{resolved_tier} tier.",
    )
