"""Result container shared by every reproduced figure.

A :class:`FigureResult` holds the same rows/series the paper's figure
plots, plus a list of :class:`Claim` objects — machine-checked versions of
the qualitative statements the paper makes about that figure ("P_S
decreases with L", "one-to-all collapses under break-in", ...). The
experiment runner prints PASS/FAIL per claim; the test suite asserts them.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence

from repro.errors import ExperimentError


@dataclasses.dataclass(frozen=True)
class Claim:
    """One machine-checked qualitative claim from the paper."""

    description: str
    holds: bool


@dataclasses.dataclass(frozen=True)
class FigureResult:
    """Reproduced data for one paper figure."""

    figure_id: str
    title: str
    x_label: str
    x_values: Sequence[float]
    series: Dict[str, List[float]]
    claims: List[Claim] = dataclasses.field(default_factory=list)
    notes: str = ""
    #: Degraded-coverage or data-quality warnings (e.g. isolated trial
    #: failures); rendered prominently but not fatal like a failed claim.
    warnings: List[str] = dataclasses.field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.x_values:
            raise ExperimentError(f"{self.figure_id}: empty x axis")
        for name, values in self.series.items():
            if len(values) != len(self.x_values):
                raise ExperimentError(
                    f"{self.figure_id}: series {name!r} has {len(values)} "
                    f"points, expected {len(self.x_values)}"
                )

    @property
    def all_claims_hold(self) -> bool:
        return all(claim.holds for claim in self.claims)

    def failed_claims(self) -> List[Claim]:
        return [claim for claim in self.claims if not claim.holds]

    def rows(self) -> List[List[object]]:
        """Table rows: one per x value, one column per series."""
        return [
            [x] + [self.series[name][i] for name in self.series]
            for i, x in enumerate(self.x_values)
        ]

    def headers(self) -> List[str]:
        return [self.x_label] + list(self.series)


def non_increasing(values: Sequence[float], slack: float = 1e-9) -> bool:
    """True when the sequence never rises by more than ``slack``."""
    return all(b <= a + slack for a, b in zip(values, values[1:]))


def non_decreasing(values: Sequence[float], slack: float = 1e-9) -> bool:
    return all(b >= a - slack for a, b in zip(values, values[1:]))


def dominates(upper: Sequence[float], lower: Sequence[float], slack: float = 1e-9) -> bool:
    """True when ``upper[i] >= lower[i]`` everywhere (within slack)."""
    return all(u >= l - slack for u, l in zip(upper, lower))
