"""Figure 7: sensitivity of ``P_S`` to the number of break-in rounds ``R``
under different layer counts (§3.2.3; mapping one-to-five, even dist.)."""

from __future__ import annotations

from typing import Dict, List

from repro.core.architecture import SOSArchitecture
from repro.core.attack_models import SuccessiveAttack
from repro.experiments import config
from repro.experiments.result import Claim, FigureResult, non_increasing
from repro.perf.batch import evaluate_batch

LAYERS = (3, 4, 5, 6)


def fig7() -> FigureResult:
    """Reproduce Fig. 7: P_S vs R for several L (one-to-five mapping)."""
    series: Dict[str, List[float]] = {}
    for layers in LAYERS:
        arch = SOSArchitecture(
            layers=layers,
            mapping="one-to-five",
            total_overlay_nodes=config.TOTAL_OVERLAY_NODES,
            sos_nodes=config.SOS_NODES,
            filters=config.FILTERS,
        )
        attacks = [
            SuccessiveAttack(
                break_in_budget=config.BREAK_IN_BUDGET,
                congestion_budget=config.CONGESTION_BUDGET,
                break_in_success=config.BREAK_IN_SUCCESS,
                rounds=rounds,
                prior_knowledge=config.PRIOR_KNOWLEDGE,
            )
            for rounds in config.ROUND_SWEEP
        ]
        batch = evaluate_batch([arch] * len(attacks), attacks)
        series[f"L={layers}"] = [float(value) for value in batch]

    def sensitivity(name: str) -> float:
        values = series[name]
        return values[0] - values[-1]

    def rounds_to_collapse(name: str) -> int:
        """First R at which P_S falls below 0.01 (len+1 if never)."""
        for r, value in zip(config.ROUND_SWEEP, series[name]):
            if value < 0.01:
                return r
        return config.ROUND_SWEEP[-1] + 1

    claims = [
        Claim(
            "P_S decreases as R increases, for every L",
            all(non_increasing(values) for values in series.values()),
        ),
        Claim(
            "larger L is less sensitive to R (survives more rounds: "
            f"L=6 collapses at R={rounds_to_collapse('L=6')}, "
            f"L=3 at R={rounds_to_collapse('L=3')})",
            rounds_to_collapse("L=6") >= rounds_to_collapse("L=3"),
        ),
        Claim(
            "splitting the same budget over more rounds hurts the defender "
            "(R=3 below R=1 for every L)",
            all(values[2] <= values[0] for values in series.values()),
        ),
    ]
    return FigureResult(
        figure_id="fig7",
        title="Fig. 7: P_S vs R under different L (one-to-five, even)",
        x_label="R",
        x_values=list(config.ROUND_SWEEP),
        series=series,
        claims=claims,
        notes="Successive rounds let disclosures guide later break-ins; "
        "deeper layering buys rounds of protection.",
    )
