"""Figure 6: successive attack — layering, mapping, and node distribution
(§3.2.3).

* Fig. 6(a): ``P_S`` vs ``L`` for the five mapping degrees under the
  default successive attack (``N_T=200, N_C=2000, R=3, P_B=0.5, P_E=0.2``).
* Fig. 6(b): ``P_S`` vs ``L`` for even / increasing / decreasing node
  distributions at several mapping degrees.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.architecture import SOSArchitecture
from repro.core.attack_models import SuccessiveAttack
from repro.errors import ConfigurationError
from repro.experiments import config
from repro.experiments.result import Claim, FigureResult
from repro.perf.batch import evaluate_batch


def _default_attack() -> SuccessiveAttack:
    return SuccessiveAttack(
        break_in_budget=config.BREAK_IN_BUDGET,
        congestion_budget=config.CONGESTION_BUDGET,
        break_in_success=config.BREAK_IN_SUCCESS,
        rounds=config.ROUNDS,
        prior_knowledge=config.PRIOR_KNOWLEDGE,
    )


def _sweep(mapping: str, distribution: str = "even") -> List[float]:
    attack = _default_attack()
    values: List[float] = []
    architectures: List[SOSArchitecture] = []
    feasible_slots: List[int] = []
    for layers in config.LAYER_SWEEP:
        try:
            arch = SOSArchitecture(
                layers=layers,
                mapping=mapping,
                distribution=distribution,
                total_overlay_nodes=config.TOTAL_OVERLAY_NODES,
                sos_nodes=config.SOS_NODES,
                filters=config.FILTERS,
            )
        except ConfigurationError:
            # Infeasible grid point (e.g. a skewed distribution starving a
            # layer); keep a NaN marker in the sweep like the scalar loop.
            values.append(float("nan"))
            continue
        feasible_slots.append(len(values))
        values.append(0.0)
        architectures.append(arch)
    if architectures:
        batch = evaluate_batch(architectures, [attack] * len(architectures))
        for slot, value in zip(feasible_slots, batch):
            values[slot] = float(value)
    return values


def fig6a() -> FigureResult:
    """Reproduce Fig. 6(a): P_S vs L per mapping degree."""
    series: Dict[str, List[float]] = {
        mapping: _sweep(mapping) for mapping in config.FIG6_MAPPINGS
    }

    best_point = max(
        (
            (value, mapping, layers)
            for mapping, values in series.items()
            for layers, value in zip(config.LAYER_SWEEP, values)
        ),
    )
    claims = [
        Claim(
            "best overall configuration is one-to-two around L=4 "
            f"(found: {best_point[1]} at L={best_point[2]})",
            best_point[1] == "one-to-two" and best_point[2] in (3, 4, 5),
        ),
        Claim(
            "one-to-all yields P_S ~ 0 for every L under the successive attack",
            max(series["one-to-all"]) < 1e-3,
        ),
        Claim(
            "P_S stays sensitive to both L and the mapping degree",
            (max(series["one-to-two"]) - min(series["one-to-two"])) > 0.1
            and (max(s[3] for s in series.values()) - min(s[3] for s in series.values()))
            > 0.1,
        ),
    ]
    return FigureResult(
        figure_id="fig6a",
        title="Fig. 6(a): P_S vs L under the successive attack (even dist.)",
        x_label="L",
        x_values=list(config.LAYER_SWEEP),
        series=series,
        claims=claims,
        notes="Defaults: N_T=200, N_C=2000, R=3, P_B=0.5, P_E=0.2.",
    )


def fig6b() -> FigureResult:
    """Reproduce Fig. 6(b): node-distribution sensitivity."""
    mappings = ("one-to-one", "one-to-two", "one-to-five")
    distributions = ("even", "increasing", "decreasing")
    series: Dict[str, List[float]] = {}
    for mapping in mappings:
        for distribution in distributions:
            series[f"{mapping} {distribution}"] = _sweep(mapping, distribution)

    def spread(mapping: str, index: int) -> float:
        values = [
            series[f"{mapping} {distribution}"][index]
            for distribution in distributions
        ]
        values = [v for v in values if v == v]  # drop NaN (infeasible grid points)
        return max(values) - min(values) if values else 0.0

    l4 = config.LAYER_SWEEP.index(4)
    l8 = config.LAYER_SWEEP.index(8)
    claims = [
        Claim(
            "node distribution matters (visible spread at L=4, one-to-five)",
            spread("one-to-five", l4) > 0.1,
        ),
        Claim(
            "sensitivity to distribution grows with the mapping degree (L=4)",
            spread("one-to-one", l4) < spread("one-to-five", l4),
        ),
        Claim(
            "increasing distribution performs best at the paper's L=4, "
            "one-to-five configuration",
            series["one-to-five increasing"][l4]
            == max(
                series[f"one-to-five {distribution}"][l4]
                for distribution in distributions
            ),
        ),
        Claim(
            "sensitivity to distribution shrinks from its peak as L grows "
            "(one-to-five: spread at L=8 below spread at L=4)",
            spread("one-to-five", l8) < spread("one-to-five", l4),
        ),
    ]
    return FigureResult(
        figure_id="fig6b",
        title="Fig. 6(b): P_S vs L per node distribution and mapping",
        x_label="L",
        x_values=list(config.LAYER_SWEEP),
        series=series,
        claims=claims,
        notes="Increasing distributions put more nodes near the target, "
        "compensating the deeper layers' higher disclosure exposure.",
    )
