"""Programmable parameter sweeps over the analytical model.

The per-figure modules hard-code the paper's exact grids; this module is
the general tool users reach for afterwards ("what if *my* attacker runs
five rounds and knows half the first layer?"):

* :func:`attack_sweep` — vary one attack parameter, everything else fixed;
* :func:`architecture_sweep` — vary one design feature;
* :func:`grid_sweep` — full cross of one attack and one design parameter,
  returned as a :class:`SweepGrid` with row/column views and an ASCII
  heat table.

All sweeps evaluate the analytical model. By default whole grids go
through the vectorized batch kernel (:mod:`repro.perf.batch`), which is
an order of magnitude faster on large grids; ``vectorized=False`` keeps
the per-point scalar loop as a cross-validation oracle (property tests
assert the two agree to within 1e-12). Monte Carlo validation of chosen
points is a separate step.
"""

from __future__ import annotations

import dataclasses
from typing import Any, List, Sequence, Tuple, Union

from repro.core.architecture import SOSArchitecture
from repro.core.attack_models import OneBurstAttack, SuccessiveAttack
from repro.core.model import evaluate
from repro.errors import ConfigurationError, ExperimentError
from repro.perf.batch import evaluate_batch
from repro.utils.tables import format_table

Attack = Union[OneBurstAttack, SuccessiveAttack]


@dataclasses.dataclass(frozen=True)
class SweepResult:
    """One-dimensional sweep outcome."""

    parameter: str
    values: Tuple[Any, ...]
    p_s: Tuple[float, ...]

    def as_table(self) -> str:
        return format_table(
            [self.parameter, "P_S"], list(zip(self.values, self.p_s))
        )

    def argmax(self) -> Any:
        """The swept value with the highest ``P_S``."""
        return self.values[self.p_s.index(max(self.p_s))]


@dataclasses.dataclass(frozen=True)
class SweepGrid:
    """Two-dimensional sweep outcome (rows x columns)."""

    row_parameter: str
    row_values: Tuple[Any, ...]
    column_parameter: str
    column_values: Tuple[Any, ...]
    p_s: Tuple[Tuple[float, ...], ...]  # p_s[row][column]

    def row(self, value: Any) -> SweepResult:
        index = self.row_values.index(value)
        return SweepResult(
            parameter=self.column_parameter,
            values=self.column_values,
            p_s=self.p_s[index],
        )

    def column(self, value: Any) -> SweepResult:
        index = self.column_values.index(value)
        return SweepResult(
            parameter=self.row_parameter,
            values=self.row_values,
            p_s=tuple(row[index] for row in self.p_s),
        )

    def best_cell(self) -> Tuple[Any, Any, float]:
        """``(row_value, column_value, p_s)`` of the grid maximum."""
        best = (self.row_values[0], self.column_values[0], -1.0)
        for row_value, row in zip(self.row_values, self.p_s):
            for column_value, value in zip(self.column_values, row):
                if value > best[2]:
                    best = (row_value, column_value, value)
        return best

    def as_table(self) -> str:
        headers = [f"{self.row_parameter}\\{self.column_parameter}"] + [
            str(v) for v in self.column_values
        ]
        rows = [
            [row_value] + list(row)
            for row_value, row in zip(self.row_values, self.p_s)
        ]
        return format_table(headers, rows)


def _replace(instance, parameter: str, value):
    if not any(
        field.name == parameter for field in dataclasses.fields(instance)
    ):
        names = ", ".join(
            field.name
            for field in dataclasses.fields(instance)
            if field.init
        )
        raise ConfigurationError(
            f"{type(instance).__name__} has no parameter {parameter!r}; "
            f"choose from: {names}"
        )
    return dataclasses.replace(instance, **{parameter: value})


def _evaluate_points(
    architectures: List[SOSArchitecture],
    attacks: List[Attack],
    vectorized: bool,
) -> List[float]:
    """Evaluate paired points, batched or through the scalar oracle."""
    if vectorized:
        return [float(value) for value in evaluate_batch(architectures, attacks)]
    return [
        evaluate(architecture, attack).p_s
        for architecture, attack in zip(architectures, attacks)
    ]


def attack_sweep(
    architecture: SOSArchitecture,
    base_attack: Attack,
    parameter: str,
    values: Sequence[Any],
    vectorized: bool = True,
) -> SweepResult:
    """Sweep one attack parameter against a fixed architecture.

    Examples
    --------
    >>> from repro.core import SOSArchitecture, SuccessiveAttack
    >>> result = attack_sweep(SOSArchitecture(layers=4, mapping="one-to-two"),
    ...                       SuccessiveAttack(), "rounds", [1, 2, 3])
    >>> result.p_s[0] >= result.p_s[-1]
    True
    """
    if not values:
        raise ExperimentError("values must be non-empty")
    attacks = [_replace(base_attack, parameter, value) for value in values]
    outcomes = _evaluate_points(
        [architecture] * len(attacks), attacks, vectorized
    )
    return SweepResult(
        parameter=parameter, values=tuple(values), p_s=tuple(outcomes)
    )


def architecture_sweep(
    base_architecture: SOSArchitecture,
    attack: Attack,
    parameter: str,
    values: Sequence[Any],
    vectorized: bool = True,
) -> SweepResult:
    """Sweep one design feature against a fixed attack.

    Infeasible design points (e.g. too many layers for the node count)
    raise; filter them beforehand or catch ``ConfigurationError``.
    """
    if not values:
        raise ExperimentError("values must be non-empty")
    designs = [
        _replace(base_architecture, parameter, value) for value in values
    ]
    outcomes = _evaluate_points(designs, [attack] * len(designs), vectorized)
    return SweepResult(
        parameter=parameter, values=tuple(values), p_s=tuple(outcomes)
    )


def grid_sweep(
    base_architecture: SOSArchitecture,
    base_attack: Attack,
    architecture_parameter: str,
    architecture_values: Sequence[Any],
    attack_parameter: str,
    attack_values: Sequence[Any],
    vectorized: bool = True,
) -> SweepGrid:
    """Full cross of one design feature and one attack parameter.

    The full grid is evaluated in one vectorized batch; on grids of a
    thousand points and up that is typically >= 5x faster than the
    per-point scalar loop (``vectorized=False``), with identical results.
    """
    if not architecture_values or not attack_values:
        raise ExperimentError("both value lists must be non-empty")
    designs = [
        _replace(base_architecture, architecture_parameter, value)
        for value in architecture_values
    ]
    attacks = [
        _replace(base_attack, attack_parameter, value)
        for value in attack_values
    ]
    flat_designs: List[SOSArchitecture] = []
    flat_attacks: List[Attack] = []
    for design in designs:
        for attack in attacks:
            flat_designs.append(design)
            flat_attacks.append(attack)
    outcomes = _evaluate_points(flat_designs, flat_attacks, vectorized)
    columns = len(attacks)
    rows: List[Tuple[float, ...]] = [
        tuple(outcomes[start : start + columns])
        for start in range(0, len(outcomes), columns)
    ]
    return SweepGrid(
        row_parameter=architecture_parameter,
        row_values=tuple(architecture_values),
        column_parameter=attack_parameter,
        column_values=tuple(attack_values),
        p_s=tuple(rows),
    )
