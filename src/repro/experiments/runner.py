"""Command-line experiment runner.

Usage (installed as ``repro-experiments``)::

    repro-experiments --list
    repro-experiments fig4a fig6b
    repro-experiments --all
    repro-experiments --paper-only --markdown out.md

Each run prints the same rows/series the paper's figure plots, an ASCII
rendering of the curve shapes, and PASS/FAIL for every machine-checked
claim the paper makes about that figure.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.errors import ReproError
from repro.experiments.figures import PAPER_FIGURES, available, run_figure
from repro.experiments.report import render_markdown, render_text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the figures of the ICDCS 2004 SOS paper.",
    )
    parser.add_argument("figures", nargs="*", help="figure ids to run")
    parser.add_argument("--all", action="store_true", help="run every figure")
    parser.add_argument(
        "--paper-only", action="store_true", help="run only the paper's figures"
    )
    parser.add_argument("--list", action="store_true", help="list figure ids")
    parser.add_argument(
        "--no-plot", action="store_true", help="suppress ASCII plots"
    )
    parser.add_argument(
        "--markdown",
        metavar="PATH",
        help="also write results as markdown to PATH",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="also write results as JSON to PATH (loadable via "
        "repro.utils.serialization.load_results)",
    )
    parser.add_argument(
        "--trials",
        type=int,
        help="override Monte Carlo trial counts on figures that sample",
    )
    parser.add_argument(
        "--seed",
        type=int,
        help="override the seed on figures that sample",
    )
    parser.add_argument(
        "--engine",
        choices=("fast", "event"),
        help="packet engine for figures with an engine choice: the "
        "vectorized fast path (default) or the event-driven oracle "
        "(figures without an engine choice ignore this)",
    )
    parser.add_argument(
        "--event-engine",
        action="store_true",
        help="deprecated alias for --engine event",
    )
    parser.add_argument(
        "--tier",
        choices=("scalar", "numpy", "compiled"),
        help="execution tier for figures that accept one "
        "(bit-identical; only speed changes)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        for figure_id in available():
            print(figure_id)
        return 0

    if args.all:
        targets = available()
    elif args.paper_only:
        targets = list(PAPER_FIGURES)
    else:
        targets = args.figures
    if not targets:
        print("nothing to run; pass figure ids, --all, or --paper-only",
              file=sys.stderr)
        return 2

    markdown_sections = []
    results = []
    failures = 0
    errors = []
    overrides = {}
    if args.trials is not None:
        overrides["trials"] = args.trials
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.engine is not None and args.event_engine:
        if args.engine != "event":
            print(
                "--engine and --event-engine disagree; pick one",
                file=sys.stderr,
            )
            return 2
    if args.engine is not None:
        overrides["fast"] = args.engine == "fast"
    elif args.event_engine:
        overrides["fast"] = False
    if args.tier is not None:
        overrides["tier"] = args.tier
    for figure_id in targets:
        try:
            result = run_figure(figure_id, **overrides)
        except ReproError as exc:
            # One broken figure must not abort the rest of the batch;
            # record it and keep going, then fail loudly at the end.
            print(f"ERROR [{figure_id}]: {exc}", file=sys.stderr)
            errors.append((figure_id, str(exc)))
            continue
        results.append(result)
        print(render_text(result, plot=not args.no_plot))
        markdown_sections.append(render_markdown(result))
        failures += len(result.failed_claims())

    if args.json:
        from repro.utils.serialization import save_results

        save_results(results, args.json)
        print(f"wrote JSON to {args.json}")

    if args.markdown:
        with open(args.markdown, "w", encoding="utf-8") as handle:
            handle.write("# Reproduced experiments\n\n")
            handle.write("\n".join(markdown_sections))
        print(f"wrote markdown to {args.markdown}")

    if errors:
        print(
            f"{len(errors)} figure(s) errored "
            f"({len(results)} of {len(targets)} completed):",
            file=sys.stderr,
        )
        for figure_id, message in errors:
            print(f"  {figure_id}: {message}", file=sys.stderr)
        return 2
    if failures:
        print(f"{failures} claim(s) FAILED", file=sys.stderr)
        return 1
    print("all claims PASS")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
