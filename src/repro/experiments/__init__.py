"""Experiment harness regenerating every figure in the paper's evaluation."""

from repro.experiments.figures import PAPER_FIGURES, REGISTRY, available, run_figure
from repro.experiments.report import render_markdown, render_text
from repro.experiments.result import Claim, FigureResult

__all__ = [
    "PAPER_FIGURES",
    "REGISTRY",
    "available",
    "run_figure",
    "render_markdown",
    "render_text",
    "Claim",
    "FigureResult",
]
