"""N_C sensitivity: the analysis the paper omitted for space.

Section 3.2.3 ends with "Due to the space limitations, we do not report
our analysis on the sensitivity of P_S to N_C. Interested readers can
refer [3]" (an OSU technical report). This module supplies that missing
figure from the same model: ``P_S`` vs the congestion budget under the
default successive attack, across layer counts and mapping degrees.

The paper's summary paragraph still makes checkable claims about it:
congestion resources always hurt, higher mapping degrees resist congestion
better (when they survive the break-in phase at all), and the one-to-five
mapping's fate flips with ``L`` — at ``L = 3`` its disclosure cascade
reaches the filters and any congestion budget finishes the job, while at
``L = 5`` the extra layers contain the cascade.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.architecture import SOSArchitecture
from repro.core.attack_models import OneBurstAttack, SuccessiveAttack
from repro.core.model import evaluate
from repro.experiments import config
from repro.experiments.result import Claim, FigureResult, non_increasing

CONGESTION_SWEEP = (0, 500, 1000, 2000, 4000, 6000, 8000)


def nc_sensitivity() -> FigureResult:
    """``P_S`` vs ``N_C`` across (L, mapping) under successive defaults."""
    series: Dict[str, List[float]] = {}
    for layers in (3, 5):
        for mapping in ("one-to-one", "one-to-two", "one-to-five"):
            arch = SOSArchitecture(
                layers=layers,
                mapping=mapping,
                total_overlay_nodes=config.TOTAL_OVERLAY_NODES,
                sos_nodes=config.SOS_NODES,
                filters=config.FILTERS,
            )
            values = []
            for n_c in CONGESTION_SWEEP:
                attack = SuccessiveAttack(
                    break_in_budget=config.BREAK_IN_BUDGET,
                    congestion_budget=n_c,
                    break_in_success=config.BREAK_IN_SUCCESS,
                    rounds=config.ROUNDS,
                    prior_knowledge=config.PRIOR_KNOWLEDGE,
                )
                values.append(evaluate(arch, attack).p_s)
            series[f"L={layers} {mapping}"] = values

    claims = [
        Claim(
            "P_S decreases monotonically in N_C for every configuration",
            all(non_increasing(values) for values in series.values()),
        ),
        Claim(
            "one-to-two dominates one-to-one at every N_C (both L)",
            all(
                two >= one - 1e-9
                for layers in (3, 5)
                for two, one in zip(
                    series[f"L={layers} one-to-two"],
                    series[f"L={layers} one-to-one"],
                )
            ),
        ),
        Claim(
            "one-to-five collapses at L=3 (cascade reaches the filters) "
            "but survives at L=5",
            max(series["L=3 one-to-five"][1:]) < 1e-3
            and series["L=5 one-to-five"][3] > 0.2,
        ),
        Claim(
            "even N_C=0 is not free under break-ins (broken nodes are bad)",
            all(values[0] < 1.0 for values in series.values()),
        ),
    ]
    return FigureResult(
        figure_id="fig-nc",
        title="N_C sensitivity under the successive attack (omitted in "
        "the paper, reconstructed from the model)",
        x_label="N_C",
        x_values=list(CONGESTION_SWEEP),
        series=series,
        claims=claims,
        notes="Defaults otherwise: N_T=200, R=3, P_B=0.5, P_E=0.2, even "
        "distribution.",
    )


def nc_sensitivity_pure_congestion() -> FigureResult:
    """Companion sweep with N_T = 0 (pure congestion; one-burst model)."""
    series: Dict[str, List[float]] = {}
    for mapping in ("one-to-one", "one-to-half", "one-to-all"):
        arch = SOSArchitecture(
            layers=3,
            mapping=mapping,
            total_overlay_nodes=config.TOTAL_OVERLAY_NODES,
            sos_nodes=config.SOS_NODES,
            filters=config.FILTERS,
        )
        series[mapping] = [
            evaluate(
                arch, OneBurstAttack(break_in_budget=0, congestion_budget=n_c)
            ).p_s
            for n_c in CONGESTION_SWEEP
        ]
    claims = [
        Claim(
            "without break-ins, richer mappings dominate at every N_C",
            all(
                a >= b - 1e-9
                for a, b in zip(series["one-to-all"], series["one-to-half"])
            )
            and all(
                a >= b - 1e-9
                for a, b in zip(series["one-to-half"], series["one-to-one"])
            ),
        ),
        Claim(
            "one-to-all absorbs even N_C=8000 (80% of the overlay)",
            series["one-to-all"][-1] > 0.99,
        ),
    ]
    return FigureResult(
        figure_id="fig-nc-pure",
        title="N_C sensitivity under pure congestion (N_T=0, L=3)",
        x_label="N_C",
        x_values=list(CONGESTION_SWEEP),
        series=series,
        claims=claims,
        notes="",
    )
