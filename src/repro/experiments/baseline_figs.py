"""Baseline experiments from the original SOS paper's perspective.

The SIGCOMM 2002 paper's headline result is that even tiny overlays make
random congestion attacks hopeless: the attacker must congest an entire
layer, and the probability of that collapses as the layer grows. We
regenerate that curve *exactly* (inclusion-exclusion, no average-case
approximation) and place it next to the generalized model's evaluation so
the two derivations validate each other, and next to the no-overlay
baseline so the value of SOS itself is on the record.
"""

from __future__ import annotations

from typing import Dict, List

from repro.baselines.direct import direct_target_ps
from repro.baselines.original_sos import (
    exact_random_congestion_ps,
    generalized_model_ps,
    original_sos_ps,
)
from repro.core.distributions import distribute, integerize
from repro.experiments.result import Claim, FigureResult, non_decreasing

SOS_NODE_SWEEP = (9, 30, 60, 90, 150, 300)
CONGESTION_LEVELS = (5000, 8000, 9500)


def baseline_overlay_size() -> FigureResult:
    """Exact ``P_S`` of the original SOS vs overlay size ``n``."""
    series: Dict[str, List[float]] = {}
    for n_c in CONGESTION_LEVELS:
        values = []
        for n in SOS_NODE_SWEEP:
            layer_sizes = integerize(distribute(n, 3, "even"))
            values.append(
                exact_random_congestion_ps(layer_sizes, 10_000, n_c)
            )
        series[f"N_C={n_c}"] = values
    series["no overlay (blind attacker, N_C=8000)"] = [
        direct_target_ps(8000, total_addresses=10_000, target_known=False)
    ] * len(SOS_NODE_SWEEP)

    claims = [
        Claim(
            "more SOS nodes never hurt, at every congestion level",
            all(
                non_decreasing(series[f"N_C={n_c}"], slack=1e-12)
                for n_c in CONGESTION_LEVELS
            ),
        ),
        Claim(
            "even a 30-node overlay survives a 50% overlay-wide attack "
            "with probability above 0.99",
            series["N_C=5000"][1] > 0.99,
        ),
        Claim(
            "a 90-node overlay beats the exposed target even at N_C=9500",
            series["N_C=9500"][3]
            > direct_target_ps(9500, total_addresses=10_000, target_known=False),
        ),
        Claim(
            "the generalized average-case model tracks the exact curve "
            "(n=90, all levels, within 0.02)",
            all(
                abs(
                    generalized_model_ps(n_c, sos_nodes=90)
                    - original_sos_ps(n_c, sos_nodes=90)
                )
                < 0.02
                for n_c in (5000, 8000)
            ),
        ),
    ]
    return FigureResult(
        figure_id="base-n",
        title="Baseline: original SOS resilience vs overlay size (exact)",
        x_label="n (SOS nodes)",
        x_values=list(SOS_NODE_SWEEP),
        series=series,
        claims=claims,
        notes="3 layers, one-to-all, even split over N=10000; attacker "
        "congests N_C uniformly random overlay nodes (the SIGCOMM threat "
        "model). Computed by inclusion-exclusion, not approximation.",
    )
